"""Capacity planning: from a VM trace to a deployable cluster plan.

Uses GSF's allocation, sizing, maintenance, and buffer components the way
a capacity planner would: replay the expected workload, right-size the
mix of baseline SKUs and GreenSKUs, add out-of-service headroom and the
growth buffer, and report the bill of servers with its carbon and packing
profile.

Run with ``python examples/capacity_planning.py``.
"""

from repro import (
    ClusterSpec,
    Gsf,
    TraceParams,
    baseline_gen3,
    generate_trace,
    greensku_full,
    simulate,
)
from repro.core.tables import render_table


def main() -> None:
    gsf = Gsf()
    baseline, greensku = baseline_gen3(), greensku_full()
    trace = generate_trace(
        seed=9, params=TraceParams(duration_days=14, mean_concurrent_vms=800)
    )
    print(
        f"workload: {len(trace.vms)} VM deployments over "
        f"{trace.params.duration_days:.0f} days, peak "
        f"{trace.peak_concurrent_cores()} concurrent cores"
    )

    evaluation = gsf.evaluate(greensku, trace)
    sizing = evaluation.sizing

    rows = [
        ["baseline (serving)", sizing.mixed_baseline_servers],
        ["GreenSKU-Full (serving)", sizing.mixed_green_servers],
        [
            "out-of-service headroom",
            f"{100 * sizing.oos_overhead_baseline:.2f}% / "
            f"{100 * sizing.oos_overhead_green:.2f}%",
        ],
        ["growth buffer (baseline SKUs)",
         evaluation.buffer.baseline_buffer_servers],
        ["reference: all-baseline cluster", sizing.baseline_only_servers],
    ]
    print(render_table(["item", "count"], rows, title="Deployment plan"))

    # Replay the trace against the final plan to report packing health.
    policy = gsf.adoption_model(greensku).policy()
    spec = ClusterSpec.of(
        (baseline, sizing.mixed_baseline_servers),
        (greensku, sizing.mixed_green_servers),
    )
    outcome = simulate(trace, spec, adoption=policy)
    print(
        f"\nreplay: {outcome.placed_vms} placed, "
        f"{len(outcome.rejected_vms)} rejected, "
        f"{outcome.green_placements} on GreenSKUs "
        f"({outcome.fallback_placements} fungible fallbacks)"
    )
    print(
        f"packing: baseline cores {outcome.baseline_stats.mean_core_density:.0%} / "
        f"memory {outcome.baseline_stats.mean_memory_density:.0%}; "
        f"GreenSKU cores {outcome.green_stats.mean_core_density:.0%} / "
        f"memory {outcome.green_stats.mean_memory_density:.0%}"
    )
    print(
        f"\ncarbon: cluster savings {evaluation.cluster_savings:.1%}, "
        f"net data-center savings {gsf.dc_savings(evaluation):.1%} "
        "vs an all-baseline deployment"
    )


if __name__ == "__main__":
    main()
