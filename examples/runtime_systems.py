"""Run-time systems on a deployed GreenSKU (paper Section VIII).

The paper defers post-deployment runtime systems to future work and names
three: auto-scalers during load changes, CPU frequency tuning, and the
Pond-style memory tiering it already deploys.  This example exercises all
three on the library's models:

1. a reactive autoscaler rides the diurnal load curve, returning
   core-hours to the pool,
2. a DVFS planner cuts core power at low load while holding the SLO,
3. Pond tiering plans per-VM local/CXL memory splits that keep the
   reused DDR4 busy without touching the latency-critical path.

Run with ``python examples/runtime_systems.py``.
"""

from repro.core.tables import render_table
from repro.perf.apps import get_app
from repro.perf.autoscale import autoscale
from repro.perf.dvfs import frequency_sweep
from repro.perf.pond import plan_tiering


def show_autoscaler() -> None:
    print("1. Reactive autoscaling (48 h diurnal load, Xapian on "
          "GreenSKU-Efficient)")
    result = autoscale(get_app("Xapian"))
    print(
        f"   static peak provisioning: {result.core_hours_static:.0f} "
        f"core-hours; autoscaled: {result.core_hours_autoscaled:.0f} "
        f"({result.core_hour_savings:.0%} returned to the pool), "
        f"{result.slo_violation_hours} SLO-violation hours"
    )
    hours = result.cores_by_hour
    print(f"   allocation range over the day: {min(hours)}-{max(hours)} "
          "cores\n")


def show_dvfs() -> None:
    print("2. Frequency tuning (Nginx, 10 GreenSKU cores)")
    rows = []
    for plan in frequency_sweep(get_app("Nginx"), cores=10):
        rows.append(
            [
                f"{plan.load_qps:.0f}",
                f"{plan.frequency:.2f}",
                f"{plan.power_savings:.0%}",
                plan.meets_slo,
            ]
        )
    print(
        render_table(
            ["load QPS", "frequency (x nominal)", "core-power saving",
             "meets SLO"],
            rows,
        )
    )
    print()


def show_pond() -> None:
    print("3. Pond-style CXL memory tiering (32 GB VMs on GreenSKU-CXL)")
    rows = []
    for app_name, touched in (
        ("Redis", 0.6),      # CXL-tolerant: fully CXL-backed
        ("Moses", 0.5),      # memory-bound: only untouched pages on CXL
        ("Moses", 0.95),     # hot VM: everything stays local
    ):
        plan = plan_tiering(get_app(app_name), 32.0, touched)
        rows.append(
            [
                app_name,
                f"{touched:.0%}",
                f"{plan.local_gb:.1f}",
                f"{plan.cxl_gb:.1f}",
                "fully CXL" if plan.fully_cxl_backed else "untouched only",
                f"{plan.effective_slowdown:.3f}x",
            ]
        )
    print(
        render_table(
            ["app", "max touched", "local GB", "CXL GB", "mode",
             "effective slowdown"],
            rows,
        )
    )


def main() -> None:
    show_autoscaler()
    show_dvfs()
    show_pond()


if __name__ == "__main__":
    main()
