"""SLO scaling study: will *your* application run well on a GreenSKU?

Shows how a service owner would use the performance component directly:
define (or pick) an application profile, derive the SLO from the baseline
generation you run on today, sweep the GreenSKU core counts, and read off
the scaling factor and the adoption verdict.

Run with ``python examples/slo_scaling_study.py``.
"""

from repro import CarbonModel, greensku_full
from repro.core.tables import render_table
from repro.gsf.adoption import AdoptionModel
from repro.perf.apps import AppClass, ApplicationProfile, get_app
from repro.perf.latency import derive_slo, meets_slo, peak_qps
from repro.perf.scaling import CANDIDATE_CORES, scaling_factor

#: A user-defined service: latency-critical, mildly frequency-sensitive,
#: moderately memory-bound.  Swap the numbers for your own measurements.
MY_SERVICE = ApplicationProfile(
    name="my-checkout-api",
    app_class=AppClass.WEB_APP,
    base_service_ms=3.0,
    speed={"gen1": 0.8, "gen2": 0.9, "gen3": 1.0, "bergamo": 0.88},
    cxl_slowdown=1.07,
    mem_boundedness=0.3,
)


def study(app, generation=3) -> None:
    slo = derive_slo(app, generation)
    print(
        f"{app.name}: SLO = p95 <= {slo.latency_ms:.2f} ms at "
        f"{slo.load_qps:.0f} QPS (90% of the 8-core Gen{generation} peak)"
    )
    rows = []
    for cores in CANDIDATE_CORES:
        rows.append(
            [
                cores,
                f"{peak_qps(app, 'bergamo', cores):.0f}",
                meets_slo(app, slo, cores),
                meets_slo(app, slo, cores, cxl=True),
            ]
        )
    print(
        render_table(
            ["GreenSKU cores", "peak QPS", "meets SLO", "meets SLO (CXL)"],
            rows,
        )
    )
    result = scaling_factor(app, generation)
    adoption = AdoptionModel(
        CarbonModel(), greensku_full(), apps=[app]
    ).decide(app.name, generation)
    print(
        f"scaling factor: {result.display}; adopt GreenSKU-Full: "
        f"{'YES' if adoption.adopt else 'NO'} "
        f"(per-VM carbon {adoption.green_carbon_kg:.0f} vs "
        f"{adoption.baseline_carbon_kg:.0f} kgCO2e)\n"
    )


def main() -> None:
    study(MY_SERVICE)
    # Two paper applications for contrast: one easy, one impossible.
    study(get_app("Xapian"))
    study(get_app("Silo"))


if __name__ == "__main__":
    main()
