"""Design-space exploration: search SKU configurations for lower carbon.

Section VIII notes the authors iterated through hundreds of configurations
with parts of GSF.  This example does a small, transparent version of that
search over three axes:

- memory:core ratio (DIMM count) — reproducing the finding that the
  baseline's 9.6 GB/core is not carbon-optimal (8 GB/core is,
  motivating "Baseline-Resized"),
- how much memory to move behind CXL-attached reused DDR4,
- how much storage to serve from reused m.2 SSDs.

Every candidate is priced with the carbon model; the per-core winner and
the full frontier print at the end.

Run with ``python examples/design_space_exploration.py``.
"""

from typing import List, Tuple

from repro import CarbonModel, ServerSKU, baseline_gen3
from repro.core.tables import render_table
from repro.hardware import catalog
from repro.hardware.sku import _platform_parts


def candidate(
    ddr5_dimms: int, cxl_dimms: int, reused_ssds: int
) -> ServerSKU:
    """A Bergamo-based candidate with the given memory/storage mix."""
    controllers = (cxl_dimms + 3) // 4
    new_ssds = max(2, 5 - reused_ssds // 3)  # keep >= 2 new boot drives
    parts = [
        (catalog.BERGAMO, 1),
        (catalog.DDR5_64GB, ddr5_dimms),
        (catalog.SSD_4TB_NEW, new_ssds),
    ]
    if cxl_dimms:
        parts += [
            (catalog.DDR4_32GB_REUSED, cxl_dimms),
            (catalog.CXL_CONTROLLER, controllers),
        ]
    if reused_ssds:
        parts.append((catalog.SSD_1TB_REUSED, reused_ssds))
    name = f"B-{ddr5_dimms}d-{cxl_dimms}cxl-{reused_ssds}r"
    return ServerSKU.build(name, parts + _platform_parts())


def explore() -> List[Tuple[ServerSKU, float]]:
    """Price every candidate; return (sku, total kgCO2e per core).

    Candidates below 6 GB/core are dropped: per-core carbon alone always
    rewards stripping memory, but the packing studies (Fig. 9 methodology)
    show such ratios reject memory-bound workloads or inflate cluster
    sizes — the workload-constrained sweep below makes that visible.
    """
    model = CarbonModel()
    results = []
    for ddr5 in (8, 10, 12, 14, 16):
        for cxl in (0, 4, 8):
            for reused in (0, 6, 12):
                sku = candidate(ddr5, cxl, reused)
                if sku.memory_per_core < 6.0:
                    continue
                results.append((sku, model.assess(sku).total_per_core))
    return sorted(results, key=lambda pair: pair[1])


def main() -> None:
    model = CarbonModel()
    baseline = model.assess(baseline_gen3()).total_per_core
    results = explore()

    rows = []
    for sku, per_core in results[:12]:
        rows.append(
            [
                sku.name,
                sku.memory_gb,
                f"{sku.memory_per_core:.1f}",
                f"{sku.storage_tb:g}",
                per_core,
                f"{1 - per_core / baseline:.0%}",
            ]
        )
    print(
        render_table(
            [
                "candidate",
                "mem GB",
                "mem/core",
                "storage TB",
                "kgCO2e/core",
                "savings vs baseline",
            ],
            rows,
            title="Carbon-optimal GreenSKU candidates (best 12)",
        )
    )

    best = results[0][0]
    print(
        f"\nwinner: {best.name} — reuse-heavy with memory:core "
        f"{best.memory_per_core:.1f} (the paper's GreenSKU-Full is the "
        "deployable neighbourhood of this point)"
    )

    # The memory:core finding, priced the honest way: per-core carbon
    # always rewards less memory, but a memory-starved SKU needs *more
    # servers* to host the same workload (memory binds in packing).  The
    # workload-optimal ratio minimizes cluster carbon — the paper finds 8
    # GB/core ("Baseline-Resized") optimal for its traces.
    from repro.allocation.traces import TraceParams, VmTrace, generate_trace
    from repro.gsf.sizing import right_size

    raw = generate_trace(
        seed=3, params=TraceParams(duration_days=7, mean_concurrent_vms=250)
    )
    # Full-node VMs request the standard baseline shape (768 GB) and pin
    # dedicated servers regardless of the ratio under study; exclude them
    # so the sweep prices the divisible workload.
    trace = VmTrace(
        name=raw.name,
        params=raw.params,
        vms=tuple(vm for vm in raw.vms if not vm.full_node),
    )
    ratio_rows = []
    for dimms in (6, 8, 10, 12, 14):
        sku = ServerSKU.build(
            f"Genoa-{dimms}x64",
            [
                (catalog.GENOA, 1),
                (catalog.DDR5_64GB, dimms),
                (catalog.SSD_2TB_NEW, 6),
            ]
            + _platform_parts(),
            generation=3,
        )
        servers = right_size(trace, sku)
        per_server = model.assess(sku).per_server_total_kg
        ratio_rows.append(
            [
                f"{sku.memory_per_core:.1f}",
                model.assess(sku).total_per_core,
                servers,
                servers * per_server / 1000.0,
            ]
        )
    print()
    print(
        render_table(
            [
                "memory:core (GB)",
                "kgCO2e/core",
                "servers for trace",
                "cluster tCO2e",
            ],
            ratio_rows,
            title="Workload-constrained memory:core sweep — below the "
            "workload's demand, memory binds and the cluster grows; above "
            "it, idle DIMM carbon accrues.  The optimum tracks the "
            "trace's memory appetite (the paper's Azure traces: 8 "
            "GB/core, its 'Baseline-Resized'; this synthetic default "
            "mix: ~6.4)",
        )
    )


if __name__ == "__main__":
    main()
