"""Fleet transition to GreenSKUs: what the next two years are worth.

The paper's introduction argues that, with six-year server lifetimes,
"design choices made in the next two years directly affect the industry's
2030 carbon goals."  This example makes that argument with the library's
transition planner, then stacks temporal carbon-aware scheduling on top
to show the two levers compose.

Run with ``python examples/fleet_transition.py``.
"""

from repro.analysis.transition import transition_study
from repro.carbon.temporal import (
    schedule_batch,
    stacked_savings,
    synthetic_batch_workload,
)
from repro.core.tables import render_table


def show_transition() -> None:
    study = transition_study(delay_years=2, fleet_servers=100_000)
    rows = []
    for scenario in (study.reference, study.adopt_now, study.adopt_delayed):
        final = scenario.years[-1]
        rows.append(
            [
                scenario.name,
                f"{final.green_share:.0%}",
                final.annual_kg / 1e6,
                final.cumulative_kg / 1e6,
            ]
        )
    print(
        render_table(
            ["scenario", "green share 2030", "2030 annual ktCO2e",
             "2024-2030 cumulative ktCO2e"],
            rows,
            title="100k-server fleet, refresh 1/6 per year, "
            "GreenSKU-Full vs baseline",
        )
    )
    print(
        f"\nadopting now saves {study.savings_by_2030_now:.1%} of "
        f"2024-2030 cumulative emissions; delaying two years forfeits "
        f"{study.cost_of_delay_kg / 1e6:,.0f} ktCO2e "
        f"(savings drop to {study.savings_by_2030_delayed:.1%})"
    )


def show_temporal_stacking() -> None:
    result = schedule_batch(synthetic_batch_workload(jobs=60))
    print(
        f"\ntemporal shifting of delay-tolerant batch jobs: "
        f"{result.savings_fraction:.0%} of their operational emissions "
        "(cleanest feasible hours within deadlines)"
    )
    combined = stacked_savings(
        greensku_per_core_savings=0.26,
        batch_operational_share=0.05,
        temporal_savings_on_batch=result.savings_fraction,
    )
    print(
        f"stacked with GreenSKU-Full's 26% per-core savings: "
        f"{combined:.1%} — complements, not substitutes "
        "(shifting only touches the flexible operational slice)"
    )


def main() -> None:
    show_transition()
    show_temporal_stacking()


if __name__ == "__main__":
    main()
