"""Region planning: pick the right GreenSKU for each data-center region.

Fig. 11's punchline is that the best GreenSKU depends on the grid: where
energy is clean (embodied-dominated), reuse-heavy designs win; where it is
dirty, the efficient-CPU design catches up.  This example runs the GSF
sweep over a workload trace and prints a per-region deployment
recommendation, including what each region would lose by deploying a
single fleet-wide design instead.

Run with ``python examples/region_planning.py``.
"""

from repro import Gsf, TraceParams, generate_trace
from repro.core.tables import render_table
from repro.hardware.datacenter import AZURE_REGION_CI


def main() -> None:
    gsf = Gsf()
    trace = generate_trace(
        seed=5, params=TraceParams(mean_concurrent_vms=600)
    )
    intensities = sorted(AZURE_REGION_CI.values())
    points = {
        p.carbon_intensity: p
        for p in gsf.intensity_sweep(trace, intensities)
    }

    rows = []
    for region, ci in sorted(AZURE_REGION_CI.items(), key=lambda kv: kv[1]):
        point = points[ci]
        best_sku, best_savings = point.best_sku()
        # Cost of deploying one fleet-wide design (GreenSKU-Full) instead.
        full = point.savings_by_sku["GreenSKU-Full"]
        rows.append(
            [
                region,
                ci,
                best_sku,
                f"{best_savings:.1%}",
                f"{full:.1%}",
                f"{best_savings - full:.1%}",
            ]
        )
    print(
        render_table(
            [
                "region",
                "CI kg/kWh",
                "best GreenSKU",
                "best savings",
                "GreenSKU-Full savings",
                "regret of fleet-wide Full",
            ],
            rows,
            title="Per-region GreenSKU recommendation",
        )
    )
    print(
        "\nClean grids favour reuse (embodied dominates); dirty grids favour"
        "\nthe efficient CPU (operational dominates) — Fig. 11's crossover."
    )


if __name__ == "__main__":
    main()
