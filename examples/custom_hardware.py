"""Bring your own hardware: price a custom SKU end to end.

Walks the downstream-user path the library is built for:

1. define a new component from first principles (the Section II
   methodology: die area -> embodied carbon),
2. compose a custom SKU, save it as JSON, reload it,
3. price it against the paper's designs,
4. evaluate it through the full GSF pipeline on a workload trace.

Run with ``python examples/custom_hardware.py``.
"""

import tempfile

from repro import CarbonModel, Gsf, ServerSKU, generate_trace
from repro.allocation.traces import TraceParams
from repro.core.tables import render_table
from repro.hardware import catalog, load_sku, save_sku
from repro.hardware.components import Category, CpuSpec
from repro.hardware.embodied import cpu_embodied_kg
from repro.hardware.sku import baseline_gen3, greensku_full, _platform_parts


def design_cpu() -> CpuSpec:
    """A hypothetical 192-core efficiency CPU, priced bottom-up."""
    embodied = cpu_embodied_kg(
        compute_die_cm2=9.5, compute_node="N3", io_die_cm2=4.0
    )
    return CpuSpec(
        name="Custom-192c",
        category=Category.CPU,
        tdp_watts=420.0,
        embodied_kg=embodied,
        loss_factor=0.05,
        cores=192,
        max_freq_ghz=2.6,
        llc_mib=384,
        perf_per_core=0.82,  # efficiency cores: slower than Genoa
        mem_bw_gbps=576.0,
    )


def design_sku() -> ServerSKU:
    """The custom CPU with reused memory and SSDs, GreenSKU-style."""
    return ServerSKU.build(
        "Custom-192c-Green",
        [
            (design_cpu(), 1),
            (catalog.DDR5_96GB, 12),
            (catalog.DDR4_32GB_REUSED, 12),
            (catalog.CXL_CONTROLLER, 3),
            (catalog.SSD_4TB_NEW, 2),
            (catalog.SSD_1TB_REUSED, 12),
        ]
        + _platform_parts(),
    )


def main() -> None:
    sku = design_sku()
    # Round-trip through JSON: the shareable design document.
    with tempfile.NamedTemporaryFile(
        suffix=".json", mode="w", delete=False
    ) as handle:
        path = handle.name
    save_sku(sku, path)
    sku = load_sku(path)
    print(f"loaded {sku.name} from {path}: {sku.cores} cores, "
          f"{sku.memory_gb} GB ({sku.cxl_memory_gb} via CXL), "
          f"{sku.storage_tb:g} TB\n")

    model = CarbonModel()
    rows = []
    for candidate in (baseline_gen3(), greensku_full(), sku):
        a = model.assess(candidate)
        rows.append(
            [
                candidate.name,
                candidate.cores,
                a.server.power_watts,
                a.servers_per_rack,
                a.total_per_core,
            ]
        )
    print(
        render_table(
            ["SKU", "cores", "P_s (W)", "servers/rack", "kgCO2e/core"],
            rows,
            title="Custom design vs the paper's SKUs",
        )
    )

    # Note what changed structurally: a 420 W x 192-core server can turn
    # the rack power-bound where the paper's SKUs are space-bound.
    assessment = model.assess(sku)
    constraint = "space" if assessment.space_bound else "power"
    print(f"\n{sku.name} is {constraint}-bound in the rack "
          f"({assessment.servers_per_rack} servers)")

    gsf = Gsf()
    trace = generate_trace(
        seed=6, params=TraceParams(duration_days=7, mean_concurrent_vms=300)
    )
    evaluation = gsf.evaluate(sku, trace)
    print(
        f"GSF on {trace.name}: cluster savings "
        f"{evaluation.cluster_savings:.1%}, net DC savings "
        f"{gsf.dc_savings(evaluation):.1%} "
        f"(adopted core-hours {evaluation.adopted_core_hour_share:.0%})"
    )
    print(
        "\nCaveat: adoption uses the profiled applications' *Bergamo* "
        "speeds;\nfor a real design, measure per-core speeds and update "
        "the app profiles."
    )


if __name__ == "__main__":
    main()
