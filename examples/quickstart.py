"""Quickstart: price a GreenSKU, reproduce the savings table, run GSF.

Walks the three layers of the library in ~40 lines:

1. the carbon model prices a single SKU to CO2e-per-core,
2. the savings table reproduces the paper's Table VIII,
3. the full GSF pipeline estimates cluster-level savings on a synthetic
   Azure-like VM trace.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    CarbonModel,
    Gsf,
    baseline_gen3,
    generate_trace,
    greensku_full,
    paper_savings_table,
)
from repro.carbon import render_savings_table


def main() -> None:
    # 1. Price one SKU.
    model = CarbonModel()
    baseline = model.assess(baseline_gen3())
    green = model.assess(greensku_full())
    print("CO2e per core over a 6-year lifetime (kgCO2e):")
    print(
        f"  {baseline.sku_name:20s} {baseline.total_per_core:6.1f} "
        f"(operational {baseline.operational_per_core:.1f} + "
        f"embodied {baseline.embodied_per_core:.1f})"
    )
    print(
        f"  {green.sku_name:20s} {green.total_per_core:6.1f} "
        f"(operational {green.operational_per_core:.1f} + "
        f"embodied {green.embodied_per_core:.1f})"
    )
    print()

    # 2. The paper's headline savings table (Table VIII).
    print(render_savings_table(paper_savings_table(), "Per-core savings"))
    print()

    # 3. End-to-end: how much does a *cluster* of GreenSKUs save once
    #    adoption, VM scaling, packing, and growth buffers are accounted?
    gsf = Gsf()
    trace = generate_trace(seed=1)
    evaluation = gsf.evaluate(greensku_full(), trace)
    print(
        f"GSF on trace {trace.name} ({len(trace.vms)} VMs): "
        f"cluster savings {evaluation.cluster_savings:.1%}, "
        f"net data-center savings {gsf.dc_savings(evaluation):.1%}"
    )
    print(
        f"  cluster: {evaluation.sizing.baseline_only_servers} baseline-only"
        f" -> {evaluation.sizing.mixed_baseline_servers} baseline + "
        f"{evaluation.sizing.mixed_green_servers} GreenSKU "
        f"(+{evaluation.buffer.baseline_buffer_servers} buffer)"
    )


if __name__ == "__main__":
    main()
