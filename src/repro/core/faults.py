"""Deterministic fault injection for the resilience layer.

Production failure modes — a worker process dying mid-task, a store file
rotting on disk, a task stalling — are rare and nondeterministic, which
makes "does the suite survive them?" untestable by waiting.  This module
makes them *injectable and reproducible*: a :class:`FaultPlan` decides,
as a pure function of ``(task index, attempt)`` plus a seed, whether a
given execution should be killed, delayed, or left alone, so a
fault-injected run is exactly as deterministic as a clean one and the
differential tests can assert bit-identical outcomes.

Three fault families:

- **worker kills** — by explicit task index or with a seeded
  probability, either as a raised :class:`InjectedFault` (``exception``
  mode, survives any executor) or as a hard ``os._exit`` (``hard`` mode,
  killing the worker process itself — only meaningful under a process
  pool, where the parent sees ``BrokenProcessPool``).
- **latency** — a fixed sleep before the task body, for exercising
  per-task timeouts.
- **file corruption** — :func:`corrupt_file` deterministically truncates
  or garbles an artifact on disk, for exercising the store quarantine.

Faults only fire where the resilience layer explicitly consults the
plan; a plan is inert data and never installs itself globally.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from .errors import ConfigError, SimulationError

#: Exit code used by hard kills, so a dead worker is attributable in CI logs.
HARD_KILL_EXIT_CODE = 86

#: Recognised kill modes.
KILL_MODES = ("exception", "hard")


class InjectedFault(SimulationError):
    """A deliberately injected task failure (exception-mode kill)."""


def _unit_draw(seed: int, index: int, attempt: int, salt: str) -> float:
    """A deterministic uniform draw in [0, 1) for one (task, attempt)."""
    digest = hashlib.sha256(
        f"{salt}:{seed}:{index}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of injected faults.

    Attributes:
        kill_indices: Task indices whose first ``kill_attempts``
            executions are killed unconditionally.
        kill_probability: Chance of killing any (task, attempt) with
            ``attempt < kill_attempts``, drawn deterministically from
            ``seed``.
        kill_attempts: How many leading attempts of a selected task are
            killed; retries past this succeed, so a bounded retry policy
            always recovers.
        kill_mode: ``"exception"`` raises :class:`InjectedFault` inside
            the task; ``"hard"`` terminates the worker process with
            ``os._exit`` (process pools only).
        latency_s: Sleep injected before each selected task body.
        latency_indices: Task indices receiving the latency (``None``
            means every task).
        seed: Seed of the deterministic probability draws.
    """

    kill_indices: Tuple[int, ...] = ()
    kill_probability: float = 0.0
    kill_attempts: int = 1
    kill_mode: str = "exception"
    latency_s: float = 0.0
    latency_indices: Optional[Tuple[int, ...]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kill_mode not in KILL_MODES:
            raise ConfigError(
                f"kill_mode must be one of {KILL_MODES}, "
                f"got {self.kill_mode!r}"
            )
        if not 0.0 <= self.kill_probability <= 1.0:
            raise ConfigError(
                f"kill_probability must be in [0, 1], "
                f"got {self.kill_probability}"
            )
        if self.kill_attempts < 0:
            raise ConfigError("kill_attempts must be >= 0")
        if self.latency_s < 0.0:
            raise ConfigError("latency_s must be >= 0")

    # -- decisions (pure) ------------------------------------------------------

    def should_kill(self, index: int, attempt: int) -> bool:
        """Whether execution ``attempt`` of task ``index`` is killed."""
        if attempt >= self.kill_attempts:
            return False
        if index in self.kill_indices:
            return True
        if self.kill_probability > 0.0:
            draw = _unit_draw(self.seed, index, attempt, "kill")
            return draw < self.kill_probability
        return False

    def should_delay(self, index: int) -> bool:
        """Whether task ``index`` receives the injected latency."""
        if self.latency_s <= 0.0:
            return False
        return self.latency_indices is None or index in self.latency_indices

    # -- application (in the executing process) --------------------------------

    def apply(self, index: int, attempt: int) -> None:
        """Fire this plan's faults for one task execution, if any.

        Called by the resilience layer at the top of the task body, in
        whichever process runs the task.  Hard kills fall back to
        exception mode when the task runs in the parent process (a
        serial run must not kill the interpreter driving it).
        """
        if self.should_delay(index):
            time.sleep(self.latency_s)
        if self.should_kill(index, attempt):
            if self.kill_mode == "hard" and not _in_parent_process():
                os._exit(HARD_KILL_EXIT_CODE)
            raise InjectedFault(
                f"injected kill: task {index}, attempt {attempt}"
            )


#: PID of the process that imported this module first (the experiment
#: driver); worker processes inherit the value and compare differently.
_PARENT_PID = os.getpid()


def _in_parent_process() -> bool:
    return os.getpid() == _PARENT_PID


# -- file corruption -----------------------------------------------------------


def corrupt_file(path, mode: str = "truncate", seed: int = 0) -> None:
    """Deterministically damage a file on disk.

    ``truncate`` keeps the first half of the file (a torn write);
    ``garble`` XOR-flips a seeded selection of bytes in place (bit rot
    that leaves the length intact — the case only content verification
    catches).  Raises :class:`ConfigError` for unknown modes.
    """
    data = bytearray(Path(path).read_bytes())
    if mode == "truncate":
        damaged = bytes(data[: len(data) // 2])
    elif mode == "garble":
        if not data:
            damaged = b""
        else:
            mask = hashlib.sha256(f"garble:{seed}".encode()).digest()
            step = max(1, len(data) // 64)
            for offset, i in enumerate(range(0, len(data), step)):
                data[i] ^= mask[offset % len(mask)] | 0x01
            damaged = bytes(data)
    else:
        raise ConfigError(
            f"unknown corruption mode {mode!r}; "
            "choose 'truncate' or 'garble'"
        )
    with open(path, "wb") as fh:
        fh.write(damaged)


# -- CLI spec parsing ----------------------------------------------------------


def parse_fault_spec(spec: str) -> FaultPlan:
    """Build a :class:`FaultPlan` from a CLI spec string.

    The spec is comma/space-separated ``key=value`` pairs::

        kill=0;3;7 p=0.1 attempts=2 mode=hard latency=0.01 seed=7

    ``kill`` takes semicolon-separated task indices.  Unknown keys and
    malformed values raise :class:`ConfigError`.
    """
    kwargs: dict = {}
    tokens = [t for chunk in spec.split(",") for t in chunk.split()]
    for token in tokens:
        if not token:
            continue
        if "=" not in token:
            raise ConfigError(
                f"fault spec token {token!r} is not key=value"
            )
        key, value = token.split("=", 1)
        try:
            if key == "kill":
                kwargs["kill_indices"] = tuple(
                    int(i) for i in value.split(";") if i
                )
            elif key in ("p", "kill_probability"):
                kwargs["kill_probability"] = float(value)
            elif key in ("attempts", "kill_attempts"):
                kwargs["kill_attempts"] = int(value)
            elif key in ("mode", "kill_mode"):
                kwargs["kill_mode"] = value
            elif key in ("latency", "latency_s"):
                kwargs["latency_s"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ConfigError(f"unknown fault spec key {key!r}")
        except ValueError:
            raise ConfigError(
                f"fault spec {key}={value!r}: bad value"
            ) from None
    return FaultPlan(**kwargs)


__all__ = [
    "HARD_KILL_EXIT_CODE",
    "KILL_MODES",
    "FaultPlan",
    "InjectedFault",
    "corrupt_file",
    "parse_fault_spec",
]
