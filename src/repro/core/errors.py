"""Exception hierarchy for the GreenSKU/GSF reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching unrelated Python
errors.  Subclasses signal which layer failed: configuration validation,
carbon modeling, simulation, or capacity search.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An input (SKU design, datacenter parameter, trace, ...) is invalid."""


class UnitError(ConfigError):
    """A quantity was supplied in the wrong unit or with a nonsensical value."""


class CarbonModelError(ReproError):
    """The carbon model could not evaluate a SKU (e.g. it fits no rack)."""


class SimulationError(ReproError):
    """A discrete-event or allocation simulation reached an invalid state."""


class CapacityError(SimulationError):
    """A cluster cannot host the requested workload (VM rejected)."""


class SizingError(ReproError):
    """The cluster-sizing search failed to converge to a feasible cluster."""
