"""Unit helpers and conversions used throughout the carbon model.

The carbon model mixes power (watts), energy (kilowatt-hours), time
(hours/years) and carbon mass (kilograms of CO2-equivalent).  Bugs in carbon
accounting are very often unit bugs, so all conversions live here, are named
explicitly, and are validated.

Conventions used across the library:

- power:   watts (W)
- energy:  kilowatt-hours (kWh)
- time:    hours (h) for durations, years for lifetimes
- carbon:  kilograms of CO2-equivalent (kgCO2e)
- carbon intensity: kgCO2e per kWh
- memory:  gibibyte-like "GB" as the paper uses it (capacity bookkeeping)
- storage: terabytes (TB)
"""

from __future__ import annotations

from .errors import UnitError

#: Hours in one year, matching the paper's 6-year lifetime of 52,560 hours.
HOURS_PER_YEAR = 8760.0

#: Watts per kilowatt.
WATTS_PER_KW = 1000.0


def years_to_hours(years: float) -> float:
    """Convert a duration in years to hours (8,760 h/year).

    >>> years_to_hours(6)
    52560.0
    """
    if years < 0:
        raise UnitError(f"duration must be non-negative, got {years} years")
    return years * HOURS_PER_YEAR


def hours_to_years(hours: float) -> float:
    """Convert a duration in hours to years."""
    if hours < 0:
        raise UnitError(f"duration must be non-negative, got {hours} hours")
    return hours / HOURS_PER_YEAR


def watts_to_kw(watts: float) -> float:
    """Convert power in watts to kilowatts."""
    return watts / WATTS_PER_KW


def energy_kwh(power_watts: float, duration_hours: float) -> float:
    """Energy (kWh) drawn by a constant ``power_watts`` load over a duration.

    >>> energy_kwh(1000, 10)
    10.0
    """
    if power_watts < 0:
        raise UnitError(f"power must be non-negative, got {power_watts} W")
    if duration_hours < 0:
        raise UnitError(
            f"duration must be non-negative, got {duration_hours} h"
        )
    return watts_to_kw(power_watts) * duration_hours


def operational_carbon_kg(
    power_watts: float,
    lifetime_years: float,
    carbon_intensity_kg_per_kwh: float,
) -> float:
    """Operational kgCO2e of a constant load over a lifetime.

    This is the paper's ``E_op = P * L * CI`` with explicit units: the
    power is in watts, the lifetime in years, and the carbon intensity in
    kgCO2e/kWh.

    >>> round(operational_carbon_kg(6953, 6, 0.1))
    36545
    """
    if carbon_intensity_kg_per_kwh < 0:
        raise UnitError(
            "carbon intensity must be non-negative, got "
            f"{carbon_intensity_kg_per_kwh} kg/kWh"
        )
    kwh = energy_kwh(power_watts, years_to_hours(lifetime_years))
    return kwh * carbon_intensity_kg_per_kwh


def grams_to_kg(grams: float) -> float:
    """Convert grams to kilograms."""
    return grams / 1000.0


def tonnes_to_kg(tonnes: float) -> float:
    """Convert metric tonnes to kilograms."""
    return tonnes * 1000.0


def percent(value: float, total: float) -> float:
    """``value`` as a percentage of ``total``; 0 when ``total`` is 0.

    >>> percent(25, 100)
    25.0
    """
    if total == 0:
        return 0.0
    return 100.0 * value / total


def savings_fraction(baseline: float, candidate: float) -> float:
    """Fractional savings of ``candidate`` relative to ``baseline``.

    Positive values mean the candidate emits less than the baseline.

    >>> savings_fraction(100.0, 72.0)
    0.28
    """
    if baseline == 0:
        raise UnitError("baseline value must be nonzero to compute savings")
    return (baseline - candidate) / baseline
