"""Deterministic, zero-dependency instrumentation for the simulation stack.

Every hot path in the reproduction — the experiment runner, the indexed
placement engine, the sizing searches, the queueing simulator — can
answer "where did the time and work go?" through this module.  Three
primitives:

- **counters** — monotone integers (``alloc.placements``,
  ``engine.bucket_probes``, ``sizing.memo_hits``, ...).
- **timers** — wall-clock accumulators keyed by name, each tracking
  call count, total, min, and max seconds.
- **spans** — a hierarchical trace of named phases (one per experiment,
  per replay batch), nested by ``with`` discipline.

Design rules, enforced by the test suite:

1. **Off by default, near-zero overhead.**  Instrumentation activates
   only inside :func:`capture` (or the CLI's ``--telemetry`` flag).  Hot
   loops either check ``telemetry.active() is None`` once per *batch* or
   accumulate plain local integers and flush once at the end of a replay
   — never per-event calls through this module.
2. **Provably no effect on results.**  The layer never touches an RNG
   stream, never mutates simulation state, and records wall time from an
   injectable clock; differential tests assert bit-identical outcomes
   and identical RNG draw sequences with telemetry on vs. off.
3. **Deterministic structure.**  For a fixed workload the *counters* and
   the span/timer *shape* (names, counts, nesting) are identical across
   runs; only the elapsed-seconds values vary.

A captured run serializes to a **manifest**: a plain-JSON document
(schema ``repro-telemetry/1``) that ``python -m repro stats`` validates
and pretty-prints, and that the benchmark harness reads instead of
ad-hoc print statements.  See ``docs/observability.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from .errors import ConfigError
from .ioutil import atomic_write_text

#: Manifest schema identifier; bump on breaking manifest changes.
SCHEMA = "repro-telemetry/1"


class TimerStat:
    """Accumulated wall-clock statistics for one named timer."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def record(self, elapsed_s: float) -> None:
        if elapsed_s < 0.0:
            elapsed_s = 0.0  # clock went backwards; clamp, never raise
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    def merge(self, count: int, total_s: float, min_s: float, max_s: float) -> None:
        if count <= 0:
            return
        self.count += count
        self.total_s += total_s
        if min_s < self.min_s:
            self.min_s = min_s
        if max_s > self.max_s:
            self.max_s = max_s

    def as_tuple(self) -> Tuple[int, float, float, float]:
        return (self.count, self.total_s, self.min_s, self.max_s)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class SpanNode:
    """One node of the hierarchical phase trace."""

    __slots__ = ("name", "elapsed_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed_s = 0.0
        self.children: List["SpanNode"] = []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "children": [child.to_dict() for child in self.children],
        }


class _NullContext:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL = _NullContext()


class Telemetry:
    """One capture's counters, timers, and span tree.

    Instances are independent; the module-level :func:`capture` context
    installs one as the process-wide active sink.  ``clock`` is
    injectable so tests can assert exact timer values deterministically.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, TimerStat] = {}
        self.failures: List[Dict[str, Any]] = []
        self._root = SpanNode("root")
        self._stack: List[SpanNode] = [self._root]
        self._started_at = clock()

    # -- counters -------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def count_many(self, deltas: Mapping[str, int]) -> None:
        """Fold a batch of counter deltas in one call (the hot-path flush)."""
        counters = self.counters
        for name, n in deltas.items():
            counters[name] = counters.get(name, 0) + n

    # -- timers ---------------------------------------------------------------

    def record_timer(self, name: str, elapsed_s: float) -> None:
        """Fold one externally measured duration into timer ``name``."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.record(elapsed_s)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.record_timer(name, self._clock() - start)

    # -- spans ----------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[SpanNode]:
        """Open a named phase nested under the current one."""
        node = SpanNode(name)
        self._stack[-1].children.append(node)
        self._stack.append(node)
        start = self._clock()
        try:
            yield node
        finally:
            elapsed = self._clock() - start
            node.elapsed_s = elapsed if elapsed > 0.0 else 0.0
            # Pop back to this node's parent even if an inner span
            # leaked (an unexited child cannot corrupt the stack).
            while self._stack and self._stack[-1] is not node:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
            if not self._stack:
                self._stack.append(self._root)

    @property
    def span_depth(self) -> int:
        """Current nesting depth (0 at top level); test hook."""
        return len(self._stack) - 1

    # -- failures -------------------------------------------------------------

    def record_failure(self, failure: Mapping[str, Any]) -> None:
        """Append one structured degraded-result record (a plain dict).

        The resilience layer reports tasks that exhausted their retry
        budget here, so a manifest shows *what* degraded, not just that
        something did (see ``repro.core.resilience.TaskFailure``).
        """
        self.failures.append(dict(failure))

    # -- worker fold-in -------------------------------------------------------

    def drain(self) -> Tuple[Dict[str, int], Dict[str, Tuple[int, float, float, float]]]:
        """Counters + timer tuples in picklable form (for worker returns)."""
        return (
            dict(self.counters),
            {name: stat.as_tuple() for name, stat in self.timers.items()},
        )

    def absorb(
        self,
        counters: Mapping[str, int],
        timers: Mapping[str, Tuple[int, float, float, float]],
    ) -> None:
        """Fold another capture's drained state into this one.

        Used by :func:`repro.core.runner.parallel_map` to merge worker-
        process instrumentation back into the parent's manifest.
        """
        self.count_many(counters)
        for name, (count, total_s, min_s, max_s) in timers.items():
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.merge(count, total_s, min_s, max_s)

    # -- manifest -------------------------------------------------------------

    def manifest(
        self,
        command: Optional[str] = None,
        argv: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """The run manifest: a JSON-serializable snapshot of this capture."""
        return {
            "schema": SCHEMA,
            "command": command,
            "argv": list(argv) if argv is not None else None,
            "elapsed_s": max(self._clock() - self._started_at, 0.0),
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: stat.to_dict()
                for name, stat in sorted(self.timers.items())
            },
            "spans": [child.to_dict() for child in self._root.children],
            "failures": [dict(failure) for failure in self.failures],
        }


# -- module-level activation ---------------------------------------------------

_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The currently active sink, or None when telemetry is off.

    Hot call sites bind this once per batch: one global load and an
    ``is None`` check is the entire disabled-path cost.
    """
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def capture(
    clock: Callable[[], float] = time.perf_counter,
) -> Iterator[Telemetry]:
    """Activate a fresh :class:`Telemetry` for the duration of the block.

    Captures nest: an inner capture shadows the outer one and the outer
    resumes untouched when the inner block exits (inner activity is
    *not* folded outward — nesting is for isolation, e.g. the benchmark
    fixture inside an instrumented CLI run).
    """
    global _ACTIVE
    previous = _ACTIVE
    tel = Telemetry(clock=clock)
    _ACTIVE = tel
    try:
        yield tel
    finally:
        _ACTIVE = previous


def count(name: str, n: int = 1) -> None:
    """Count into the active sink; no-op when telemetry is off."""
    tel = _ACTIVE
    if tel is not None:
        tel.count(name, n)


def timer(name: str):
    """A timing context on the active sink; shared no-op when off."""
    tel = _ACTIVE
    if tel is None:
        return _NULL
    return tel.timer(name)


def span(name: str):
    """A span context on the active sink; shared no-op when off."""
    tel = _ACTIVE
    if tel is None:
        return _NULL
    return tel.span(name)


# -- manifest I/O, validation, rendering ---------------------------------------


def load_manifest(path) -> Dict[str, Any]:
    """Read and parse a manifest JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if not isinstance(manifest, dict):
        raise ConfigError(f"{path}: manifest must be a JSON object")
    return manifest


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_span(node: Any, path: str, errors: List[str]) -> None:
    if not isinstance(node, dict):
        errors.append(f"{path}: span must be an object")
        return
    if not isinstance(node.get("name"), str) or not node.get("name"):
        errors.append(f"{path}: span name must be a non-empty string")
    elapsed = node.get("elapsed_s")
    if not _is_number(elapsed) or elapsed < 0:
        errors.append(f"{path}: elapsed_s must be a number >= 0")
    children = node.get("children")
    if not isinstance(children, list):
        errors.append(f"{path}: children must be a list")
        return
    for i, child in enumerate(children):
        _validate_span(child, f"{path}.children[{i}]", errors)


def validate_manifest(manifest: Any) -> List[str]:
    """Validate a manifest against the ``repro-telemetry/1`` schema.

    Returns a list of human-readable problems; empty means valid.  The
    checks are structural (types, non-negativity, min <= max) — the
    hand-rolled equivalent of a JSON-Schema pass, kept dependency-free.
    """
    errors: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest must be a JSON object"]
    if manifest.get("schema") != SCHEMA:
        errors.append(
            f"schema must be {SCHEMA!r}, got {manifest.get('schema')!r}"
        )
    command = manifest.get("command")
    if command is not None and not isinstance(command, str):
        errors.append("command must be a string or null")
    argv = manifest.get("argv")
    if argv is not None and (
        not isinstance(argv, list)
        or any(not isinstance(a, str) for a in argv)
    ):
        errors.append("argv must be a list of strings or null")
    elapsed = manifest.get("elapsed_s")
    if not _is_number(elapsed) or elapsed < 0:
        errors.append("elapsed_s must be a number >= 0")

    counters = manifest.get("counters")
    if not isinstance(counters, dict):
        errors.append("counters must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(name, str) or not name:
                errors.append(f"counters: key {name!r} must be a non-empty string")
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"counters[{name!r}] must be an integer")

    timers = manifest.get("timers")
    if not isinstance(timers, dict):
        errors.append("timers must be an object")
    else:
        for name, stat in timers.items():
            where = f"timers[{name!r}]"
            if not isinstance(stat, dict):
                errors.append(f"{where} must be an object")
                continue
            count_value = stat.get("count")
            if not isinstance(count_value, int) or isinstance(count_value, bool):
                errors.append(f"{where}.count must be an integer")
                continue
            if count_value < 0:
                errors.append(f"{where}.count must be >= 0")
            for key in ("total_s", "min_s", "max_s"):
                if not _is_number(stat.get(key)) or stat.get(key) < 0:
                    errors.append(f"{where}.{key} must be a number >= 0")
            if (
                count_value > 0
                and _is_number(stat.get("min_s"))
                and _is_number(stat.get("max_s"))
                and stat["min_s"] > stat["max_s"]
            ):
                errors.append(f"{where}: min_s must be <= max_s")

    spans = manifest.get("spans")
    if not isinstance(spans, list):
        errors.append("spans must be a list")
    else:
        for i, node in enumerate(spans):
            _validate_span(node, f"spans[{i}]", errors)

    failures = manifest.get("failures")
    if failures is not None:  # optional: absent in pre-resilience manifests
        if not isinstance(failures, list):
            errors.append("failures must be a list")
        else:
            for i, failure in enumerate(failures):
                if not isinstance(failure, dict):
                    errors.append(f"failures[{i}] must be an object")
                    continue
                if not isinstance(failure.get("error_type"), str):
                    errors.append(
                        f"failures[{i}].error_type must be a string"
                    )
                attempts = failure.get("attempts")
                if attempts is not None and (
                    not isinstance(attempts, int)
                    or isinstance(attempts, bool)
                    or attempts < 1
                ):
                    errors.append(
                        f"failures[{i}].attempts must be an integer >= 1"
                    )
    return errors


#: The hit/miss counter families the cache-effectiveness section reports:
#: (label, hit counter, miss counter, extra counters shown when nonzero).
_CACHE_FAMILIES = (
    ("disk cache", "runner.cache_hits", "runner.cache_misses",
     ("runner.cache_evicted", "runner.cache_quarantined")),
    ("results catalog", "catalog.hits", "catalog.misses",
     ("catalog.writes", "catalog.invalidated", "catalog.evicted",
      "catalog.quarantined")),
    ("trace store", "trace.store_hits", "trace.store_misses",
     ("trace.store_quarantined",)),
)


def cache_effectiveness_lines(counters: Mapping[str, int]) -> List[str]:
    """The ``repro stats`` cache-effectiveness section, as rendered lines.

    Derives hit rates for each caching layer (disk cache, results
    catalog, trace store) from the manifest's counters, so catalog
    effectiveness is observable from a saved manifest without rerunning
    anything.  Layers with no activity are omitted; returns no lines at
    all when nothing cached-related ran.
    """
    lines: List[str] = []
    for label, hit_name, miss_name, extras in _CACHE_FAMILIES:
        hits = counters.get(hit_name, 0)
        misses = counters.get(miss_name, 0)
        total = hits + misses
        extra_counts = [
            (name.rsplit(".", 1)[-1], counters.get(name, 0))
            for name in extras
        ]
        if total == 0 and not any(n for _, n in extra_counts):
            continue
        rate = f"{hits / total:.1%}" if total else "n/a"
        detail = "".join(
            f", {short} {n:,}" for short, n in extra_counts if n
        )
        lines.append(
            f"  {label}: {hits:,} hits / {misses:,} misses "
            f"({rate} hit rate{detail})"
        )
    if lines:
        lines.insert(0, "cache effectiveness:")
    return lines


def _render_span(node: Dict[str, Any], indent: int, lines: List[str]) -> None:
    lines.append(
        f"{'  ' * indent}- {node['name']}: {node['elapsed_s']:.3f}s"
    )
    for child in node.get("children", ()):
        _render_span(child, indent + 1, lines)


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Pretty-print a manifest (the ``repro stats`` view)."""
    lines: List[str] = []
    command = manifest.get("command") or "(unknown command)"
    lines.append(
        f"telemetry manifest: {command}  "
        f"[{manifest.get('elapsed_s', 0.0):.3f}s total]"
    )
    argv = manifest.get("argv")
    if argv:
        lines.append(f"  argv: {' '.join(argv)}")

    counters = manifest.get("counters") or {}
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name.ljust(width)}  {counters[name]:>12,}")
    lines.extend(cache_effectiveness_lines(counters))

    timers = manifest.get("timers") or {}
    if timers:
        lines.append("timers:")
        width = max(len(name) for name in timers)
        header = (
            f"  {'name'.ljust(width)}  {'count':>8}  {'total_s':>10}  "
            f"{'mean_ms':>9}  {'min_ms':>9}  {'max_ms':>9}"
        )
        lines.append(header)
        for name in sorted(timers):
            stat = timers[name]
            count_value = stat.get("count", 0)
            total = stat.get("total_s", 0.0)
            mean_ms = (total / count_value * 1000.0) if count_value else 0.0
            lines.append(
                f"  {name.ljust(width)}  {count_value:>8,}  {total:>10.3f}  "
                f"{mean_ms:>9.3f}  {stat.get('min_s', 0.0) * 1000.0:>9.3f}  "
                f"{stat.get('max_s', 0.0) * 1000.0:>9.3f}"
            )

    spans = manifest.get("spans") or []
    if spans:
        lines.append("spans:")
        for node in spans:
            _render_span(node, 1, lines)

    failures = manifest.get("failures") or []
    if failures:
        lines.append(f"failures ({len(failures)} degraded tasks):")
        for failure in failures:
            where = failure.get("key") or f"task {failure.get('index')}"
            lines.append(
                f"  - {where}: {failure.get('error_type', '?')} after "
                f"{failure.get('attempts', '?')} attempts: "
                f"{failure.get('message', '')}"
            )
    if not counters and not timers and not spans and not failures:
        lines.append("  (empty capture)")
    return "\n".join(lines)


def write_manifest(manifest: Dict[str, Any], path) -> None:
    """Write a manifest as stable, human-diffable JSON (atomically).

    The temp-file + rename discipline means a killed run can never
    leave a half-written manifest: readers see the previous complete
    manifest or the new one, nothing in between.
    """
    atomic_write_text(
        path, json.dumps(manifest, indent=2, sort_keys=False) + "\n"
    )


__all__ = [
    "SCHEMA",
    "SpanNode",
    "Telemetry",
    "TimerStat",
    "active",
    "cache_effectiveness_lines",
    "capture",
    "count",
    "enabled",
    "load_manifest",
    "render_manifest",
    "span",
    "timer",
    "validate_manifest",
    "write_manifest",
]
