"""Deterministic random-number streams for reproducible simulations.

Every stochastic component (VM trace generation, queueing simulation,
failure traces) draws from a named stream derived from a single root seed.
Deriving streams by name means adding a new consumer never perturbs the
draws seen by existing consumers, which keeps regression baselines stable.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default root seed used by harnesses when the caller does not supply one.
DEFAULT_SEED = 20240624


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 32-bit child seed from a root seed and a stream name.

    The derivation hashes the name so that streams are statistically
    independent and stable across runs and platforms.

    >>> derive_seed(1, "a") != derive_seed(1, "b")
    True
    >>> derive_seed(1, "a") == derive_seed(1, "a")
    True
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def stream(root_seed: int, name: str) -> np.random.Generator:
    """Return a numpy Generator for the named stream under ``root_seed``."""
    return np.random.default_rng(derive_seed(root_seed, name))


class RngFactory:
    """Factory that hands out named, independent RNG streams.

    Example::

        rngs = RngFactory(seed=7)
        arrivals = rngs.stream("arrivals")
        lifetimes = rngs.stream("lifetimes")
    """

    def __init__(self, seed: int = DEFAULT_SEED):
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """A fresh generator for ``name``; same name -> same sequence."""
        return stream(self.seed, name)

    def child(self, name: str) -> "RngFactory":
        """A derived factory, for nesting (e.g. per-trace sub-streams)."""
        return RngFactory(derive_seed(self.seed, name))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self.seed})"
