"""Shared experiment-execution substrate: parallel map + result caching.

Every cluster-scale experiment (Figs. 9/10/11, the ablation grids)
evaluates many independent configurations — one trace, one placement
policy, one carbon intensity at a time.  This module gives those sweeps a
common execution layer:

- :func:`parallel_map` — a deterministic process-pool map.  Results are
  collected in **input order** regardless of completion order, and each
  task is a pure function of its item, so the output is byte-identical
  to the serial path (``jobs=1``) on any worker count.
- :class:`DiskCache` — an opt-in on-disk result cache keyed by a content
  hash of the work item (trace parameters + seed content, SKU, policy),
  so benchmark reruns skip unchanged work.  Hit/miss counters are kept
  per cache and aggregated globally for the bench harness.
- :func:`cached_map` — the composition the experiments use: look up each
  item, fan out only the misses, store the new results.

Worker-count resolution (first match wins): explicit ``jobs=`` argument,
the ``REPRO_JOBS`` environment variable, a process-wide default set by
the CLI's ``--jobs`` flag, then ``os.cpu_count()``.  Caching resolution
mirrors it with ``REPRO_CACHE`` / ``--cache`` / ``--no-cache`` and
defaults to *disabled* (the cache is opt-in).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from . import telemetry
from .errors import ConfigError
from .ioutil import atomic_writer

T = TypeVar("T")
R = TypeVar("R")

#: Environment knobs (shared with the ``python -m repro`` CLI flags).
JOBS_ENV = "REPRO_JOBS"
CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_default_jobs: Optional[int] = None
_cache_override: Optional[bool] = None


# -- worker-count / cache configuration ---------------------------------------


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (the CLI's ``--jobs``)."""
    global _default_jobs
    if jobs is not None and jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    _default_jobs = jobs


def set_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the disk cache on/off process-wide (``--cache``/``--no-cache``).

    ``None`` restores the default resolution (``REPRO_CACHE`` env, else
    disabled).
    """
    global _cache_override
    _cache_override = enabled


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > env > CLI default > cpu count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        elif _default_jobs is not None:
            jobs = _default_jobs
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    return jobs


def cache_enabled() -> bool:
    """Whether the opt-in disk cache is currently enabled."""
    if _cache_override is not None:
        return _cache_override
    return os.environ.get(CACHE_ENV, "0") not in ("", "0", "false", "no")


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


# -- content hashing -----------------------------------------------------------


def content_key(*parts: object) -> str:
    """A stable content hash over the ``repr`` of the given parts.

    The experiments key their caches on frozen dataclasses (TraceParams,
    VmRequest, ServerSKU) whose ``repr`` is a deterministic function of
    their field values, plus plain strings/numbers — so the digest
    changes exactly when the work item changes.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


# -- statistics ----------------------------------------------------------------


@dataclass
class RunnerStats:
    """Aggregated execution counters, surfaced by the bench harness."""

    tasks: int = 0
    parallel_tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def merge(self, other: "RunnerStats") -> None:
        self.tasks += other.tasks
        self.parallel_tasks += other.parallel_tasks
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses

    def summary(self) -> str:
        return (
            f"runner: {self.tasks} tasks ({self.parallel_tasks} in "
            f"worker processes), disk cache {self.cache_hits} hits / "
            f"{self.cache_misses} misses"
        )


_GLOBAL_STATS = RunnerStats()


def runner_stats() -> RunnerStats:
    """The process-wide counters (reset with :func:`reset_runner_stats`)."""
    return _GLOBAL_STATS


def reset_runner_stats() -> RunnerStats:
    global _GLOBAL_STATS
    _GLOBAL_STATS = RunnerStats()
    return _GLOBAL_STATS


# -- deterministic parallel map ------------------------------------------------


class _StatsTrackedTask:
    """Picklable wrapper carrying per-task instrumentation back to the parent.

    Each worker snapshots its process-local ``sizing_stats()`` counters
    around the task and returns ``(result, (simulate_delta, memo_delta),
    drained_telemetry)``.  Sizing counters travel as deltas — not
    absolute values — because fork-started workers inherit a copy of the
    parent's counters, and one worker process runs many tasks.  The
    parent folds the deltas into its own global stats so ``--jobs > 1``
    runs report true simulate/memo-hit counts.

    Telemetry instead runs each task under a *fresh* capture (shadowing
    whatever the worker inherited via fork), so the drained counters and
    timers are exactly this task's activity and merge associatively into
    the parent's manifest.  Whether to capture is decided in the parent
    at submit time, so workers never need the parent's sink.
    """

    def __init__(self, fn: Callable[[T], R]):
        self._fn = fn
        self._telemetry = telemetry.enabled()

    def __call__(self, item: T):
        from ..gsf.sizing import sizing_stats  # lazy: avoids core->gsf cycle

        stats = sizing_stats()
        calls_before = stats.simulate_calls
        hits_before = stats.memo_hits
        drained = None
        if self._telemetry:
            with telemetry.capture() as tel:
                with tel.timer("runner.task"):
                    result = self._fn(item)
            drained = tel.drain()
        else:
            result = self._fn(item)
        stats = sizing_stats()
        return result, (
            stats.simulate_calls - calls_before,
            stats.memo_hits - hits_before,
        ), drained


def _fold_worker_stats(deltas: Tuple[int, int]) -> None:
    """Fold one worker task's sizing-counter deltas into this process."""
    simulate_delta, memo_delta = deltas
    if simulate_delta or memo_delta:
        from ..gsf.sizing import sizing_stats  # lazy: avoids core->gsf cycle

        stats = sizing_stats()
        stats.simulate_calls += simulate_delta
        stats.memo_hits += memo_delta


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally on a process pool.

    Results always come back in input order (``ProcessPoolExecutor.map``
    preserves it), so a pure ``fn`` makes the output byte-identical to
    the serial path regardless of worker count or completion order.
    ``fn`` and the items must be picklable when ``jobs > 1``.

    Sizing-probe counters (``repro.gsf.sizing.sizing_stats``) incurred
    inside worker processes are aggregated back into this process's
    counters, so hit/miss reporting matches the serial path.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    _GLOBAL_STATS.tasks += len(items)
    tel = telemetry.active()
    if tel is not None:
        tel.count("runner.tasks", len(items))
    if jobs <= 1 or len(items) <= 1:
        if tel is None:
            return [fn(item) for item in items]
        results = []
        for item in items:
            with tel.timer("runner.task"):
                results.append(fn(item))
        return results
    workers = min(jobs, len(items))
    _GLOBAL_STATS.parallel_tasks += len(items)
    if tel is not None:
        tel.count("runner.parallel_tasks", len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        tracked = list(pool.map(_StatsTrackedTask(fn), items))
    results: List[R] = []
    simulate_delta = memo_delta = 0
    for result, (calls, hits), drained in tracked:
        results.append(result)
        simulate_delta += calls
        memo_delta += hits
        if tel is not None and drained is not None:
            tel.absorb(*drained)
    _fold_worker_stats((simulate_delta, memo_delta))
    return results


# -- on-disk result cache ------------------------------------------------------


#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISSING = object()


@dataclass
class DiskCache:
    """Content-addressed pickle cache for experiment results.

    Entries live one-per-file under ``directory`` named by their content
    key, written atomically (per-PID temp file + rename) so concurrent
    writers never tear an entry.  An *absent* entry is a plain miss; an
    entry that exists but cannot be unpickled is **quarantined** — moved
    to ``<directory>/quarantine/`` and counted — then reported as a
    miss, so corruption leaves evidence instead of being silently
    overwritten.
    """

    directory: Path = field(default_factory=default_cache_dir)
    hits: int = 0
    misses: int = 0
    quarantined: int = 0
    evicted: int = 0

    def _path(self, key: str) -> Path:
        return Path(self.directory) / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        quarantine_dir = Path(self.directory) / "quarantine"
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            path.replace(quarantine_dir / f"{path.name}.quarantined")
        except OSError:
            return  # a concurrent reader already moved it
        self.quarantined += 1
        telemetry.count("runner.cache_quarantined")

    def get(self, key: str) -> object:
        """Return the cached value or the :data:`MISSING` sentinel."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            pass
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ValueError):
            self._quarantine(path)
        else:
            self.hits += 1
            _GLOBAL_STATS.cache_hits += 1
            telemetry.count("runner.cache_hits")
            return value
        self.misses += 1
        _GLOBAL_STATS.cache_misses += 1
        telemetry.count("runner.cache_misses")
        return MISSING

    def put(self, key: str, value: object) -> None:
        """Write one entry atomically (per-PID tmp file + rename)."""
        with atomic_writer(self._path(key)) as tmp:
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh)

    def evict(self, keys: Sequence[str]) -> int:
        """Delete the entries for ``keys``; return how many existed.

        Used by catalog/journal garbage collection to drop results whose
        provenance closure no longer matches any current input.  Absent
        entries are ignored (eviction is idempotent).
        """
        evicted = 0
        for key in keys:
            try:
                self._path(key).unlink()
            except FileNotFoundError:
                continue
            evicted += 1
        if evicted:
            self.evicted += evicted
            telemetry.count("runner.cache_evicted", evicted)
        return evicted


def cached_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    key_fn: Callable[[T], str],
    jobs: Optional[int] = None,
    cache: Optional[DiskCache] = None,
) -> List[R]:
    """:func:`parallel_map` with an optional content-addressed cache.

    When ``cache`` is None the cache is consulted only if the opt-in
    switch (:func:`cache_enabled`) is on.  Cached items are returned
    directly; only the misses fan out to workers.  The result list is in
    input order either way, so cached and uncached runs are identical.

    When a process-wide resilience policy is active (the CLI's
    ``--resume`` / ``--retries`` / ``--task-timeout`` / ``--faults``
    flags), execution routes through
    :func:`repro.core.resilience.resilient_map` instead: checkpoint
    journal first, then the cache, then retried execution of the misses
    — same ordering and bit-identical results on success.
    """
    items = list(items)
    if cache is None:
        cache = DiskCache() if cache_enabled() else None
    from . import resilience  # lazy: resilience builds on this module

    if resilience.active_policy() is not None:
        return resilience.resilient_map(
            fn, items, key_fn=key_fn, jobs=jobs, cache=cache
        )
    if cache is None:
        from . import provenance  # lazy: provenance builds on this module

        plain = parallel_map(fn, items, jobs=jobs)
        if provenance.active_log() is not None:
            for item, value in zip(items, plain):
                provenance.record_task(key_fn(item), value)
        return plain

    keys = [key_fn(item) for item in items]
    results: List[object] = [cache.get(key) for key in keys]
    missing_idx = [
        i for i, value in enumerate(results) if value is MISSING
    ]
    fresh = parallel_map(fn, [items[i] for i in missing_idx], jobs=jobs)
    for i, value in zip(missing_idx, fresh):
        cache.put(keys[i], value)
        results[i] = value
    from . import provenance  # lazy: provenance builds on this module

    if provenance.active_log() is not None:
        for key, value in zip(keys, results):
            provenance.record_task(key, value)
    return results  # type: ignore[return-value]


__all__ = [
    "DEFAULT_CACHE_DIR",
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "JOBS_ENV",
    "MISSING",
    "DiskCache",
    "RunnerStats",
    "cache_enabled",
    "cached_map",
    "content_key",
    "default_cache_dir",
    "parallel_map",
    "reset_runner_stats",
    "resolve_jobs",
    "runner_stats",
    "set_cache_enabled",
    "set_default_jobs",
]
