"""Plain-text table rendering for experiment harness output.

The benchmark harnesses print the same rows the paper's tables report.  This
module renders lists of rows as aligned monospace tables without pulling in a
third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, float_fmt: str = "{:.2f}") -> str:
    """Render a single cell: floats via ``float_fmt``, None as ``-``."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    str_rows: List[List[str]] = [
        [format_cell(cell, float_fmt) for cell in row] for row in rows
    ]
    header_row = [str(h) for h in headers]
    widths = [len(h) for h in header_row]
    for row in str_rows:
        if len(row) != len(header_row):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header_row)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_row))
    lines.append(separator)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_csv(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> str:
    """Render rows as simple CSV (no quoting; callers avoid commas in cells)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(format_cell(c, "{:.6g}") for c in row))
    return "\n".join(lines)
