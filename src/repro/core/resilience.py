"""Fault-tolerant execution: checkpoint journals, retries, degradation.

PRs 1–4 made the suite experiments fast (parallel, memoized, columnar)
but brittle: one dead worker, one corrupt store entry, or one OOM'd
seed threw away a whole 35-trace run.  This layer makes partial failure
a first-class outcome:

- :class:`CheckpointJournal` — a content-hash-keyed on-disk journal of
  per-task results (the same hashing scheme as the trace store and the
  PR 1 disk cache).  A rerun against the same journal — the CLI's
  ``--resume`` — loads every completed task and executes only the rest;
  because every task is a pure function of its item, the resumed suite
  is bit-identical to an uninterrupted one.
- :class:`RetryPolicy` — bounded retry with exponential backoff and an
  optional per-task timeout.  Task exceptions and timeouts consume
  attempts; worker deaths (``BrokenProcessPool``) cannot be attributed,
  so in-flight tasks requeue without being charged (bounded, so a
  persistent worker-killer still degrades) and the pool is recycled so
  one bad task cannot take the suite down.
- **graceful degradation** — a task that exhausts its attempts becomes
  a structured :class:`TaskFailure`, recorded in the journal and in the
  telemetry manifest.  With ``on_failure="raise"`` (the default) the
  suite aborts — after checkpointing every survivor, so a rerun
  resumes; with ``on_failure="record"`` (the CLI's ``--keep-going``)
  the failure is returned *in place*, so the result list always has
  one entry per input and callers can never silently misalign.
  :func:`drop_failures` makes computing over the survivors an explicit
  decision.
- :func:`resilient_map` — the composition: journal lookups, disk-cache
  lookups, retried parallel execution of the misses, checkpoint after
  every completion.  ``repro.core.runner.cached_map`` routes through it
  automatically whenever a policy is active (the CLI's ``--resume`` /
  ``--retries`` / ``--task-timeout`` / ``--faults`` flags), so every
  suite experiment inherits resilience without code changes.

Telemetry: counters ``resilience.tasks`` / ``.resumed`` /
``.checkpointed`` / ``.retries`` / ``.timeouts`` / ``.failures`` /
``.degraded_dropped`` / ``.pool_restarts`` / ``.journal_quarantined``
and a ``resilience.map`` span per fan-out.  Fault injection (``repro.core.faults``) hooks in here
and nowhere else.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from . import runner, telemetry
from .errors import ConfigError, SimulationError
from .faults import FaultPlan
from .ioutil import atomic_write_text, atomic_writer

T = TypeVar("T")
R = TypeVar("R")

#: Journal metadata schema; bump on breaking layout changes.
JOURNAL_SCHEMA = "repro-journal/1"

#: Default journal location, next to the PR 1 result cache.
JOURNAL_DIRNAME = "journal"


def default_journal_dir() -> Path:
    """``<cache dir>/journal`` — stable across runs, so ``--resume`` works."""
    return runner.default_cache_dir() / JOURNAL_DIRNAME


# -- retry policy --------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and per-task timeout.

    A task gets ``max_retries + 1`` attempts.  Attempt ``k``'s failure
    is followed by a ``backoff_base_s * backoff_factor**k`` delay
    (capped at ``max_backoff_s``) before the retry.  ``timeout_s`` (when
    set) bounds each *attempt's* wall clock in parallel runs, measured
    from when the attempt starts executing — the scheduler never submits
    more tasks than there are workers, so queueing behind busy workers
    does not burn a task's budget.  A timed out attempt counts as a
    failure and the worker pool is recycled to reclaim the stuck worker.
    ``sleep`` is injectable so tests can assert backoff schedules
    without waiting; parallel runs defer resubmission instead of
    blocking the scheduler and only call ``sleep`` when the backoff
    leaves them otherwise idle.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    timeout_s: Optional[float] = None
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be > 0")

    @property
    def attempts(self) -> int:
        """Total executions allowed per task."""
        return self.max_retries + 1

    def backoff_s(self, failed_attempt: int) -> float:
        """The sleep after attempt ``failed_attempt`` (0-based) fails."""
        delay = self.backoff_base_s * self.backoff_factor**failed_attempt
        return min(delay, self.max_backoff_s)


# -- structured failure record -------------------------------------------------


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its attempts (the degraded-result record)."""

    index: int
    key: Optional[str]
    attempts: int
    error_type: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, as stored in journals and manifests."""
        return {
            "index": self.index,
            "key": self.key,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskFailure":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(data["index"]),
            key=data.get("key"),
            attempts=int(data["attempts"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
        )


# -- checkpoint journal --------------------------------------------------------


class CheckpointJournal:
    """Content-keyed on-disk journal of completed task results.

    Entries are one pickle per task, named by the task's content key
    (``runner.content_key`` over the work item — the same scheme the
    trace store and disk cache use), written atomically.  A sidecar
    ``journal.json`` records the schema and any :class:`TaskFailure`\\ s
    so a resumed run knows what degraded previously.  Corrupt entries
    are quarantined under ``<directory>/quarantine/`` — never silently
    rewritten in place — and count as misses.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(
            directory if directory is not None else default_journal_dir()
        )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0

    # -- paths -----------------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        """Where the pickled result for ``key`` lives."""
        return self.directory / f"{key}.pkl"

    @property
    def meta_path(self) -> Path:
        """The ``journal.json`` sidecar (schema + recorded failures)."""
        return self.directory / "journal.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.directory / "quarantine"

    # -- entries ---------------------------------------------------------------

    def get(self, key: str) -> object:
        """The journaled result for ``key``, or ``runner.MISSING``.

        An unreadable entry is quarantined (moved aside with its
        original name plus a ``.quarantined`` suffix) and reported as a
        miss, so the task reruns and the evidence survives.
        """
        path = self.entry_path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return runner.MISSING
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ValueError):
            self._quarantine(path)
            self.misses += 1
            return runner.MISSING
        self.hits += 1
        return value

    def put(self, key: str, value: object) -> None:
        """Checkpoint one completed task atomically."""
        with atomic_writer(self.entry_path(key)) as tmp:
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh)
        self.writes += 1
        telemetry.count("resilience.checkpointed")

    def _quarantine(self, path: Path) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / f"{path.name}.quarantined"
        try:
            path.replace(target)
        except OSError:
            return  # a concurrent reader beat us to it; nothing to move
        self.quarantined += 1
        telemetry.count("resilience.journal_quarantined")

    # -- metadata --------------------------------------------------------------

    def record_failures(
        self,
        failures: Sequence[TaskFailure],
        resolved: Sequence[Optional[str]] = (),
    ) -> None:
        """Merge this run's failures into ``journal.json`` atomically.

        ``resolved`` is the content keys that completed successfully in
        this run: any previously recorded failure for one of those keys
        is dropped, so a fully successful resume leaves the journal
        reporting no failures.  The sidecar is rewritten only when the
        failure set actually changed.
        """
        meta = self.load_meta()
        existing = meta.get("failures", [])
        resolved_keys = {key for key in resolved if key is not None}
        kept = [f for f in existing if f.get("key") not in resolved_keys]
        seen = {(f.get("key"), f.get("index")): f for f in kept}
        changed = len(kept) != len(existing)
        for failure in failures:
            slot = (failure.key, failure.index)
            entry = failure.to_dict()
            changed = changed or seen.get(slot) != entry
            seen[slot] = entry
        if not changed:
            return
        meta["schema"] = JOURNAL_SCHEMA
        meta["failures"] = sorted(
            seen.values(), key=lambda f: (f["index"], f["key"] or "")
        )
        import json

        atomic_write_text(self.meta_path, json.dumps(meta, indent=2) + "\n")

    def load_meta(self) -> Dict[str, Any]:
        """The journal's metadata document (empty when absent/corrupt)."""
        import json

        try:
            with open(self.meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return {}
        return meta if isinstance(meta, dict) else {}

    def failures(self) -> List[TaskFailure]:
        """The recorded failures, as structured records."""
        out = []
        for data in self.load_meta().get("failures", []):
            try:
                out.append(TaskFailure.from_dict(data))
            except (KeyError, TypeError, ValueError):
                continue
        return out


# -- process-wide policy (the CLI's resilience flags) --------------------------


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything :func:`resilient_map` needs to execute a fan-out.

    ``on_failure`` defaults to ``"raise"``: a task that exhausts its
    attempts aborts the map (after checkpointing the survivors, so a
    rerun resumes).  ``"record"`` — the CLI's ``--keep-going`` — is the
    explicit opt-in for degraded results: the :class:`TaskFailure` is
    returned in the task's slot instead.
    """

    journal: Optional[CheckpointJournal] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    faults: Optional[FaultPlan] = None
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.on_failure not in ("record", "raise"):
            raise ConfigError(
                f"on_failure must be 'record' or 'raise', "
                f"got {self.on_failure!r}"
            )


_ACTIVE_POLICY: Optional[ResiliencePolicy] = None


def active_policy() -> Optional[ResiliencePolicy]:
    """The process-wide policy installed by the CLI flags, or ``None``."""
    return _ACTIVE_POLICY


def set_active_policy(policy: Optional[ResiliencePolicy]) -> None:
    """Install (or clear) the process-wide resilience policy."""
    global _ACTIVE_POLICY
    _ACTIVE_POLICY = policy


@contextmanager
def activated(policy: ResiliencePolicy) -> Iterator[ResiliencePolicy]:
    """Scoped :func:`set_active_policy` (the test-suite entry point)."""
    previous = _ACTIVE_POLICY
    set_active_policy(policy)
    try:
        yield policy
    finally:
        set_active_policy(previous)


# -- execution -----------------------------------------------------------------


class _ResilientTask:
    """Picklable task wrapper: fault injection + worker instrumentation.

    Composes the runner's ``_StatsTrackedTask`` (sizing-counter deltas,
    per-task telemetry capture) with the fault plan, which fires in the
    executing process — so hard kills really kill the worker.
    """

    def __init__(
        self,
        fn: Callable[[T], R],
        faults: Optional[FaultPlan],
        index: int,
        attempt: int,
    ) -> None:
        self._inner = runner._StatsTrackedTask(fn)
        self._faults = faults
        self._index = index
        self._attempt = attempt

    def __call__(self, item: T):
        if self._faults is not None:
            self._faults.apply(self._index, self._attempt)
        return self._inner(item)


@dataclass
class _Pending:
    """Book-keeping for one not-yet-completed task.

    ``attempt`` counts executions started (it feeds fault plans and the
    failure record); ``charged`` counts only the failures attributable
    to the task itself, which is what exhausts the retry budget.  A pool
    breakage destroys executions without a known culprit, so it advances
    ``attempt`` and ``pool_breaks`` but charges nobody.  ``not_before``
    defers a backed-off resubmission without sleeping the scheduler.
    """

    index: int
    item: Any
    attempt: int = 0
    charged: int = 0
    pool_breaks: int = 0
    not_before: float = 0.0
    last_error: Optional[BaseException] = None


def _describe(exc: BaseException) -> Tuple[str, str]:
    return type(exc).__name__, str(exc) or type(exc).__name__


def _run_serial(
    fn: Callable[[T], R],
    pending: List[_Pending],
    policy: ResiliencePolicy,
) -> Dict[int, object]:
    """In-process execution with retry (the ``jobs=1`` path)."""
    retry = policy.retry
    tel = telemetry.active()
    outcomes: Dict[int, object] = {}
    for task in pending:
        while True:
            try:
                if policy.faults is not None:
                    policy.faults.apply(task.index, task.attempt)
                if tel is not None:
                    with tel.timer("runner.task"):
                        outcomes[task.index] = fn(task.item)
                else:
                    outcomes[task.index] = fn(task.item)
                break
            except Exception as exc:  # noqa: BLE001 — retries bound it
                task.last_error = exc
                task.attempt += 1
                task.charged += 1
                if task.charged >= retry.attempts:
                    name, message = _describe(exc)
                    outcomes[task.index] = TaskFailure(
                        index=task.index,
                        key=None,
                        attempts=task.attempt,
                        error_type=name,
                        message=message,
                    )
                    break
                telemetry.count("resilience.retries")
                retry.sleep(retry.backoff_s(task.attempt - 1))
    return outcomes


def _run_parallel(
    fn: Callable[[T], R],
    pending: List[_Pending],
    policy: ResiliencePolicy,
    workers: int,
) -> Dict[int, object]:
    """Process-pool execution with retry, timeout, and pool recycling.

    At most ``workers`` tasks are submitted at a time (refilled as
    futures complete), so a task's ``timeout_s`` deadline — set at
    submission — measures execution, not time spent queued behind busy
    workers.  Backed-off retries carry a per-task not-before time
    instead of sleeping the scheduler thread, so one retry's backoff
    never stalls the collection of everyone else's results.
    """
    retry = policy.retry
    tel = telemetry.active()
    outcomes: Dict[int, object] = {}
    queue: List[_Pending] = list(pending)
    pool = ProcessPoolExecutor(max_workers=workers)
    inflight: Dict[Any, Tuple[_Pending, Optional[float]]] = {}

    def fail(task: _Pending, exc: BaseException) -> None:
        name, message = _describe(exc)
        outcomes[task.index] = TaskFailure(
            index=task.index,
            key=None,
            attempts=task.attempt,
            error_type=name,
            message=message,
        )

    def fail_or_requeue(task: _Pending, exc: BaseException) -> None:
        """Charge one attempt to the task's own retry budget."""
        task.last_error = exc
        task.attempt += 1
        task.charged += 1
        if task.charged >= retry.attempts:
            fail(task, exc)
            return
        telemetry.count("resilience.retries")
        task.not_before = time.monotonic() + retry.backoff_s(
            task.charged - 1
        )
        queue.append(task)

    def requeue_after_break(task: _Pending, exc: BaseException) -> None:
        """Requeue a task whose pool died under it, charging nobody.

        The culprit of a ``BrokenProcessPool`` cannot be attributed, so
        no in-flight task's retry budget is consumed — but ``attempt``
        still advances (these executions really started and were
        destroyed), which keeps deterministic fault plans moving.  A
        task in flight for ``retry.attempts`` breakages degrades anyway,
        so a task that hard-kills its worker every time is bounded
        instead of recycling the pool forever.
        """
        task.last_error = exc
        task.attempt += 1
        task.pool_breaks += 1
        if task.pool_breaks >= retry.attempts:
            fail(task, exc)
            return
        queue.append(task)

    def recycle_pool(old: ProcessPoolExecutor) -> ProcessPoolExecutor:
        old.shutdown(wait=False, cancel_futures=True)
        telemetry.count("resilience.pool_restarts")
        return ProcessPoolExecutor(max_workers=workers)

    def absorb(task: _Pending, result, deltas, drained) -> None:
        outcomes[task.index] = result
        runner._fold_worker_stats(deltas)
        if tel is not None and drained is not None:
            tel.absorb(*drained)

    try:
        while queue or inflight:
            now = time.monotonic()
            i = 0
            while len(inflight) < workers and i < len(queue):
                if queue[i].not_before > now:
                    i += 1
                    continue
                task = queue.pop(i)
                future = pool.submit(
                    _ResilientTask(fn, policy.faults, task.index, task.attempt),
                    task.item,
                )
                deadline = (
                    time.monotonic() + retry.timeout_s
                    if retry.timeout_s is not None
                    else None
                )
                inflight[future] = (task, deadline)
            if not inflight:
                # Everything runnable is backing off.  Sleep (injectable)
                # until the earliest not-before, then force it runnable so
                # a stubbed sleep cannot busy-spin.
                soonest = min(queue, key=lambda t: t.not_before)
                retry.sleep(max(0.0, soonest.not_before - time.monotonic()))
                soonest.not_before = 0.0
                continue
            wake_times = [d for _, d in inflight.values() if d is not None]
            if len(inflight) < workers:
                # A free slot is waiting on a backoff window.
                wake_times.extend(t.not_before for t in queue)
            wait_s = (
                max(0.0, min(wake_times) - time.monotonic())
                if wake_times
                else None
            )
            done, _ = wait(
                list(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                task, _deadline = inflight.pop(future)
                try:
                    result, deltas, drained = future.result()
                except (BrokenProcessPool, CancelledError) as exc:
                    broken = True
                    requeue_after_break(task, exc)
                except Exception as exc:  # noqa: BLE001 — retries bound it
                    fail_or_requeue(task, exc)
                else:
                    absorb(task, result, deltas, drained)
            now = time.monotonic()
            expired = [
                future
                for future, (_task, deadline) in inflight.items()
                if deadline is not None and deadline <= now
            ]
            if expired:
                # A stuck worker cannot be cancelled, only abandoned:
                # requeue everything in flight (expired tasks pay an
                # attempt, innocent bystanders do not) and recycle the
                # pool to reclaim the processes.
                for future in expired:
                    task, _deadline = inflight.pop(future)
                    telemetry.count("resilience.timeouts")
                    fail_or_requeue(
                        task,
                        TimeoutError(
                            f"task {task.index} exceeded "
                            f"{retry.timeout_s}s (attempt {task.attempt})"
                        ),
                    )
                for future, (task, _deadline) in inflight.items():
                    queue.append(task)
                inflight = {}
                pool = recycle_pool(pool)
            elif broken:
                # The pool died under us; every in-flight future fails
                # with BrokenProcessPool almost immediately.  Completed
                # results are kept; attributable task exceptions are
                # charged; breakage casualties requeue uncharged.
                for future, (task, _deadline) in inflight.items():
                    try:
                        result, deltas, drained = future.result(timeout=10.0)
                    except (BrokenProcessPool, CancelledError) as exc:
                        requeue_after_break(task, exc)
                    except Exception as exc:  # noqa: BLE001
                        fail_or_requeue(task, exc)
                    else:
                        absorb(task, result, deltas, drained)
                inflight = {}
                pool = recycle_pool(pool)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return outcomes


def resilient_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    key_fn: Optional[Callable[[T], str]] = None,
    jobs: Optional[int] = None,
    cache: Optional[runner.DiskCache] = None,
    policy: Optional[ResiliencePolicy] = None,
) -> List[R]:
    """Fault-tolerant :func:`repro.core.runner.cached_map`.

    Resolution order per item: checkpoint journal, disk cache, then
    retried execution (serial or process pool).  Every fresh completion
    is checkpointed (and cached) before the call returns, so a crash
    mid-suite loses at most the in-flight tasks.  Tasks that exhaust
    their attempts become :class:`TaskFailure` records — written to the
    journal and the telemetry manifest.  Under ``on_failure="raise"``
    (the default) the map then raises, after checkpointing the
    survivors so a rerun resumes; under ``on_failure="record"`` the
    :class:`TaskFailure` is returned **in the failed task's slot**, so
    the returned list always has exactly ``len(items)`` entries and can
    never silently misalign with the inputs (:func:`drop_failures`
    filters it explicitly).  With no failures the result is exactly
    ``cached_map``'s: input order, bit-identical across worker counts
    and resumes, because tasks are pure functions of their items.
    """
    items = list(items)
    policy = policy if policy is not None else active_policy()
    if policy is None:
        policy = ResiliencePolicy()
    journal = policy.journal
    keys: Optional[List[str]] = (
        [key_fn(item) for item in items] if key_fn is not None else None
    )

    stats = runner.runner_stats()
    stats.tasks += len(items)
    telemetry.count("resilience.tasks", len(items))
    tel = telemetry.active()
    if tel is not None:
        tel.count("runner.tasks", len(items))

    results: List[object] = [runner.MISSING] * len(items)
    if journal is not None and keys is not None:
        for i, key in enumerate(keys):
            value = journal.get(key)
            if value is not runner.MISSING:
                results[i] = value
                telemetry.count("resilience.resumed")
    if cache is not None and keys is not None:
        for i, key in enumerate(keys):
            if results[i] is runner.MISSING:
                value = cache.get(key)
                if value is not runner.MISSING:
                    results[i] = value
                    if journal is not None:
                        journal.put(key, value)

    pending = [
        _Pending(index=i, item=items[i])
        for i in range(len(items))
        if results[i] is runner.MISSING
    ]
    with telemetry.span("resilience.map"):
        if pending:
            resolved_jobs = runner.resolve_jobs(jobs)
            if resolved_jobs <= 1 or len(pending) <= 1:
                outcomes = _run_serial(fn, pending, policy)
            else:
                workers = min(resolved_jobs, len(pending))
                stats.parallel_tasks += len(pending)
                if tel is not None:
                    tel.count("runner.parallel_tasks", len(pending))
                outcomes = _run_parallel(fn, pending, policy, workers)
            for index, outcome in outcomes.items():
                results[index] = outcome
                if isinstance(outcome, TaskFailure):
                    continue
                if keys is not None:
                    if journal is not None:
                        journal.put(keys[index], outcome)
                    if cache is not None:
                        cache.put(keys[index], outcome)

    failures: List[TaskFailure] = []
    for i, value in enumerate(results):
        if value is runner.MISSING:  # pragma: no cover — defensive
            value = TaskFailure(
                index=i,
                key=keys[i] if keys is not None else None,
                attempts=0,
                error_type="LostResult",
                message="task produced no outcome",
            )
            results[i] = value
        if isinstance(value, TaskFailure):
            if keys is not None and value.key is None:
                value = replace(value, key=keys[i])
                results[i] = value
            failures.append(value)
    from . import provenance  # lazy: provenance builds on runner

    if provenance.active_log() is not None and keys is not None:
        for i, value in enumerate(results):
            if not isinstance(value, TaskFailure):
                provenance.record_task(keys[i], value)
    if journal is not None:
        # Reconcile journal.json: newly degraded tasks are recorded,
        # previously recorded failures whose key succeeded this run are
        # cleared — a fully successful resume leaves a clean journal.
        resolved = [
            keys[i]
            for i, value in enumerate(results)
            if not isinstance(value, TaskFailure)
        ] if keys is not None else []
        journal.record_failures(failures, resolved=resolved)
    if failures:
        telemetry.count("resilience.failures", len(failures))
        if tel is not None:
            for failure in failures:
                tel.record_failure(failure.to_dict())
        if policy.on_failure == "raise":
            detail = "; ".join(
                f"task {f.index}: {f.error_type}: {f.message}"
                for f in failures
            )
            raise SimulationError(
                f"{len(failures)}/{len(items)} tasks failed after "
                f"{policy.retry.attempts} attempts: {detail}"
            )
    return list(results)


def drop_failures(results: Sequence[object]) -> List[object]:
    """The surviving results of a degraded map, failures removed.

    :func:`resilient_map` preserves input length by returning
    :class:`TaskFailure` placeholders at failed indices (under
    ``on_failure="record"``).  A caller that deliberately computes over
    the survivors — e.g. a suite experiment taking medians over the
    seeds that completed — calls this to make that decision explicit
    rather than inheriting a silently shortened list.  Dropping is
    counted (``resilience.degraded_dropped``) so a manifest shows when
    a figure was computed from fewer seeds than requested.
    """
    survivors = [r for r in results if not isinstance(r, TaskFailure)]
    dropped = len(results) - len(survivors)
    if dropped:
        telemetry.count("resilience.degraded_dropped", dropped)
    return survivors


__all__ = [
    "JOURNAL_DIRNAME",
    "JOURNAL_SCHEMA",
    "CheckpointJournal",
    "ResiliencePolicy",
    "RetryPolicy",
    "TaskFailure",
    "activated",
    "active_policy",
    "default_journal_dir",
    "drop_failures",
    "resilient_map",
    "set_active_policy",
]
