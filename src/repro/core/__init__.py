"""Core utilities: units, errors, deterministic RNG streams, table output."""

from .errors import (
    CapacityError,
    CarbonModelError,
    ConfigError,
    ReproError,
    SimulationError,
    SizingError,
    UnitError,
)
from .rng import DEFAULT_SEED, RngFactory, derive_seed, stream
from .tables import render_csv, render_table
from .units import (
    HOURS_PER_YEAR,
    energy_kwh,
    hours_to_years,
    operational_carbon_kg,
    percent,
    savings_fraction,
    watts_to_kw,
    years_to_hours,
)

__all__ = [
    "CapacityError",
    "CarbonModelError",
    "ConfigError",
    "ReproError",
    "SimulationError",
    "SizingError",
    "UnitError",
    "DEFAULT_SEED",
    "RngFactory",
    "derive_seed",
    "stream",
    "render_csv",
    "render_table",
    "HOURS_PER_YEAR",
    "energy_kwh",
    "hours_to_years",
    "operational_carbon_kg",
    "percent",
    "savings_fraction",
    "watts_to_kw",
    "years_to_hours",
]
