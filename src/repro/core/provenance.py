"""Provenance graph over experiment inputs and outputs.

Every artifact the reproduction computes — a ``cached_map`` /
``resilient_map`` task result, a sweep point's payload, a GSF report —
is a pure function of content-addressable inputs: trace-store entries,
hardware tables, :class:`~repro.allocation.traces.TraceParams`, sizing
configs, and the code itself.  This module records those dependency
edges so a changed input invalidates exactly its downstream cone
instead of the whole sweep (the PROBE model: provenance as a graph of
input/output digests, not timestamps):

- :class:`ProvenanceRecord` — one artifact: a stable ``artifact_id``,
  its named input digests, and the digest of its output.  An input name
  that matches another record's ``artifact_id`` is an artifact→artifact
  edge (e.g. a sweep summary depending on its points); any other name
  is a *leaf* input (a trace, a SKU table, the code salt).
- :class:`ProvenanceLog` — the append-only JSONL persistence, living
  next to the checkpoint journal under the cache directory.  Appends
  are idempotent (re-recording an identical record writes nothing), the
  latest record per artifact wins on load, and corrupt lines are
  skipped and counted, never fatal.
- :func:`invalidated` — the graph query: given the latest records and
  the *current* leaf digests, which artifacts are stale?  A record is
  invalid iff one of its leaf inputs changed, one of its artifact
  inputs is invalid, or an artifact input's recorded output digest no
  longer matches that artifact's latest record.  The resulting
  :class:`InvalidationReport` carries a deterministic ``cone_digest``
  that CI pins as a golden value.

``repro.core.runner.cached_map`` and
``repro.core.resilience.resilient_map`` record a ``task/<key>`` node
for every fresh task execution whenever a log is active (see
:func:`recording`); the sweep driver (``repro.catalog.sweep``) records
the experiment-level artifacts.  See ``docs/catalog.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from . import runner, telemetry

#: JSONL record schema; bump on breaking layout changes.
PROVENANCE_SCHEMA = "repro-provenance/1"

#: Default log filename, next to the journal under the cache dir.
PROVENANCE_FILENAME = "provenance.jsonl"

#: Overrides the code-version salt (forces a global recompute when bumped).
CODE_SALT_ENV = "REPRO_CODE_SALT"

#: Bump when a code change alters experiment outputs: every provenance
#: closure includes this salt, so stale catalog entries miss instead of
#: serving results the current code would not produce.
DEFAULT_CODE_SALT = "repro-code/1"


def code_salt() -> str:
    """The code-version salt mixed into every provenance closure."""
    return os.environ.get(CODE_SALT_ENV) or DEFAULT_CODE_SALT


def default_provenance_path() -> Path:
    """``<cache dir>/provenance.jsonl`` — stable across runs, like the journal."""
    return runner.default_cache_dir() / PROVENANCE_FILENAME


def result_digest(value: object) -> str:
    """A content digest of an arbitrary (picklable) task result.

    Used as the output digest of ``task/*`` provenance nodes.  Pickle
    protocol is pinned so the digest is stable across interpreter
    defaults; for JSON payloads prefer
    :func:`repro.catalog.results.payload_digest` (canonical-JSON based,
    byte-comparable with catalog entries).
    """
    return hashlib.sha256(pickle.dumps(value, protocol=4)).hexdigest()


@dataclass(frozen=True)
class ProvenanceRecord:
    """One artifact's dependency edges: named input digests → output digest.

    ``inputs`` is a sorted tuple of ``(name, digest)`` pairs so records
    hash and compare deterministically.
    """

    artifact_id: str
    kind: str
    inputs: Tuple[Tuple[str, str], ...]
    output_digest: str

    @classmethod
    def make(
        cls,
        artifact_id: str,
        kind: str,
        inputs: Mapping[str, str],
        output_digest: str,
    ) -> "ProvenanceRecord":
        """Build a record from a plain inputs mapping (sorted for stability)."""
        return cls(
            artifact_id=artifact_id,
            kind=kind,
            inputs=tuple(sorted((str(k), str(v)) for k, v in inputs.items())),
            output_digest=output_digest,
        )

    @property
    def inputs_map(self) -> Dict[str, str]:
        """The inputs as a plain dict."""
        return dict(self.inputs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (one JSONL line of the log)."""
        return {
            "schema": PROVENANCE_SCHEMA,
            "artifact_id": self.artifact_id,
            "kind": self.kind,
            "inputs": {name: digest for name, digest in self.inputs},
            "output_digest": self.output_digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProvenanceRecord":
        """Inverse of :meth:`to_dict`; raises on structural problems."""
        inputs = data["inputs"]
        if not isinstance(inputs, dict):
            raise ValueError("inputs must be an object")
        return cls.make(
            artifact_id=str(data["artifact_id"]),
            kind=str(data["kind"]),
            inputs=inputs,
            output_digest=str(data["output_digest"]),
        )


class ProvenanceLog:
    """Append-only JSONL store of :class:`ProvenanceRecord` lines.

    The log is an event history, not a table: re-recording an artifact
    appends a new line and the *latest* line per ``artifact_id`` wins on
    load.  :meth:`record` is idempotent — an append identical to the
    artifact's latest record writes nothing, so steady-state reruns
    leave the file untouched.  Corrupt lines (torn appends, bit rot)
    are skipped and counted, never raised.
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = Path(
            path if path is not None else default_provenance_path()
        )
        self.appended = 0
        self.unchanged = 0
        self.skipped_corrupt = 0
        self._index: Optional[Dict[str, ProvenanceRecord]] = None

    def records(self) -> List[ProvenanceRecord]:
        """Every readable record, in file order (corrupt lines skipped)."""
        out: List[ProvenanceRecord] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return out
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                record = ProvenanceRecord.from_dict(data)
            except (ValueError, KeyError, TypeError):
                self.skipped_corrupt += 1
                telemetry.count("provenance.skipped_corrupt")
                continue
            out.append(record)
        return out

    def latest(self) -> Dict[str, ProvenanceRecord]:
        """The newest record per ``artifact_id`` (the graph's node set)."""
        index: Dict[str, ProvenanceRecord] = {}
        for record in self.records():
            index[record.artifact_id] = record
        return index

    def _load_index(self) -> Dict[str, ProvenanceRecord]:
        if self._index is None:
            self._index = self.latest()
        return self._index

    def record(
        self,
        artifact_id: str,
        kind: str,
        inputs: Mapping[str, str],
        output_digest: str,
    ) -> bool:
        """Append one record unless it matches the artifact's latest.

        Returns True when a line was actually written.  Appends are a
        single ``write`` of one JSON line, so concurrent writers
        interleave at line granularity and a torn tail line is skipped
        (and counted) by the next reader.
        """
        record = ProvenanceRecord.make(artifact_id, kind, inputs, output_digest)
        index = self._load_index()
        if index.get(artifact_id) == record:
            self.unchanged += 1
            return False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        index[artifact_id] = record
        self.appended += 1
        telemetry.count("provenance.records")
        return True


@dataclass(frozen=True)
class InvalidationReport:
    """The downstream cone of a set of changed inputs.

    Attributes:
        changed_inputs: Sorted leaf-input names whose current digest
            differs from what some latest record remembers.
        invalid: Sorted artifact ids that must recompute (the cone).
    """

    changed_inputs: Tuple[str, ...]
    invalid: Tuple[str, ...]

    def is_invalid(self, artifact_id: str) -> bool:
        """Whether one artifact is inside the invalidated cone."""
        return artifact_id in set(self.invalid)

    def cone_digest(self) -> str:
        """A deterministic digest of the cone (the CI golden value)."""
        digest = hashlib.sha256()
        for name in self.changed_inputs:
            digest.update(b"input\x00" + name.encode("utf-8") + b"\x00")
        for artifact_id in self.invalid:
            digest.update(b"node\x00" + artifact_id.encode("utf-8") + b"\x00")
        return digest.hexdigest()


def invalidated(
    latest: Mapping[str, ProvenanceRecord],
    current_inputs: Mapping[str, str],
) -> InvalidationReport:
    """Diff the graph against current leaf digests; return the stale cone.

    A record is invalid iff any of:

    - a *leaf* input (a name that is not a recorded artifact) appears in
      ``current_inputs`` with a different digest than recorded;
    - an *artifact* input is itself invalid (transitively);
    - an artifact input's recorded digest differs from that artifact's
      latest ``output_digest`` (a stale edge: the dependency was
      recomputed to a different output since this record was written).

    Leaf inputs absent from ``current_inputs`` are presumed unchanged —
    callers only assert about the inputs they can digest today.
    """
    invalid = set()
    changed_leaves = set()
    # Direct invalidation: changed leaves and stale artifact edges.
    for artifact_id, record in latest.items():
        for name, digest in record.inputs:
            upstream = latest.get(name)
            if upstream is None:
                current = current_inputs.get(name)
                if current is not None and current != digest:
                    changed_leaves.add(name)
                    invalid.add(artifact_id)
            elif upstream.output_digest != digest:
                invalid.add(artifact_id)
    # Propagate downstream: invalid artifacts poison their dependents.
    dependents: Dict[str, List[str]] = {}
    for artifact_id, record in latest.items():
        for name, _digest in record.inputs:
            if name in latest:
                dependents.setdefault(name, []).append(artifact_id)
    frontier = list(invalid)
    while frontier:
        node = frontier.pop()
        for dependent in dependents.get(node, ()):
            if dependent not in invalid:
                invalid.add(dependent)
                frontier.append(dependent)
    return InvalidationReport(
        changed_inputs=tuple(sorted(changed_leaves)),
        invalid=tuple(sorted(invalid)),
    )


# -- process-wide active log (the CLI's --provenance flag) ---------------------

_ACTIVE_LOG: Optional[ProvenanceLog] = None


def active_log() -> Optional[ProvenanceLog]:
    """The process-wide log task hooks record into, or ``None``."""
    return _ACTIVE_LOG


def set_active_log(log: Optional[ProvenanceLog]) -> None:
    """Install (or clear) the process-wide provenance log."""
    global _ACTIVE_LOG
    _ACTIVE_LOG = log


@contextmanager
def recording(log: ProvenanceLog) -> Iterator[ProvenanceLog]:
    """Scoped :func:`set_active_log` (the test / library entry point)."""
    previous = _ACTIVE_LOG
    set_active_log(log)
    try:
        yield log
    finally:
        set_active_log(previous)


def record_task(key: str, value: object) -> None:
    """Record one ``cached_map``/``resilient_map`` task into the active log.

    The task's content key *is* its input digest (the same hash the
    journal and disk cache use), plus the code salt; the output digest
    is a content hash of the result.  No-op when no log is active.
    """
    log = _ACTIVE_LOG
    if log is None:
        return
    log.record(
        f"task/{key}",
        "task",
        {"item": key, "code": code_salt()},
        result_digest(value),
    )


__all__ = [
    "CODE_SALT_ENV",
    "DEFAULT_CODE_SALT",
    "PROVENANCE_FILENAME",
    "PROVENANCE_SCHEMA",
    "InvalidationReport",
    "ProvenanceLog",
    "ProvenanceRecord",
    "active_log",
    "code_salt",
    "default_provenance_path",
    "invalidated",
    "record_task",
    "recording",
    "result_digest",
    "set_active_log",
]
