"""Atomic file I/O for run artifacts.

Every artifact the system persists — telemetry manifests, checkpoint
journals, ``.npz`` trace entries, disk-cache pickles, rendered benchmark
outputs — goes through a write-to-temp + ``os.replace`` dance so a
crashed or killed writer can never leave a half-written file under the
final name.  Readers then only ever see either the previous complete
version or the new complete version; "partially written" manifests
simply cannot exist, and a corrupt file is *evidence of corruption*
(bit rot, a torn copy) rather than an expected race, which is what lets
the store layers quarantine instead of silently regenerating.

The temp name carries the writer's PID so concurrent writers of the same
artifact never collide on the scratch file either: last rename wins,
both renames are complete files.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


def _tmp_path(path: Path) -> Path:
    """A per-process scratch name next to the final artifact."""
    return path.with_name(f"{path.name}.tmp-{os.getpid()}")


@contextmanager
def atomic_writer(path) -> Iterator[Path]:
    """Yield a scratch path; rename it over ``path`` only on success.

    On any exception the scratch file is removed and the final path is
    left untouched (either absent or holding its previous contents).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_path(path)
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def atomic_write_bytes(path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_writer(path) as tmp:
        tmp.write_bytes(data)


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
]
