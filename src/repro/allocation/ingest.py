"""Real-trace ingestion: AzurePublicDataset VM tables as a trace backend.

The paper's packing and savings studies replay Azure production traces;
this module ingests the *public* stand-ins — the AzurePublicDataset
``vmtable`` schema (headerless CSV, optionally gzip-compressed):

    vmid, subscriptionid, deploymentid, vmcreated, vmdeleted,
    maxcpu, avgcpu, p95maxcpu, vmcategory, vmcorecountbucket,
    vmmemorybucket

Files are **streamed in row chunks** — the text of a multi-GB table is
never materialized; kept rows accumulate into numpy blocks that
concatenate into one :class:`~repro.allocation.columnar.ColumnarTrace`.
Parsed traces register in the content-hash-keyed
:class:`~repro.allocation.store.TraceStore` under a key derived from the
*source file's* content digest, so re-ingesting a file is a store hit
(eager or memory-mapped) that skips parsing entirely.

Normalization rules:

- timestamps (seconds) become hours; the window offset is **preserved**
  (real captures start mid-day — replay anchors at
  :attr:`VmTrace.start_hours`), unless ``rebase_time=True``;
- core/memory bucket strings map through the fixed
  :data:`CORE_BUCKETS` / :data:`MEMORY_BUCKETS` tables (the "catalog
  domain"); unknown buckets invalidate the row;
- a blank ``vmdeleted`` means the VM outlives the capture (infinite
  lifetime); lifetimes are floored at :data:`MIN_LIFETIME_HOURS`;
- the catalog attributes Azure does not publish — target generation,
  application, touched-memory fraction — are assigned *deterministically
  per VM id* (sha256-derived uniforms), with ``vmcategory`` restricting
  the application classes (Interactive -> latency-critical classes,
  Delay-insensitive -> batch classes), so the GSF adoption model can
  price every VM and re-ingestion is bit-reproducible;
- rows are stably sorted by arrival and ``vm_id`` renumbered 0..n-1.

Malformed input degrades row by row, never file by file: blank required
fields, unknown buckets, duplicate VM ids, and a truncated last line are
counted in the :class:`IngestReport` and skipped.  Unreadable *files*
(bad gzip, undecodable bytes, nothing usable) raise, and the CLI's
``repro trace ingest`` quarantines the source next to itself.

The ``--trace-backend {synthetic,azure}`` axis rides
:func:`trace_suite`: experiments ask it for their suite and it
dispatches to :func:`~repro.allocation.traces.production_trace_suite` or
:func:`azure_trace_suite` (directory of ingested tables, default the
bundled offline sample under ``tests/data/azure/``).
"""

from __future__ import annotations

import csv
import gzip
import hashlib
import io
import math
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import telemetry
from ..core.errors import ConfigError
from ..perf.apps import AppClass
from .columnar import ColumnarTrace
from .store import TraceStore
from .traces import TraceParams, VmTrace, _app_tables

#: Trace-suite backends and the env var selecting the process default.
TRACE_BACKENDS = ("synthetic", "azure")
BACKEND_ENV = "REPRO_TRACE_BACKEND"

#: Directory of ingested Azure tables for :func:`azure_trace_suite`.
AZURE_DIR_ENV = "REPRO_AZURE_TRACE_DIR"

#: Schema tag baked into every store key; bump when the parsing or
#: assignment rules change so stale entries miss instead of lying.
AZURE_SCHEMA = "azure-vmtable/1"

#: The vmtable column layout (headerless v1/v2 field order).
N_FIELDS = 11
(
    _F_VMID,
    _F_SUB,
    _F_DEPLOY,
    _F_CREATED,
    _F_DELETED,
    _F_MAXCPU,
    _F_AVGCPU,
    _F_P95CPU,
    _F_CATEGORY,
    _F_CORES,
    _F_MEMORY,
) = range(N_FIELDS)

#: vmcorecountbucket -> cores.  The open-ended buckets (">24"/">30")
#: map to the smallest shape above them; together these values are the
#: catalog domain every ingested ``cores`` column draws from.
CORE_BUCKETS: Dict[str, int] = {
    "1": 1, "2": 2, "4": 4, "8": 8, "12": 12, "16": 16,
    "20": 20, "24": 24, "30": 30, ">24": 32, ">30": 32,
}

#: vmmemorybucket (GB) -> memory_gb, with capped open-ended buckets.
MEMORY_BUCKETS: Dict[str, float] = {
    "1": 1.0, "2": 2.0, "3": 3.0, "4": 4.0, "6": 6.0, "8": 8.0,
    "12": 12.0, "14": 14.0, "16": 16.0, "24": 24.0, "28": 28.0,
    "32": 32.0, "48": 48.0, "56": 56.0, "64": 64.0, "70": 70.0,
    ">64": 96.0, ">70": 112.0,
}

#: Lifetime floor: the simulator needs strictly positive lifetimes, and
#: the table's second-granularity timestamps can make created==deleted.
MIN_LIFETIME_HOURS = 1.0 / 60.0

#: vmcategory -> application classes the deterministic assignment may
#: draw from (fleet shares renormalized within the subset).  Unknown or
#: blank categories draw from the whole catalog.
CATEGORY_CLASSES: Dict[str, Tuple[AppClass, ...]] = {
    "interactive": (
        AppClass.WEB_APP, AppClass.RTC, AppClass.ML_INFERENCE,
        AppClass.WEB_PROXY,
    ),
    "delay-insensitive": (AppClass.BIG_DATA, AppClass.DEVOPS),
}

#: Kept rows per accumulation chunk (bounds transient list memory).
DEFAULT_CHUNK_ROWS = 65536

#: The bundled offline sample (committed, deterministically generated).
SAMPLE_NAME = "vmtable_sample.csv.gz"

#: Store seed for ingested entries: content identity lives entirely in
#: the :class:`AzureIngestKey` params, so the seed slot is constant.
INGEST_SEED = 0

#: File-level errors that mean "this source is unusable" — the CLI
#: quarantines the file on any of these.
INGEST_CORRUPT_ERRORS = (
    OSError,
    EOFError,
    UnicodeDecodeError,
    gzip.BadGzipFile,
    ConfigError,
    csv.Error,
)


def resolve_trace_backend(backend: Optional[str] = None) -> str:
    """The trace backend: explicit arg > env var > synthetic."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "synthetic"
    if backend not in TRACE_BACKENDS:
        raise ConfigError(
            f"unknown trace backend {backend!r}; "
            f"choose from {TRACE_BACKENDS}"
        )
    return backend


@dataclass(frozen=True)
class AzureIngestKey:
    """Store-key params for one ingested source file.

    ``TraceStore`` keys entries by ``repr`` of their params, so this
    frozen record — source content digest + parsing-schema tag + the
    options that change the output — *is* the content identity of the
    ingested columns.
    """

    source_digest: str
    schema: str = AZURE_SCHEMA
    rebase_time: bool = False


@dataclass(frozen=True)
class IngestReport:
    """Row-accounting for one ingestion (what was kept, what was not).

    ``store`` records how the trace materialized: ``"miss"`` (parsed and
    registered), ``"hit"`` (loaded from the store — row skip counters
    are zero because nothing was re-parsed), or ``"off"`` (parsed, no
    store).
    """

    source: str
    source_digest: str
    schema: str
    rows_total: int
    rows_kept: int
    rows_blank: int
    rows_invalid: int
    rows_duplicate: int
    rows_truncated: int
    out_of_order: int
    rebased: bool
    start_hours: float
    span_hours: float
    store: str

    def to_dict(self) -> dict:
        """JSON-ready form of the report (plain field dict)."""
        return asdict(self)


class _CategoryTables:
    """Per-category (class cdf, members, offsets) assignment tables."""

    __slots__ = ("by_category", "default")

    def __init__(self) -> None:
        apps = _app_tables()
        classes = list(AppClass(c) for c in _fleet_classes())
        index_of = {cls: i for i, cls in enumerate(classes)}

        def build(subset: Sequence[AppClass]):
            idx = [index_of[cls] for cls in subset]
            shares = np.array([apps.shares[i] for i in idx], dtype=np.float64)
            cdf = shares.cumsum() / shares.sum()
            return cdf.tolist(), idx

        self.default = build(classes)
        self.by_category = {
            name: build(subset)
            for name, subset in CATEGORY_CLASSES.items()
        }

    def assign(self, category: str, u_class: float, u_member: float) -> int:
        """The flat app index for a category and two unit uniforms."""
        apps = _app_tables()
        cdf, idx = self.by_category.get(category, self.default)
        pos = 0
        while pos < len(cdf) - 1 and u_class > cdf[pos]:
            pos += 1
        cls = idx[pos]
        length = apps.member_lens[cls]
        member = min(int(u_member * length), length - 1)
        return apps.offsets[cls] + member


def _fleet_classes() -> Tuple[AppClass, ...]:
    from ..perf.apps import FLEET_CORE_HOUR_SHARE

    return tuple(FLEET_CORE_HOUR_SHARE.keys())


_CATEGORY_TABLES: Optional[_CategoryTables] = None


def _category_tables() -> _CategoryTables:
    global _CATEGORY_TABLES
    if _CATEGORY_TABLES is None:
        _CATEGORY_TABLES = _CategoryTables()
    return _CATEGORY_TABLES


def _vm_uniforms(vmid: str) -> Tuple[int, float, float, float]:
    """(dedup key, u_generation, u_class, u_member) for one VM id.

    All four derive from one sha256 of the id, so the assignment is a
    pure function of the source row — re-ingesting a file, in any row
    order, reproduces the identical trace.
    """
    digest = hashlib.sha256(vmid.encode("utf-8")).digest()
    dedup = int.from_bytes(digest[:8], "big")
    scale = 1.0 / 2**64
    u_gen = int.from_bytes(digest[8:16], "big") * scale
    u_class = int.from_bytes(digest[16:24], "big") * scale
    u_member = int.from_bytes(digest[24:32], "big") * scale
    return dedup, u_gen, u_class, u_member


def _generation_cdf() -> List[float]:
    mix = TraceParams().generation_mix
    cdf, total = [], 0.0
    for share in mix:
        total += share
        cdf.append(total)
    cdf[-1] = 1.0
    return cdf


def _open_text(path: Path):
    """A streaming text handle over a CSV or gzipped CSV."""
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(
            gzip.open(path, "rb"), encoding="utf-8", newline=""
        )
    return open(path, "r", encoding="utf-8", newline="")


def file_digest(path) -> str:
    """Streaming sha256 over a file's raw bytes (the source identity)."""
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


class _ColumnAccumulator:
    """Chunked kept-row accumulator: lists flush to numpy blocks."""

    _FLOAT_COLS = ("arrival", "lifetime", "memory", "mmf")
    _INT_COLS = ("cores", "generation", "app_index")

    def __init__(self, chunk_rows: int) -> None:
        self.chunk_rows = max(1, int(chunk_rows))
        self.blocks: Dict[str, List[np.ndarray]] = {
            name: [] for name in self._FLOAT_COLS + self._INT_COLS
        }
        self.lists: Dict[str, list] = {
            name: [] for name in self._FLOAT_COLS + self._INT_COLS
        }
        self.n = 0
        self.chunks = 0

    def append(self, arrival, lifetime, memory, mmf, cores, gen, app) -> None:
        lists = self.lists
        lists["arrival"].append(arrival)
        lists["lifetime"].append(lifetime)
        lists["memory"].append(memory)
        lists["mmf"].append(mmf)
        lists["cores"].append(cores)
        lists["generation"].append(gen)
        lists["app_index"].append(app)
        self.n += 1
        if len(lists["arrival"]) >= self.chunk_rows:
            self.flush()

    def flush(self) -> None:
        if not self.lists["arrival"]:
            return
        for name in self._FLOAT_COLS:
            self.blocks[name].append(
                np.asarray(self.lists[name], dtype=np.float64)
            )
            self.lists[name] = []
        for name in self._INT_COLS:
            self.blocks[name].append(
                np.asarray(self.lists[name], dtype=np.int64)
            )
            self.lists[name] = []
        self.chunks += 1

    def column(self, name: str, dtype) -> np.ndarray:
        blocks = self.blocks[name]
        if not blocks:
            return np.empty(0, dtype=dtype)
        return np.concatenate(blocks)


@dataclass
class _RowCounters:
    total: int = 0
    kept: int = 0
    blank: int = 0
    invalid: int = 0
    duplicate: int = 0
    truncated: int = 0


def _parse_stream(
    handle, chunk_rows: int
) -> Tuple[_ColumnAccumulator, _RowCounters]:
    """Stream one vmtable CSV into columnar blocks, row by row.

    Degrades per row: short/long rows, blank required fields, unknown
    buckets, unparsable numbers, and duplicate VM ids are counted and
    skipped.  A *final* row with fewer fields than the schema is counted
    as a truncated tail (a partial download's signature) rather than a
    malformed row.
    """
    acc = _ColumnAccumulator(chunk_rows)
    counters = _RowCounters()
    tables = _category_tables()
    gen_cdf = _generation_cdf()
    seen: set = set()
    pending_short = False
    reader = csv.reader(handle)
    first = True
    for row in reader:
        if pending_short:
            counters.invalid += 1
            pending_short = False
        if first:
            first = False
            if row and row[0].strip().lower() == "vmid":
                continue  # optional header line
        if not row:
            continue
        counters.total += 1
        if len(row) < N_FIELDS:
            pending_short = True
            continue
        vmid = row[_F_VMID].strip()
        created_s = row[_F_CREATED].strip()
        deleted_s = row[_F_DELETED].strip()
        core_bucket = row[_F_CORES].strip()
        mem_bucket = row[_F_MEMORY].strip()
        if not vmid or not created_s or not core_bucket or not mem_bucket:
            counters.blank += 1
            continue
        cores = CORE_BUCKETS.get(core_bucket)
        memory_gb = MEMORY_BUCKETS.get(mem_bucket)
        if cores is None or memory_gb is None:
            counters.invalid += 1
            continue
        try:
            created = float(created_s)
            deleted = float(deleted_s) if deleted_s else math.inf
        except ValueError:
            counters.invalid += 1
            continue
        if (
            not math.isfinite(created)
            or created < 0
            or deleted < created
        ):
            counters.invalid += 1
            continue
        dedup, u_gen, u_class, u_member = _vm_uniforms(vmid)
        if dedup in seen:
            counters.duplicate += 1
            continue
        seen.add(dedup)

        arrival = created / 3600.0
        lifetime = (
            math.inf
            if math.isinf(deleted)
            else max((deleted - created) / 3600.0, MIN_LIFETIME_HOURS)
        )
        mmf = _memory_fraction(row[_F_P95CPU], row[_F_MAXCPU])
        pos = 0
        while pos < len(gen_cdf) - 1 and u_gen > gen_cdf[pos]:
            pos += 1
        generation = pos + 1
        category = row[_F_CATEGORY].strip().lower()
        app_index = tables.assign(category, u_class, u_member)
        acc.append(
            arrival, lifetime, memory_gb, mmf, cores, generation, app_index
        )
        counters.kept += 1
    if pending_short:
        counters.truncated += 1
    counters.total += 0
    acc.flush()
    return acc, counters


def _memory_fraction(p95_s: str, max_s: str) -> float:
    """Touched-memory fraction proxy: p95 CPU% (fallback max CPU%, 0.5).

    The vmtable publishes CPU readings, not memory; the p95 utilization
    is the closest published proxy for how much of its allocation a VM
    actually exercises, clipped into ``VmRequest``'s [0, 1] domain.
    """
    for field in (p95_s, max_s):
        field = field.strip()
        if not field:
            continue
        try:
            value = float(field)
        except ValueError:
            continue
        if math.isfinite(value):
            return min(max(value / 100.0, 0.01), 1.0)
    return 0.5


def _columns_from_accumulator(
    acc: _ColumnAccumulator, rebase_time: bool
) -> Tuple[ColumnarTrace, int]:
    """Sort, renumber, and freeze the accumulated rows into columns.

    Returns ``(columns, out_of_order)`` where the count is how many
    adjacent source-order inversions the stable sort repaired.
    """
    arrival = acc.column("arrival", np.float64)
    out_of_order = (
        int(np.sum(np.diff(arrival) < 0)) if arrival.size > 1 else 0
    )
    order = np.argsort(arrival, kind="stable")
    arrival = arrival[order]
    if rebase_time and arrival.size:
        arrival = arrival - arrival[0]
    n = arrival.size
    columns = ColumnarTrace(
        vm_id=np.arange(n, dtype=np.int64),
        arrival_hours=arrival,
        lifetime_hours=acc.column("lifetime", np.float64)[order],
        cores=acc.column("cores", np.int64)[order],
        memory_gb=acc.column("memory", np.float64)[order],
        generation=acc.column("generation", np.int64)[order],
        app_index=acc.column("app_index", np.int64)[order],
        max_memory_fraction=acc.column("mmf", np.float64)[order],
        full_node=np.zeros(n, dtype=np.bool_),
        app_names=_app_tables().flat_names,
    )
    columns.validate()
    return columns, out_of_order


def window_params(columns: ColumnarTrace) -> TraceParams:
    """Window-derived :class:`TraceParams` for ingested columns.

    Only the window fields are fitted here (duration from the activity
    span, time-averaged concurrency via Little's law); the full
    marginals fit lives in :func:`repro.analysis.marginals`.
    """
    if columns.n == 0:
        raise ConfigError("cannot derive a window from an empty trace")
    start = columns.start_hours()
    departures = columns.arrival_hours + columns.lifetime_hours
    finite = departures[np.isfinite(departures)]
    end = max(
        columns.last_arrival_hours(),
        float(finite.max()) if finite.size else start,
    )
    span = max(end - start, 1.0)
    clipped_end = start + span
    overlap = np.clip(
        np.minimum(departures, clipped_end) - columns.arrival_hours,
        0.0,
        None,
    )
    mean_vms = max(1, int(round(float(overlap.sum()) / span)))
    return TraceParams(
        duration_days=span / 24.0, mean_concurrent_vms=mean_vms
    )


def ingest_azure_vm_trace(
    path,
    name: Optional[str] = None,
    store: Optional[TraceStore] = None,
    mmap: bool = False,
    rebase_time: bool = False,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Tuple[VmTrace, IngestReport]:
    """Ingest one AzurePublicDataset vmtable CSV/CSV.gz.

    With a ``store``, the parsed columns register under an
    :class:`AzureIngestKey` built from the file's content digest; a
    later call over the same bytes loads straight from the ``.npz``
    entry (``mmap=True`` memory-maps it) without re-parsing.  Corrupt
    store entries quarantine as usual and fall back to a fresh parse.

    Raises :class:`ConfigError` (or the underlying I/O error) when the
    *file* is unusable — unreadable bytes or zero usable rows; per-row
    damage only skips rows (see :class:`IngestReport`).
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"trace file not found: {path}")
    source_digest = file_digest(path)
    key = AzureIngestKey(
        source_digest=source_digest, rebase_time=rebase_time
    )
    trace_name = name or f"azure-{source_digest[:12]}"
    if store is not None:
        columns = store.get_columns(INGEST_SEED, key, mmap=mmap)
        if columns is not None:
            trace = VmTrace(
                name=trace_name,
                params=window_params(columns),
                columns=columns,
            )
            report = IngestReport(
                source=str(path),
                source_digest=source_digest,
                schema=AZURE_SCHEMA,
                rows_total=columns.n,
                rows_kept=columns.n,
                rows_blank=0,
                rows_invalid=0,
                rows_duplicate=0,
                rows_truncated=0,
                out_of_order=0,
                rebased=rebase_time,
                start_hours=columns.start_hours(),
                span_hours=trace.duration_hours,
                store="hit",
            )
            return trace, report
    with telemetry.timer("trace.ingest"):
        with _open_text(path) as handle:
            acc, counters = _parse_stream(handle, chunk_rows)
        if counters.kept == 0:
            raise ConfigError(
                f"no usable rows in {path} "
                f"({counters.total} rows scanned)"
            )
        columns, out_of_order = _columns_from_accumulator(acc, rebase_time)
    tel = telemetry.active()
    if tel is not None:
        tel.count_many(
            {
                "trace.ingested": 1,
                "trace.ingest_rows": counters.total,
                "trace.ingest_kept": counters.kept,
                "trace.ingest_skipped": counters.total - counters.kept,
                "trace.ingest_chunks": acc.chunks,
            }
        )
    store_state = "off"
    if store is not None:
        store.put(INGEST_SEED, key, columns)
        store_state = "miss"
    trace = VmTrace(
        name=trace_name, params=window_params(columns), columns=columns
    )
    report = IngestReport(
        source=str(path),
        source_digest=source_digest,
        schema=AZURE_SCHEMA,
        rows_total=counters.total,
        rows_kept=counters.kept,
        rows_blank=counters.blank,
        rows_invalid=counters.invalid,
        rows_duplicate=counters.duplicate,
        rows_truncated=counters.truncated,
        out_of_order=out_of_order,
        rebased=rebase_time,
        start_hours=columns.start_hours(),
        span_hours=trace.duration_hours,
        store=store_state,
    )
    return trace, report


def bundled_sample_dir() -> Path:
    """The directory holding the committed offline sample trace."""
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "tests" / "data" / "azure"
        if (candidate / SAMPLE_NAME).exists():
            return candidate
    raise ConfigError(
        f"bundled Azure sample ({SAMPLE_NAME}) not found; set "
        f"{AZURE_DIR_ENV} to a directory of ingested vmtable CSVs"
    )


def bundled_sample_path() -> Path:
    """The committed, deterministically subsampled vmtable sample."""
    return bundled_sample_dir() / SAMPLE_NAME


def azure_trace_suite(
    directory: Optional[Path] = None,
    count: Optional[int] = None,
    store: Optional[TraceStore] = None,
    mmap: bool = False,
    rebase_time: bool = False,
) -> List[VmTrace]:
    """Every ingestable table under ``directory``, as a trace suite.

    ``directory`` defaults to ``REPRO_AZURE_TRACE_DIR``, then the
    bundled sample's directory (so the azure backend always works
    offline).  Files ingest in sorted-name order; ``count`` truncates —
    fewer real tables than requested is not an error, the suite is
    simply smaller.
    """
    if directory is None:
        env = os.environ.get(AZURE_DIR_ENV)
        directory = Path(env) if env else bundled_sample_dir()
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigError(f"azure trace directory not found: {directory}")
    paths = sorted(
        p
        for p in directory.iterdir()
        if p.name.endswith((".csv", ".csv.gz"))
    )
    if not paths:
        raise ConfigError(f"no .csv/.csv.gz traces under {directory}")
    if count is not None:
        paths = paths[: max(1, count)]
    traces = []
    for path in paths:
        trace, _report = ingest_azure_vm_trace(
            path,
            name=path.name.split(".csv")[0],
            store=store,
            mmap=mmap,
            rebase_time=rebase_time,
        )
        traces.append(trace)
    return traces


def trace_suite(
    backend: Optional[str] = None,
    count: int = 35,
    base_seed: int = 100,
    params: Optional[TraceParams] = None,
    jobs: Optional[int] = None,
    store: Optional[TraceStore] = None,
) -> List[VmTrace]:
    """The experiment-facing suite dispatcher for the backend axis.

    ``synthetic`` forwards everything to
    :func:`~repro.allocation.traces.production_trace_suite`; ``azure``
    ingests the configured trace directory (``params``/``base_seed``/
    ``jobs`` do not apply — real traces are what they are).
    """
    backend = resolve_trace_backend(backend)
    if backend == "synthetic":
        from .traces import production_trace_suite

        return production_trace_suite(
            count=count,
            base_seed=base_seed,
            params=params,
            jobs=jobs,
            store=store,
        )
    return azure_trace_suite(count=count, store=store)
