"""GSF VM allocation component: traces, scheduler, cluster simulation."""

from .columnar import ColumnarTrace
from .cluster import (
    CARBON_PLACEMENT_POLICIES,
    AdoptionPolicy,
    ClusterSpec,
    PlacementPolicy,
    SimOutcome,
    SnapshotStats,
    adopt_everything,
    adopt_nothing,
    outcome_digest,
    replay_columnar,
    replay_on_engine,
    resolve_engine,
    resolve_placement,
    simulate,
)
from .fleet import ClusterTask, FleetOutcome, FleetSpec, simulate_fleet
from .index import PlacementEngine
from .ingest import (
    AzureIngestKey,
    IngestReport,
    azure_trace_suite,
    bundled_sample_path,
    ingest_azure_vm_trace,
    resolve_trace_backend,
    trace_suite,
)
from .io import load_trace, save_trace, trace_from_csv, trace_to_csv
from .lifetimes import (
    LifetimePredictor,
    SegregationOutcome,
    segregation_study,
    stranded_capacity_fraction,
)
from .packing import PackingPoint, cdf, fraction_below, packing_point
from .scheduler import BestFitScheduler, PlacementDecision, Server
from .soa import SoAPlacementEngine
from .store import TraceStore, store_enabled
from .traces import TraceParams, VmTrace, generate_trace, production_trace_suite
from .vm import VmRequest

__all__ = [
    "ColumnarTrace",
    "TraceStore",
    "store_enabled",
    "CARBON_PLACEMENT_POLICIES",
    "AdoptionPolicy",
    "ClusterSpec",
    "PlacementPolicy",
    "SimOutcome",
    "SnapshotStats",
    "adopt_everything",
    "adopt_nothing",
    "outcome_digest",
    "replay_columnar",
    "replay_on_engine",
    "resolve_engine",
    "resolve_placement",
    "simulate",
    "ClusterTask",
    "FleetOutcome",
    "FleetSpec",
    "simulate_fleet",
    "PlacementEngine",
    "SoAPlacementEngine",
    "LifetimePredictor",
    "SegregationOutcome",
    "segregation_study",
    "stranded_capacity_fraction",
    "load_trace",
    "save_trace",
    "trace_from_csv",
    "trace_to_csv",
    "PackingPoint",
    "cdf",
    "fraction_below",
    "packing_point",
    "BestFitScheduler",
    "PlacementDecision",
    "Server",
    "TraceParams",
    "VmTrace",
    "generate_trace",
    "production_trace_suite",
    "AzureIngestKey",
    "IngestReport",
    "azure_trace_suite",
    "bundled_sample_path",
    "ingest_azure_vm_trace",
    "resolve_trace_backend",
    "trace_suite",
    "VmRequest",
]
