"""VM request and lifecycle types for the allocation simulator.

A VM request is what Azure's Protean-style allocator sees: an arrival time,
a lifetime, a core count and memory size, plus trace-supplied metadata the
paper's methodology relies on — the server generation the VM was deployed
against, the maximum fraction of its allocated memory it ever touches
(Fig. 10's memory-utilization analysis), and whether it is a long-living
"full-node" VM that requires a dedicated server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..core.errors import ConfigError


@dataclass(frozen=True)
class VmRequest:
    """One VM deployment in a trace.

    Attributes:
        vm_id: Unique id within the trace.
        arrival_hours: Arrival time from trace start, in hours.
        lifetime_hours: Time until departure (``math.inf`` = never departs
            within the trace window).
        cores: Requested virtual cores.
        memory_gb: Requested memory.
        generation: Baseline server generation (1, 2, 3) the VM targets;
            pre-defined in the trace, as in the paper.
        app_name: Representative application assigned to the VM (the
            paper samples these from fleet core-hour shares because
            production VMs are opaque).
        max_memory_fraction: Largest fraction of allocated memory the VM
            touches over its lifetime (drives Fig. 10).
        full_node: True for long-living VMs that require a dedicated
            server; the paper strictly assigns these to baseline SKUs.
    """

    vm_id: int
    arrival_hours: float
    lifetime_hours: float
    cores: int
    memory_gb: float
    generation: int
    app_name: str
    max_memory_fraction: float = 0.5
    full_node: bool = False

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError(f"VM {self.vm_id}: cores must be > 0")
        if self.memory_gb <= 0:
            raise ConfigError(f"VM {self.vm_id}: memory must be > 0")
        if self.arrival_hours < 0 or self.lifetime_hours <= 0:
            raise ConfigError(
                f"VM {self.vm_id}: arrival must be >= 0 and lifetime > 0"
            )
        if self.generation not in (1, 2, 3):
            raise ConfigError(
                f"VM {self.vm_id}: generation must be 1, 2 or 3"
            )
        if not 0 <= self.max_memory_fraction <= 1:
            raise ConfigError(
                f"VM {self.vm_id}: max memory fraction must be in [0, 1]"
            )

    @property
    def departure_hours(self) -> float:
        """Departure time; ``inf`` for VMs that outlive the trace."""
        return self.arrival_hours + self.lifetime_hours

    def scaled(self, factor: float) -> "VmRequest":
        """The VM resized for a GreenSKU placement.

        The paper multiplies both the core count and the memory allocation
        by the application's scaling factor (Section V; Section VIII notes
        this proportional-memory assumption is pessimistic).  Cores round
        up to stay whole.
        """
        if factor < 1.0 or not math.isfinite(factor):
            raise ConfigError(
                f"scaling factor must be a finite value >= 1, got {factor}"
            )
        if factor == 1.0:
            return self
        return replace(
            self,
            cores=int(math.ceil(self.cores * factor)),
            memory_gb=self.memory_gb * factor,
        )
