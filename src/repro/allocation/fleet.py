"""Sharded multi-cluster fleet driver.

The paper's cluster results replay one trace against one cluster; the
ROADMAP north star is a *fleet* — 10^6–10^7 VMs across hundreds of
simulated clusters.  This module partitions a fleet spec across worker
processes via :func:`repro.core.resilience.resilient_map` (inheriting
checkpoint/resume, retries, and fault injection), runs each cluster
through the streaming columnar replay, and merges the per-cluster
:class:`~repro.allocation.cluster.SimOutcome` records into one
:class:`FleetOutcome` whose aggregates reconcile *exactly* against the
shard results (integer fixed-point snapshot sums are associative, so
merge order cannot change a single bit).

Cache/journal keys cover the generation inputs, the adoption policy's
qualified name, and the snapshot interval — **not** the engine or chunk
size, because every engine and chunking is bit-identical by contract
(the equivalence suite pins this), so a journal written with one
backend resumes correctly under another.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import telemetry
from ..core.errors import ConfigError, SimulationError
from ..core.resilience import ResiliencePolicy, TaskFailure, resilient_map
from ..core.runner import DiskCache, content_key
from .cluster import (
    CARBON_PLACEMENT_POLICIES,
    AdoptionPolicy,
    ClusterSpec,
    DEFAULT_CHUNK_EVENTS,
    SimOutcome,
    SnapshotStats,
    adopt_nothing,
    outcome_digest,
    replay_columnar,
    resolve_engine,
)
from .traces import TraceParams, VmTrace, generate_trace

#: Part of every fleet cache/journal key; bump when the worker's
#: behavior changes in a result-affecting way.  v2: placement policy and
#: grid signal joined the job identity.
FLEET_KEY_VERSION = "fleet-v2"


@dataclass(frozen=True)
class ClusterTask:
    """One shard of a fleet: a (trace, cluster) pair to replay.

    Attributes:
        name: Unique label within the fleet (journal entries, digests,
            and failure records are reported under it).
        seed: Trace-generation seed.
        params: Trace-generation knobs.
        cluster: The cluster configuration this shard replays against.
    """

    name: str
    seed: int
    params: TraceParams
    cluster: ClusterSpec

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("cluster task needs a non-empty name")


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet: uniquely named cluster tasks."""

    clusters: Tuple[ClusterTask, ...]

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ConfigError("a fleet needs at least one cluster")
        names = [task.name for task in self.clusters]
        if len(set(names)) != len(names):
            raise ConfigError("fleet cluster names must be unique")

    @classmethod
    def of(cls, *tasks: ClusterTask) -> "FleetSpec":
        """Build a spec from cluster tasks given as arguments."""
        return cls(clusters=tuple(tasks))

    @property
    def total_clusters(self) -> int:
        """Number of clusters in the fleet."""
        return len(self.clusters)

    @property
    def total_servers(self) -> int:
        """Sum of server counts over every cluster."""
        return sum(task.cluster.total_servers for task in self.clusters)


@dataclass
class FleetOutcome:
    """Merged result of a fleet replay.

    ``outcomes`` holds the per-cluster records in spec order (with
    ``None`` holes where a shard failed under a degraded
    ``on_failure="record"`` run); the aggregate fields are exact merges
    over the successful shards, and :meth:`reconcile` re-derives them
    from scratch to prove it.
    """

    spec: FleetSpec
    outcomes: List[Optional[SimOutcome]]
    failures: List[TaskFailure] = field(default_factory=list)
    placed_vms: int = 0
    rejected_vms: int = 0
    green_placements: int = 0
    fallback_placements: int = 0
    baseline_stats: SnapshotStats = field(default_factory=SnapshotStats)
    green_stats: SnapshotStats = field(default_factory=SnapshotStats)

    @property
    def feasible(self) -> bool:
        """Every shard completed and no VM anywhere was rejected."""
        return not self.failures and self.rejected_vms == 0

    @property
    def completed_clusters(self) -> int:
        """Number of shards that produced an outcome (holes excluded)."""
        return sum(1 for outcome in self.outcomes if outcome is not None)

    def operational_kg(self) -> float:
        """Summed operational kgCO2e over shards that carried an accountant.

        Zero when the fleet ran without a ``grid_signal`` (no shard has
        an :class:`~repro.carbon.grid.OperationalCarbonReport` attached).
        """
        return sum(
            outcome.operational.total_kg
            for outcome in self.outcomes
            if outcome is not None and outcome.operational is not None
        )

    def cluster_digests(self) -> Tuple[Tuple[str, Optional[str]], ...]:
        """(name, outcome digest) per shard, spec order; None = failed."""
        return tuple(
            (
                task.name,
                outcome_digest(outcome) if outcome is not None else None,
            )
            for task, outcome in zip(self.spec.clusters, self.outcomes)
        )

    def digest(self) -> str:
        """sha256 over the ordered per-cluster outcome digests.

        The fleet-level identity the golden CI checks pin: it changes
        exactly when any shard's behavioral outcome changes (or a shard
        fails), independent of engine, chunking, worker count, and
        resume history.
        """
        h = hashlib.sha256()
        for name, digest in self.cluster_digests():
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            h.update((digest or "failed").encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    def reconcile(self) -> None:
        """Re-derive every aggregate from the shard outcomes; must match.

        Raises :class:`SimulationError` on any discrepancy — this is the
        exact-aggregation guarantee, not a tolerance check.
        """
        fresh_baseline, fresh_green = SnapshotStats(), SnapshotStats()
        counts = {
            "placed_vms": 0,
            "rejected_vms": 0,
            "green_placements": 0,
            "fallback_placements": 0,
        }
        for outcome in self.outcomes:
            if outcome is None:
                continue
            counts["placed_vms"] += outcome.placed_vms
            counts["rejected_vms"] += len(outcome.rejected_vms)
            counts["green_placements"] += outcome.green_placements
            counts["fallback_placements"] += outcome.fallback_placements
            fresh_baseline.merge(outcome.baseline_stats)
            fresh_green.merge(outcome.green_stats)
        for name, value in counts.items():
            if getattr(self, name) != value:
                raise SimulationError(
                    f"fleet aggregate {name} diverged: merged "
                    f"{getattr(self, name)}, re-derived {value}"
                )
        if fresh_baseline.canonical() != self.baseline_stats.canonical():
            raise SimulationError("fleet baseline stats diverged on merge")
        if fresh_green.canonical() != self.green_stats.canonical():
            raise SimulationError("fleet green stats diverged on merge")


def _adoption_key(adoption: AdoptionPolicy) -> str:
    """A stable identity for an adoption policy.

    Functions repr with their memory address, which would bust the cache
    every process; their qualified name is the stable part.  Policy
    *objects* (e.g. ``AdoptionModel``) key on their repr, which for the
    frozen dataclasses is a pure function of their fields.
    """
    qualname = getattr(adoption, "__qualname__", None)
    if qualname is not None:
        module = getattr(adoption, "__module__", "")
        return f"{module}.{qualname}"
    return repr(adoption)


@dataclass(frozen=True)
class _ClusterJob:
    """The picklable unit of work a fleet worker executes.

    Placement policy and grid signal travel as *names* (policies hold
    closures, which do not pickle); workers rebuild the live objects via
    :mod:`repro.carbon.grid`.
    """

    task: ClusterTask
    adoption: AdoptionPolicy
    engine: Optional[str]
    chunk_events: int
    snapshot_hours: float
    mmap: bool
    placement_policy: str = "blind"
    grid_signal: Optional[str] = None


def _job_key(job: _ClusterJob) -> str:
    """Engine/chunk-independent cache key (outcomes are bit-identical)."""
    return content_key(
        FLEET_KEY_VERSION,
        job.task.name,
        job.task.seed,
        job.task.params,
        job.task.cluster,
        _adoption_key(job.adoption),
        job.snapshot_hours,
        job.placement_policy,
        job.grid_signal,
    )


def _load_trace(job: _ClusterJob) -> VmTrace:
    """The shard's trace: store columns when enabled, else generated.

    Store hits with ``mmap=True`` stream columns from disk, so a worker
    holds at most its chunk window plus active-VM state in memory —
    full-fleet rows are never materialized.
    """
    from .store import TraceStore, store_enabled

    task = job.task
    if store_enabled():
        store = TraceStore()
        trace = store.get(task.seed, task.params, task.name, mmap=job.mmap)
        if trace is not None:
            return trace
        trace = generate_trace(task.seed, task.params, name=task.name)
        store.put(task.seed, task.params, trace.columns)
        return trace
    return generate_trace(task.seed, task.params, name=task.name)


def _run_cluster(job: _ClusterJob) -> SimOutcome:
    """Replay one shard through the streaming columnar path.

    Rebuilds the placement policy / carbon accountant from their string
    names inside the worker (live policies close over an unpicklable
    carbon key).
    """
    trace = _load_trace(job)
    placement = accountant = None
    if job.grid_signal is not None:
        from ..carbon import grid

        signal = grid.grid_signal(job.grid_signal)
        accountant = grid.CarbonAccountant(signal)
        if job.placement_policy == "carbon_aware":
            placement = grid.carbon_aware_policy(signal)
    return replay_columnar(
        trace,
        job.task.cluster,
        job.adoption,
        snapshot_hours=job.snapshot_hours,
        engine=job.engine,
        chunk_events=job.chunk_events,
        placement=placement,
        accountant=accountant,
    )


def simulate_fleet(
    spec: FleetSpec,
    adoption: AdoptionPolicy = adopt_nothing,
    snapshot_hours: float = 6.0,
    engine: Optional[str] = None,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    mmap: bool = True,
    jobs: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    policy: Optional[ResiliencePolicy] = None,
    placement_policy: str = "blind",
    grid_signal: Optional[str] = None,
) -> FleetOutcome:
    """Replay every cluster of ``spec`` and merge the outcomes exactly.

    Shards fan out through :func:`resilient_map`, so fleet runs inherit
    the PR 5 substrate wholesale: checkpoint/resume via the active
    journal, retries with per-attempt timeouts, deterministic fault
    injection, and degraded completion under ``on_failure="record"``
    (failed shards surface in ``FleetOutcome.failures`` and leave
    ``None`` holes in ``outcomes`` — the aggregates then cover the
    survivors only, and ``feasible`` is False).

    ``adoption`` must be picklable (a module-level function or a policy
    object) so workers can receive it.  ``engine``/``chunk_events``
    select the replay backend per the usual resolution order but are
    deliberately *excluded* from the cache key — outcomes are
    bit-identical across backends by contract, so resumed journals stay
    valid across backend switches.

    The merged aggregates are reconciled against the shard outcomes
    before returning (raises :class:`SimulationError` on any bit of
    divergence).

    ``placement_policy`` / ``grid_signal`` are *names* (see
    ``CARBON_PLACEMENT_POLICIES`` and ``repro.carbon.grid.GRID_SIGNALS``)
    so jobs stay picklable; workers rebuild the live policy and a
    :class:`~repro.carbon.grid.CarbonAccountant` per shard.  Both enter
    the cache key — a carbon-aware fleet never reuses a blind journal.
    """
    if snapshot_hours <= 0:
        raise ConfigError("snapshot interval must be > 0")
    if placement_policy not in CARBON_PLACEMENT_POLICIES:
        raise ConfigError(
            f"unknown placement policy {placement_policy!r}; "
            f"known: {CARBON_PLACEMENT_POLICIES}"
        )
    if grid_signal is not None:
        from ..carbon.grid import GRID_SIGNALS

        if grid_signal not in GRID_SIGNALS:
            raise ConfigError(
                f"unknown grid signal {grid_signal!r}; "
                f"known: {GRID_SIGNALS}"
            )
    elif placement_policy == "carbon_aware":
        raise ConfigError("carbon_aware placement needs a grid_signal")
    engine_name = resolve_engine(engine)
    task_jobs = [
        _ClusterJob(
            task=task,
            adoption=adoption,
            engine=engine_name,
            chunk_events=chunk_events,
            snapshot_hours=snapshot_hours,
            mmap=mmap,
            placement_policy=placement_policy,
            grid_signal=grid_signal,
        )
        for task in spec.clusters
    ]
    with telemetry.timer("fleet.simulate"):
        results = resilient_map(
            _run_cluster,
            task_jobs,
            key_fn=_job_key,
            jobs=jobs,
            cache=cache,
            policy=policy,
        )
    outcome = FleetOutcome(spec=spec, outcomes=[None] * len(task_jobs))
    for slot, result in enumerate(results):
        if isinstance(result, TaskFailure):
            outcome.failures.append(result)
            telemetry.count("fleet.failed_clusters")
            continue
        outcome.outcomes[slot] = result
        outcome.placed_vms += result.placed_vms
        outcome.rejected_vms += len(result.rejected_vms)
        outcome.green_placements += result.green_placements
        outcome.fallback_placements += result.fallback_placements
        outcome.baseline_stats.merge(result.baseline_stats)
        outcome.green_stats.merge(result.green_stats)
    telemetry.count("fleet.clusters", outcome.completed_clusters)
    telemetry.count("fleet.placed_vms", outcome.placed_vms)
    outcome.reconcile()
    return outcome
