"""Cluster simulation: replay a VM trace against a cluster of servers.

This is GSF's VM allocation component.  Given a trace of VM
arrivals/departures, a cluster configuration (how many baseline SKUs and
GreenSKUs), and the adoption component's per-application decisions, the
simulator replays the trace under the production scheduler's rules and
reports:

- whether the cluster hosts the workload without rejecting any VM,
- packing densities of cores and memory on non-empty servers (Fig. 9),
- the mean per-server maximum memory utilization (Fig. 10), used to
  validate that untouched memory can be backed by CXL-attached DRAM.

VMs whose application adopted the GreenSKU are scaled by the application's
scaling factor and prefer GreenSKU capacity but may *fungibly* fall back
to baseline SKUs (the paper's growth-buffer workaround); non-adopters and
full-node VMs run only on baseline SKUs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import CapacityError, ConfigError
from ..hardware.sku import ServerSKU
from ..perf.apps import APP_BY_NAME
from ..perf.pond import plan_tiering
from .scheduler import BestFitScheduler, Server
from .traces import VmTrace

#: An adoption policy maps (app_name, generation) to a scaling factor, or
#: None when the application must stay on baseline SKUs.
AdoptionPolicy = Callable[[str, int], Optional[float]]


def adopt_nothing(app_name: str, generation: int) -> Optional[float]:
    """Policy for baseline-only clusters: no VM adopts the GreenSKU."""
    return None


def adopt_everything(app_name: str, generation: int) -> Optional[float]:
    """Naive policy (ablation): every VM adopts, unscaled."""
    return 1.0


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster configuration: counted SKUs.

    The paper's clusters are logical units of hundreds of servers mixing
    baseline SKUs and GreenSKUs.
    """

    skus: Tuple[Tuple[ServerSKU, int], ...]

    def __post_init__(self) -> None:
        if not self.skus:
            raise ConfigError("a cluster needs at least one SKU entry")
        for _sku, count in self.skus:
            if count < 0:
                raise ConfigError("server counts must be >= 0")

    @classmethod
    def of(cls, *pairs: Tuple[ServerSKU, int]) -> "ClusterSpec":
        return cls(skus=tuple(pairs))

    @property
    def total_servers(self) -> int:
        return sum(count for _s, count in self.skus)

    @property
    def baseline_servers(self) -> int:
        return sum(c for s, c in self.skus if s.generation != 0)

    @property
    def green_servers(self) -> int:
        return sum(c for s, c in self.skus if s.generation == 0)

    def build_servers(self) -> List[Server]:
        """Instantiate mutable server state for a simulation run."""
        servers: List[Server] = []
        next_id = 0
        for sku, count in self.skus:
            for _ in range(count):
                servers.append(Server(next_id, sku))
                next_id += 1
        return servers


@dataclass
class SnapshotStats:
    """Accumulated per-snapshot, per-server statistics."""

    core_density_sum: float = 0.0
    memory_density_sum: float = 0.0
    touched_memory_sum: float = 0.0
    cxl_utilization_sum: float = 0.0
    samples: int = 0

    def observe(self, server: Server) -> None:
        self.core_density_sum += server.core_density
        self.memory_density_sum += server.memory_density
        self.touched_memory_sum += server.touched_memory_fraction
        self.cxl_utilization_sum += server.cxl_utilization
        self.samples += 1

    @property
    def mean_core_density(self) -> float:
        return self.core_density_sum / self.samples if self.samples else 0.0

    @property
    def mean_memory_density(self) -> float:
        return self.memory_density_sum / self.samples if self.samples else 0.0

    @property
    def mean_touched_memory(self) -> float:
        return self.touched_memory_sum / self.samples if self.samples else 0.0

    @property
    def mean_cxl_utilization(self) -> float:
        """Mean CXL-pool usage (Pond tiering) on the observed servers."""
        return (
            self.cxl_utilization_sum / self.samples if self.samples else 0.0
        )


@dataclass
class SimOutcome:
    """Result of replaying one trace against one cluster.

    Attributes:
        cluster: The configuration simulated.
        placed_vms: Successfully hosted VMs.
        rejected_vms: VMs no server could host (empty = feasible).
        green_placements: VMs that landed on GreenSKU servers.
        fallback_placements: Adopting VMs that fungibly fell back to a
            baseline server for lack of GreenSKU capacity.
        baseline_stats / green_stats: Snapshot statistics on non-empty
            servers, split by server kind.
    """

    cluster: ClusterSpec
    placed_vms: int = 0
    rejected_vms: List[int] = field(default_factory=list)
    green_placements: int = 0
    fallback_placements: int = 0
    baseline_stats: SnapshotStats = field(default_factory=SnapshotStats)
    green_stats: SnapshotStats = field(default_factory=SnapshotStats)

    @property
    def feasible(self) -> bool:
        """No VM was rejected."""
        return not self.rejected_vms


def simulate(
    trace: VmTrace,
    cluster: ClusterSpec,
    adoption: AdoptionPolicy = adopt_nothing,
    snapshot_hours: float = 6.0,
    raise_on_reject: bool = False,
    scheduler: Optional[BestFitScheduler] = None,
) -> SimOutcome:
    """Replay ``trace`` against ``cluster`` under ``adoption``.

    Args:
        trace: VM arrivals/departures.
        cluster: Cluster configuration to test.
        adoption: Adoption policy; maps (app, generation) to a scaling
            factor or None.
        snapshot_hours: Interval between packing-density snapshots.
        raise_on_reject: Raise :class:`CapacityError` at the first
            rejection instead of recording it (used by sizing searches to
            exit early).
        scheduler: Placement heuristic (default: production best-fit);
            pass a first-fit/worst-fit scheduler for ablations.
    """
    if snapshot_hours <= 0:
        raise ConfigError("snapshot interval must be > 0")
    servers = cluster.build_servers()
    green_pool = [s for s in servers if s.is_green]
    base_pool = [s for s in servers if not s.is_green]
    # Generation routing: when the cluster contains generation-specific
    # baseline SKUs, a VM's baseline placements go to its own generation's
    # pool (old VM images run on their own hardware generation); clusters
    # with a single baseline generation behave as before.
    base_by_gen: Dict[int, List[Server]] = {}
    for server in base_pool:
        base_by_gen.setdefault(server.sku.generation, []).append(server)

    def baseline_pool_for(generation: int) -> List[Server]:
        if len(base_by_gen) > 1 and generation in base_by_gen:
            return base_by_gen[generation]
        return base_pool

    scheduler = scheduler or BestFitScheduler()
    outcome = SimOutcome(cluster=cluster)

    # Departures as a heap of (time, vm_id, server); arrivals in order.
    departures: List[Tuple[float, int, Server]] = []
    next_snapshot = snapshot_hours

    def take_snapshots_until(now: float) -> None:
        nonlocal next_snapshot
        while next_snapshot <= now:
            for server in servers:
                if server.is_empty:
                    continue
                stats = (
                    outcome.green_stats
                    if server.is_green
                    else outcome.baseline_stats
                )
                stats.observe(server)
            next_snapshot += snapshot_hours

    for vm in trace.vms:
        # Release departures and take snapshots up to this arrival.
        while departures and departures[0][0] <= vm.arrival_hours:
            dep_time, vm_id, server = heapq.heappop(departures)
            take_snapshots_until(dep_time)
            server.remove(vm_id)
        take_snapshots_until(vm.arrival_hours)

        factor = None if vm.full_node else adoption(vm.app_name, vm.generation)
        placed_server: Optional[Server] = None
        cores, memory_gb = vm.cores, vm.memory_gb
        if factor is not None and green_pool:
            scaled = vm.scaled(factor)
            placed_server = scheduler.choose(
                vm, green_pool, scaled.cores, scaled.memory_gb
            )
            if placed_server is not None:
                cores, memory_gb = scaled.cores, scaled.memory_gb
        if placed_server is None:
            # Non-adopters, full-node VMs, and fungible fallback.
            placed_server = scheduler.choose(
                vm, baseline_pool_for(vm.generation), cores, memory_gb
            )
            if placed_server is not None and factor is not None:
                outcome.fallback_placements += 1
        if placed_server is None:
            if raise_on_reject:
                raise CapacityError(
                    f"VM {vm.vm_id} rejected by cluster "
                    f"({cluster.total_servers} servers)"
                )
            outcome.rejected_vms.append(vm.vm_id)
            continue

        # Pond tiering: on CXL-equipped servers, place the VM's predicted-
        # untouched memory (or, for tolerant apps, everything) on the CXL
        # pool, bounded by the pool's remaining capacity.
        cxl_gb = 0.0
        if (
            placed_server.is_green
            and placed_server.total_cxl_gb > 0
            and not vm.full_node
        ):
            app = APP_BY_NAME.get(vm.app_name)
            if app is not None:
                plan = plan_tiering(
                    app,
                    memory_gb,
                    vm.max_memory_fraction,
                    server_cxl_fraction=placed_server.sku.cxl_fraction,
                )
                cxl_gb = min(plan.cxl_gb, placed_server.free_cxl_gb)
        placed_server.place(vm, cores, memory_gb, cxl_gb=cxl_gb)
        outcome.placed_vms += 1
        if placed_server.is_green:
            outcome.green_placements += 1
        if math.isfinite(vm.departure_hours):
            heapq.heappush(
                departures, (vm.departure_hours, vm.vm_id, placed_server)
            )

    # Drain remaining departures within the trace window for final
    # snapshots.
    end = trace.duration_hours
    while departures and departures[0][0] <= end:
        dep_time, vm_id, server = heapq.heappop(departures)
        take_snapshots_until(dep_time)
        server.remove(vm_id)
    take_snapshots_until(end)
    return outcome
