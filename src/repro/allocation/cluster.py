"""Cluster simulation: replay a VM trace against a cluster of servers.

This is GSF's VM allocation component.  Given a trace of VM
arrivals/departures, a cluster configuration (how many baseline SKUs and
GreenSKUs), and the adoption component's per-application decisions, the
simulator replays the trace under the production scheduler's rules and
reports:

- whether the cluster hosts the workload without rejecting any VM,
- packing densities of cores and memory on non-empty servers (Fig. 9),
- the mean per-server maximum memory utilization (Fig. 10), used to
  validate that untouched memory can be backed by CXL-attached DRAM.

VMs whose application adopted the GreenSKU are scaled by the application's
scaling factor and prefer GreenSKU capacity but may *fungibly* fall back
to baseline SKUs (the paper's growth-buffer workaround); non-adopters and
full-node VMs run only on baseline SKUs.

Three interchangeable placement backends replay the same event stream:

- the **indexed** engine (:class:`~repro.allocation.index.PlacementEngine`,
  the default) answers each placement query from an incrementally
  maintained server index and each snapshot from O(1) aggregate sums;
- the **reference** backend scans every server per query and walks every
  server per snapshot — the original implementation, kept as the
  equivalence oracle and selectable via ``simulate(..., engine=
  "reference")`` or ``REPRO_ALLOC_ENGINE=reference``;
- the **soa** engine (:class:`~repro.allocation.soa.SoAPlacementEngine`)
  keeps per-server state in parallel numpy arrays and is paired with
  the streaming columnar replay below for fleet-scale runs.

All three produce bit-identical :class:`SimOutcome` values (same server
for every VM, same exact snapshot sums); ``tests/allocation/``
holds them to it.

Two replay drivers share the placement semantics:

- :func:`_replay` — the original row loop over ``trace.vms``
  (``VmRequest`` objects plus a departure heap);
- :func:`_replay_events` / :func:`replay_columnar` — a streaming loop
  over a precomputed lexsorted arrival/departure event stream drawn
  directly from :class:`~repro.allocation.columnar.ColumnarTrace`
  arrays, processed in cache-sized chunks, never materializing
  ``VmRequest`` rows.  ``simulate(..., engine="soa")`` routes through
  it; any engine can be driven through it explicitly.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import os
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core import telemetry
from ..core.errors import CapacityError, ConfigError
from ..hardware.sku import ServerSKU
from ..perf.apps import APP_BY_NAME
from ..perf.pond import plan_tiering
from .index import METRICS, SCALE_SHIFT, KindAggregate, PlacementEngine, scaled_int
from .scheduler import BestFitScheduler, Server
from .soa import SoAPlacementEngine
from .traces import VmTrace

#: An adoption policy maps (app_name, generation) to a scaling factor, or
#: None when the application must stay on baseline SKUs.
AdoptionPolicy = Callable[[str, int], Optional[float]]

#: Selectable placement backends and the env override honored when the
#: ``simulate(engine=...)`` argument is absent.
ENGINES = ("indexed", "reference", "soa")
ENGINE_ENV = "REPRO_ALLOC_ENGINE"

#: Emission-aware placement policy names (orthogonal to the scheduler's
#: best-fit/first-fit/worst-fit heuristics): ``"blind"`` is today's
#: behavior, ``"carbon_aware"`` tiers servers by marginal operational
#: carbon.
CARBON_PLACEMENT_POLICIES = ("blind", "carbon_aware")

#: Default number of merged arrival/departure events the streaming
#: columnar replay gathers per chunk: large enough to amortize the
#: fancy-index + ``tolist`` per chunk, small enough that a chunk's
#: Python-scalar lists stay cache-resident.
DEFAULT_CHUNK_EVENTS = 4096


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve the placement backend: argument > env > indexed default."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "indexed"
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown allocation engine {engine!r}; known: {ENGINES}"
        )
    return engine


@dataclass(frozen=True)
class PlacementPolicy:
    """An emission-aware placement policy for the replay drivers.

    ``"blind"`` reproduces today's behavior bit-for-bit (the replay
    takes the exact pre-policy code path — no wrapper, no overhead).
    ``"carbon_aware"`` partitions the cluster into *tiers* of equal
    ``carbon_key`` (marginal operational carbon per core, ascending)
    and consults tiers in order: within a tier, placement is exactly
    the blind scheduler, so the policy composes with every engine and
    both replay drivers identically.

    Build ``"carbon_aware"`` policies with
    :func:`repro.carbon.grid.carbon_aware_policy`, which derives
    ``carbon_key`` from the carbon model's Eq. 1 watts-per-core and
    attaches the grid :class:`~repro.carbon.grid.CarbonSignal` (opaque
    to this layer — with a single signal the instantaneous intensity
    scales every server equally, so the tier ordering is static).

    Attributes:
        name: One of :data:`CARBON_PLACEMENT_POLICIES`.
        carbon_key: SKU -> finite rank; required for ``carbon_aware``.
        signal: The attached grid signal (metadata; not read here).
    """

    name: str
    carbon_key: Optional[Callable[[ServerSKU], float]] = None
    signal: Optional[object] = None

    def __post_init__(self) -> None:
        if self.name not in CARBON_PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {self.name!r}; "
                f"known: {CARBON_PLACEMENT_POLICIES}"
            )
        if self.name == "carbon_aware" and self.carbon_key is None:
            raise ConfigError(
                "carbon_aware placement needs a carbon_key; build the "
                "policy with repro.carbon.grid.carbon_aware_policy(signal)"
            )


def resolve_placement(placement) -> Optional[PlacementPolicy]:
    """Normalize a placement argument to an active policy or ``None``.

    ``None``, ``"blind"``, and a blind :class:`PlacementPolicy` all
    resolve to ``None`` — the signal to take the exact pre-policy code
    path.  The string ``"carbon_aware"`` alone is rejected: the rank
    function cannot be derived without a carbon model, so callers must
    construct the policy via ``repro.carbon.grid.carbon_aware_policy``.
    """
    if placement is None:
        return None
    if isinstance(placement, str):
        if placement == "blind":
            return None
        if placement == "carbon_aware":
            raise ConfigError(
                "carbon_aware placement cannot be named by string alone; "
                "build it with repro.carbon.grid.carbon_aware_policy(signal)"
            )
        raise ConfigError(
            f"unknown placement policy {placement!r}; "
            f"known: {CARBON_PLACEMENT_POLICIES}"
        )
    if placement.name == "blind":
        return None
    return placement


def adopt_nothing(app_name: str, generation: int) -> Optional[float]:
    """Policy for baseline-only clusters: no VM adopts the GreenSKU."""
    return None


def adopt_everything(app_name: str, generation: int) -> Optional[float]:
    """Naive policy (ablation): every VM adopts, unscaled."""
    return 1.0


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster configuration: counted SKUs.

    The paper's clusters are logical units of hundreds of servers mixing
    baseline SKUs and GreenSKUs.
    """

    skus: Tuple[Tuple[ServerSKU, int], ...]

    def __post_init__(self) -> None:
        if not self.skus:
            raise ConfigError("a cluster needs at least one SKU entry")
        for _sku, count in self.skus:
            if count < 0:
                raise ConfigError("server counts must be >= 0")

    @classmethod
    def of(cls, *pairs: Tuple[ServerSKU, int]) -> "ClusterSpec":
        return cls(skus=tuple(pairs))

    @property
    def total_servers(self) -> int:
        return sum(count for _s, count in self.skus)

    @property
    def baseline_servers(self) -> int:
        return sum(c for s, c in self.skus if s.generation != 0)

    @property
    def green_servers(self) -> int:
        return sum(c for s, c in self.skus if s.generation == 0)

    def build_servers(self) -> List[Server]:
        """Instantiate mutable server state for a simulation run."""
        servers: List[Server] = []
        next_id = 0
        for sku, count in self.skus:
            for _ in range(count):
                servers.append(Server(next_id, sku))
                next_id += 1
        return servers


def _new_cum() -> Dict[str, Dict[float, int]]:
    return {metric: {} for metric in METRICS}


@dataclass
class SnapshotStats:
    """Accumulated per-snapshot, per-server statistics.

    Sums are kept *exactly*: each observed ratio contributes its float
    numerator converted losslessly to a 2**-1080 fixed-point integer,
    bucketed by the (per-SKU) capacity denominator.  Integer addition is
    associative, so per-server accumulation (the reference snapshot walk)
    and pre-aggregated merges (the indexed engine's O(1) snapshots)
    produce bit-identical state regardless of grouping — the property the
    indexed/reference equivalence suite relies on.  Means divide exactly
    (via ``Fraction``) and round to float once at the end.
    """

    samples: int = 0
    _cum: Dict[str, Dict[float, int]] = field(
        default_factory=_new_cum, repr=False
    )

    def _add(self, metric: str, denominator: float, value: int) -> None:
        if not value:
            return
        bucket = self._cum[metric]
        cum = bucket.get(denominator, 0) + value
        if cum:
            bucket[denominator] = cum
        else:
            del bucket[denominator]

    def observe(self, server: Server) -> None:
        """Accumulate one non-empty server's densities for one snapshot."""
        self._add("core", server.total_cores, scaled_int(server.allocated_cores))
        self._add(
            "mem", server.total_memory_gb, scaled_int(server.allocated_memory_gb)
        )
        self._add(
            "touched",
            server.total_memory_gb,
            scaled_int(server._touched_memory_gb),
        )
        if server.total_cxl_gb:
            self._add(
                "cxl", server.total_cxl_gb, scaled_int(server._cxl_used_gb)
            )
        self.samples += 1

    def merge_aggregate(self, aggregate: KindAggregate) -> None:
        """Fold an engine's current per-kind sums in as one snapshot."""
        for metric, sums in aggregate.sums.items():
            bucket = self._cum[metric]
            for denominator, value in sums.items():
                cum = bucket.get(denominator, 0) + value
                if cum:
                    bucket[denominator] = cum
                else:
                    del bucket[denominator]
        self.samples += aggregate.count

    def merge(self, other: "SnapshotStats") -> None:
        """Fold another stats accumulator in, exactly.

        Integer addition over the fixed-point buckets is associative, so
        merging per-cluster accumulators (the fleet driver's aggregate)
        equals accumulating every snapshot into one — the reconciliation
        the fleet outcome is checked against.
        """
        for metric, bucket in other._cum.items():
            mine = self._cum[metric]
            for denominator, value in bucket.items():
                cum = mine.get(denominator, 0) + value
                if cum:
                    mine[denominator] = cum
                else:
                    del mine[denominator]
        self.samples += other.samples

    def _sum(self, metric: str) -> float:
        total = Fraction(0)
        for denominator, cum in self._cum[metric].items():
            total += Fraction(cum) / Fraction(denominator)
        return float(total / (1 << SCALE_SHIFT))

    def _mean(self, metric: str) -> float:
        if not self.samples:
            return 0.0
        total = Fraction(0)
        for denominator, cum in self._cum[metric].items():
            total += Fraction(cum) / Fraction(denominator)
        return float(total / (self.samples << SCALE_SHIFT))

    @property
    def core_density_sum(self) -> float:
        return self._sum("core")

    @property
    def memory_density_sum(self) -> float:
        return self._sum("mem")

    @property
    def touched_memory_sum(self) -> float:
        return self._sum("touched")

    @property
    def cxl_utilization_sum(self) -> float:
        return self._sum("cxl")

    @property
    def mean_core_density(self) -> float:
        return self._mean("core")

    @property
    def mean_memory_density(self) -> float:
        return self._mean("mem")

    @property
    def mean_touched_memory(self) -> float:
        return self._mean("touched")

    @property
    def mean_cxl_utilization(self) -> float:
        """Mean CXL-pool usage (Pond tiering) on the observed servers."""
        return self._mean("cxl")

    def canonical(self) -> Tuple:
        """Order-independent digest-friendly view of the exact state."""
        return (
            self.samples,
            tuple(
                (
                    metric,
                    tuple(
                        sorted(
                            (repr(denominator), value)
                            for denominator, value in bucket.items()
                        )
                    ),
                )
                for metric, bucket in sorted(self._cum.items())
            ),
        )


@dataclass
class SimOutcome:
    """Result of replaying one trace against one cluster.

    Attributes:
        cluster: The configuration simulated.
        placed_vms: Successfully hosted VMs.
        rejected_vms: VMs no server could host (empty = feasible).
        green_placements: VMs that landed on GreenSKU servers.
        fallback_placements: Adopting VMs that fungibly fell back to a
            baseline server for lack of GreenSKU capacity.
        baseline_stats / green_stats: Snapshot statistics on non-empty
            servers, split by server kind.
        operational: The :class:`~repro.carbon.grid.OperationalCarbonReport`
            produced when an accountant was attached to the replay, else
            None.  Deliberately *excluded* from :func:`outcome_digest` —
            the digest pins placement behavior, and attaching an
            accountant must not move the blind goldens.
    """

    cluster: ClusterSpec
    placed_vms: int = 0
    rejected_vms: List[int] = field(default_factory=list)
    green_placements: int = 0
    fallback_placements: int = 0
    baseline_stats: SnapshotStats = field(default_factory=SnapshotStats)
    green_stats: SnapshotStats = field(default_factory=SnapshotStats)
    operational: Optional[object] = None

    @property
    def feasible(self) -> bool:
        """No VM was rejected."""
        return not self.rejected_vms


def outcome_digest(outcome: SimOutcome) -> str:
    """A stable sha256 digest of everything behavioral in an outcome.

    Covers placements, rejections, routing counters, and the exact
    snapshot sums — the fields the indexed/reference equivalence
    guarantee (and the CI golden checks) are stated over.
    """
    parts = (
        outcome.placed_vms,
        tuple(outcome.rejected_vms),
        outcome.green_placements,
        outcome.fallback_placements,
        outcome.baseline_stats.canonical(),
        outcome.green_stats.canonical(),
    )
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


class _ReferenceBackend:
    """The original O(n_servers) scan/walk, kept as equivalence oracle."""

    def __init__(self, servers: List[Server], scheduler: BestFitScheduler):
        self.servers = servers
        self.scheduler = scheduler
        self.stat_queries = 0
        self.stat_servers_scanned = 0
        self.green_pool = [s for s in servers if s.is_green]
        self.base_pool = [s for s in servers if not s.is_green]
        # Generation routing: when the cluster contains generation-
        # specific baseline SKUs, a VM's baseline placements go to its own
        # generation's pool (old VM images run on their own hardware
        # generation); clusters with a single baseline generation behave
        # as before.
        self.base_by_gen: Dict[int, List[Server]] = {}
        for server in self.base_pool:
            self.base_by_gen.setdefault(server.sku.generation, []).append(
                server
            )

    def has_green(self) -> bool:
        return bool(self.green_pool)

    def _baseline_pool(self, generation: int) -> List[Server]:
        if len(self.base_by_gen) > 1 and generation in self.base_by_gen:
            return self.base_by_gen[generation]
        return self.base_pool

    def choose_green(self, vm, cores: int, memory_gb: float):
        self.stat_queries += 1
        self.stat_servers_scanned += len(self.green_pool)
        return self.scheduler.choose(vm, self.green_pool, cores, memory_gb)

    def choose_baseline(self, vm, cores: int, memory_gb: float):
        pool = self._baseline_pool(vm.generation)
        self.stat_queries += 1
        self.stat_servers_scanned += len(pool)
        return self.scheduler.choose(vm, pool, cores, memory_gb)

    def place(self, server, vm, cores, memory_gb, cxl_gb=0.0):
        server.place(vm, cores, memory_gb, cxl_gb=cxl_gb)

    def remove(self, server, vm_id):
        server.remove(vm_id)

    def snapshot(self, outcome: SimOutcome) -> None:
        for server in self.servers:
            if server.is_empty:
                continue
            stats = (
                outcome.green_stats
                if server.is_green
                else outcome.baseline_stats
            )
            stats.observe(server)

    def telemetry_counters(self) -> Dict[str, int]:
        """Cumulative work counters (the replay loop folds deltas)."""
        return {
            "engine.queries": self.stat_queries,
            "engine.servers_scanned": self.stat_servers_scanned,
        }


class _IndexedBackend:
    """Adapter running the replay loop against a :class:`PlacementEngine`."""

    def __init__(self, engine: PlacementEngine):
        self.engine = engine

    def has_green(self) -> bool:
        return self.engine.green_count > 0

    def choose_green(self, vm, cores: int, memory_gb: float):
        return self.engine.choose_green(vm, cores, memory_gb)

    def choose_baseline(self, vm, cores: int, memory_gb: float):
        return self.engine.choose_baseline(vm, cores, memory_gb)

    def place(self, server, vm, cores, memory_gb, cxl_gb=0.0):
        self.engine.place(server, vm, cores, memory_gb, cxl_gb=cxl_gb)

    def remove(self, server, vm_id):
        self.engine.remove(server, vm_id)

    def snapshot(self, outcome: SimOutcome) -> None:
        self.engine.merge_stats(outcome.green_stats, outcome.baseline_stats)

    def telemetry_counters(self) -> Dict[str, int]:
        """Cumulative work counters (the replay loop folds deltas)."""
        engine = self.engine
        return {
            "engine.queries": engine.stat_queries,
            "engine.bucket_probes": engine.bucket_probes(),
            "engine.places": engine.stat_places,
            "engine.removes": engine.stat_removes,
            "engine.snapshot_merges": engine.stat_snapshot_merges,
        }


class _TieredBackend:
    """Composite backend: one inner backend per carbon tier.

    Servers are grouped by exact ``carbon_key`` value and each group
    becomes an independent inner backend of the *same* engine kind,
    consulted in ascending-key order — so ``choose_*`` prefers the
    lowest-marginal-carbon tier that can host the VM, and within a tier
    behaves exactly like the blind scheduler.  Because every engine
    builds its tiers from the same server groups in the same order, the
    composite inherits the per-tier bit-identity of the underlying
    engines: carbon-aware outcomes are engine- and driver-independent.

    Note one deliberate semantic: generation routing is computed *per
    tier*.  A multi-generation baseline fleet split across tiers routes
    within each tier's own generations; the carbon ordering outranks
    generation affinity (documented in docs/carbon_aware.md).
    """

    def __init__(self, tiers: List, owner: Dict[int, object]):
        self.tiers = tiers
        self._owner = owner  # server_id -> owning tier backend
        self.stat_tier_probes = 0

    def has_green(self) -> bool:
        return any(tier.has_green() for tier in self.tiers)

    def choose_green(self, vm, cores: int, memory_gb: float):
        for tier in self.tiers:
            self.stat_tier_probes += 1
            server = tier.choose_green(vm, cores, memory_gb)
            if server is not None:
                return server
        return None

    def choose_baseline(self, vm, cores: int, memory_gb: float):
        for tier in self.tiers:
            self.stat_tier_probes += 1
            server = tier.choose_baseline(vm, cores, memory_gb)
            if server is not None:
                return server
        return None

    def place(self, server, vm, cores, memory_gb, cxl_gb=0.0):
        self._owner[server.server_id].place(
            server, vm, cores, memory_gb, cxl_gb=cxl_gb
        )

    def remove(self, server, vm_id):
        self._owner[server.server_id].remove(server, vm_id)

    def snapshot(self, outcome: SimOutcome) -> None:
        # Snapshot accumulation is associative (exact integer buckets),
        # so folding tier by tier equals one whole-cluster walk.
        for tier in self.tiers:
            tier.snapshot(outcome)

    def telemetry_counters(self) -> Dict[str, int]:
        """Summed inner counters plus the tier-walk probe count."""
        totals: Dict[str, int] = {
            "placement.tier_probes": self.stat_tier_probes,
        }
        for tier in self.tiers:
            for key, value in tier.telemetry_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals


def _replay(
    trace: VmTrace,
    cluster: ClusterSpec,
    backend,
    adoption: AdoptionPolicy,
    snapshot_hours: float,
    raise_on_reject: bool,
    accountant=None,
) -> SimOutcome:
    """The event loop shared by both placement backends."""
    outcome = SimOutcome(cluster=cluster)
    has_green = backend.has_green()

    # Telemetry: snapshot the backend's cumulative counters up front and
    # fold the deltas (plus per-replay event tallies, accumulated as
    # plain local ints) once at the end — zero per-event overhead.
    tel = telemetry.active()
    if tel is not None:
        counters_before = backend.telemetry_counters()
        t_start = time.perf_counter()
    n_departures = 0
    n_snapshots = 0
    acct_events_before = accountant.events if accountant is not None else 0

    # Departures as a heap of (time, vm_id, server, cores); the trailing
    # cores element is never compared — (time, vm_id) is unique — it
    # just rides along for the carbon accountant.  Arrivals in order.
    # The snapshot grid anchors at the window start (first arrival), so
    # traces that begin mid-day observe the same grid as their rebased
    # twins instead of burning phantom empty snapshots from t=0.
    departures: List[Tuple[float, int, Server, int]] = []
    rows = trace.vms
    start = rows[0].arrival_hours if rows else 0.0
    next_snapshot = start + snapshot_hours

    def take_snapshots_until(now: float) -> None:
        nonlocal next_snapshot, n_snapshots
        while next_snapshot <= now:
            backend.snapshot(outcome)
            n_snapshots += 1
            next_snapshot += snapshot_hours

    try:
        for vm in trace.vms:
            # Release departures and take snapshots up to this arrival.
            while departures and departures[0][0] <= vm.arrival_hours:
                dep_time, vm_id, server, dep_cores = heapq.heappop(departures)
                take_snapshots_until(dep_time)
                backend.remove(server, vm_id)
                if accountant is not None:
                    accountant.on_remove(dep_time, server.sku, dep_cores)
                n_departures += 1
            take_snapshots_until(vm.arrival_hours)

            factor = (
                None if vm.full_node else adoption(vm.app_name, vm.generation)
            )
            placed_server: Optional[Server] = None
            cores, memory_gb = vm.cores, vm.memory_gb
            if factor is not None and has_green:
                scaled = vm.scaled(factor)
                placed_server = backend.choose_green(
                    vm, scaled.cores, scaled.memory_gb
                )
                if placed_server is not None:
                    cores, memory_gb = scaled.cores, scaled.memory_gb
            if placed_server is None:
                # Non-adopters, full-node VMs, and fungible fallback.
                placed_server = backend.choose_baseline(vm, cores, memory_gb)
                if placed_server is not None and factor is not None:
                    outcome.fallback_placements += 1
            if placed_server is None:
                if raise_on_reject:
                    raise CapacityError(
                        f"VM {vm.vm_id} rejected by cluster "
                        f"({cluster.total_servers} servers)"
                    )
                outcome.rejected_vms.append(vm.vm_id)
                continue

            # Pond tiering: on CXL-equipped servers, place the VM's
            # predicted-untouched memory (or, for tolerant apps,
            # everything) on the CXL pool, bounded by the pool's
            # remaining capacity.
            cxl_gb = 0.0
            if (
                placed_server.is_green
                and placed_server.total_cxl_gb > 0
                and not vm.full_node
            ):
                app = APP_BY_NAME.get(vm.app_name)
                if app is not None:
                    plan = plan_tiering(
                        app,
                        memory_gb,
                        vm.max_memory_fraction,
                        server_cxl_fraction=placed_server.sku.cxl_fraction,
                    )
                    cxl_gb = min(plan.cxl_gb, placed_server.free_cxl_gb)
            backend.place(placed_server, vm, cores, memory_gb, cxl_gb=cxl_gb)
            outcome.placed_vms += 1
            if placed_server.is_green:
                outcome.green_placements += 1
            if accountant is not None:
                accountant.on_place(
                    vm.arrival_hours, placed_server.sku, cores
                )
            if math.isfinite(vm.departure_hours):
                heapq.heappush(
                    departures,
                    (vm.departure_hours, vm.vm_id, placed_server, cores),
                )

        # Drain remaining departures within the trace window for final
        # snapshots.
        end = start + trace.duration_hours
        while departures and departures[0][0] <= end:
            dep_time, vm_id, server, dep_cores = heapq.heappop(departures)
            take_snapshots_until(dep_time)
            backend.remove(server, vm_id)
            if accountant is not None:
                accountant.on_remove(dep_time, server.sku, dep_cores)
            n_departures += 1
        take_snapshots_until(end)
        if accountant is not None:
            outcome.operational = accountant.finalize(end)
    finally:
        # Flush even when a probe replay aborts on its first rejection
        # (raise_on_reject), so sizing manifests account the work done.
        if tel is not None:
            deltas = {
                key: value - counters_before.get(key, 0)
                for key, value in backend.telemetry_counters().items()
            }
            deltas["alloc.replays"] = 1
            deltas["alloc.placements"] = outcome.placed_vms
            deltas["alloc.rejections"] = len(outcome.rejected_vms)
            deltas["alloc.green_placements"] = outcome.green_placements
            deltas["alloc.fallback_placements"] = outcome.fallback_placements
            deltas["alloc.departures"] = n_departures
            deltas["alloc.snapshots"] = n_snapshots
            if accountant is not None:
                deltas["carbon.accounted_events"] = (
                    accountant.events - acct_events_before
                )
            tel.count_many(deltas)
            tel.record_timer("alloc.replay", time.perf_counter() - t_start)
    return outcome


class _VmView:
    """Flyweight VM record for the streaming columnar replay.

    Carries exactly the attributes the placement backends and
    ``Server.place`` read from a ``VmRequest``; one instance is reused
    per event (backends never retain it), so arrival processing touches
    plain Python scalars without ever building dataclass rows.
    """

    __slots__ = (
        "vm_id",
        "generation",
        "app_name",
        "max_memory_fraction",
        "full_node",
    )


def _merged_events(
    columns, end: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precompute the lexsorted arrival/departure event stream.

    Returns ``(times, kinds, rows)`` where kind 1 is an arrival of trace
    row ``rows[i]`` and kind 0 the departure of that row's VM.  The
    order reproduces the row loop's heap semantics exactly: a departure
    is processed immediately before the first arrival at-or-after it
    that follows the VM's own placement (heap-ordered by ``(time,
    vm_id)`` among departures released together), and departures beyond
    the last arrival drain only up to the trace window ``end``.
    """
    arrivals = columns.arrival_hours
    n = columns.n
    if n and np.any(np.diff(arrivals) < 0):
        raise ConfigError(
            "columnar replay requires a trace sorted by arrival time"
        )
    departures = arrivals + columns.lifetime_hours
    row_index = np.arange(n, dtype=np.int64)
    # The arrival the row loop would pop this departure in front of:
    # first arrival at-or-after the departure time, but never before the
    # VM's own placement (ties between a VM's arrival and its departure
    # resolve to "placed first").
    release = np.maximum(
        np.searchsorted(arrivals, departures, side="left"), row_index + 1
    )
    keep = np.isfinite(departures) & ((release < n) | (departures <= end))
    dep_rows = np.flatnonzero(keep)
    times = np.concatenate([arrivals, departures[dep_rows]])
    order_seq = np.concatenate([row_index, release[dep_rows]])
    kinds = np.concatenate(
        [
            np.ones(n, dtype=np.int8),
            np.zeros(dep_rows.size, dtype=np.int8),
        ]
    )
    rows = np.concatenate([row_index, dep_rows])
    ties = np.concatenate([row_index, columns.vm_id[dep_rows]])
    order = np.lexsort((ties, kinds, order_seq, times))
    return times[order], kinds[order], rows[order]


def _replay_events(
    trace: VmTrace,
    cluster: ClusterSpec,
    backend,
    adoption: AdoptionPolicy,
    snapshot_hours: float,
    raise_on_reject: bool,
    chunk_events: int,
    accountant=None,
) -> SimOutcome:
    """Streaming replay over chunked columnar event arrays.

    Behaviorally identical to :func:`_replay` (same backend calls in the
    same order on the same float values) but driven by the precomputed
    event stream of :func:`_merged_events`: per chunk, the needed column
    slices are gathered with one fancy index and converted to plain
    Python scalars via ``tolist``, so the hot loop never boxes numpy
    scalars and never materializes ``VmRequest`` rows.
    """
    if chunk_events <= 0:
        raise ConfigError("chunk_events must be > 0")
    columns = trace.columns
    outcome = SimOutcome(cluster=cluster)
    has_green = backend.has_green()

    tel = telemetry.active()
    if tel is not None:
        counters_before = backend.telemetry_counters()
        t_start = time.perf_counter()
    n_departures = 0
    n_snapshots = 0
    n_chunks = 0
    acct_events_before = accountant.events if accountant is not None else 0

    start = columns.start_hours()
    end = start + trace.duration_hours
    ev_times, ev_kinds, ev_rows = _merged_events(columns, end)
    next_snapshot = start + snapshot_hours

    def take_snapshots_until(now: float) -> None:
        nonlocal next_snapshot, n_snapshots
        while next_snapshot <= now:
            backend.snapshot(outcome)
            n_snapshots += 1
            next_snapshot += snapshot_hours

    app_names = columns.app_names
    vm_id_col = columns.vm_id
    cores_col = columns.cores
    mem_col = columns.memory_gb
    gen_col = columns.generation
    app_col = columns.app_index
    mmf_col = columns.max_memory_fraction
    full_col = columns.full_node
    active: Dict[int, Tuple[object, int]] = {}  # vm_id -> (server, cores)
    view = _VmView()
    try:
        for start in range(0, ev_times.size, chunk_events):
            n_chunks += 1
            rows = ev_rows[start:start + chunk_events]
            times = ev_times[start:start + chunk_events].tolist()
            kinds = ev_kinds[start:start + chunk_events].tolist()
            vm_ids = vm_id_col[rows].tolist()
            cores_l = cores_col[rows].tolist()
            mems = mem_col[rows].tolist()
            gens = gen_col[rows].tolist()
            apps = app_col[rows].tolist()
            mmfs = mmf_col[rows].tolist()
            fulls = full_col[rows].tolist()
            for j in range(len(times)):
                vm_id = vm_ids[j]
                if not kinds[j]:
                    # Departure; VMs that were rejected at arrival have
                    # no active placement to release.
                    entry = active.pop(vm_id, None)
                    if entry is None:
                        continue
                    server, vm_cores = entry
                    take_snapshots_until(times[j])
                    backend.remove(server, vm_id)
                    if accountant is not None:
                        accountant.on_remove(times[j], server.sku, vm_cores)
                    n_departures += 1
                    continue
                take_snapshots_until(times[j])
                full_node = fulls[j]
                generation = gens[j]
                app_name = app_names[apps[j]]
                cores = cores_l[j]
                memory_gb = mems[j]
                factor = (
                    None if full_node else adoption(app_name, generation)
                )
                view.vm_id = vm_id
                view.generation = generation
                view.app_name = app_name
                view.max_memory_fraction = mmfs[j]
                view.full_node = full_node
                placed_server = None
                if factor is not None and has_green:
                    # Inline of VmRequest.scaled: same validation, same
                    # ceil/multiply arithmetic on the same floats.
                    if factor < 1.0 or not math.isfinite(factor):
                        raise ConfigError(
                            f"scaling factor must be a finite value >= 1, "
                            f"got {factor}"
                        )
                    if factor == 1.0:
                        scaled_cores, scaled_mem = cores, memory_gb
                    else:
                        scaled_cores = int(math.ceil(cores * factor))
                        scaled_mem = memory_gb * factor
                    placed_server = backend.choose_green(
                        view, scaled_cores, scaled_mem
                    )
                    if placed_server is not None:
                        cores, memory_gb = scaled_cores, scaled_mem
                if placed_server is None:
                    placed_server = backend.choose_baseline(
                        view, cores, memory_gb
                    )
                    if placed_server is not None and factor is not None:
                        outcome.fallback_placements += 1
                if placed_server is None:
                    if raise_on_reject:
                        raise CapacityError(
                            f"VM {vm_id} rejected by cluster "
                            f"({cluster.total_servers} servers)"
                        )
                    outcome.rejected_vms.append(vm_id)
                    continue
                cxl_gb = 0.0
                if (
                    placed_server.is_green
                    and placed_server.total_cxl_gb > 0
                    and not full_node
                ):
                    app = APP_BY_NAME.get(app_name)
                    if app is not None:
                        plan = plan_tiering(
                            app,
                            memory_gb,
                            view.max_memory_fraction,
                            server_cxl_fraction=(
                                placed_server.sku.cxl_fraction
                            ),
                        )
                        cxl_gb = min(plan.cxl_gb, placed_server.free_cxl_gb)
                backend.place(
                    placed_server, view, cores, memory_gb, cxl_gb=cxl_gb
                )
                outcome.placed_vms += 1
                if placed_server.is_green:
                    outcome.green_placements += 1
                if accountant is not None:
                    accountant.on_place(times[j], placed_server.sku, cores)
                active[vm_id] = (placed_server, cores)
        take_snapshots_until(end)
        if accountant is not None:
            outcome.operational = accountant.finalize(end)
    finally:
        if tel is not None:
            deltas = {
                key: value - counters_before.get(key, 0)
                for key, value in backend.telemetry_counters().items()
            }
            deltas["alloc.replays"] = 1
            deltas["alloc.columnar_replays"] = 1
            deltas["alloc.event_chunks"] = n_chunks
            deltas["alloc.placements"] = outcome.placed_vms
            deltas["alloc.rejections"] = len(outcome.rejected_vms)
            deltas["alloc.green_placements"] = outcome.green_placements
            deltas["alloc.fallback_placements"] = outcome.fallback_placements
            deltas["alloc.departures"] = n_departures
            deltas["alloc.snapshots"] = n_snapshots
            if accountant is not None:
                deltas["carbon.accounted_events"] = (
                    accountant.events - acct_events_before
                )
            tel.count_many(deltas)
            tel.record_timer("alloc.replay", time.perf_counter() - t_start)
    return outcome


def _build_one_backend(
    engine_name: str,
    servers: List[Server],
    scheduler: BestFitScheduler,
    track_stats: bool,
):
    """Instantiate one flat placement backend for a resolved engine name."""
    if engine_name == "reference":
        return _ReferenceBackend(servers, scheduler)
    if engine_name == "soa":
        return SoAPlacementEngine(
            servers, policy=scheduler.policy, track_stats=track_stats
        )
    return _IndexedBackend(
        PlacementEngine(
            servers, policy=scheduler.policy, track_stats=track_stats
        )
    )


def _build_backend(
    engine_name: str,
    servers: List[Server],
    scheduler: BestFitScheduler,
    track_stats: bool,
    placement: Optional[PlacementPolicy] = None,
):
    """Instantiate the placement backend, tiered when carbon-aware.

    With an active ``carbon_aware`` policy, servers are grouped by the
    exact value of ``placement.carbon_key(sku)`` and each group gets
    its own inner backend of the requested engine kind (ascending key
    order; a group keeps its servers' original ascending-id order, so
    the per-tier min-id tie-break is engine-independent).
    """
    if placement is not None and placement.name == "carbon_aware":
        keyed: Dict[float, List[Server]] = {}
        for server in servers:
            key = float(placement.carbon_key(server.sku))
            if not math.isfinite(key):
                raise ConfigError(
                    f"carbon_key returned non-finite rank {key!r} for "
                    f"SKU {server.sku.name!r}"
                )
            keyed.setdefault(key, []).append(server)
        tiers: List = []
        owner: Dict[int, object] = {}
        for key in sorted(keyed):
            group = keyed[key]
            tier = _build_one_backend(
                engine_name, group, scheduler, track_stats
            )
            tiers.append(tier)
            for server in group:
                owner[server.server_id] = tier
        return _TieredBackend(tiers, owner)
    return _build_one_backend(engine_name, servers, scheduler, track_stats)


def replay_columnar(
    trace: VmTrace,
    cluster: ClusterSpec,
    adoption: AdoptionPolicy = adopt_nothing,
    snapshot_hours: float = 6.0,
    raise_on_reject: bool = False,
    scheduler: Optional[BestFitScheduler] = None,
    engine: Optional[str] = None,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    placement=None,
    accountant=None,
) -> SimOutcome:
    """Streaming columnar replay of ``trace`` against ``cluster``.

    The fleet-scale entry point: consumes :class:`ColumnarTrace` arrays
    directly (including memory-mapped store loads) through the chunked
    event-stream loop, with any placement engine.  Bit-identical to
    :func:`simulate` on the same inputs for every engine and chunk size
    — the equivalence suite pins ``outcome_digest`` across
    {reference, indexed, soa} × chunk sizes.

    ``chunk_events`` bounds how many merged events are gathered per
    fancy-index batch (memory ~O(chunk), independent of trace size).
    ``placement`` / ``accountant`` mirror :func:`simulate`.
    """
    if snapshot_hours <= 0:
        raise ConfigError("snapshot interval must be > 0")
    engine_name = resolve_engine(engine)
    scheduler = scheduler or BestFitScheduler()
    backend = _build_backend(
        engine_name,
        cluster.build_servers(),
        scheduler,
        _wants_stats(trace, snapshot_hours),
        placement=resolve_placement(placement),
    )
    return _replay_events(
        trace,
        cluster,
        backend,
        adoption,
        snapshot_hours,
        raise_on_reject,
        chunk_events,
        accountant=accountant,
    )


def replay_on_engine(
    trace: VmTrace,
    cluster: ClusterSpec,
    engine,
    adoption: AdoptionPolicy = adopt_nothing,
    snapshot_hours: float = 1e9,
    raise_on_reject: bool = False,
    chunk_events: Optional[int] = None,
    accountant=None,
) -> SimOutcome:
    """Replay a trace against a caller-prepared placement engine.

    This is the probe-reuse entry point for sizing searches: the caller
    owns the engine (a :class:`PlacementEngine` or
    :class:`SoAPlacementEngine`), adjusts its server set between probes,
    and calls its ``reset`` before each replay.  ``cluster`` only
    describes the configuration for the outcome record; the servers
    actually used are the engine's.

    ``chunk_events`` switches the drive loop: ``None`` (default) walks
    ``VmRequest`` rows; an integer streams the chunked columnar event
    arrays instead — bit-identical, but never materializing rows.
    """
    if snapshot_hours <= 0:
        raise ConfigError("snapshot interval must be > 0")
    backend = (
        _IndexedBackend(engine)
        if isinstance(engine, PlacementEngine)
        else engine
    )
    if chunk_events is None:
        return _replay(
            trace,
            cluster,
            backend,
            adoption,
            snapshot_hours,
            raise_on_reject,
            accountant=accountant,
        )
    return _replay_events(
        trace,
        cluster,
        backend,
        adoption,
        snapshot_hours,
        raise_on_reject,
        chunk_events,
        accountant=accountant,
    )


def _wants_stats(trace: VmTrace, snapshot_hours: float) -> bool:
    """Whether any snapshot can fire during this replay.

    Snapshots trigger at event times, which are bounded by the trace
    window end and the last arrival; sizing probes pass a sentinel
    interval (1e9 h) beyond both, letting the indexed engine skip
    aggregate maintenance entirely in the hot path.  The grid anchors at
    the window start, so the horizon is measured relative to it (a
    mid-day-starting real trace has the same horizon as its rebased
    twin).
    """
    start = trace.start_hours
    horizon = max(
        trace.duration_hours, trace.last_arrival_hours - start
    )
    return snapshot_hours <= horizon


def simulate(
    trace: VmTrace,
    cluster: ClusterSpec,
    adoption: AdoptionPolicy = adopt_nothing,
    snapshot_hours: float = 6.0,
    raise_on_reject: bool = False,
    scheduler: Optional[BestFitScheduler] = None,
    engine: Optional[str] = None,
    placement=None,
    accountant=None,
) -> SimOutcome:
    """Replay ``trace`` against ``cluster`` under ``adoption``.

    Args:
        trace: VM arrivals/departures.
        cluster: Cluster configuration to test.
        adoption: Adoption policy; maps (app, generation) to a scaling
            factor or None.
        snapshot_hours: Interval between packing-density snapshots.
        raise_on_reject: Raise :class:`CapacityError` at the first
            rejection instead of recording it (used by sizing searches to
            exit early).
        scheduler: Placement heuristic (default: production best-fit);
            pass a first-fit/worst-fit scheduler for ablations.  Both
            backends honor the scheduler's policy.
        engine: ``"indexed"`` (default), ``"reference"``, or ``"soa"``;
            ``None`` falls back to the ``REPRO_ALLOC_ENGINE`` environment
            variable, then the indexed default.  All backends are
            bit-identical in outcome; the reference scan exists as the
            equivalence oracle, the SoA engine rides the streaming
            columnar replay (:func:`replay_columnar`) for fleet-scale
            runs.
        placement: Emission-aware policy — ``None`` / ``"blind"`` / a
            :class:`PlacementPolicy`.  Blind resolves to the exact
            pre-policy code path; ``carbon_aware`` (built via
            ``repro.carbon.grid.carbon_aware_policy``) tiers servers by
            marginal operational carbon, identically on every engine.
        accountant: Optional ``repro.carbon.grid.CarbonAccountant``;
            when given, every placement/departure is integrated against
            its grid signal and the exact operational-carbon report
            lands on ``outcome.operational``.  Attaching an accountant
            never changes placement behavior or ``outcome_digest``.
    """
    if snapshot_hours <= 0:
        raise ConfigError("snapshot interval must be > 0")
    engine_name = resolve_engine(engine)
    scheduler = scheduler or BestFitScheduler()
    backend = _build_backend(
        engine_name,
        cluster.build_servers(),
        scheduler,
        _wants_stats(trace, snapshot_hours),
        placement=resolve_placement(placement),
    )
    if engine_name == "soa":
        return _replay_events(
            trace,
            cluster,
            backend,
            adoption,
            snapshot_hours,
            raise_on_reject,
            DEFAULT_CHUNK_EVENTS,
            accountant=accountant,
        )
    return _replay(
        trace,
        cluster,
        backend,
        adoption,
        snapshot_hours,
        raise_on_reject,
        accountant=accountant,
    )
