"""Trace serialization: save and load VM traces as CSV.

Synthetic traces are cheap to regenerate, but persisted traces make runs
shareable and let users feed *real* VM traces (e.g. preprocessed Azure
Public Dataset traces) into the allocation simulator: one row per VM with
the columns below.
"""

from __future__ import annotations

import csv
import io
import math
import pathlib
from typing import List, Union

from ..core.errors import ConfigError
from .traces import TraceParams, VmTrace
from .vm import VmRequest

#: CSV column order.
COLUMNS = (
    "vm_id",
    "arrival_hours",
    "lifetime_hours",
    "cores",
    "memory_gb",
    "generation",
    "app_name",
    "max_memory_fraction",
    "full_node",
)


def trace_to_csv(trace: VmTrace) -> str:
    """Serialize a trace to CSV text (``inf`` lifetimes as ``inf``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(COLUMNS)
    for vm in trace.vms:
        writer.writerow(
            [
                vm.vm_id,
                f"{vm.arrival_hours:.6g}",
                "inf" if math.isinf(vm.lifetime_hours)
                else f"{vm.lifetime_hours:.6g}",
                vm.cores,
                f"{vm.memory_gb:.6g}",
                vm.generation,
                vm.app_name,
                f"{vm.max_memory_fraction:.6g}",
                int(vm.full_node),
            ]
        )
    return buffer.getvalue()


def trace_from_csv(
    text: str,
    name: str = "loaded",
    duration_days: float = 0.0,
) -> VmTrace:
    """Parse a trace from CSV text.

    Args:
        text: CSV content with the :data:`COLUMNS` header.
        name: Name for the loaded trace.
        duration_days: Trace window *length*; 0 infers it from the
            arrival span — last arrival minus first arrival, rounded up
            to a whole day — so traces that start mid-day (real
            captures) get a window covering their activity rather than
            one measured from the epoch.
    """
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or set(COLUMNS) - set(reader.fieldnames):
        missing = set(COLUMNS) - set(reader.fieldnames or ())
        raise ConfigError(f"trace CSV is missing columns: {sorted(missing)}")
    vms: List[VmRequest] = []
    for line_no, row in enumerate(reader, start=2):
        try:
            vms.append(
                VmRequest(
                    vm_id=int(row["vm_id"]),
                    arrival_hours=float(row["arrival_hours"]),
                    lifetime_hours=float(row["lifetime_hours"]),
                    cores=int(row["cores"]),
                    memory_gb=float(row["memory_gb"]),
                    generation=int(row["generation"]),
                    app_name=row["app_name"],
                    max_memory_fraction=float(row["max_memory_fraction"]),
                    full_node=bool(int(row["full_node"])),
                )
            )
        except (KeyError, ValueError) as exc:
            raise ConfigError(
                f"trace CSV line {line_no}: {exc}"
            ) from exc
    vms.sort(key=lambda vm: vm.arrival_hours)
    if duration_days <= 0:
        first = min((vm.arrival_hours for vm in vms), default=0.0)
        last = max((vm.arrival_hours for vm in vms), default=0.0)
        duration_days = max(1.0, math.ceil((last - first) / 24.0))
    return VmTrace(
        name=name,
        params=TraceParams(duration_days=duration_days),
        vms=tuple(vms),
    )


def save_trace(trace: VmTrace, path: Union[str, pathlib.Path]) -> None:
    """Write a trace to a CSV file."""
    pathlib.Path(path).write_text(trace_to_csv(trace))


def load_trace(
    path: Union[str, pathlib.Path], name: str = ""
) -> VmTrace:
    """Read a trace from a CSV file."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigError(f"trace file not found: {path}")
    return trace_from_csv(
        path.read_text(), name=name or path.stem
    )
