"""Synthetic Azure-like VM arrival/departure traces.

The paper's packing study replays 35 production VM traces from multiple
Azure data centers.  Those traces are proprietary; this generator
synthesizes traces with the published marginals of Azure's workload
(Resource Central, Protean):

- VM core sizes concentrate on small power-of-two shapes (1-8 cores) with
  a tail of 16/32-core VMs,
- memory per core clusters around 4 GB/core (1, 2, 4, 8 GB/core mix),
- lifetimes are heavy-tailed: most VMs live under a day, a minority live
  for weeks and a few outlive the trace window,
- arrivals are Poisson with diurnal modulation,
- each VM targets a pre-defined baseline generation (old generations keep
  receiving *new* deployments, as the paper observes),
- a small share are long-living "full-node" VMs requiring dedicated
  servers,
- each VM reports the maximum fraction of its memory it ever touches
  (most servers stay below 60% — Fig. 10's precondition for backing
  untouched memory with CXL).

A trace's applications are assigned the paper's way: sample a class from
the fleet core-hour shares (Table III), then uniformly choose an
application within the class.

Two generator backends produce the **bit-identical** VM stream:

- ``vectorized`` (default): block RNG draws — the full size column in
  one ``random(2n)`` block, ``choice`` calls replaced by one uniform
  plus a cumulative-weight search (exactly what ``Generator.choice``
  does internally), scalar loops only where a stream's draw count is
  data-dependent (diurnal thinning, ziggurat exponentials, rejection
  beta/integers) — assembled into columnar arrays.
- ``reference``: the original one-VM-at-a-time loop, kept as the
  equivalence oracle for tests and golden digests.

Both consume identical draws from identical streams, so traces, digests
and every downstream experiment outcome match bit for bit; select with
``REPRO_TRACE_GENERATOR`` or the ``method=`` argument.
"""

from __future__ import annotations

import dataclasses
import math
import os
import warnings
from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import telemetry
from ..core.errors import ConfigError
from ..core.rng import RngFactory
from ..perf.apps import (
    FLEET_CORE_HOUR_SHARE,
    apps_in_class,
)
from .columnar import ColumnarTrace
from .vm import VmRequest

#: Generator backends and the env var selecting the process default.
TRACE_GENERATORS = ("vectorized", "reference")
GENERATOR_ENV = "REPRO_TRACE_GENERATOR"

#: Full-node VMs request their generation's whole server shape
#: (Gen1/2: 64 cores; Gen3: 80 cores at 9.6 GB/core); indexed by
#: generation number (slot 0 unused).
_FULL_NODE_CORES = np.array([0, 64, 64, 80], dtype=np.int64)
_FULL_NODE_GB_PER_CORE = np.array([0.0, 6.0, 8.0, 9.6], dtype=np.float64)
_FULL_NODE_SHAPES = {1: (64, 6.0), 2: (64, 8.0), 3: (80, 9.6)}


def resolve_generator(method: Optional[str] = None) -> str:
    """The generator backend: explicit arg > env var > vectorized."""
    if method is None:
        method = os.environ.get(GENERATOR_ENV) or "vectorized"
    if method not in TRACE_GENERATORS:
        raise ConfigError(
            f"unknown trace generator {method!r}; "
            f"choose from {TRACE_GENERATORS}"
        )
    return method


@dataclass(frozen=True)
class TraceParams:
    """Knobs of the synthetic trace generator.

    Attributes:
        duration_days: Trace window length.
        mean_concurrent_vms: Target steady-state VM population.
        core_sizes / core_size_weights: VM vCPU shape distribution.
        memory_per_core_gb / memory_per_core_weights: GB-per-core mix.
        short_lifetime_hours: Mean lifetime of the short-lived mode.
        long_lifetime_hours: Mean lifetime of the long-lived mode.
        long_lived_fraction: Probability a VM is long-lived.
        generation_mix: Share of deployments targeting Gen1/2/3 (the
            paper notes old generations keep growing).
        full_node_fraction: Share of VMs that need a dedicated server.
        diurnal_amplitude: Relative day/night arrival-rate swing.
        mem_touch_alpha / mem_touch_beta: Beta-distribution parameters of
            the max-touched-memory fraction (mean 0.55, matching Pond's
            finding that untouched memory is almost half of a VM's
            allocation).
    """

    duration_days: float = 14.0
    mean_concurrent_vms: int = 350
    core_sizes: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    core_size_weights: Tuple[float, ...] = (0.22, 0.28, 0.25, 0.15, 0.07, 0.03)
    memory_per_core_gb: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)
    memory_per_core_weights: Tuple[float, ...] = (0.05, 0.10, 0.40, 0.45)
    short_lifetime_hours: float = 6.0
    long_lifetime_hours: float = 24.0 * 21
    long_lived_fraction: float = 0.12
    generation_mix: Tuple[float, float, float] = (0.15, 0.30, 0.55)
    full_node_fraction: float = 0.0005
    full_node_lifetime_hours: float = 24.0 * 14
    diurnal_amplitude: float = 0.3
    mem_touch_alpha: float = 2.75
    mem_touch_beta: float = 2.25

    def __post_init__(self) -> None:
        if self.duration_days <= 0 or self.mean_concurrent_vms <= 0:
            raise ConfigError("duration and population must be > 0")
        for weights, values, label in (
            (self.core_size_weights, self.core_sizes, "core sizes"),
            (
                self.memory_per_core_weights,
                self.memory_per_core_gb,
                "memory per core",
            ),
        ):
            if len(weights) != len(values):
                raise ConfigError(f"{label}: weights/values length mismatch")
            if abs(sum(weights) - 1.0) > 1e-6:
                raise ConfigError(f"{label}: weights must sum to 1")
        if abs(sum(self.generation_mix) - 1.0) > 1e-6:
            raise ConfigError("generation mix must sum to 1")
        if not 0 <= self.full_node_fraction < 1:
            raise ConfigError("full-node fraction must be in [0, 1)")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigError("diurnal amplitude must be in [0, 1)")
        for value, label in (
            (self.short_lifetime_hours, "short lifetime"),
            (self.long_lifetime_hours, "long lifetime"),
            (self.full_node_lifetime_hours, "full-node lifetime"),
        ):
            if not value > 0 or not math.isfinite(value):
                raise ConfigError(f"{label} must be a positive finite value")
        if not 0 <= self.long_lived_fraction <= 1:
            raise ConfigError("long-lived fraction must be in [0, 1]")
        for value, label in (
            (self.mem_touch_alpha, "mem_touch_alpha"),
            (self.mem_touch_beta, "mem_touch_beta"),
        ):
            if not value > 0 or not math.isfinite(value):
                raise ConfigError(f"{label} must be a positive finite value")

    @property
    def mean_lifetime_hours(self) -> float:
        """Population-mean VM lifetime."""
        return (
            (1 - self.long_lived_fraction) * self.short_lifetime_hours
            + self.long_lived_fraction * self.long_lifetime_hours
        )

    @property
    def arrival_rate_per_hour(self) -> float:
        """Arrival rate sustaining the target population (Little's law)."""
        return self.mean_concurrent_vms / self.mean_lifetime_hours

    @classmethod
    def fit(cls, trace: "VmTrace") -> "TraceParams":
        """Marginals-fitted params for an (ingested) trace.

        Method-of-moments estimates over the trace columns — empirical
        core/memory mixes, two-mode lifetime split, Little's-law
        concurrency, diurnal Fourier amplitude, Beta moments for the
        touched-memory fraction.  Delegates to
        :func:`repro.analysis.marginals.fit_trace_params` (imported
        lazily: ``analysis`` sits above ``allocation`` in the layering).
        """
        from ..analysis.marginals import fit_trace_params

        return fit_trace_params(trace)


def _choice_cdf(weights: Sequence[float]) -> np.ndarray:
    """The cumulative-weight table ``Generator.choice(p=weights)`` builds.

    ``choice`` draws one uniform ``u`` and returns
    ``cdf.searchsorted(u, side="right")`` on exactly this (normalized)
    cumulative array, so sharing the construction keeps replacement
    draws bit-identical.
    """
    cdf = np.asarray(weights, dtype=np.float64).cumsum()
    cdf /= cdf[-1]
    return cdf


class _ParamTables:
    """Per-``TraceParams`` sampling tables, built once per params value."""

    __slots__ = (
        "core_cdf", "core_values", "mem_cdf", "mem_values",
        "gen_cdf", "gen_mix",
    )

    def __init__(self, params: TraceParams) -> None:
        self.core_cdf = _choice_cdf(params.core_size_weights)
        self.core_values = np.asarray(params.core_sizes, dtype=np.int64)
        self.mem_cdf = _choice_cdf(params.memory_per_core_weights)
        self.mem_values = np.asarray(
            params.memory_per_core_gb, dtype=np.float64
        )
        #: The probability array handed to ``choice`` by the reference
        #: loop — prebuilt once instead of ``list(params.generation_mix)``
        #: per VM; ``choice`` sees the same length and values either way.
        self.gen_mix = np.asarray(params.generation_mix, dtype=np.float64)
        self.gen_cdf = _choice_cdf(self.gen_mix)


@lru_cache(maxsize=128)
def _params_tables(params: TraceParams) -> _ParamTables:
    return _ParamTables(params)


class _AppTables:
    """Application-assignment tables (pure functions of fleet constants).

    ``flat_names`` concatenates every class's members in fleet-share
    order; ``offsets[c]`` is class ``c``'s start index in it, so a flat
    app index is ``offsets[c] + within-class index``.  This is the
    app-name interning table every generated trace shares.
    """

    __slots__ = (
        "n_classes", "shares", "members", "class_cdf", "class_cdf_list",
        "member_lens", "offsets", "flat_names",
    )

    def __init__(self) -> None:
        classes = list(FLEET_CORE_HOUR_SHARE.keys())
        shares = np.array([FLEET_CORE_HOUR_SHARE[c] for c in classes])
        self.shares = shares / shares.sum()
        self.n_classes = len(classes)
        self.members = tuple(
            tuple(app.name for app in apps_in_class(c)) for c in classes
        )
        self.class_cdf = _choice_cdf(self.shares)
        self.class_cdf_list = self.class_cdf.tolist()
        self.member_lens = [len(members) for members in self.members]
        offsets, total = [], 0
        for length in self.member_lens:
            offsets.append(total)
            total += length
        self.offsets = offsets
        self.flat_names = tuple(
            name for members in self.members for name in members
        )


_APP_TABLES: Optional[_AppTables] = None


def _app_tables() -> _AppTables:
    global _APP_TABLES
    if _APP_TABLES is None:
        _APP_TABLES = _AppTables()
    return _APP_TABLES


def _assign_app(rng: np.random.Generator) -> str:
    """Sample an application the paper's way: class share, then uniform."""
    apps = _app_tables()
    members = apps.members[rng.choice(apps.n_classes, p=apps.shares)]
    return members[rng.integers(len(members))]


class VmTrace:
    """A generated trace: VM requests sorted by arrival time.

    Canonically columnar (:class:`ColumnarTrace`); the ``vms`` row tuple
    is a lazily materialized view for code that walks VMs one at a time.
    Construct with exactly one of ``vms=`` or ``columns=``; either form
    converts to the other on demand and round-trips losslessly.
    """

    __slots__ = ("name", "params", "_rows", "_columns")

    def __init__(
        self,
        name: str,
        params: TraceParams,
        vms: Optional[Sequence[VmRequest]] = None,
        columns: Optional[ColumnarTrace] = None,
    ) -> None:
        if (vms is None) == (columns is None):
            raise ConfigError(
                "VmTrace takes exactly one of vms= or columns="
            )
        self.name = name
        self.params = params
        self._rows = tuple(vms) if vms is not None else None
        self._columns = columns

    @property
    def vms(self) -> Tuple[VmRequest, ...]:
        """The row view (materialized on first access)."""
        rows = self._rows
        if rows is None:
            rows = self._rows = self._columns.to_vms()
        return rows

    @property
    def columns(self) -> ColumnarTrace:
        """The columnar view (built on first access for row-built traces)."""
        columns = self._columns
        if columns is None:
            columns = self._columns = ColumnarTrace.from_vms(
                self._rows, base_app_names=_app_tables().flat_names
            )
        return columns

    @property
    def vm_count(self) -> int:
        """Number of VMs, without materializing rows."""
        columns = self._columns
        return len(self._rows) if columns is None else columns.n

    @property
    def duration_hours(self) -> float:
        """The trace window *length* (see :attr:`end_hours` for its end)."""
        return self.params.duration_days * 24.0

    @property
    def start_hours(self) -> float:
        """Where the trace window opens: the first VM arrival.

        Synthetic traces start at t=0; ingested real traces usually do
        not (the capture begins mid-day), so replay windows and snapshot
        grids anchor here rather than at the epoch.
        """
        return self.columns.start_hours()

    @property
    def end_hours(self) -> float:
        """Where the trace window closes: ``start_hours + duration``."""
        return self.start_hours + self.duration_hours

    @property
    def last_arrival_hours(self) -> float:
        """The latest VM arrival (0.0 for an empty trace)."""
        return self.columns.last_arrival_hours()

    def filter(self, mask: np.ndarray, name: Optional[str] = None) -> "VmTrace":
        """A sub-trace of the rows selected by a boolean column mask.

        Row order and ``vm_id`` are preserved; ``params`` carries over.
        """
        return VmTrace(
            name=name or self.name,
            params=self.params,
            columns=self.columns.take(mask),
        )

    def peak_concurrent_cores(self, step_hours: Optional[float] = None) -> int:
        """Peak simultaneous requested cores (sizing lower bound).

        Exact event sweep over the columns: departures at an instant
        release cores before arrivals at the same instant claim them
        (half-open ``[arrival, departure)`` occupancy).

        ``step_hours`` is dead: an earlier implementation sampled every
        ``step_hours`` and missed interior peaks; the exact sweep
        ignores it.  Passing it is deprecated and the parameter will be
        removed in a future release.
        """
        if step_hours is not None:
            warnings.warn(
                "peak_concurrent_cores(step_hours=...) is deprecated and "
                "ignored: the exact event sweep needs no sampling step; "
                "the parameter will be removed",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.columns.peak_concurrent_cores()

    def digest(self) -> str:
        """Content identity of the VM stream (sha256 over the columns)."""
        return self.columns.digest()

    def __repr__(self) -> str:
        return (
            f"VmTrace(name={self.name!r}, params={self.params!r}, "
            f"vms=<{self.vm_count} VMs>)"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VmTrace):
            return NotImplemented
        return (
            self.name == other.name
            and self.params == other.params
            and self.columns == other.columns
        )

    def __hash__(self) -> int:
        return hash((self.name, self.params, self.columns.digest()))

    def __reduce__(self):
        # Pickle the compact columnar form (workers rebuild rows lazily).
        return (_rebuild_trace, (self.name, self.params, self.columns))


def _rebuild_trace(
    name: str, params: TraceParams, columns: ColumnarTrace
) -> VmTrace:
    return VmTrace(name=name, params=params, columns=columns)


def generate_trace(
    seed: int,
    params: Optional[TraceParams] = None,
    name: Optional[str] = None,
    method: Optional[str] = None,
) -> VmTrace:
    """Generate one synthetic VM trace.

    Identical ``(seed, params)`` always produce the identical trace —
    independent of ``method`` (both backends replay the same per-stream
    draw schedule; see the module docstring).
    """
    params = params or TraceParams()
    method = resolve_generator(method)
    trace_name = name or f"trace-{seed}"
    with telemetry.timer("trace.generate"):
        if method == "reference":
            trace = VmTrace(
                name=trace_name,
                params=params,
                vms=_generate_vms_reference(seed, params),
            )
        else:
            trace = VmTrace(
                name=trace_name,
                params=params,
                columns=_generate_columns(seed, params),
            )
    tel = telemetry.active()
    if tel is not None:
        tel.count_many(
            {"trace.generated": 1, "trace.generated_vms": trace.vm_count}
        )
    return trace


def _generate_vms_reference(
    seed: int, params: TraceParams
) -> Tuple[VmRequest, ...]:
    """The scalar reference generator: one VM, one draw at a time.

    This is the equivalence oracle for the vectorized backend — its
    draw schedule defines the trace content and must not change.
    """
    rngs = RngFactory(seed).child("vm-trace")
    arr_rng = rngs.stream("arrivals")
    size_rng = rngs.stream("sizes")
    life_rng = rngs.stream("lifetimes")
    meta_rng = rngs.stream("metadata")
    tables = _params_tables(params)

    duration_hours = params.duration_days * 24.0
    base_rate = params.arrival_rate_per_hour
    vms: List[VmRequest] = []
    vm_id = 0

    # Seed the steady-state population present at t=0.  At steady state a
    # running VM is long-lived with probability proportional to lifetime
    # (length-biasing), and exponential residual lifetimes are memoryless,
    # so residuals draw from the same distributions.
    initial_count = int(life_rng.poisson(params.mean_concurrent_vms))
    p_long_present = (
        params.long_lived_fraction
        * params.long_lifetime_hours
        / params.mean_lifetime_hours
    )
    for _ in range(initial_count):
        cores = int(
            params.core_sizes[
                size_rng.choice(
                    len(params.core_sizes), p=params.core_size_weights
                )
            ]
        )
        gb_per_core = params.memory_per_core_gb[
            size_rng.choice(
                len(params.memory_per_core_gb),
                p=params.memory_per_core_weights,
            )
        ]
        if life_rng.random() < p_long_present:
            lifetime = life_rng.exponential(params.long_lifetime_hours)
        else:
            lifetime = life_rng.exponential(params.short_lifetime_hours)
        vms.append(
            VmRequest(
                vm_id=vm_id,
                arrival_hours=0.0,
                lifetime_hours=max(lifetime, 0.05),
                cores=cores,
                memory_gb=cores * gb_per_core,
                generation=int(
                    1 + meta_rng.choice(3, p=tables.gen_mix)
                ),
                app_name=_assign_app(meta_rng),
                max_memory_fraction=float(
                    meta_rng.beta(
                        params.mem_touch_alpha, params.mem_touch_beta
                    )
                ),
                full_node=False,
            )
        )
        vm_id += 1

    t = 0.0
    while True:
        # Thinning for the diurnal profile: propose at the peak rate,
        # accept with the instantaneous relative intensity.
        peak_rate = base_rate * (1.0 + params.diurnal_amplitude)
        t += arr_rng.exponential(1.0 / peak_rate)
        if t >= duration_hours:
            break
        intensity = 1.0 + params.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / 24.0
        )
        if arr_rng.random() > intensity / (1.0 + params.diurnal_amplitude):
            continue

        cores = int(
            params.core_sizes[
                size_rng.choice(
                    len(params.core_sizes), p=params.core_size_weights
                )
            ]
        )
        gb_per_core = params.memory_per_core_gb[
            size_rng.choice(
                len(params.memory_per_core_gb),
                p=params.memory_per_core_weights,
            )
        ]
        generation = int(
            1 + meta_rng.choice(3, p=tables.gen_mix)
        )
        full_node = bool(meta_rng.random() < params.full_node_fraction)
        if full_node:
            # Long-living full-node VMs request their generation's whole
            # server shape and hold it for weeks.
            cores, gb_per_core = _FULL_NODE_SHAPES[generation]
            lifetime = life_rng.exponential(params.full_node_lifetime_hours)
        elif life_rng.random() < params.long_lived_fraction:
            lifetime = life_rng.exponential(params.long_lifetime_hours)
        else:
            lifetime = life_rng.exponential(params.short_lifetime_hours)
        lifetime = max(lifetime, 0.05)

        vms.append(
            VmRequest(
                vm_id=vm_id,
                arrival_hours=t,
                lifetime_hours=lifetime,
                cores=cores,
                memory_gb=cores * gb_per_core,
                generation=generation,
                app_name=_assign_app(meta_rng),
                max_memory_fraction=float(
                    meta_rng.beta(params.mem_touch_alpha, params.mem_touch_beta)
                ),
                full_node=full_node,
            )
        )
        vm_id += 1
    return tuple(vms)


def _generate_columns(seed: int, params: TraceParams) -> ColumnarTrace:
    """Block-drawn trace generation, bit-identical to the reference loop.

    Each of the four RNG streams is consumed in exactly the reference's
    per-stream order; only *cross-stream* interleaving is reorganized
    (streams are independent, so that changes nothing):

    - ``sizes``: exactly two uniforms per VM, replayed as one
      ``random(2n)`` block plus cumulative-weight searches (what
      ``choice`` does internally, one call at a time).
    - ``metadata``: the per-VM draw schedule mixes fixed-cost uniforms
      with rejection-sampled ``integers``/``beta`` on one stream, so the
      loop stays scalar — but each ``choice`` (a uniform + a cdf search)
      is replaced by ``random()`` + ``bisect_right`` on the prebuilt
      cumulative tables, which is ~20x cheaper and draw-identical.
    - ``arrivals``: the diurnal thinning loop is inherently sequential
      (each proposal's timestamp feeds the next draw's acceptance test).
    - ``lifetimes``: branch-dependent draw counts (full-node VMs skip
      the long/short uniform), so sequential, with the full-node flags
      resolved from the metadata pass first.

    Columns are assembled with numpy ops whose results are bit-equal to
    the scalar arithmetic (int64*float64 products, ``maximum`` floors).
    """
    rngs = RngFactory(seed).child("vm-trace")
    arr_rng = rngs.stream("arrivals")
    size_rng = rngs.stream("sizes")
    life_rng = rngs.stream("lifetimes")
    meta_rng = rngs.stream("metadata")
    tables = _params_tables(params)
    apps = _app_tables()

    duration_hours = params.duration_days * 24.0
    base_rate = params.arrival_rate_per_hour

    # -- lifetimes stream, part 1: the initial steady-state population.
    initial_count = int(life_rng.poisson(params.mean_concurrent_vms))
    p_long_present = (
        params.long_lived_fraction
        * params.long_lifetime_hours
        / params.mean_lifetime_hours
    )
    life_random = life_rng.random
    life_exponential = life_rng.exponential
    short_hours = params.short_lifetime_hours
    long_hours = params.long_lifetime_hours
    lifetimes = [
        life_exponential(long_hours)
        if life_random() < p_long_present
        else life_exponential(short_hours)
        for _ in range(initial_count)
    ]

    # -- arrivals stream: diurnal thinning (sequential by construction).
    amplitude = params.diurnal_amplitude
    peak_rate = base_rate * (1.0 + amplitude)
    mean_gap = 1.0 / peak_rate
    accept_scale = 1.0 + amplitude
    arr_exponential = arr_rng.exponential
    arr_random = arr_rng.random
    sin = math.sin
    two_pi = 2.0 * math.pi
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += arr_exponential(mean_gap)
        if t >= duration_hours:
            break
        intensity = 1.0 + amplitude * sin(two_pi * t / 24.0)
        if arr_random() > intensity / accept_scale:
            continue
        arrivals.append(t)
    accepted_count = len(arrivals)
    total = initial_count + accepted_count

    # -- metadata stream: per-VM [gen-u, (full-u,) class-u, integers,
    #    beta]; choices become uniform + cdf search.
    meta_random = meta_rng.random
    meta_integers = meta_rng.integers
    meta_beta = meta_rng.beta
    class_cdf = apps.class_cdf_list
    member_lens = apps.member_lens
    offsets = apps.offsets
    alpha = params.mem_touch_alpha
    beta_param = params.mem_touch_beta
    gen_uniforms: List[float] = []
    full_uniforms: List[float] = []
    app_index: List[int] = []
    mem_fractions: List[float] = []
    for _ in range(initial_count):
        gen_uniforms.append(meta_random())
        cls = bisect_right(class_cdf, meta_random())
        app_index.append(offsets[cls] + int(meta_integers(member_lens[cls])))
        mem_fractions.append(meta_beta(alpha, beta_param))
    for _ in range(accepted_count):
        gen_uniforms.append(meta_random())
        full_uniforms.append(meta_random())
        cls = bisect_right(class_cdf, meta_random())
        app_index.append(offsets[cls] + int(meta_integers(member_lens[cls])))
        mem_fractions.append(meta_beta(alpha, beta_param))

    # -- lifetimes stream, part 2: arrivals (needs the full-node flags).
    full_fraction = params.full_node_fraction
    full_hours = params.full_node_lifetime_hours
    long_fraction = params.long_lived_fraction
    arrival_full = [u < full_fraction for u in full_uniforms]
    for is_full in arrival_full:
        if is_full:
            lifetimes.append(life_exponential(full_hours))
        elif life_random() < long_fraction:
            lifetimes.append(life_exponential(long_hours))
        else:
            lifetimes.append(life_exponential(short_hours))

    # -- sizes stream: one block draw for every (core, memory) pair.
    size_uniforms = size_rng.random(2 * total)
    core_idx = np.searchsorted(
        tables.core_cdf, size_uniforms[0::2], side="right"
    )
    mem_idx = np.searchsorted(
        tables.mem_cdf, size_uniforms[1::2], side="right"
    )

    # -- columnar assembly.
    generation = 1 + np.searchsorted(
        tables.gen_cdf,
        np.asarray(gen_uniforms, dtype=np.float64),
        side="right",
    ).astype(np.int64)
    full_node = np.zeros(total, dtype=np.bool_)
    full_node[initial_count:] = arrival_full
    cores = tables.core_values[core_idx]
    gb_per_core = tables.mem_values[mem_idx]
    if full_node.any():
        mask = full_node
        cores = cores.copy()
        gb_per_core = gb_per_core.copy()
        cores[mask] = _FULL_NODE_CORES[generation[mask]]
        gb_per_core[mask] = _FULL_NODE_GB_PER_CORE[generation[mask]]
    arrival_hours = np.concatenate(
        [
            np.zeros(initial_count, dtype=np.float64),
            np.asarray(arrivals, dtype=np.float64),
        ]
    )
    return ColumnarTrace(
        vm_id=np.arange(total, dtype=np.int64),
        arrival_hours=arrival_hours,
        lifetime_hours=np.maximum(
            np.asarray(lifetimes, dtype=np.float64), 0.05
        ),
        cores=cores,
        memory_gb=cores * gb_per_core,
        generation=generation,
        app_index=np.asarray(app_index, dtype=np.int64),
        max_memory_fraction=np.asarray(mem_fractions, dtype=np.float64),
        full_node=full_node,
        app_names=apps.flat_names,
    )


class _SuiteGenerateTask:
    """Picklable per-spec trace generation for ``parallel_map``."""

    def __init__(self, method: Optional[str]) -> None:
        self.method = method

    def __call__(self, spec: Tuple[int, TraceParams, str]) -> VmTrace:
        seed, params, name = spec
        return generate_trace(
            seed=seed, params=params, name=name, method=self.method
        )


def suite_specs(
    count: int = 35,
    base_seed: int = 100,
    params: Optional[TraceParams] = None,
) -> List[Tuple[int, TraceParams, str]]:
    """The ``(seed, params, name)`` spec of each suite trace.

    Splitting spec derivation from generation lets the trace store key
    entries without generating anything.
    """
    if count < 1:
        raise ConfigError("need at least one trace")
    base = params or TraceParams()
    jitter = RngFactory(base_seed).stream("suite-jitter")
    specs = []
    for i in range(count):
        scale = 0.75 + 0.5 * jitter.random()
        long_frac = min(0.3, max(0.05, base.long_lived_fraction
                                 * (0.7 + 0.6 * jitter.random())))
        trace_params = dataclasses.replace(
            base,
            mean_concurrent_vms=max(60, int(base.mean_concurrent_vms * scale)),
            long_lived_fraction=long_frac,
        )
        specs.append((base_seed + i, trace_params, f"dc-{i:02d}"))
    return specs


def production_trace_suite(
    count: int = 35,
    base_seed: int = 100,
    params: Optional[TraceParams] = None,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
    method: Optional[str] = None,
) -> List[VmTrace]:
    """The stand-in for the paper's 35 production traces.

    Each trace uses a distinct seed and mild parameter jitter (population
    and lifetime mix vary across data centers).

    When the persistent trace store is enabled (``store=`` argument, or
    the ``REPRO_TRACE_STORE``/result-cache opt-in — see
    ``allocation.store``), stored traces load from ``.npz`` and only the
    misses are generated — in parallel worker processes when ``jobs``
    (or the runner default) asks for more than one.
    """
    specs = suite_specs(count=count, base_seed=base_seed, params=params)
    if store is None:
        from .store import TraceStore, store_enabled

        store = TraceStore() if store_enabled() else None
    results: List[Optional[VmTrace]] = [None] * len(specs)
    if store is not None:
        for i, (seed, trace_params, name) in enumerate(specs):
            results[i] = store.get(seed, trace_params, name)
    missing = [i for i, trace in enumerate(results) if trace is None]
    if missing:
        task = _SuiteGenerateTask(method)
        if jobs is not None and jobs != 1 and len(missing) > 1:
            from ..core.runner import parallel_map

            fresh = parallel_map(
                task, [specs[i] for i in missing], jobs=jobs
            )
        else:
            fresh = [task(specs[i]) for i in missing]
        for i, trace in zip(missing, fresh):
            results[i] = trace
            if store is not None:
                seed, trace_params, _name = specs[i]
                store.put(seed, trace_params, trace.columns)
    return list(results)
