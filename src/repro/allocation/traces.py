"""Synthetic Azure-like VM arrival/departure traces.

The paper's packing study replays 35 production VM traces from multiple
Azure data centers.  Those traces are proprietary; this generator
synthesizes traces with the published marginals of Azure's workload
(Resource Central, Protean):

- VM core sizes concentrate on small power-of-two shapes (1-8 cores) with
  a tail of 16/32-core VMs,
- memory per core clusters around 4 GB/core (1, 2, 4, 8 GB/core mix),
- lifetimes are heavy-tailed: most VMs live under a day, a minority live
  for weeks and a few outlive the trace window,
- arrivals are Poisson with diurnal modulation,
- each VM targets a pre-defined baseline generation (old generations keep
  receiving *new* deployments, as the paper observes),
- a small share are long-living "full-node" VMs requiring dedicated
  servers,
- each VM reports the maximum fraction of its memory it ever touches
  (most servers stay below 60% — Fig. 10's precondition for backing
  untouched memory with CXL).

A trace's applications are assigned the paper's way: sample a class from
the fleet core-hour shares (Table III), then uniformly choose an
application within the class.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigError
from ..core.rng import RngFactory
from ..perf.apps import (
    FLEET_CORE_HOUR_SHARE,
    apps_in_class,
)
from .vm import VmRequest


@dataclass(frozen=True)
class TraceParams:
    """Knobs of the synthetic trace generator.

    Attributes:
        duration_days: Trace window length.
        mean_concurrent_vms: Target steady-state VM population.
        core_sizes / core_size_weights: VM vCPU shape distribution.
        memory_per_core_gb / memory_per_core_weights: GB-per-core mix.
        short_lifetime_hours: Mean lifetime of the short-lived mode.
        long_lifetime_hours: Mean lifetime of the long-lived mode.
        long_lived_fraction: Probability a VM is long-lived.
        generation_mix: Share of deployments targeting Gen1/2/3 (the
            paper notes old generations keep growing).
        full_node_fraction: Share of VMs that need a dedicated server.
        diurnal_amplitude: Relative day/night arrival-rate swing.
        mem_touch_alpha / mem_touch_beta: Beta-distribution parameters of
            the max-touched-memory fraction (mean 0.55, matching Pond's
            finding that untouched memory is almost half of a VM's
            allocation).
    """

    duration_days: float = 14.0
    mean_concurrent_vms: int = 350
    core_sizes: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    core_size_weights: Tuple[float, ...] = (0.22, 0.28, 0.25, 0.15, 0.07, 0.03)
    memory_per_core_gb: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)
    memory_per_core_weights: Tuple[float, ...] = (0.05, 0.10, 0.40, 0.45)
    short_lifetime_hours: float = 6.0
    long_lifetime_hours: float = 24.0 * 21
    long_lived_fraction: float = 0.12
    generation_mix: Tuple[float, float, float] = (0.15, 0.30, 0.55)
    full_node_fraction: float = 0.0005
    full_node_lifetime_hours: float = 24.0 * 14
    diurnal_amplitude: float = 0.3
    mem_touch_alpha: float = 2.75
    mem_touch_beta: float = 2.25

    def __post_init__(self) -> None:
        if self.duration_days <= 0 or self.mean_concurrent_vms <= 0:
            raise ConfigError("duration and population must be > 0")
        for weights, values, label in (
            (self.core_size_weights, self.core_sizes, "core sizes"),
            (
                self.memory_per_core_weights,
                self.memory_per_core_gb,
                "memory per core",
            ),
        ):
            if len(weights) != len(values):
                raise ConfigError(f"{label}: weights/values length mismatch")
            if abs(sum(weights) - 1.0) > 1e-6:
                raise ConfigError(f"{label}: weights must sum to 1")
        if abs(sum(self.generation_mix) - 1.0) > 1e-6:
            raise ConfigError("generation mix must sum to 1")
        if not 0 <= self.full_node_fraction < 1:
            raise ConfigError("full-node fraction must be in [0, 1)")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigError("diurnal amplitude must be in [0, 1)")

    @property
    def mean_lifetime_hours(self) -> float:
        """Population-mean VM lifetime."""
        return (
            (1 - self.long_lived_fraction) * self.short_lifetime_hours
            + self.long_lived_fraction * self.long_lifetime_hours
        )

    @property
    def arrival_rate_per_hour(self) -> float:
        """Arrival rate sustaining the target population (Little's law)."""
        return self.mean_concurrent_vms / self.mean_lifetime_hours


@dataclass(frozen=True)
class VmTrace:
    """A generated trace: VM requests sorted by arrival time."""

    name: str
    params: TraceParams
    vms: Tuple[VmRequest, ...]

    @property
    def duration_hours(self) -> float:
        return self.params.duration_days * 24.0

    def peak_concurrent_cores(self, step_hours: Optional[float] = None) -> int:
        """Peak simultaneous requested cores (sizing lower bound).

        Exact event sweep: sort arrival/departure events and take the
        running-sum maximum.  A VM occupies cores on the half-open
        interval ``[arrival, departure)``, so departures at an instant
        release cores before arrivals at the same instant claim them.
        (An earlier implementation sampled every ``step_hours`` and
        missed peaks between sample points; ``step_hours`` is retained
        for API compatibility and ignored.)
        """
        events: List[Tuple[float, int, int]] = []
        for vm in self.vms:
            events.append((vm.arrival_hours, 1, vm.cores))
            departure = vm.departure_hours
            if math.isfinite(departure):
                events.append((departure, 0, vm.cores))
        events.sort()
        peak = live = 0
        for _time, is_arrival, cores in events:
            if is_arrival:
                live += cores
                if live > peak:
                    peak = live
            else:
                live -= cores
        return peak


#: Lazily built application-assignment tables: (class count, normalized
#: share array, app-name tuples per class).  The share table is a pure
#: function of the fleet constants, so building it once — instead of per
#: VM — changes no RNG draw: ``rng.choice`` sees the same length and the
#: same probability values either way.
_APP_TABLES: Optional[Tuple[int, np.ndarray, Tuple[Tuple[str, ...], ...]]] = (
    None
)


def _app_tables() -> Tuple[int, np.ndarray, Tuple[Tuple[str, ...], ...]]:
    global _APP_TABLES
    if _APP_TABLES is None:
        classes = list(FLEET_CORE_HOUR_SHARE.keys())
        shares = np.array([FLEET_CORE_HOUR_SHARE[c] for c in classes])
        shares = shares / shares.sum()
        members = tuple(
            tuple(app.name for app in apps_in_class(c)) for c in classes
        )
        _APP_TABLES = (len(classes), shares, members)
    return _APP_TABLES


def _assign_app(rng: np.random.Generator) -> str:
    """Sample an application the paper's way: class share, then uniform."""
    n_classes, shares, members_by_class = _app_tables()
    members = members_by_class[rng.choice(n_classes, p=shares)]
    return members[rng.integers(len(members))]


def generate_trace(
    seed: int,
    params: Optional[TraceParams] = None,
    name: Optional[str] = None,
) -> VmTrace:
    """Generate one synthetic VM trace.

    Identical ``(seed, params)`` always produce the identical trace.
    """
    params = params or TraceParams()
    rngs = RngFactory(seed).child("vm-trace")
    arr_rng = rngs.stream("arrivals")
    size_rng = rngs.stream("sizes")
    life_rng = rngs.stream("lifetimes")
    meta_rng = rngs.stream("metadata")

    duration_hours = params.duration_days * 24.0
    base_rate = params.arrival_rate_per_hour
    vms: List[VmRequest] = []
    vm_id = 0

    # Seed the steady-state population present at t=0.  At steady state a
    # running VM is long-lived with probability proportional to lifetime
    # (length-biasing), and exponential residual lifetimes are memoryless,
    # so residuals draw from the same distributions.
    initial_count = int(life_rng.poisson(params.mean_concurrent_vms))
    p_long_present = (
        params.long_lived_fraction
        * params.long_lifetime_hours
        / params.mean_lifetime_hours
    )
    for _ in range(initial_count):
        cores = int(
            params.core_sizes[
                size_rng.choice(
                    len(params.core_sizes), p=params.core_size_weights
                )
            ]
        )
        gb_per_core = params.memory_per_core_gb[
            size_rng.choice(
                len(params.memory_per_core_gb),
                p=params.memory_per_core_weights,
            )
        ]
        if life_rng.random() < p_long_present:
            lifetime = life_rng.exponential(params.long_lifetime_hours)
        else:
            lifetime = life_rng.exponential(params.short_lifetime_hours)
        vms.append(
            VmRequest(
                vm_id=vm_id,
                arrival_hours=0.0,
                lifetime_hours=max(lifetime, 0.05),
                cores=cores,
                memory_gb=cores * gb_per_core,
                generation=int(
                    1 + meta_rng.choice(3, p=list(params.generation_mix))
                ),
                app_name=_assign_app(meta_rng),
                max_memory_fraction=float(
                    meta_rng.beta(
                        params.mem_touch_alpha, params.mem_touch_beta
                    )
                ),
                full_node=False,
            )
        )
        vm_id += 1

    t = 0.0
    while True:
        # Thinning for the diurnal profile: propose at the peak rate,
        # accept with the instantaneous relative intensity.
        peak_rate = base_rate * (1.0 + params.diurnal_amplitude)
        t += arr_rng.exponential(1.0 / peak_rate)
        if t >= duration_hours:
            break
        intensity = 1.0 + params.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / 24.0
        )
        if arr_rng.random() > intensity / (1.0 + params.diurnal_amplitude):
            continue

        cores = int(
            params.core_sizes[
                size_rng.choice(
                    len(params.core_sizes), p=params.core_size_weights
                )
            ]
        )
        gb_per_core = params.memory_per_core_gb[
            size_rng.choice(
                len(params.memory_per_core_gb),
                p=params.memory_per_core_weights,
            )
        ]
        generation = int(
            1 + meta_rng.choice(3, p=list(params.generation_mix))
        )
        full_node = bool(meta_rng.random() < params.full_node_fraction)
        if full_node:
            # Long-living full-node VMs request their generation's whole
            # server shape (Gen1/2: 64 cores; Gen3: 80 cores at 9.6
            # GB/core) and hold it for weeks.
            cores, gb_per_core = {
                1: (64, 6.0),
                2: (64, 8.0),
                3: (80, 9.6),
            }[generation]
            lifetime = life_rng.exponential(params.full_node_lifetime_hours)
        elif life_rng.random() < params.long_lived_fraction:
            lifetime = life_rng.exponential(params.long_lifetime_hours)
        else:
            lifetime = life_rng.exponential(params.short_lifetime_hours)
        lifetime = max(lifetime, 0.05)

        vms.append(
            VmRequest(
                vm_id=vm_id,
                arrival_hours=t,
                lifetime_hours=lifetime,
                cores=cores,
                memory_gb=cores * gb_per_core,
                generation=generation,
                app_name=_assign_app(meta_rng),
                max_memory_fraction=float(
                    meta_rng.beta(params.mem_touch_alpha, params.mem_touch_beta)
                ),
                full_node=full_node,
            )
        )
        vm_id += 1
    return VmTrace(
        name=name or f"trace-{seed}", params=params, vms=tuple(vms)
    )


def production_trace_suite(
    count: int = 35,
    base_seed: int = 100,
    params: Optional[TraceParams] = None,
) -> List[VmTrace]:
    """The stand-in for the paper's 35 production traces.

    Each trace uses a distinct seed and mild parameter jitter (population
    and lifetime mix vary across data centers).
    """
    if count < 1:
        raise ConfigError("need at least one trace")
    base = params or TraceParams()
    traces = []
    jitter = RngFactory(base_seed).stream("suite-jitter")
    for i in range(count):
        scale = 0.75 + 0.5 * jitter.random()
        long_frac = min(0.3, max(0.05, base.long_lived_fraction
                                 * (0.7 + 0.6 * jitter.random())))
        trace_params = dataclasses.replace(
            base,
            mean_concurrent_vms=max(60, int(base.mean_concurrent_vms * scale)),
            long_lived_fraction=long_frac,
        )
        traces.append(
            generate_trace(
                seed=base_seed + i, params=trace_params, name=f"dc-{i:02d}"
            )
        )
    return traces
