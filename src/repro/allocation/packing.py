"""Packing-density and memory-utilization aggregation (Figs. 9 and 10).

Fig. 9 plots, across the production traces, a CDF of the *mean packing
density* (allocated over allocatable cores and memory on non-empty servers)
for right-sized all-baseline clusters versus the GreenSKU servers in the
final mixed clusters.

Fig. 10 plots a CDF of the *mean per-server maximum memory utilization*:
each VM reports the maximum share of its memory it ever touches, snapshots
aggregate it per server, and the mean across servers and snapshots yields
one point per trace.  The shaded top 25% of GreenSKU-CXL's memory is the
CXL-backed region — utilization below 75% means local DDR5 suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError
from .cluster import SimOutcome


@dataclass(frozen=True)
class PackingPoint:
    """Per-trace packing metrics for one server kind."""

    trace_name: str
    mean_core_density: float
    mean_memory_density: float
    mean_touched_memory: float


def packing_point(
    outcome: SimOutcome, trace_name: str, kind: str = "baseline"
) -> PackingPoint:
    """Extract one trace's packing metrics from a simulation outcome.

    Args:
        kind: ``"baseline"`` or ``"green"`` — which servers to read.
    """
    if kind == "baseline":
        stats = outcome.baseline_stats
    elif kind == "green":
        stats = outcome.green_stats
    else:
        raise ConfigError(f"kind must be 'baseline' or 'green', not {kind!r}")
    return PackingPoint(
        trace_name=trace_name,
        mean_core_density=stats.mean_core_density,
        mean_memory_density=stats.mean_memory_density,
        mean_touched_memory=stats.mean_touched_memory,
    )


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities.

    >>> xs, ps = cdf([0.4, 0.2])
    >>> [float(x) for x in xs], [float(p) for p in ps]
    ([0.2, 0.4], [0.5, 1.0])
    """
    if len(values) == 0:
        raise ConfigError("cannot build a CDF from no values")
    xs = np.sort(np.asarray(values, dtype=float))
    ps = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ps


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Share of traces whose metric is at or below ``threshold``.

    The boundary is **inclusive**: a trace sitting exactly on the
    threshold does not exceed it.  Fig. 10 reads this at the CXL boundary
    (0.75): utilization equal to the local-DDR5 fraction still fits in
    local memory, so such a trace does not need the CXL region.

    >>> fraction_below([0.5, 0.75, 0.9], 0.75)
    0.6666666666666666
    """
    if len(values) == 0:
        raise ConfigError("no values")
    values = np.asarray(values, dtype=float)
    return float((values <= threshold).mean())
