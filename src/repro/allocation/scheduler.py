"""Best-fit VM scheduler with Azure production placement rules.

The paper's VM allocation component uses a simulator capturing the key
placement rules of Azure's production scheduler (Protean):

1. best-fit placement heuristics that reduce resource fragmentation,
2. a preference for placing VMs on non-empty nodes (empty nodes are kept
   in reserve for full-node VMs and power efficiency),
3. VM placement constraints (full-node VMs require a dedicated, empty
   baseline server; GreenSKU eligibility comes from the adoption
   component).

This module provides the mutable :class:`Server` state and the
:class:`BestFitScheduler` that ranks feasible servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..core.errors import ConfigError, SimulationError
from ..hardware.sku import ServerSKU
from .vm import VmRequest

#: Absolute slack on memory-feasibility comparisons.  All feasibility
#: predicates are phrased in *threshold form* — ``free >= need - MEM_EPS``
#: — so that a scan over servers and an indexed lookup keyed on
#: ``free_memory_gb`` evaluate the exact same float comparison and
#: therefore agree bit-for-bit at the boundary.
MEM_EPS = 1e-9


class Server:
    """Mutable allocation state of one physical server.

    Attributes:
        server_id: Unique id within the cluster.
        sku: The server's SKU (capacities derive from it).
        is_green: True when the SKU is a GreenSKU (``generation == 0``).
    """

    __slots__ = (
        "server_id",
        "sku",
        "is_green",
        "total_cores",
        "total_memory_gb",
        "total_cxl_gb",
        "free_cores",
        "free_memory_gb",
        "_vms",
        "_touched_memory_gb",
        "_cxl_used_gb",
        "dedicated",
    )

    def __init__(self, server_id: int, sku: ServerSKU):
        self.server_id = server_id
        self.sku = sku
        self.is_green = sku.generation == 0
        self.total_cores = sku.cores
        self.total_memory_gb = float(sku.memory_gb)
        self.total_cxl_gb = float(sku.cxl_memory_gb)
        self.free_cores = sku.cores
        self.free_memory_gb = float(sku.memory_gb)
        self._vms: Dict[int, Tuple[int, float, float, float]] = {}
        self._touched_memory_gb = 0.0
        self._cxl_used_gb = 0.0
        self.dedicated = False  # held by a full-node VM

    # -- capacity queries ---------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """No VMs placed."""
        return not self._vms

    @property
    def vm_count(self) -> int:
        """Number of VMs currently placed."""
        return len(self._vms)

    @property
    def allocated_cores(self) -> int:
        """Cores currently allocated to VMs."""
        return self.total_cores - self.free_cores

    @property
    def allocated_memory_gb(self) -> float:
        """Memory currently allocated to VMs."""
        return self.total_memory_gb - self.free_memory_gb

    @property
    def core_density(self) -> float:
        """Allocated over allocatable cores (the paper's packing density)."""
        return self.allocated_cores / self.total_cores

    @property
    def memory_density(self) -> float:
        """Allocated over allocatable memory."""
        return self.allocated_memory_gb / self.total_memory_gb

    @property
    def touched_memory_fraction(self) -> float:
        """Max memory its VMs ever touch, over server capacity (Fig. 10)."""
        return self._touched_memory_gb / self.total_memory_gb

    @property
    def cxl_used_gb(self) -> float:
        """Memory currently tiered onto CXL-attached DDR4 (Pond plans)."""
        return self._cxl_used_gb

    @property
    def cxl_utilization(self) -> float:
        """CXL-pool usage over CXL capacity (0 for CXL-less servers)."""
        if self.total_cxl_gb == 0:
            return 0.0
        return self._cxl_used_gb / self.total_cxl_gb

    @property
    def free_cxl_gb(self) -> float:
        """Remaining CXL-pool capacity for tiering decisions."""
        return self.total_cxl_gb - self._cxl_used_gb

    def fits(self, cores: int, memory_gb: float) -> bool:
        """Whether a request fits the remaining capacity."""
        return (
            not self.dedicated
            and cores <= self.free_cores
            and self.free_memory_gb >= memory_gb - MEM_EPS
        )

    # -- mutation -------------------------------------------------------------

    def place(
        self,
        vm: VmRequest,
        cores: int,
        memory_gb: float,
        cxl_gb: float = 0.0,
    ) -> None:
        """Place a VM consuming ``cores``/``memory_gb`` (already scaled).

        ``cxl_gb`` is the share of the VM's memory the Pond tiering plan
        put on CXL-attached DDR4; it is bookkeeping within ``memory_gb``,
        not additional capacity.
        """
        if vm.vm_id in self._vms:
            raise SimulationError(f"VM {vm.vm_id} already on server")
        if not self.fits(cores, memory_gb):
            raise SimulationError(
                f"VM {vm.vm_id} does not fit server {self.server_id}"
            )
        if cxl_gb < 0 or cxl_gb > memory_gb + 1e-9:
            raise SimulationError(
                f"VM {vm.vm_id}: CXL share {cxl_gb} outside [0, {memory_gb}]"
            )
        if cxl_gb > self.free_cxl_gb + 1e-9:
            raise SimulationError(
                f"VM {vm.vm_id}: CXL pool exhausted on server "
                f"{self.server_id}"
            )
        touched = memory_gb * vm.max_memory_fraction
        self._vms[vm.vm_id] = (cores, memory_gb, touched, cxl_gb)
        self.free_cores -= cores
        self.free_memory_gb -= memory_gb
        self._touched_memory_gb += touched
        self._cxl_used_gb += cxl_gb
        if vm.full_node:
            self.dedicated = True

    def remove(self, vm_id: int) -> None:
        """Remove a departed VM and release its resources."""
        try:
            cores, memory_gb, touched, cxl_gb = self._vms.pop(vm_id)
        except KeyError:
            raise SimulationError(
                f"VM {vm_id} not on server {self.server_id}"
            ) from None
        self.free_cores += cores
        self.free_memory_gb += memory_gb
        self._touched_memory_gb -= touched
        self._cxl_used_gb -= cxl_gb
        self.dedicated = False if not self._vms else self.dedicated

    def reset(self) -> None:
        """Restore the pristine empty state of a freshly built server.

        Place/remove cycles can leave float dust in ``free_memory_gb``;
        reusable probe contexts (sizing searches) call this between
        replays so every probe starts from exactly the state
        ``ClusterSpec.build_servers`` would produce.
        """
        self.free_cores = self.total_cores
        self.free_memory_gb = self.total_memory_gb
        self._vms.clear()
        self._touched_memory_gb = 0.0
        self._cxl_used_gb = 0.0
        self.dedicated = False

    def __repr__(self) -> str:
        return (
            f"Server({self.server_id}, {self.sku.name}, "
            f"{self.allocated_cores}/{self.total_cores}c)"
        )


@dataclass(frozen=True)
class PlacementDecision:
    """Where a VM landed and at what (possibly scaled) size."""

    server: Server
    cores: int
    memory_gb: float


#: Placement heuristics selectable for ablation studies.  ``best-fit`` is
#: the production rule set (and the paper's); the others exist to
#: quantify how much the best-fit + prefer-non-empty rules buy.
PLACEMENT_POLICIES = ("best-fit", "first-fit", "worst-fit")


class BestFitScheduler:
    """Ranks feasible servers under the production placement rules.

    Args:
        policy: ``"best-fit"`` (default, the production rules including
            the prefer-non-empty preference), ``"first-fit"`` (lowest
            server id that fits), or ``"worst-fit"`` (most remaining
            cores) — the latter two for ablation studies.
    """

    def __init__(self, policy: str = "best-fit"):
        if policy not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {policy!r}; "
                f"known: {PLACEMENT_POLICIES}"
            )
        self.policy = policy

    def _rank_key(
        self, server: Server, cores: int, memory_gb: float
    ) -> Tuple:
        if self.policy == "best-fit":
            return (
                1 if server.is_empty else 0,  # prefer non-empty (rule 2)
                server.free_cores - cores,  # best fit by cores (rule 1)
                server.free_memory_gb - memory_gb,  # tie-break by memory
            )
        if self.policy == "first-fit":
            return (server.server_id,)
        # worst-fit: most remaining cores first.
        return (-(server.free_cores - cores), server.server_id)

    def choose(
        self,
        vm: VmRequest,
        servers: Iterable[Server],
        cores: int,
        memory_gb: float,
    ) -> Optional[Server]:
        """Pick a server for a request, or None when none fits.

        Full-node VMs always require an entirely empty, non-GreenSKU
        server (a hard production constraint, kept under every policy).
        """
        if cores <= 0 or memory_gb <= 0:
            raise ConfigError("placement request must be positive")
        best: Optional[Server] = None
        best_key: Optional[Tuple] = None
        for server in servers:
            if vm.full_node:
                if server.is_green or not server.is_empty:
                    continue
                if (
                    cores > server.total_cores
                    or server.total_memory_gb < memory_gb - MEM_EPS
                ):
                    continue
            elif not server.fits(cores, memory_gb):
                continue
            key = self._rank_key(server, cores, memory_gb)
            if best_key is None or key < best_key:
                best, best_key = server, key
        return best
