"""Persistent on-disk trace store.

Generated traces are pure functions of ``(seed, TraceParams)``, so their
columnar form can be cached across processes: entries are ``.npz`` files
named by a content key over the generation inputs (plus a store version
that tracks the generator's draw schedule), living next to the PR 1
result cache (``<cache dir>/traces`` by default).

The store is opt-in, like the result cache: enable it explicitly with a
``TraceStore`` argument, via ``REPRO_TRACE_STORE=1``, or implicitly
whenever the result cache itself is on (``--cache`` / ``REPRO_CACHE``).

Corrupt entries — truncated ``.npz`` files, schema drift, content-digest
mismatches (bit rot inside a structurally valid zip), torn writes from
a crashed concurrent writer — are **quarantined**: the damaged file is
moved to ``<directory>/quarantine/`` (preserving the evidence), the
``trace.store_quarantined`` telemetry counter ticks, and the lookup
reports a miss so the trace regenerates and a clean entry is rewritten.
Nothing is ever silently overwritten in place, and a lookup never
raises on bad bytes.  Writes are atomic (per-PID temp file + rename),
so readers only ever observe complete entries.
"""

from __future__ import annotations

import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..core import telemetry
from ..core.errors import ConfigError
from ..core.ioutil import atomic_writer
from ..core.runner import cache_enabled, content_key, default_cache_dir
from .columnar import ColumnarTrace, load_columns_npz, save_columns_npz

#: Env vars: force the store on/off, and relocate it.
STORE_ENV = "REPRO_TRACE_STORE"
STORE_DIR_ENV = "REPRO_TRACE_STORE_DIR"

#: Part of every entry key; bump when the generator's draw schedule (or
#: the npz layout) changes so stale entries miss instead of lying.
STORE_VERSION = "trace-store-v1"

#: Errors that mean "this entry is unusable" (treated as a miss).
_CORRUPT_ENTRY_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    ConfigError,
    zipfile.BadZipFile,
)


def store_enabled() -> bool:
    """Whether suite generation should use the persistent store.

    ``REPRO_TRACE_STORE`` wins when set (``0``/``false``/``no``/empty
    disable); otherwise the store follows the result-cache opt-in.
    """
    env = os.environ.get(STORE_ENV)
    if env is not None:
        return env not in ("", "0", "false", "no")
    return cache_enabled()


def default_store_dir() -> Path:
    """``REPRO_TRACE_STORE_DIR`` if set, else ``<cache dir>/traces``."""
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "traces"


@dataclass
class TraceStore:
    """Content-keyed ``.npz`` store of generated columnar traces."""

    directory: Path = field(default_factory=default_store_dir)
    hits: int = 0
    misses: int = 0
    quarantined: int = 0

    def key(self, seed: int, params: object) -> str:
        """The entry key: a content hash of the generation inputs."""
        return content_key(STORE_VERSION, seed, params)

    def path(self, seed: int, params: object) -> Path:
        """Where the ``.npz`` entry for ``(seed, params)`` lives."""
        return Path(self.directory) / f"{self.key(seed, params)}.npz"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return Path(self.directory) / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside; never delete or overwrite it."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            path.replace(self.quarantine_dir / f"{path.name}.quarantined")
        except OSError:
            return  # a concurrent reader already quarantined it
        self.quarantined += 1
        telemetry.count("trace.store_quarantined")

    def get(
        self, seed: int, params: object, name: str, mmap: bool = False
    ):
        """The stored trace, or ``None`` on a miss (absent or corrupt).

        Imports lazily to avoid a module cycle with ``traces``.
        """
        from .traces import VmTrace

        columns = self.get_columns(seed, params, mmap=mmap)
        if columns is None:
            return None
        return VmTrace(name=name, params=params, columns=columns)

    def get_columns(
        self, seed: int, params: object, mmap: bool = False
    ) -> Optional[ColumnarTrace]:
        """The stored columns, or ``None``; corrupt entries quarantine.

        ``mmap=True`` memory-maps the column arrays out of the ``.npz``
        (multi-GB suites stream from disk instead of loading eagerly);
        see :func:`load_columns_npz` for the checks each path runs.
        Telemetry distinguishes the paths: every hit ticks
        ``trace.store_hits`` plus either ``trace.store_hits_mmap`` or
        ``trace.store_hits_eager``.
        """
        path = self.path(seed, params)
        if path.exists():
            try:
                columns = load_columns_npz(path, mmap=mmap)
            except _CORRUPT_ENTRY_ERRORS:
                # Unusable entry: quarantine the evidence, report a
                # miss, let regeneration write a fresh entry.
                self._quarantine(path)
            else:
                self.hits += 1
                telemetry.count("trace.store_hits")
                telemetry.count(
                    "trace.store_hits_mmap"
                    if mmap
                    else "trace.store_hits_eager"
                )
                return columns
        self.misses += 1
        telemetry.count("trace.store_misses")
        return None

    def put(self, seed: int, params: object, columns: ColumnarTrace) -> Path:
        """Write one entry atomically (per-PID tmp file + rename)."""
        path = self.path(seed, params)
        with atomic_writer(path) as tmp:
            save_columns_npz(columns, tmp)
        return path
