"""Persistent on-disk trace store.

Generated traces are pure functions of ``(seed, TraceParams)``, so their
columnar form can be cached across processes: entries are ``.npz`` files
named by a content key over the generation inputs (plus a store version
that tracks the generator's draw schedule), living next to the PR 1
result cache (``<cache dir>/traces`` by default).

The store is opt-in, like the result cache: enable it explicitly with a
``TraceStore`` argument, via ``REPRO_TRACE_STORE=1``, or implicitly
whenever the result cache itself is on (``--cache`` / ``REPRO_CACHE``).
Corrupt, truncated, or schema-mismatched entries are treated as misses —
the trace is regenerated and the entry rewritten — never as errors.
"""

from __future__ import annotations

import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..core import telemetry
from ..core.errors import ConfigError
from ..core.runner import cache_enabled, content_key, default_cache_dir
from .columnar import ColumnarTrace, load_columns_npz, save_columns_npz

#: Env vars: force the store on/off, and relocate it.
STORE_ENV = "REPRO_TRACE_STORE"
STORE_DIR_ENV = "REPRO_TRACE_STORE_DIR"

#: Part of every entry key; bump when the generator's draw schedule (or
#: the npz layout) changes so stale entries miss instead of lying.
STORE_VERSION = "trace-store-v1"

#: Errors that mean "this entry is unusable" (treated as a miss).
_CORRUPT_ENTRY_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    ConfigError,
    zipfile.BadZipFile,
)


def store_enabled() -> bool:
    """Whether suite generation should use the persistent store.

    ``REPRO_TRACE_STORE`` wins when set (``0``/``false``/``no``/empty
    disable); otherwise the store follows the result-cache opt-in.
    """
    env = os.environ.get(STORE_ENV)
    if env is not None:
        return env not in ("", "0", "false", "no")
    return cache_enabled()


def default_store_dir() -> Path:
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "traces"


@dataclass
class TraceStore:
    """Content-keyed ``.npz`` store of generated columnar traces."""

    directory: Path = field(default_factory=default_store_dir)
    hits: int = 0
    misses: int = 0

    def key(self, seed: int, params: object) -> str:
        """The entry key: a content hash of the generation inputs."""
        return content_key(STORE_VERSION, seed, params)

    def path(self, seed: int, params: object) -> Path:
        return Path(self.directory) / f"{self.key(seed, params)}.npz"

    def get(self, seed: int, params: object, name: str):
        """The stored trace, or ``None`` on a miss (absent or corrupt).

        Imports lazily to avoid a module cycle with ``traces``.
        """
        from .traces import VmTrace

        columns = self.get_columns(seed, params)
        if columns is None:
            return None
        return VmTrace(name=name, params=params, columns=columns)

    def get_columns(self, seed: int, params: object) -> Optional[ColumnarTrace]:
        path = self.path(seed, params)
        if path.exists():
            try:
                columns = load_columns_npz(path)
            except _CORRUPT_ENTRY_ERRORS:
                pass  # unreadable entry == miss; put() will rewrite it
            else:
                self.hits += 1
                telemetry.count("trace.store_hits")
                return columns
        self.misses += 1
        telemetry.count("trace.store_misses")
        return None

    def put(self, seed: int, params: object, columns: ColumnarTrace) -> Path:
        """Write one entry atomically (tmp file + rename)."""
        path = self.path(seed, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            save_columns_npz(columns, tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path
