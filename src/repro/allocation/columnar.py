"""Structure-of-arrays trace representation.

``ColumnarTrace`` holds one numpy array per VM attribute and is the
canonical in-memory and on-disk form of a trace.  Row objects
(``VmRequest``) are materialized lazily by ``VmTrace`` for code that
still walks VMs one at a time; sweeps and reductions (peak cores,
memory-utilization CDFs, sub-trace filters) operate directly on the
columns.

Application names are interned: the ``app_index`` column indexes into a
per-trace ``app_names`` tuple.  Generated traces share the fleet-wide
table (see ``traces._app_tables``); traces built from arbitrary rows
(e.g. CSV imports) extend it with first-occurrence ordering, so the
mapping — and therefore :meth:`ColumnarTrace.digest` — is a pure
function of the row sequence.
"""

from __future__ import annotations

import hashlib
import struct
import zipfile
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError
from .vm import VmRequest

#: Column name -> numpy dtype, in serialization/digest order.
COLUMN_DTYPES = (
    ("vm_id", np.int64),
    ("arrival_hours", np.float64),
    ("lifetime_hours", np.float64),
    ("cores", np.int64),
    ("memory_gb", np.float64),
    ("generation", np.int64),
    ("app_index", np.int64),
    ("max_memory_fraction", np.float64),
    ("full_node", np.bool_),
)

COLUMN_NAMES = tuple(name for name, _dtype in COLUMN_DTYPES)

#: ``.npz`` schema tag; bump on any layout change.
NPZ_SCHEMA = "repro-trace/1"


class ColumnarTrace:
    """The SoA form of a VM trace: one read-only array per attribute.

    Arrays are row-aligned (index ``i`` across all columns is one VM)
    and frozen (``writeable=False``) so views can be shared without
    defensive copies.
    """

    __slots__ = COLUMN_NAMES + ("app_names", "n")

    def __init__(
        self,
        *,
        vm_id: np.ndarray,
        arrival_hours: np.ndarray,
        lifetime_hours: np.ndarray,
        cores: np.ndarray,
        memory_gb: np.ndarray,
        generation: np.ndarray,
        app_index: np.ndarray,
        max_memory_fraction: np.ndarray,
        full_node: np.ndarray,
        app_names: Sequence[str],
    ) -> None:
        values = locals()
        n: Optional[int] = None
        for name, dtype in COLUMN_DTYPES:
            array = np.ascontiguousarray(values[name], dtype=dtype)
            if array.ndim != 1:
                raise ConfigError(f"column {name!r} must be 1-D")
            if n is None:
                n = array.shape[0]
            elif array.shape[0] != n:
                raise ConfigError(
                    f"column {name!r} has {array.shape[0]} rows, "
                    f"expected {n}"
                )
            array.flags.writeable = False
            object.__setattr__(self, name, array)
        object.__setattr__(self, "n", int(n or 0))
        object.__setattr__(self, "app_names", tuple(app_names))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ColumnarTrace is immutable")

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"ColumnarTrace(n={self.n}, apps={len(self.app_names)})"

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_vms(
        cls,
        vms: Iterable[VmRequest],
        base_app_names: Sequence[str] = (),
    ) -> "ColumnarTrace":
        """Build columns from row objects.

        ``base_app_names`` pre-seeds the interning table (generated
        traces pass the fleet table so row- and block-built columns
        agree index for index); unseen names append in first-occurrence
        order.
        """
        app_names = list(base_app_names)
        index_of = {name: i for i, name in enumerate(app_names)}
        rows = list(vms)
        app_index = np.empty(len(rows), dtype=np.int64)
        for i, vm in enumerate(rows):
            idx = index_of.get(vm.app_name)
            if idx is None:
                idx = index_of[vm.app_name] = len(app_names)
                app_names.append(vm.app_name)
            app_index[i] = idx
        return cls(
            vm_id=np.array([vm.vm_id for vm in rows], dtype=np.int64),
            arrival_hours=np.array(
                [vm.arrival_hours for vm in rows], dtype=np.float64
            ),
            lifetime_hours=np.array(
                [vm.lifetime_hours for vm in rows], dtype=np.float64
            ),
            cores=np.array([vm.cores for vm in rows], dtype=np.int64),
            memory_gb=np.array(
                [vm.memory_gb for vm in rows], dtype=np.float64
            ),
            generation=np.array(
                [vm.generation for vm in rows], dtype=np.int64
            ),
            app_index=app_index,
            max_memory_fraction=np.array(
                [vm.max_memory_fraction for vm in rows], dtype=np.float64
            ),
            full_node=np.array(
                [vm.full_node for vm in rows], dtype=np.bool_
            ),
            app_names=app_names,
        )

    def to_vms(self) -> Tuple[VmRequest, ...]:
        """Materialize the row view (exact scalar round-trip)."""
        names = self.app_names
        ids = self.vm_id.tolist()
        arrivals = self.arrival_hours.tolist()
        lifetimes = self.lifetime_hours.tolist()
        cores = self.cores.tolist()
        memory = self.memory_gb.tolist()
        generations = self.generation.tolist()
        app_idx = self.app_index.tolist()
        fractions = self.max_memory_fraction.tolist()
        full = self.full_node.tolist()
        return tuple(
            VmRequest(
                vm_id=ids[i],
                arrival_hours=arrivals[i],
                lifetime_hours=lifetimes[i],
                cores=cores[i],
                memory_gb=memory[i],
                generation=generations[i],
                app_name=names[app_idx[i]],
                max_memory_fraction=fractions[i],
                full_node=full[i],
            )
            for i in range(self.n)
        )

    # -- views ----------------------------------------------------------------

    def take(self, selector: np.ndarray) -> "ColumnarTrace":
        """A sub-trace from a boolean mask or index array.

        Row order (and ``vm_id``) is preserved; the app table is shared
        unchanged so indices stay valid.
        """
        return ColumnarTrace(
            app_names=self.app_names,
            **{name: getattr(self, name)[selector] for name in COLUMN_NAMES},
        )

    # -- reductions ------------------------------------------------------------

    def peak_concurrent_cores(self) -> int:
        """Exact event-sweep peak of simultaneously requested cores.

        Equivalent to sorting ``(time, is_arrival, cores)`` event tuples
        and taking the running-sum maximum: ``lexsort`` orders
        departures (flag 0) before arrivals (flag 1) at equal times
        (half-open ``[arrival, departure)`` occupancy), and within any
        tied block the running sum is monotone, so block-end cumulative
        sums contain the true peak.
        """
        if self.n == 0:
            return 0
        departures = self.arrival_hours + self.lifetime_hours
        finite = np.isfinite(departures)
        times = np.concatenate([self.arrival_hours, departures[finite]])
        flags = np.concatenate(
            [
                np.ones(self.n, dtype=np.int8),
                np.zeros(int(finite.sum()), dtype=np.int8),
            ]
        )
        deltas = np.concatenate([self.cores, -self.cores[finite]])
        order = np.lexsort((flags, times))
        return int(np.cumsum(deltas[order]).max())

    def last_arrival_hours(self) -> float:
        return float(self.arrival_hours.max()) if self.n else 0.0

    def start_hours(self) -> float:
        """The earliest VM arrival (0.0 for an empty trace).

        Real ingested traces rarely start at t=0 — the trace window is
        ``[start_hours, start_hours + duration]``, not ``[0, duration]``.
        """
        return float(self.arrival_hours.min()) if self.n else 0.0

    # -- identity --------------------------------------------------------------

    def digest(self) -> str:
        """sha256 over the column bytes (the trace's content identity)."""
        h = hashlib.sha256()
        h.update(repr((NPZ_SCHEMA, self.n, self.app_names)).encode())
        for name in COLUMN_NAMES:
            array = getattr(self, name)
            h.update(name.encode())
            h.update(array.dtype.str.encode())
            h.update(array.tobytes())
        return h.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        return (
            self.n == other.n
            and self.app_names == other.app_names
            and all(
                np.array_equal(getattr(self, name), getattr(other, name))
                for name in COLUMN_NAMES
            )
        )

    def __hash__(self) -> int:
        return hash(self.digest())

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Reject columns that could not have come from valid rows.

        Mirrors ``VmRequest.__post_init__`` so store loads fail fast on
        corrupt or hand-edited entries instead of producing nonsense
        downstream.
        """
        if self.n == 0:
            return
        if not (self.cores > 0).all():
            raise ConfigError("trace columns: cores must be > 0")
        if not (self.memory_gb > 0).all():
            raise ConfigError("trace columns: memory must be > 0")
        if not (self.arrival_hours >= 0).all():
            raise ConfigError("trace columns: arrivals must be >= 0")
        lifetimes = self.lifetime_hours
        if not ((lifetimes > 0) | np.isinf(lifetimes)).all() or (
            np.isnan(lifetimes).any()
        ):
            raise ConfigError("trace columns: lifetimes must be > 0")
        if not np.isin(self.generation, (1, 2, 3)).all():
            raise ConfigError("trace columns: generation must be 1, 2 or 3")
        fractions = self.max_memory_fraction
        if not ((fractions >= 0) & (fractions <= 1)).all():
            raise ConfigError(
                "trace columns: max memory fraction must be in [0, 1]"
            )
        app_index = self.app_index
        if self.n and (
            app_index.min() < 0 or app_index.max() >= len(self.app_names)
        ):
            raise ConfigError("trace columns: app index out of range")

    # -- pickling --------------------------------------------------------------

    def __reduce__(self):
        state = {name: getattr(self, name) for name in COLUMN_NAMES}
        state["app_names"] = self.app_names
        return (_rebuild_columnar, (state,))


def _rebuild_columnar(state: dict) -> ColumnarTrace:
    return ColumnarTrace(**state)


# -- .npz serialization --------------------------------------------------------


def save_columns_npz(columns: ColumnarTrace, path) -> None:
    """Write columns to ``path`` as an (uncompressed) ``.npz``.

    The entry embeds the trace's own content digest so a later load can
    detect *silent* corruption — zip-valid files whose column bytes were
    flipped — not just truncation and schema drift.
    """
    arrays = {name: getattr(columns, name) for name in COLUMN_NAMES}
    arrays["app_names"] = np.array(columns.app_names, dtype=np.str_)
    arrays["schema"] = np.array(NPZ_SCHEMA)
    arrays["content_digest"] = np.array(columns.digest())
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def _check_column_dtypes(arrays: Dict[str, np.ndarray]) -> None:
    """Reject entries whose stored array dtypes drifted from the schema.

    ``ColumnarTrace.__init__`` casts to the schema dtypes, so a drifted
    entry (say ``float32`` cores from a foreign writer) would otherwise
    be silently re-cast — and an un-castable dtype (structured, object)
    would raise a bare ``TypeError`` that the store does not treat as
    corruption.  An explicit ``ConfigError`` here makes both cases
    quarantine as a corrupt entry instead of crashing or lying.
    """
    for name, dtype in COLUMN_DTYPES:
        stored = arrays[name].dtype
        if stored != np.dtype(dtype):
            raise ConfigError(
                f"trace npz column {name!r} dtype drifted: stored "
                f"{stored.str!r}, schema wants {np.dtype(dtype).str!r}"
            )


def _npz_member_arrays(path) -> Dict[str, np.ndarray]:
    """Memory-map every ``.npy`` member of an uncompressed ``.npz``.

    ``np.load(..., mmap_mode=...)`` silently ignores ``mmap_mode`` for
    zip archives, so this maps members by hand: locate each member's
    local file header, skip it, read the ``.npy`` header, and map the
    raw array bytes at their absolute file offset.  Requires
    ``ZIP_STORED`` members (what ``np.savez`` writes).
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as handle:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ConfigError(
                    f"trace npz member {info.filename!r} is compressed; "
                    "memory-mapped loads need ZIP_STORED entries"
                )
            handle.seek(info.header_offset)
            local = handle.read(30)
            if len(local) != 30 or local[:4] != b"PK\x03\x04":
                raise ConfigError(
                    f"trace npz member {info.filename!r}: bad local header"
                )
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    handle
                )
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    handle
                )
            else:
                raise ConfigError(
                    f"trace npz member {info.filename!r}: unsupported "
                    f"npy format version {version}"
                )
            if dtype.hasobject:
                raise ConfigError(
                    f"trace npz member {info.filename!r}: object arrays "
                    "cannot be memory-mapped"
                )
            member = info.filename
            if member.endswith(".npy"):
                member = member[: -len(".npy")]
            if shape == ():
                # 0-d metadata members (schema tag, digest) are tiny;
                # read them eagerly rather than mapping a scalar.
                arrays[member] = np.fromfile(
                    handle, dtype=dtype, count=1
                ).reshape(())
            else:
                arrays[member] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=handle.tell(),
                    shape=shape,
                    order="F" if fortran else "C",
                )
    return arrays


def load_columns_npz(path, mmap: bool = False) -> ColumnarTrace:
    """Read columns back; raises ``ConfigError`` on schema/content issues.

    I/O and zip-level corruption surface as the usual ``OSError`` /
    ``ValueError`` / ``zipfile.BadZipFile`` from ``np.load``.  When the
    entry carries a ``content_digest`` (every entry written since the
    resilience layer does; older entries lack it and skip the check),
    the columns' recomputed digest must match, so bit rot inside a
    structurally valid ``.npz`` is rejected rather than replayed.

    With ``mmap=True`` the column arrays are memory-mapped straight out
    of the archive (multi-GB suites stream from disk on demand instead
    of loading eagerly).  The streaming path keeps the structural checks
    — schema tag, required members, exact dtypes, row alignment — but
    skips the content-digest recompute and the full value validation,
    since both would fault every page in and defeat the point; callers
    that need bit-rot detection load eagerly.
    """
    if mmap:
        arrays = _npz_member_arrays(path)
        missing = ({"schema", "app_names"} | set(COLUMN_NAMES)) - set(arrays)
        if missing:
            raise ConfigError(
                f"trace npz missing entries: {sorted(missing)}"
            )
        schema = str(arrays["schema"])
        if schema != NPZ_SCHEMA:
            raise ConfigError(
                f"trace npz schema {schema!r} != {NPZ_SCHEMA!r}"
            )
        _check_column_dtypes(arrays)
        return ColumnarTrace(
            app_names=tuple(str(name) for name in arrays["app_names"]),
            **{name: arrays[name] for name in COLUMN_NAMES},
        )
    with np.load(path, allow_pickle=False) as data:
        files = set(data.files)
        missing = ({"schema", "app_names"} | set(COLUMN_NAMES)) - files
        if missing:
            raise ConfigError(
                f"trace npz missing entries: {sorted(missing)}"
            )
        schema = str(data["schema"])
        if schema != NPZ_SCHEMA:
            raise ConfigError(
                f"trace npz schema {schema!r} != {NPZ_SCHEMA!r}"
            )
        expected_digest = (
            str(data["content_digest"]) if "content_digest" in files else None
        )
        loaded = {name: data[name] for name in COLUMN_NAMES}
        _check_column_dtypes(loaded)
        columns = ColumnarTrace(
            app_names=tuple(str(name) for name in data["app_names"]),
            **loaded,
        )
    columns.validate()
    if expected_digest is not None and columns.digest() != expected_digest:
        raise ConfigError(
            f"trace npz content digest mismatch: stored "
            f"{expected_digest[:12]}..., recomputed "
            f"{columns.digest()[:12]}..."
        )
    return columns
