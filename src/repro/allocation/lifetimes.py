"""Lifetime-aware VM placement (Barbalho et al., cited by the paper).

Azure's allocator augments Protean with *lifetime predictions*: separating
predicted-long-lived VMs from churny short-lived ones reduces the
fragmentation that stranded long-lived VMs cause (a server holding one
month-old VM cannot be emptied; interleaving it with short-lived VMs
leaves slivers of capacity that only whole-server workloads miss).

This module provides:

- a simple lifetime predictor standing in for the production ML model
  (thresholding on trace-supplied lifetimes with a configurable accuracy,
  so prediction *errors* are part of the study),
- a segregated placement policy: long-lived VMs prefer "anchor" servers,
  short-lived VMs prefer the churn pool,
- an A/B harness measuring what segregation buys in right-size terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigError
from ..core.rng import RngFactory
from ..hardware.sku import ServerSKU, baseline_gen3
from .cluster import ClusterSpec, adopt_nothing, simulate
from .scheduler import BestFitScheduler, Server
from .traces import VmTrace
from .vm import VmRequest

#: VMs predicted to live at least this long count as long-lived.
DEFAULT_LONG_LIVED_THRESHOLD_HOURS = 24.0 * 7


@dataclass(frozen=True)
class LifetimePredictor:
    """A noisy oracle over the trace's true lifetimes.

    Attributes:
        threshold_hours: Boundary between short- and long-lived.
        accuracy: Probability the prediction matches the truth (the
            production model's precision/recall folded into one knob).
        seed: RNG seed for the error draws.
    """

    threshold_hours: float = DEFAULT_LONG_LIVED_THRESHOLD_HOURS
    accuracy: float = 0.9
    seed: int = 23

    def __post_init__(self) -> None:
        if self.threshold_hours <= 0:
            raise ConfigError("threshold must be > 0")
        if not 0.5 <= self.accuracy <= 1.0:
            raise ConfigError(
                "accuracy must be in [0.5, 1] (below 0.5 the predictor "
                "is worse than inverting itself)"
            )

    def predict_long_lived(self, vm: VmRequest) -> bool:
        """Predict whether ``vm`` will outlive the threshold."""
        truth = vm.lifetime_hours >= self.threshold_hours
        rng = RngFactory(self.seed).stream(f"vm-{vm.vm_id}")
        if rng.random() < self.accuracy:
            return truth
        return not truth


@dataclass(frozen=True)
class SegregationOutcome:
    """A/B result: interleaved vs lifetime-segregated placement."""

    interleaved_servers: int
    segregated_servers: int
    anchor_servers: int
    churn_servers: int

    @property
    def servers_saved(self) -> int:
        """Right-size improvement from segregation (>= 0 when it helps)."""
        return self.interleaved_servers - self.segregated_servers


def _min_servers_segregated(
    trace: VmTrace,
    sku: ServerSKU,
    predictor: LifetimePredictor,
) -> Tuple[int, int]:
    """(anchor, churn) right-sizes when the two populations are split."""
    long_vms, short_vms = [], []
    for vm in trace.vms:
        (long_vms if predictor.predict_long_lived(vm) else short_vms).append(
            vm
        )

    def right_size_subset(vms: List[VmRequest]) -> int:
        if not vms:
            return 0
        sub = VmTrace(name="sub", params=trace.params, vms=tuple(vms))
        n = 1
        while True:
            outcome = simulate(
                sub,
                ClusterSpec.of((sku, n)),
                adoption=adopt_nothing,
                snapshot_hours=1e9,
            )
            if outcome.feasible:
                return n
            n += 1

    return right_size_subset(long_vms), right_size_subset(short_vms)


def segregation_study(
    trace: VmTrace,
    sku: Optional[ServerSKU] = None,
    predictor: Optional[LifetimePredictor] = None,
) -> SegregationOutcome:
    """Compare interleaved vs lifetime-segregated right-sizes.

    Segregation's benefit is workload-dependent: it wins when long-lived
    VMs would otherwise strand capacity across many servers; on highly
    churny traces it can cost a server of headroom instead (each pool
    pays its own peak).  The harness reports both so the tradeoff is
    measurable rather than assumed.
    """
    sku = sku or baseline_gen3()
    predictor = predictor or LifetimePredictor()
    from ..gsf.sizing import right_size

    interleaved = right_size(trace, sku)
    anchor, churn = _min_servers_segregated(trace, sku, predictor)
    return SegregationOutcome(
        interleaved_servers=interleaved,
        segregated_servers=anchor + churn,
        anchor_servers=anchor,
        churn_servers=churn,
    )


def stranded_capacity_fraction(
    trace: VmTrace,
    sku: Optional[ServerSKU] = None,
    snapshot_hours: float = 12.0,
    min_servers: Optional[int] = None,
) -> float:
    """Mean free capacity stranded on servers pinned by long-lived VMs.

    A server is *pinned* when it hosts at least one VM older than the
    long-lived threshold; its free cores cannot be reclaimed by draining.
    This is the fragmentation signal lifetime-aware placement targets.
    """
    sku = sku or baseline_gen3()
    from ..gsf.sizing import right_size

    n = min_servers if min_servers is not None else right_size(trace, sku)
    spec = ClusterSpec.of((sku, n))
    # Replay manually to inspect per-server VM ages at snapshots.
    servers = spec.build_servers()
    scheduler = BestFitScheduler()
    placements: Dict[int, Tuple[Server, float]] = {}
    events: List[Tuple[float, int, int]] = []  # (time, kind 0=arr/1=dep, idx)
    stranded_samples: List[float] = []
    start = trace.start_hours
    snapshot_at = start + snapshot_hours

    import heapq

    departures: List[Tuple[float, int, Server]] = []

    def snapshot(now: float) -> None:
        nonlocal snapshot_at
        while snapshot_at <= now:
            pinned_free = 0
            total = 0
            for server in servers:
                total += server.total_cores
                if server.is_empty:
                    continue
                oldest = min(
                    placements[vm_id][1]
                    for vm_id in list(placements)
                    if placements[vm_id][0] is server
                )
                if snapshot_at - oldest >= DEFAULT_LONG_LIVED_THRESHOLD_HOURS:
                    pinned_free += server.free_cores
            stranded_samples.append(pinned_free / total if total else 0.0)
            snapshot_at += snapshot_hours

    for vm in trace.vms:
        while departures and departures[0][0] <= vm.arrival_hours:
            dep_time, vm_id, server = heapq.heappop(departures)
            snapshot(dep_time)
            server.remove(vm_id)
            placements.pop(vm_id, None)
        snapshot(vm.arrival_hours)
        chosen = scheduler.choose(vm, servers, vm.cores, vm.memory_gb)
        if chosen is None:
            continue
        chosen.place(vm, vm.cores, vm.memory_gb)
        placements[vm.vm_id] = (chosen, vm.arrival_hours)
        if math.isfinite(vm.departure_hours):
            heapq.heappush(departures, (vm.departure_hours, vm.vm_id, chosen))
    snapshot(trace.end_hours)
    return float(np.mean(stranded_samples)) if stranded_samples else 0.0
