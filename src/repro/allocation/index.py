"""Indexed placement engine: sublinear scheduling, O(1) snapshot sums.

The reference allocation path scans every server per placement decision
and walks every server per density snapshot — O(n_servers) in the two
hot operations that dominate Figs. 9–11 and every sizing bisection.
This module keeps the same decisions reachable in sublinear time:

- :class:`_PoolIndex` groups the placeable servers of one pool view by
  ``free_cores`` (one bucket per value, each bucket ordered by
  ``(free_memory_gb, server_id)``) and keeps empty servers aside,
  grouped by shape.  A best-fit query walks the non-empty buckets in
  ascending free-core order via an integer bitmask and bisects each
  bucket for the memory threshold; empty servers are consulted only when
  no busy server fits (the production prefer-non-empty rule).
- :class:`PlacementEngine` owns one index per pool view (GreenSKUs, all
  baselines, per-generation baselines) plus exact, incrementally
  maintained snapshot aggregates, and applies the same ranking rules as
  :class:`~repro.allocation.scheduler.BestFitScheduler` for all three
  placement policies.

Equivalence with the reference scan is exact, not approximate: the
feasibility predicate is evaluated in the same threshold form
(``free_memory_gb >= memory_gb - MEM_EPS``, see ``scheduler.MEM_EPS``),
rank ties resolve to the lowest server id just as the scan's
first-strictly-smaller-key rule does over id-ordered pools, and the
snapshot sums are kept as *exact scaled integers* (every float
contribution is converted losslessly via ``float.as_integer_ratio``), so
accumulation order cannot change the result.  ``tests/allocation/
test_index.py`` enforces bit-identical outcomes against the reference
implementation.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import ConfigError, SimulationError
from .scheduler import MEM_EPS, PLACEMENT_POLICIES, Server
from .vm import VmRequest

#: Fixed-point shift for exact snapshot sums.  A float's
#: ``as_integer_ratio`` denominator is a power of two no larger than
#: 2**1074 (subnormals), so shifting every contribution to a common
#: 2**1080 denominator is lossless for all finite doubles.
SCALE_SHIFT = 1080

#: Metric keys of the snapshot aggregates, in observation order.
METRICS = ("core", "mem", "touched", "cxl")


def scaled_int(value) -> int:
    """Losslessly convert a finite float (or int) to a 2**-1080 fixed point."""
    if not value:
        return 0
    numerator, denominator = value.as_integer_ratio()
    return numerator << (SCALE_SHIFT - (denominator.bit_length() - 1))


class KindAggregate:
    """Current-state snapshot sums for one server kind (green/baseline).

    ``count`` is the number of non-empty servers; ``sums`` maps each
    metric to ``{denominator: scaled numerator sum}`` where the
    denominator is the per-server capacity the reference path divides by
    (total cores / total memory / CXL capacity).  Entries that reach
    exactly zero are deleted so the mapping stays canonical.
    """

    __slots__ = ("count", "sums")

    def __init__(self) -> None:
        self.count = 0
        self.sums: Dict[str, Dict[float, int]] = {m: {} for m in METRICS}


class _PoolIndex:
    """Order-maintaining index over one pool view's placeable servers.

    Busy (non-empty, non-dedicated) servers live in ``buckets[free_cores]``
    as sorted ``(free_memory_gb, server_id)`` tuples; ``mask`` has bit k
    set iff bucket k is non-empty.  Empty servers are grouped by shape
    ``(total_cores, total_memory_gb)`` with ascending id lists.  Suffix
    minima of server ids per bucket are built lazily (only the first-fit
    and worst-fit policies need them).
    """

    __slots__ = (
        "buckets",
        "mask",
        "max_cores",
        "empty_ids",
        "shapes",
        "shapes_by_cores",
        "probes",
        "_suffmin",
        "_suffdirty",
    )

    def __init__(self) -> None:
        self.buckets: List[List[Tuple[float, int]]] = []
        self.mask = 0
        self.max_cores = 0
        self.empty_ids: Dict[Tuple[int, float], List[int]] = {}
        self.shapes: List[Tuple[int, float]] = []
        self.shapes_by_cores: Dict[int, List[Tuple[int, float]]] = {}
        #: Buckets/shape groups examined across all queries (telemetry).
        self.probes = 0
        self._suffmin: Dict[int, List[int]] = {}
        self._suffdirty: set = set()

    # -- maintenance ----------------------------------------------------------

    def add_busy(self, free_cores: int, free_memory_gb: float, sid: int) -> None:
        buckets = self.buckets
        while len(buckets) <= free_cores:
            buckets.append([])
        insort(buckets[free_cores], (free_memory_gb, sid))
        self.mask |= 1 << free_cores
        if free_cores > self.max_cores:
            self.max_cores = free_cores
        self._suffdirty.add(free_cores)

    def remove_busy(self, free_cores: int, free_memory_gb: float, sid: int) -> None:
        bucket = self.buckets[free_cores]
        i = bisect_left(bucket, (free_memory_gb, sid))
        del bucket[i]
        if not bucket:
            self.mask &= ~(1 << free_cores)
        self._suffdirty.add(free_cores)

    def add_empty(self, shape: Tuple[int, float], sid: int) -> None:
        ids = self.empty_ids.get(shape)
        if ids is None:
            self.empty_ids[shape] = ids = []
            insort(self.shapes, shape)
            self.shapes_by_cores.setdefault(shape[0], []).append(shape)
            if shape[0] > self.max_cores:
                self.max_cores = shape[0]
        insort(ids, sid)

    def remove_empty(self, shape: Tuple[int, float], sid: int) -> None:
        ids = self.empty_ids[shape]
        i = bisect_left(ids, sid)
        del ids[i]

    def _suffix_min(self, free_cores: int) -> List[int]:
        """Suffix minima of server ids in bucket ``free_cores`` (lazy)."""
        if free_cores in self._suffdirty or free_cores not in self._suffmin:
            bucket = self.buckets[free_cores]
            out = [0] * len(bucket)
            best = None
            for i in range(len(bucket) - 1, -1, -1):
                sid = bucket[i][1]
                best = sid if best is None or sid < best else best
                out[i] = best
            self._suffmin[free_cores] = out
            self._suffdirty.discard(free_cores)
        return self._suffmin[free_cores]

    # -- queries --------------------------------------------------------------
    #
    # ``thresh`` is ``memory_gb - MEM_EPS``; feasibility is
    # ``free_memory_gb >= thresh``, the same comparison ``Server.fits``
    # makes.  ``bisect_left(bucket, (thresh,))`` lands on the first entry
    # with ``free_memory_gb >= thresh`` because a 1-tuple sorts before
    # every ``(equal_value, sid)`` 2-tuple.

    def best_busy(self, cores: int, thresh: float) -> Optional[int]:
        """Best-fit among busy servers: min (free_cores, free_mem, id)."""
        m = self.mask >> cores
        probes = 0
        while m:
            probes += 1
            k = cores + ((m & -m).bit_length() - 1)
            bucket = self.buckets[k]
            i = bisect_left(bucket, (thresh,))
            if i < len(bucket):
                self.probes += probes
                return bucket[i][1]
            m &= m - 1
        self.probes += probes
        return None

    def best_empty(self, cores: int, thresh: float) -> Optional[int]:
        """Best-fit among empty servers: min (total_cores, total_mem, id)."""
        probes = 0
        for shape in self.shapes:
            probes += 1
            if shape[0] >= cores and shape[1] >= thresh:
                ids = self.empty_ids[shape]
                if ids:
                    self.probes += probes
                    return ids[0]
        self.probes += probes
        return None

    def min_id_busy(self, cores: int, thresh: float) -> Optional[int]:
        """First-fit among busy servers: minimum feasible server id."""
        best = None
        m = self.mask >> cores
        probes = 0
        while m:
            probes += 1
            k = cores + ((m & -m).bit_length() - 1)
            bucket = self.buckets[k]
            i = bisect_left(bucket, (thresh,))
            if i < len(bucket):
                sid = self._suffix_min(k)[i]
                if best is None or sid < best:
                    best = sid
            m &= m - 1
        self.probes += probes
        return best

    def min_id_empty(self, cores: int, thresh: float) -> Optional[int]:
        """First-fit among empty servers: minimum feasible server id."""
        best = None
        probes = 0
        for shape, ids in self.empty_ids.items():
            probes += 1
            if ids and shape[0] >= cores and shape[1] >= thresh:
                sid = ids[0]
                if best is None or sid < best:
                    best = sid
        self.probes += probes
        return best

    def worst(
        self, cores: int, thresh: float, include_busy: bool = True
    ) -> Optional[int]:
        """Worst-fit: max free cores, then min id (busy and empty alike)."""
        probes = 0
        for k in range(self.max_cores, cores - 1, -1):
            best = None
            if include_busy and (self.mask >> k) & 1:
                probes += 1
                bucket = self.buckets[k]
                i = bisect_left(bucket, (thresh,))
                if i < len(bucket):
                    best = self._suffix_min(k)[i]
            for shape in self.shapes_by_cores.get(k, ()):
                probes += 1
                if shape[1] >= thresh:
                    ids = self.empty_ids[shape]
                    if ids and (best is None or ids[0] < best):
                        best = ids[0]
            if best is not None:
                self.probes += probes
                return best
        self.probes += probes
        return None


#: Slot markers: ``_PARKED`` servers (dedicated to a full-node VM) are
#: invisible to every query; ``_EMPTY`` servers live in the shape groups.
_PARKED = None
_EMPTY = True


class PlacementEngine:
    """Incrementally indexed replacement for the reference placement scan.

    Maintains one :class:`_PoolIndex` per pool view — GreenSKUs, all
    baselines combined, and (once the cluster has ever held more than one
    baseline generation) one per baseline generation — plus exact
    snapshot aggregates per server kind when ``track_stats`` is on.

    Servers can be added and removed while empty, which lets sizing
    searches reuse one engine across a whole bracket/bisection by
    applying count deltas instead of rebuilding the cluster per probe;
    :meth:`reset` restores every touched server to its pristine state
    between probes.
    """

    def __init__(
        self,
        servers: Iterable[Server] = (),
        policy: str = "best-fit",
        track_stats: bool = False,
    ):
        if policy not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {policy!r}; "
                f"known: {PLACEMENT_POLICIES}"
            )
        self.policy = policy
        self.track_stats = track_stats
        # Work counters, always on (plain int bumps): placement queries
        # answered, place/remove reindexes, O(1) snapshot merges.  Bucket
        # probes live on each _PoolIndex; bucket_probes() sums them.
        self.stat_queries = 0
        self.stat_places = 0
        self.stat_removes = 0
        self.stat_snapshot_merges = 0
        self.servers: Dict[int, Server] = {}
        self.green = _PoolIndex()
        self.base_all = _PoolIndex()
        self.base_by_gen: Dict[int, _PoolIndex] = {}
        self.green_count = 0
        self.green_agg = KindAggregate()
        self.base_agg = KindAggregate()
        self._views: Dict[int, Tuple[_PoolIndex, ...]] = {}
        self._gen_counts: Dict[int, int] = {}
        self._gen_views_active = False
        self._contrib: Dict[int, Tuple[int, int, int, int]] = {}
        self._dirty: set = set()
        for server in servers:
            self.add_server(server)

    # -- membership -----------------------------------------------------------

    def add_server(self, server: Server) -> None:
        """Add a server to the engine's pools (green/baseline by SKU)."""
        sid = server.server_id
        if sid in self.servers:
            raise SimulationError(f"server {sid} already in engine")
        self.servers[sid] = server
        if server.is_green:
            self.green_count += 1
            views: Tuple[_PoolIndex, ...] = (self.green,)
        else:
            gen = server.sku.generation
            self._gen_counts[gen] = self._gen_counts.get(gen, 0) + 1
            if not self._gen_views_active and len(self._gen_counts) > 1:
                self._activate_gen_views()
            if self._gen_views_active:
                gen_view = self.base_by_gen.get(gen)
                if gen_view is None:
                    gen_view = self.base_by_gen[gen] = _PoolIndex()
                views = (self.base_all, gen_view)
            else:
                views = (self.base_all,)
        self._views[sid] = views
        self._enter(server, views, self._slot_of(server))
        if not server.is_empty:
            self._dirty.add(sid)
            if self.track_stats:
                self._refresh_contrib(server)

    def remove_server(self, server_id: int) -> Server:
        """Remove an (empty) server, e.g. when a sizing probe shrinks."""
        server = self.servers.get(server_id)
        if server is None:
            raise SimulationError(f"server {server_id} not in engine")
        if not server.is_empty:
            raise SimulationError(
                f"server {server_id} still hosts VMs; cannot remove"
            )
        views = self._views.pop(server_id)
        self._leave(server, views, self._slot_of(server))
        del self.servers[server_id]
        self._dirty.discard(server_id)
        if server.is_green:
            self.green_count -= 1
        else:
            self._gen_counts[server.sku.generation] -= 1
        return server

    def _activate_gen_views(self) -> None:
        """Backfill per-generation views once a second generation appears.

        Single-generation clusters (every sizing probe, Figs. 9/10) never
        pay for the second view; multi-generation clusters get exact
        generation routing from the moment it can matter.
        """
        self._gen_views_active = True
        for sid, server in self.servers.items():
            if server.is_green or sid not in self._views:
                continue
            gen = server.sku.generation
            gen_view = self.base_by_gen.get(gen)
            if gen_view is None:
                gen_view = self.base_by_gen[gen] = _PoolIndex()
            self._views[sid] = (self.base_all, gen_view)
            self._enter(server, (gen_view,), self._slot_of(server))

    # -- slotting -------------------------------------------------------------

    @staticmethod
    def _slot_of(server: Server):
        if server.dedicated:
            return _PARKED
        if server.is_empty:
            return _EMPTY
        return (server.free_cores, server.free_memory_gb)

    @staticmethod
    def _enter(server: Server, views: Tuple[_PoolIndex, ...], slot) -> None:
        if slot is _PARKED:
            return
        if slot is _EMPTY:
            shape = (server.total_cores, server.total_memory_gb)
            for view in views:
                view.add_empty(shape, server.server_id)
        else:
            free_cores, free_memory_gb = slot
            for view in views:
                view.add_busy(free_cores, free_memory_gb, server.server_id)

    @staticmethod
    def _leave(server: Server, views: Tuple[_PoolIndex, ...], slot) -> None:
        if slot is _PARKED:
            return
        if slot is _EMPTY:
            shape = (server.total_cores, server.total_memory_gb)
            for view in views:
                view.remove_empty(shape, server.server_id)
        else:
            free_cores, free_memory_gb = slot
            for view in views:
                view.remove_busy(free_cores, free_memory_gb, server.server_id)

    # -- placement ------------------------------------------------------------

    def choose_green(
        self, vm: VmRequest, cores: int, memory_gb: float
    ) -> Optional[Server]:
        """Pick a GreenSKU server (full-node VMs never qualify)."""
        if vm.full_node or not self.green_count:
            if cores <= 0 or memory_gb <= 0:
                raise ConfigError("placement request must be positive")
            return None
        return self._choose(self.green, cores, memory_gb, full_node=False)

    def choose_baseline(
        self, vm: VmRequest, cores: int, memory_gb: float
    ) -> Optional[Server]:
        """Pick a baseline server, generation-routed like the reference."""
        return self._choose(
            self._baseline_view(vm.generation),
            cores,
            memory_gb,
            full_node=vm.full_node,
        )

    def _baseline_view(self, generation: int) -> _PoolIndex:
        # Mirror of the reference rule: per-generation routing only when
        # the cluster currently holds servers of more than one baseline
        # generation and the VM's generation is among them.
        if self._gen_views_active:
            counts = self._gen_counts
            active = sum(1 for c in counts.values() if c > 0)
            if active > 1 and counts.get(generation, 0) > 0:
                return self.base_by_gen[generation]
        return self.base_all

    def _choose(
        self, view: _PoolIndex, cores: int, memory_gb: float, full_node: bool
    ) -> Optional[Server]:
        if cores <= 0 or memory_gb <= 0:
            raise ConfigError("placement request must be positive")
        self.stat_queries += 1
        thresh = memory_gb - MEM_EPS
        policy = self.policy
        if policy == "best-fit":
            sid = None if full_node else view.best_busy(cores, thresh)
            if sid is None:
                sid = view.best_empty(cores, thresh)
        elif policy == "first-fit":
            busy = None if full_node else view.min_id_busy(cores, thresh)
            empty = view.min_id_empty(cores, thresh)
            if busy is None:
                sid = empty
            elif empty is None:
                sid = busy
            else:
                sid = busy if busy < empty else empty
        else:  # worst-fit
            sid = view.worst(cores, thresh, include_busy=not full_node)
        return None if sid is None else self.servers[sid]

    def place(
        self,
        server: Server,
        vm: VmRequest,
        cores: int,
        memory_gb: float,
        cxl_gb: float = 0.0,
    ) -> None:
        """Place a VM and reindex the server under its new free capacity."""
        self.stat_places += 1
        views = self._views[server.server_id]
        before = self._slot_of(server)
        server.place(vm, cores, memory_gb, cxl_gb=cxl_gb)
        self._leave(server, views, before)
        self._enter(server, views, self._slot_of(server))
        self._dirty.add(server.server_id)
        if self.track_stats:
            self._refresh_contrib(server)

    def remove(self, server: Server, vm_id: int) -> None:
        """Remove a departed VM and reindex the server."""
        self.stat_removes += 1
        views = self._views[server.server_id]
        before = self._slot_of(server)
        server.remove(vm_id)
        self._leave(server, views, before)
        self._enter(server, views, self._slot_of(server))
        if self.track_stats:
            self._refresh_contrib(server)

    def reset(self) -> None:
        """Restore every touched server to pristine-empty, clear aggregates.

        After a reset the engine is indistinguishable from one freshly
        built over ``ClusterSpec.build_servers()`` output — including the
        float-exact ``free_memory_gb`` values place/remove cycles would
        otherwise leave dust in.
        """
        for sid in self._dirty:
            server = self.servers.get(sid)
            if server is None:
                continue
            slot = self._slot_of(server)
            if slot is not _EMPTY:
                views = self._views[sid]
                self._leave(server, views, slot)
                server.reset()
                self._enter(server, views, _EMPTY)
            else:
                server.reset()
        self._dirty.clear()
        self._contrib.clear()
        self.green_agg = KindAggregate()
        self.base_agg = KindAggregate()

    # -- snapshot aggregates --------------------------------------------------

    def _refresh_contrib(self, server: Server) -> None:
        """Re-derive a server's exact snapshot contribution after a change."""
        sid = server.server_id
        agg = self.green_agg if server.is_green else self.base_agg
        old = self._contrib.pop(sid, None)
        if server.is_empty:
            new = None
        else:
            new = (
                scaled_int(server.allocated_cores),
                scaled_int(server.allocated_memory_gb),
                scaled_int(server._touched_memory_gb),
                scaled_int(server._cxl_used_gb) if server.total_cxl_gb else 0,
            )
            self._contrib[sid] = new
        if old is None:
            if new is None:
                return
            agg.count += 1
        elif new is None:
            agg.count -= 1
        sums = agg.sums
        for idx, (metric, den) in enumerate(
            (
                ("core", server.total_cores),
                ("mem", server.total_memory_gb),
                ("touched", server.total_memory_gb),
                ("cxl", server.total_cxl_gb),
            )
        ):
            delta = (new[idx] if new else 0) - (old[idx] if old else 0)
            if not delta:
                continue
            bucket = sums[metric]
            cum = bucket.get(den, 0) + delta
            if cum:
                bucket[den] = cum
            else:
                del bucket[den]

    def merge_stats(self, green_stats, baseline_stats) -> None:
        """Fold the current aggregates into per-outcome snapshot stats."""
        self.stat_snapshot_merges += 1
        green_stats.merge_aggregate(self.green_agg)
        baseline_stats.merge_aggregate(self.base_agg)

    def bucket_probes(self) -> int:
        """Total buckets/shape groups examined across every pool view."""
        return (
            self.green.probes
            + self.base_all.probes
            + sum(view.probes for view in self.base_by_gen.values())
        )
