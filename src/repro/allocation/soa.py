"""Structure-of-arrays placement engine: vectorized queries and snapshots.

The third placement backend (``simulate(..., engine="soa")`` /
``REPRO_ALLOC_ENGINE=soa``).  Where the reference backend scans Python
``Server`` objects and the indexed engine maintains bucketed sorted
structures, this engine keeps the *hot placement state itself* in
parallel numpy arrays — one slot per server:

- ``free_cores`` / ``free_memory_gb`` — remaining capacity (the only
  inputs to feasibility and rank keys),
- ``vm_count`` / ``dedicated`` — the prefer-non-empty rule and the
  full-node constraint,
- ``touched_gb`` / ``cxl_used_gb`` — Fig. 10 / Pond bookkeeping,

so every placement query is a handful of vectorized masked reductions
over contiguous memory instead of a Python-object walk, and every
snapshot aggregates whole kinds (green/baseline) at once.

Bit-identity contract (held by ``tests/allocation/test_soa.py`` and the
fleet golden digests): for every trace, cluster, adoption policy, and
placement policy, this engine places each VM on the *same server* as
the reference scan and produces byte-identical exact snapshot sums.
Three properties make that possible:

1. Feasibility uses the same threshold-form float comparison
   (``free_memory_gb >= memory_gb - MEM_EPS``) on the same float64
   values; numpy float64 scalar arithmetic is IEEE-754 double, so the
   array state evolves bit-identically to ``Server``'s attributes.
2. Rank keys are evaluated as staged exact reductions — e.g. best-fit
   is "min ``free_cores``, then min ``free_memory_gb``, then min slot
   id" — which totals the reference comparison ``(is_empty,
   free_cores - cores, free_memory_gb - memory_gb)`` with its stable
   min-id tie-break.
3. Snapshot sums are converted losslessly to the same 2**-1080
   fixed-point integers as :func:`repro.allocation.index.scaled_int`,
   via a vectorized ``np.frexp`` mantissa/exponent split (see
   :func:`scaled_sum`), and bucketed by the identical per-SKU capacity
   denominators — integer addition is associative, so grouping whole
   kinds at once matches the reference's per-server accumulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError, SimulationError
from .index import METRICS, SCALE_SHIFT, KindAggregate
from .scheduler import MEM_EPS, PLACEMENT_POLICIES, Server

#: ``2**53`` as a float; multiplying a ``frexp`` mantissa by it yields
#: the (exactly representable) 53-bit integer significand.
_MANTISSA_SCALE = 9007199254740992.0

_LO_MASK = np.int64(0xFFFFFFFF)


def scaled_sum(values: np.ndarray) -> int:
    """Exact ``sum(scaled_int(v) for v in values)`` for float64 values.

    ``scaled_int(v)`` is exactly ``v * 2**1080`` as a Python integer.
    Splitting each value into its integer significand ``M`` and exponent
    ``E`` (``v = M * 2**E``) lets whole exponent classes be summed in
    int64 — the significands are split into 32-bit halves so partial
    sums cannot overflow — and shifted once per class with Python
    big-int arithmetic.  Negative shifts (subnormals) are exact too:
    every significand in such a class carries at least that many
    trailing zero bits.
    """
    if values.size == 0:
        return 0
    mantissa, exponent = np.frexp(values)
    significand = (mantissa * _MANTISSA_SCALE).astype(np.int64)
    shifts = exponent.astype(np.int64) - 53 + SCALE_SHIFT
    total = 0
    for shift in np.unique(shifts):
        group = significand[shifts == shift]
        lo = int((group & _LO_MASK).sum())
        hi = int((group >> np.int64(32)).sum())
        partial = (hi << 32) + lo
        shift = int(shift)
        total += partial << shift if shift >= 0 else partial >> -shift
    return total


class _SoAServer:
    """Flyweight ``Server`` view over one engine slot.

    Implements the read surface the replay loop touches on a placement
    result (``is_green``, CXL capacity, emptiness); all state lives in
    the engine's arrays.
    """

    __slots__ = ("_engine", "slot", "server_id", "sku", "is_green")

    def __init__(self, engine: "SoAPlacementEngine", slot: int):
        self._engine = engine
        self.slot = slot
        self.server_id = engine.server_ids[slot]
        self.sku = engine.skus[slot]
        self.is_green = bool(engine.green_mask[slot])

    @property
    def total_cores(self) -> int:
        return int(self._engine.total_cores[self.slot])

    @property
    def total_memory_gb(self) -> float:
        return float(self._engine.total_mem[self.slot])

    @property
    def total_cxl_gb(self) -> float:
        return float(self._engine.total_cxl[self.slot])

    @property
    def free_cores(self) -> int:
        return int(self._engine.free_cores[self.slot])

    @property
    def free_memory_gb(self) -> float:
        return float(self._engine.free_mem[self.slot])

    @property
    def free_cxl_gb(self) -> float:
        engine = self._engine
        return float(engine.total_cxl[self.slot] - engine.cxl_used[self.slot])

    @property
    def is_empty(self) -> bool:
        return not int(self._engine.vm_count[self.slot])

    @property
    def vm_count(self) -> int:
        return int(self._engine.vm_count[self.slot])

    def __repr__(self) -> str:
        return f"_SoAServer({self.server_id}, {self.sku.name})"


class SoAPlacementEngine:
    """Placement backend holding per-server state in parallel arrays.

    Accepts a pristine server list with *strictly increasing* ids (as
    built by ``ClusterSpec.build_servers``, or any ascending subset of
    one — the carbon-tiered backend feeds per-tier groups).  Slot
    ``i`` maps to ``server_ids[i]``; because ids ascend, the engine's
    min-*slot* tie-breaks coincide with the reference scan's
    min-*id* tie-breaks.  The ``Server`` objects are only read for
    their SKUs; all mutable state lives in the arrays.

    ``track_stats`` is accepted for signature symmetry with
    :class:`repro.allocation.index.PlacementEngine` but is not needed:
    snapshot aggregation here is computed on demand (vectorized over the
    whole kind), so there is no per-placement aggregate maintenance to
    skip.
    """

    def __init__(
        self,
        servers: Sequence[Server],
        policy: str = "best-fit",
        track_stats: bool = True,
    ) -> None:
        if policy not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {policy!r}; "
                f"known: {PLACEMENT_POLICIES}"
            )
        servers = list(servers)
        ids = [s.server_id for s in servers]
        if any(b <= a for a, b in zip(ids, ids[1:])):
            raise ConfigError(
                "SoA engine requires strictly increasing server ids "
                "(as built by ClusterSpec.build_servers, or an "
                "ascending subset)"
            )
        if any(not s.is_empty for s in servers):
            raise ConfigError("SoA engine requires pristine empty servers")
        self.policy = policy
        self.track_stats = track_stats
        n = len(servers)
        self.n_servers = n
        self.server_ids = ids
        self.skus = [s.sku for s in servers]
        # Static capacity/kind arrays.
        self.total_cores = np.array(
            [s.total_cores for s in servers], dtype=np.int64
        )
        self.total_mem = np.array(
            [s.total_memory_gb for s in servers], dtype=np.float64
        )
        self.total_cxl = np.array(
            [s.total_cxl_gb for s in servers], dtype=np.float64
        )
        self.green_mask = np.array(
            [s.is_green for s in servers], dtype=bool
        )
        self.base_mask = ~self.green_mask
        self.green_count = int(np.count_nonzero(self.green_mask))
        # Mutable SoA state.
        self.free_cores = self.total_cores.copy()
        self.free_mem = self.total_mem.copy()
        self.touched_gb = np.zeros(n, dtype=np.float64)
        self.cxl_used = np.zeros(n, dtype=np.float64)
        self.vm_count = np.zeros(n, dtype=np.int64)
        self.dedicated = np.zeros(n, dtype=bool)
        # Generation routing mirrors the reference rule: baseline pools
        # split per generation only when the cluster holds more than one
        # baseline generation; the server set is fixed, so the routing
        # decision is static.
        self.base_by_gen: Dict[int, np.ndarray] = {}
        for gen in sorted({s.sku.generation for s in servers if not s.is_green}):
            self.base_by_gen[gen] = self.base_mask & np.array(
                [s.sku.generation == gen for s in servers], dtype=bool
            )
        self._gen_routed = len(self.base_by_gen) > 1
        # Per-kind, per-denominator slot groups for snapshot aggregation.
        # Denominators are the exact Python values the reference divides
        # by (int total cores; float total memory / CXL capacity).
        self._snap_groups = {
            True: self._build_groups(self.green_mask, servers),
            False: self._build_groups(self.base_mask, servers),
        }
        self._views: List[Optional[_SoAServer]] = [None] * n
        self._vms: Dict[int, Tuple[int, int, float, float, float]] = {}
        self.stat_queries = 0
        self.stat_places = 0
        self.stat_removes = 0
        self.stat_snapshot_merges = 0

    @staticmethod
    def _build_groups(mask: np.ndarray, servers: Sequence[Server]):
        """``(core, mem, cxl)`` denominator groups for one server kind."""
        idx = np.flatnonzero(mask)
        core_groups: Dict[int, List[int]] = {}
        mem_groups: Dict[float, List[int]] = {}
        cxl_groups: Dict[float, List[int]] = {}
        for slot in idx.tolist():
            server = servers[slot]
            core_groups.setdefault(server.total_cores, []).append(slot)
            mem_groups.setdefault(server.total_memory_gb, []).append(slot)
            if server.total_cxl_gb:
                cxl_groups.setdefault(server.total_cxl_gb, []).append(slot)
        freeze = lambda groups: [  # noqa: E731 — local shaping helper
            (den, np.array(slots, dtype=np.intp))
            for den, slots in groups.items()
        ]
        return (idx, freeze(core_groups), freeze(mem_groups),
                freeze(cxl_groups))

    # -- backend protocol ------------------------------------------------------

    def has_green(self) -> bool:
        """Whether the cluster carries any GreenSKU servers."""
        return self.green_count > 0

    def _view(self, slot: int) -> _SoAServer:
        view = self._views[slot]
        if view is None:
            view = self._views[slot] = _SoAServer(self, slot)
        return view

    def _baseline_mask(self, generation: int) -> np.ndarray:
        if self._gen_routed and generation in self.base_by_gen:
            return self.base_by_gen[generation]
        return self.base_mask

    def choose_green(self, vm, cores: int, memory_gb: float):
        """Pick a GreenSKU server (full-node VMs never qualify)."""
        if vm.full_node or not self.green_count:
            if cores <= 0 or memory_gb <= 0:
                raise ConfigError("placement request must be positive")
            return None
        return self._choose(self.green_mask, cores, memory_gb, full_node=False)

    def choose_baseline(self, vm, cores: int, memory_gb: float):
        """Pick a baseline server, generation-routed like the reference."""
        return self._choose(
            self._baseline_mask(vm.generation),
            cores,
            memory_gb,
            full_node=vm.full_node,
        )

    def _choose(
        self, mask: np.ndarray, cores: int, memory_gb: float, full_node: bool
    ):
        if cores <= 0 or memory_gb <= 0:
            raise ConfigError("placement request must be positive")
        self.stat_queries += 1
        thresh = memory_gb - MEM_EPS
        fits = (self.free_cores >= cores) & (self.free_mem >= thresh) & mask
        busy = None if full_node else fits & (self.vm_count > 0) & ~self.dedicated
        empty = fits & (self.vm_count == 0)
        policy = self.policy
        if policy == "best-fit":
            slot = self._best_of(busy)
            if slot is None:
                slot = self._best_of(empty)
        elif policy == "first-fit":
            feasible = empty if busy is None else (busy | empty)
            slot = (
                int(np.argmax(feasible)) if feasible.any() else None
            )
        else:  # worst-fit: most remaining cores, then lowest id.
            feasible = empty if busy is None else (busy | empty)
            cand = np.flatnonzero(feasible)
            if cand.size == 0:
                slot = None
            else:
                fc = self.free_cores[cand]
                slot = int(cand[np.argmax(fc)]) if cand.size > 1 else int(cand[0])
        return None if slot is None else self._view(slot)

    def _best_of(self, feasible: Optional[np.ndarray]) -> Optional[int]:
        """Min ``(free_cores, free_memory_gb, slot)`` over a feasible mask."""
        if feasible is None:
            return None
        cand = np.flatnonzero(feasible)
        if cand.size == 0:
            return None
        if cand.size == 1:
            return int(cand[0])
        fc = self.free_cores[cand]
        cand = cand[fc == fc.min()]
        if cand.size > 1:
            fm = self.free_mem[cand]
            cand = cand[fm == fm.min()]
        return int(cand[0])

    def place(
        self, server, vm, cores: int, memory_gb: float, cxl_gb: float = 0.0
    ) -> None:
        """Place a VM on a chosen slot, mirroring ``Server.place`` checks."""
        self.stat_places += 1
        slot = server.slot
        vm_id = vm.vm_id
        if vm_id in self._vms:
            raise SimulationError(f"VM {vm_id} already on server")
        if (
            self.dedicated[slot]
            or cores > self.free_cores[slot]
            or not (self.free_mem[slot] >= memory_gb - MEM_EPS)
        ):
            raise SimulationError(
                f"VM {vm_id} does not fit server {slot}"
            )
        if cxl_gb < 0 or cxl_gb > memory_gb + 1e-9:
            raise SimulationError(
                f"VM {vm_id}: CXL share {cxl_gb} outside [0, {memory_gb}]"
            )
        if cxl_gb > (self.total_cxl[slot] - self.cxl_used[slot]) + 1e-9:
            raise SimulationError(
                f"VM {vm_id}: CXL pool exhausted on server {slot}"
            )
        touched = memory_gb * vm.max_memory_fraction
        self._vms[vm_id] = (slot, cores, memory_gb, touched, cxl_gb)
        self.free_cores[slot] -= cores
        self.free_mem[slot] -= memory_gb
        self.touched_gb[slot] += touched
        self.cxl_used[slot] += cxl_gb
        self.vm_count[slot] += 1
        if vm.full_node:
            self.dedicated[slot] = True

    def remove(self, server, vm_id: int) -> None:
        """Remove a departed VM and release its slot's resources."""
        self.stat_removes += 1
        try:
            slot, cores, memory_gb, touched, cxl_gb = self._vms.pop(vm_id)
        except KeyError:
            raise SimulationError(
                f"VM {vm_id} not on server "
                f"{getattr(server, 'server_id', server)}"
            ) from None
        self.free_cores[slot] += cores
        self.free_mem[slot] += memory_gb
        self.touched_gb[slot] -= touched
        self.cxl_used[slot] -= cxl_gb
        self.vm_count[slot] -= 1
        if not self.vm_count[slot]:
            self.dedicated[slot] = False

    def reset(self) -> None:
        """Restore pristine empty state (probe-reuse entry point)."""
        self.free_cores[:] = self.total_cores
        self.free_mem[:] = self.total_mem
        self.touched_gb[:] = 0.0
        self.cxl_used[:] = 0.0
        self.vm_count[:] = 0
        self.dedicated[:] = False
        self._vms.clear()

    # -- snapshot aggregation --------------------------------------------------

    def _aggregate(self, green: bool) -> KindAggregate:
        """Vectorized exact snapshot sums for one server kind.

        Only occupied slots contribute — the reference walk skips empty
        servers, and place/remove cycles can leave float dust in a
        now-empty server's ``free_mem``/``touched_gb``, so summing whole
        groups unmasked would pick up residue the reference never sees.
        """
        idx, core_groups, mem_groups, cxl_groups = self._snap_groups[green]
        agg = KindAggregate()
        occupied = self.vm_count > 0
        agg.count = int(np.count_nonzero(occupied[idx]))
        if not agg.count:
            return agg
        sums = agg.sums
        core_bucket = sums["core"]
        for den, slots in core_groups:
            slots = slots[occupied[slots]]
            # Integer metric: scaled_int(v) == v << SCALE_SHIFT, so the
            # whole group shifts once.
            allocated = int(
                (self.total_cores[slots] - self.free_cores[slots]).sum()
            )
            if allocated:
                core_bucket[den] = allocated << SCALE_SHIFT
        mem_bucket, touched_bucket = sums["mem"], sums["touched"]
        for den, slots in mem_groups:
            slots = slots[occupied[slots]]
            allocated = scaled_sum(self.total_mem[slots] - self.free_mem[slots])
            if allocated:
                mem_bucket[den] = allocated
            touched = scaled_sum(self.touched_gb[slots])
            if touched:
                touched_bucket[den] = touched
        cxl_bucket = sums["cxl"]
        for den, slots in cxl_groups:
            slots = slots[occupied[slots]]
            used = scaled_sum(self.cxl_used[slots])
            if used:
                cxl_bucket[den] = used
        return agg

    def merge_stats(self, green_stats, baseline_stats) -> None:
        """Fold current vectorized aggregates into per-outcome stats."""
        self.stat_snapshot_merges += 1
        green_stats.merge_aggregate(self._aggregate(True))
        baseline_stats.merge_aggregate(self._aggregate(False))

    def snapshot(self, outcome) -> None:
        """Accumulate one packing-density snapshot into ``outcome``."""
        self.merge_stats(outcome.green_stats, outcome.baseline_stats)

    def telemetry_counters(self) -> Dict[str, int]:
        """Cumulative work counters (the replay loop folds deltas)."""
        return {
            "engine.queries": self.stat_queries,
            "engine.places": self.stat_places,
            "engine.removes": self.stat_removes,
            "engine.snapshot_merges": self.stat_snapshot_merges,
        }


__all__ = ["SoAPlacementEngine", "scaled_sum"]
