"""GSF's growth-buffer component (Section IV-D / V).

Cloud providers deploy extra capacity to absorb spikes in VM deployment
growth while new servers are procured.  For a brand-new GreenSKU there is
no demand history to size a dedicated buffer from, so the paper keeps the
*entire* buffer on baseline SKUs and lets VMs run fungibly on GreenSKUs
while capacity lasts — one buffer, sized from the baseline's history, at
the cost of the buffer being carbon-inefficient baseline hardware.  That
cost is charged against the GreenSKU deployment's savings.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from ..core.errors import ConfigError

#: Default buffer as a fraction of serving capacity, a typical headroom
#: figure for hyperscale inventory management (Chopra et al.-style safety
#: stock at weeks of lead time and double-digit annual growth).
DEFAULT_BUFFER_FRACTION = 0.15


@dataclass(frozen=True)
class BufferPlan:
    """Buffer servers to deploy on top of a right-sized cluster.

    Attributes:
        baseline_buffer_servers: Extra baseline SKUs held as the growth
            buffer (the paper's single-buffer workaround).
        green_buffer_servers: Extra GreenSKUs (zero under the paper's
            policy; nonzero only for the dual-buffer ablation).
    """

    baseline_buffer_servers: int
    green_buffer_servers: int = 0

    @property
    def total(self) -> int:
        return self.baseline_buffer_servers + self.green_buffer_servers


def baseline_only_buffer(
    serving_cores: float,
    baseline_cores_per_server: int,
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
) -> BufferPlan:
    """The paper's policy: a buffer of baseline SKUs sized from capacity.

    Args:
        serving_cores: Core capacity of the right-sized serving cluster
            (baseline plus GreenSKU cores).
        baseline_cores_per_server: Cores per baseline server.
        buffer_fraction: Buffer headroom as a fraction of serving cores.
    """
    if serving_cores < 0:
        raise ConfigError("serving cores must be >= 0")
    if baseline_cores_per_server <= 0:
        raise ConfigError("baseline cores per server must be > 0")
    if not 0 <= buffer_fraction < 1:
        raise ConfigError("buffer fraction must be in [0, 1)")
    buffer_cores = serving_cores * buffer_fraction
    servers = int(math.ceil(buffer_cores / baseline_cores_per_server))
    return BufferPlan(baseline_buffer_servers=servers)


def proportional_dual_buffer(
    baseline_cores: float,
    green_cores: float,
    baseline_cores_per_server: int,
    green_cores_per_server: int,
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
) -> BufferPlan:
    """Ablation policy: per-SKU buffers proportional to each pool.

    Requires demand history per SKU (which a new GreenSKU lacks — the
    reason the paper avoids it) but shows what a mature deployment's
    buffer would cost.
    """
    if baseline_cores < 0 or green_cores < 0:
        raise ConfigError("core capacities must be >= 0")
    if baseline_cores_per_server <= 0 or green_cores_per_server <= 0:
        raise ConfigError("cores per server must be > 0")
    if not 0 <= buffer_fraction < 1:
        raise ConfigError("buffer fraction must be in [0, 1)")
    base_servers = int(
        math.ceil(baseline_cores * buffer_fraction / baseline_cores_per_server)
    )
    green_servers = int(
        math.ceil(green_cores * buffer_fraction / green_cores_per_server)
    )
    return BufferPlan(
        baseline_buffer_servers=base_servers,
        green_buffer_servers=green_servers,
    )
