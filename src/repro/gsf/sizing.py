"""GSF's cluster sizing component (Section IV-D / V).

Determines how many baseline SKUs and GreenSKUs a cluster needs to host a
VM workload with no rejections:

1. Right-size a baseline-only cluster: the minimum server count that
   hosts every VM in the trace (the reference the savings are measured
   against).
2. Replace baseline SKUs with GreenSKUs: the paper incrementally swaps
   baseline servers for enough GreenSKUs until no more can be replaced —
   the fixed point is a cluster where baseline SKUs host exactly the VMs
   that cannot adopt (plus full-node VMs) and GreenSKUs host the rest.
   We reach the same fixed point directly by right-sizing each side of
   that partition, then verifying the mixed cluster end to end with the
   allocation simulator (adding GreenSKUs if fungible interleaving
   changed the picture).

Out-of-service maintenance overhead inflates each side's server count
(failed servers await repair, so extra capacity is deployed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..allocation.cluster import (
    AdoptionPolicy,
    ClusterSpec,
    adopt_nothing,
    replay_on_engine,
    resolve_engine,
    simulate,
)
from ..allocation.index import PlacementEngine
from ..allocation.scheduler import Server
from ..allocation.traces import VmTrace
from ..core import telemetry
from ..core.errors import CapacityError, ConfigError, SizingError
from ..hardware.sku import ServerSKU

#: Hard cap on sizing searches; a trace needing more servers than this is
#: misconfigured for the simulator's scale.
MAX_SERVERS = 20_000


@dataclass
class SizingStats:
    """Feasibility-probe counters for the sizing searches.

    ``simulate_calls`` counts configurations actually replayed through
    the allocation simulator; ``memo_hits`` counts probes answered from
    the per-search memo — each hit is a duplicate ``simulate()`` the memo
    eliminated.  A module-wide aggregate (:func:`sizing_stats`) feeds the
    bench harness's hit/miss report.
    """

    simulate_calls: int = 0
    memo_hits: int = 0

    @property
    def probes(self) -> int:
        return self.simulate_calls + self.memo_hits

    def merge(self, other: "SizingStats") -> None:
        self.simulate_calls += other.simulate_calls
        self.memo_hits += other.memo_hits

    def summary(self) -> str:
        return (
            f"sizing: {self.probes} feasibility probes, "
            f"{self.simulate_calls} simulated, {self.memo_hits} memo hits"
        )


_GLOBAL_SIZING_STATS = SizingStats()


def sizing_stats() -> SizingStats:
    """Process-wide probe counters (reset with :func:`reset_sizing_stats`)."""
    return _GLOBAL_SIZING_STATS


def reset_sizing_stats() -> SizingStats:
    global _GLOBAL_SIZING_STATS
    _GLOBAL_SIZING_STATS = SizingStats()
    return _GLOBAL_SIZING_STATS


class _FeasibilityMemo:
    """Memoizes one search's feasibility probes.

    Scoped to a single sizing search, where the trace and adoption policy
    are fixed, so a configuration key (server count, or a count tuple for
    mixed clusters) fully determines the simulator's verdict.  Guarantees
    no configuration is ever simulated twice within the search.
    """

    def __init__(self, probe: Callable[..., bool]):
        self._probe = probe
        self._seen: Dict[Hashable, bool] = {}
        self.stats = SizingStats()

    def __call__(self, *key: Hashable) -> bool:
        cached = self._seen.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            _GLOBAL_SIZING_STATS.memo_hits += 1
            return cached
        result = self._probe(*key)
        self.stats.simulate_calls += 1
        _GLOBAL_SIZING_STATS.simulate_calls += 1
        self._seen[key] = result
        return result


@dataclass(frozen=True)
class ClusterSizing:
    """Output of the sizing search.

    Attributes:
        baseline_only_servers: Right-sized all-baseline cluster.
        mixed_baseline_servers: Baseline SKUs in the mixed cluster.
        mixed_green_servers: GreenSKUs in the mixed cluster.
        oos_overhead_baseline / oos_overhead_green: Out-of-service server
            fractions applied on top of the counts when computing carbon.
    """

    baseline_only_servers: int
    mixed_baseline_servers: int
    mixed_green_servers: int
    oos_overhead_baseline: float = 0.0
    oos_overhead_green: float = 0.0

    @property
    def mixed_total(self) -> int:
        return self.mixed_baseline_servers + self.mixed_green_servers

    @property
    def deployed_baseline_only(self) -> float:
        """Baseline-only servers including out-of-service overhead."""
        return self.baseline_only_servers * (1 + self.oos_overhead_baseline)

    @property
    def deployed_mixed(self) -> Tuple[float, float]:
        """(baseline, green) deployed counts including OOS overhead."""
        return (
            self.mixed_baseline_servers * (1 + self.oos_overhead_baseline),
            self.mixed_green_servers * (1 + self.oos_overhead_green),
        )


def _feasible(
    trace: VmTrace, cluster: ClusterSpec, adoption: AdoptionPolicy
) -> bool:
    outcome = simulate(trace, cluster, adoption=adoption, snapshot_hours=1e9)
    return outcome.feasible


class _EngineProber:
    """One reusable indexed engine for a whole sizing search.

    Every feasibility probe of a search replays the same trace against
    the same SKU slots with different counts.  Instead of rebuilding the
    cluster per probe, this keeps a single :class:`PlacementEngine` and
    applies server add/remove deltas between probes; each SKU slot owns a
    disjoint ascending id range so the relative server order always
    matches what ``ClusterSpec.build_servers`` would produce (ties in the
    placement rank keys resolve by pool order, which both schemes keep
    identical — and no id leaks into a :class:`SimOutcome`).  Probes
    replay with ``raise_on_reject``, which decides the verdict at the
    first rejection; :meth:`PlacementEngine.reset` restores pristine
    server state before every probe either way.
    """

    #: Id stride per SKU slot; must exceed any probed count (MAX_SERVERS).
    _STRIDE = 1 << 21

    def __init__(
        self,
        trace: VmTrace,
        skus: Sequence[ServerSKU],
        adoption: AdoptionPolicy,
    ):
        self._trace = trace
        self._skus = list(skus)
        self._adoption = adoption
        self._engine = PlacementEngine(policy="best-fit", track_stats=False)
        self._counts: List[int] = [0] * len(self._skus)

    def __call__(self, *counts: int) -> bool:
        if len(counts) != len(self._skus):
            raise ConfigError(
                f"prober takes {len(self._skus)} counts, got {len(counts)}"
            )
        engine = self._engine
        engine.reset()
        for slot, want in enumerate(counts):
            have = self._counts[slot]
            if want == have:
                continue
            if want > MAX_SERVERS:
                raise SizingError(f"probe count {want} exceeds {MAX_SERVERS}")
            base = slot * self._STRIDE
            sku = self._skus[slot]
            if want > have:
                for j in range(have, want):
                    engine.add_server(Server(base + j, sku))
            else:
                for j in range(want, have):
                    engine.remove_server(base + j)
            self._counts[slot] = want
        spec = ClusterSpec(
            skus=tuple(zip(self._skus, counts))
        )
        try:
            replay_on_engine(
                self._trace,
                spec,
                engine,
                adoption=self._adoption,
                snapshot_hours=1e9,
                raise_on_reject=True,
            )
        except CapacityError:
            return False
        return True


def right_size(
    trace: VmTrace,
    sku: ServerSKU,
    adoption: AdoptionPolicy = adopt_nothing,
    lower: int = 1,
    hint: Optional[int] = None,
    stats: Optional[SizingStats] = None,
) -> int:
    """Minimum count of ``sku`` servers hosting ``trace`` with no rejection.

    Binary search on the server count (rejections are monotone in cluster
    size under best-fit for all practical traces), then a downward linear
    verification pass to guard against non-monotonicity at the boundary.
    Every probe within the search is memoized, so no configuration is
    simulated twice (in particular the verification pass reuses the
    bisection's final infeasible probe), and the result never falls below
    the caller-supplied ``lower`` bound.

    Args:
        lower: Minimum admissible count; the search neither probes nor
            returns counts below it (an empty trace still needs 0).
        hint: Warm-start for the bracket (e.g. a related search's
            result); the exponential bracket starts there instead of at
            ``lower``.  A wrong hint costs extra probes but never changes
            the result.
        stats: When given, this search's probe counters are accumulated
            into it (on top of the module-wide aggregate).
    """
    if lower < 0:
        raise ConfigError("lower bound must be >= 0")

    if resolve_engine() == "reference":

        def probe(n: int) -> bool:
            if n == 0:
                return trace.vm_count == 0
            return _feasible(trace, ClusterSpec.of((sku, n)), adoption)

    else:
        prober = _EngineProber(trace, (sku,), adoption)

        def probe(n: int) -> bool:
            if n == 0:
                return trace.vm_count == 0
            return prober(n)

    if not trace.vm_count:
        return 0

    feasible = _FeasibilityMemo(probe)
    floor = max(lower, 1)
    bracket_steps = 0
    bisect_steps = 0
    verify_steps = 0
    # Exponential bracket, optionally warm-started from a hint.  The
    # invariant entering the bisection: ``lo`` infeasible (or the floor's
    # sentinel below it), ``hi`` feasible.
    start = max(floor, min(hint, MAX_SERVERS) if hint else floor)
    bracket_steps += 1
    if feasible(start):
        hi = start
        lo = floor - 1  # sentinel: never probed, counts below floor
        # are out of bounds by contract.
        step = max(1, hi // 2)
        probe_down = hi - step
        while probe_down > lo:
            bracket_steps += 1
            if feasible(probe_down):
                hi = probe_down
                step = max(1, hi // 2)
                probe_down = hi - step
            else:
                lo = probe_down
                break
    else:
        lo = start
        hi = start * 2
        while True:
            if hi > MAX_SERVERS:
                raise SizingError(
                    f"trace {trace.name} does not fit {MAX_SERVERS} "
                    f"{sku.name} servers"
                )
            bracket_steps += 1
            if feasible(hi):
                break
            lo = hi
            hi *= 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        bisect_steps += 1
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    # Downward verification: ensure hi-1 truly infeasible.  When the
    # bisection just probed hi-1 (the common case), the memo answers and
    # nothing is re-simulated.
    while hi > floor:
        verify_steps += 1
        if not feasible(hi - 1):
            break
        hi -= 1
    if stats is not None:
        stats.merge(feasible.stats)
    tel = telemetry.active()
    if tel is not None:
        tel.count_many(
            {
                "sizing.searches": 1,
                "sizing.bracket_steps": bracket_steps,
                "sizing.bisect_steps": bisect_steps,
                "sizing.verify_steps": verify_steps,
                "sizing.simulate_calls": feasible.stats.simulate_calls,
                "sizing.memo_hits": feasible.stats.memo_hits,
            }
        )
    return max(hi, lower)


def _split_trace(
    trace: VmTrace, adoption: AdoptionPolicy
) -> Tuple[VmTrace, VmTrace]:
    """Partition a trace into (adopters scaled implicitly later, rest).

    The adoption policy is a pure function of ``(app_name, generation)``,
    so it is evaluated once per distinct pair appearing in the trace
    (full-node VMs never consult it — they are always "rest") and the
    partition masks come from a vectorized lookup over the columns.
    """
    columns = trace.columns
    pair_keys = columns.app_index * 8 + columns.generation
    candidate = ~columns.full_node
    adopts = np.zeros(columns.n, dtype=np.bool_)
    if candidate.any():
        unique_keys, inverse = np.unique(
            pair_keys[candidate], return_inverse=True
        )
        decisions = np.array(
            [
                adoption(columns.app_names[int(key) >> 3], int(key) & 7)
                is not None
                for key in unique_keys
            ],
            dtype=np.bool_,
        )
        adopts[candidate] = decisions[inverse]
    green_trace = trace.filter(adopts, name=f"{trace.name}-adopters")
    base_trace = trace.filter(~adopts, name=f"{trace.name}-rest")
    return green_trace, base_trace


def size_mixed_cluster(
    trace: VmTrace,
    baseline: ServerSKU,
    greensku: ServerSKU,
    adoption: AdoptionPolicy,
    oos_overhead_baseline: float = 0.0,
    oos_overhead_green: float = 0.0,
    verify: bool = True,
    stats: Optional[SizingStats] = None,
) -> ClusterSizing:
    """Size both the all-baseline reference and the mixed cluster.

    The mixed sizing starts from the per-partition right-sizes (adopters
    on GreenSKUs, the rest on baselines), verifies the combined cluster
    end to end, and then greedily trims servers while the full trace still
    fits — mirroring the paper's incremental baseline-replacement search,
    which keeps the statistical multiplexing that fungible fallback
    placement (adopters overflowing onto idle baseline capacity) buys.

    The reference search warm-starts the partition searches, and every
    mixed-cluster configuration probed by the verification and trim loops
    is memoized, so no (baseline, green) count pair is simulated twice.

    Args:
        trace: The VM workload.
        baseline: Baseline SKU (reference and non-adopter host).
        greensku: The GreenSKU under evaluation.
        adoption: The adoption component's policy.
        oos_overhead_baseline / oos_overhead_green: Out-of-service server
            fractions (maintenance component output).
        verify: Run the end-to-end verification + trim passes (disable
            only for unit tests of the partition sizing itself).
        stats: When given, accumulates this sizing's probe counters.
    """
    n_reference = right_size(trace, baseline, adopt_nothing, stats=stats)
    green_trace, base_trace = _split_trace(trace, adoption)
    # Warm-start each partition from the reference bracket: a partition
    # never needs more servers of the same-or-bigger SKU than the whole
    # trace needed baselines, and is usually close below it.
    n_base = (
        right_size(base_trace, baseline, hint=n_reference, stats=stats)
        if base_trace.vm_count
        else 0
    )
    n_green = (
        right_size(
            green_trace, greensku, adoption, hint=n_reference, stats=stats
        )
        if green_trace.vm_count
        else 0
    )
    if verify and (n_base or n_green):
        if resolve_engine() == "reference":

            def probe(nb: int, ng: int) -> bool:
                if nb + ng == 0:
                    return not trace.vm_count
                return _feasible(
                    trace,
                    ClusterSpec.of((baseline, nb), (greensku, ng)),
                    adoption,
                )

        else:
            prober = _EngineProber(trace, (baseline, greensku), adoption)

            def probe(nb: int, ng: int) -> bool:
                if nb + ng == 0:
                    return not trace.vm_count
                return prober(nb, ng)

        feasible = _FeasibilityMemo(probe)
        grow_steps = 0
        while not feasible(n_base, n_green):
            n_green += 1
            grow_steps += 1
            if n_base + n_green > MAX_SERVERS:
                raise SizingError(
                    f"mixed sizing for {trace.name} exceeded {MAX_SERVERS}"
                )
        # Greedy trim: prefer dropping baseline SKUs (the replacement the
        # paper's search performs), then try dropping GreenSKUs.
        trim_steps = 0
        trimmed = True
        while trimmed:
            trimmed = False
            while n_base > 0 and feasible(n_base - 1, n_green):
                n_base -= 1
                trim_steps += 1
                trimmed = True
            while n_green > 0 and feasible(n_base, n_green - 1):
                n_green -= 1
                trim_steps += 1
                trimmed = True
        if stats is not None:
            stats.merge(feasible.stats)
        tel = telemetry.active()
        if tel is not None:
            tel.count_many(
                {
                    "sizing.mixed_verifications": 1,
                    "sizing.grow_steps": grow_steps,
                    "sizing.trim_steps": trim_steps,
                    "sizing.simulate_calls": feasible.stats.simulate_calls,
                    "sizing.memo_hits": feasible.stats.memo_hits,
                }
            )
    return ClusterSizing(
        baseline_only_servers=n_reference,
        mixed_baseline_servers=n_base,
        mixed_green_servers=n_green,
        oos_overhead_baseline=oos_overhead_baseline,
        oos_overhead_green=oos_overhead_green,
    )


@dataclass(frozen=True)
class GenerationAwareSizing:
    """Sizing output when the reference fleet is generation-aware.

    The paper's traces pre-assign each VM to a baseline generation; a
    generation-aware reference hosts Gen-g VMs on Gen-g SKUs (old VM
    images keep running on their own hardware generation), and the mixed
    cluster keeps per-generation baseline pools for the non-adopters.

    Attributes:
        reference_by_gen: Generation -> servers in the all-baseline fleet.
        mixed_baselines_by_gen: Generation -> baseline servers kept in the
            mixed deployment.
        mixed_green_servers: GreenSKUs in the mixed deployment.
    """

    reference_by_gen: "dict[int, int]"
    mixed_baselines_by_gen: "dict[int, int]"
    mixed_green_servers: int

    @property
    def reference_total(self) -> int:
        return sum(self.reference_by_gen.values())

    @property
    def mixed_baseline_total(self) -> int:
        return sum(self.mixed_baselines_by_gen.values())


def size_generation_aware(
    trace: VmTrace,
    baselines: "dict[int, ServerSKU]",
    greensku: ServerSKU,
    adoption: AdoptionPolicy,
    verify: bool = True,
    stats: Optional[SizingStats] = None,
) -> GenerationAwareSizing:
    """Size reference and mixed clusters with per-generation pools.

    The reference hosts each generation's VMs on that generation's SKU;
    the mixed cluster adds GreenSKUs for adopters and trims greedily on
    the full trace with generation routing active.  The non-adopter
    searches warm-start from the reference counts, and the verify/trim
    loops memoize every probed configuration.
    """
    generations = sorted(baselines)
    # Reference: per-generation right-size on that generation's sub-trace.
    reference: "dict[int, int]" = {}
    for gen in generations:
        sub = trace.filter(
            trace.columns.generation == gen, name=f"{trace.name}-g{gen}"
        )
        reference[gen] = (
            right_size(sub, baselines[gen], stats=stats) if sub.vm_count else 0
        )

    # Mixed: non-adopters per generation + greens for adopters.
    green_trace, base_trace = _split_trace(trace, adoption)
    mixed: "dict[int, int]" = {}
    for gen in generations:
        sub = base_trace.filter(
            base_trace.columns.generation == gen,
            name=f"{trace.name}-rest-g{gen}",
        )
        mixed[gen] = (
            right_size(
                sub, baselines[gen], hint=reference[gen] or None, stats=stats
            )
            if sub.vm_count
            else 0
        )
    n_green = (
        right_size(green_trace, greensku, adoption, stats=stats)
        if green_trace.vm_count
        else 0
    )

    if verify:

        def spec(counts: Tuple[Tuple[int, int], ...], ng: int) -> ClusterSpec:
            pairs = [(baselines[gen], count) for gen, count in counts]
            pairs.append((greensku, ng))
            return ClusterSpec.of(*pairs)

        if resolve_engine() == "reference":

            def probe(counts: Tuple[Tuple[int, int], ...], ng: int) -> bool:
                return _feasible(trace, spec(counts, ng), adoption)

        else:
            slot_skus = [baselines[gen] for gen in generations] + [greensku]
            prober = _EngineProber(trace, slot_skus, adoption)

            def probe(counts: Tuple[Tuple[int, int], ...], ng: int) -> bool:
                by_gen = dict(counts)
                return prober(
                    *(by_gen.get(gen, 0) for gen in generations), ng
                )

        memo = _FeasibilityMemo(probe)

        def feasible(mixed_counts: "dict[int, int]", ng: int) -> bool:
            return memo(tuple(sorted(mixed_counts.items())), ng)

        grow_steps = 0
        while not feasible(mixed, n_green):
            n_green += 1
            grow_steps += 1
            if sum(mixed.values()) + n_green > MAX_SERVERS:
                raise SizingError(
                    f"generation-aware sizing for {trace.name} exceeded "
                    f"{MAX_SERVERS}"
                )
        trim_steps = 0
        trimmed = True
        while trimmed:
            trimmed = False
            for gen in generations:
                while mixed[gen] > 0:
                    candidate = dict(mixed)
                    candidate[gen] -= 1
                    if feasible(candidate, n_green):
                        mixed = candidate
                        trim_steps += 1
                        trimmed = True
                    else:
                        break
            while n_green > 0 and feasible(mixed, n_green - 1):
                n_green -= 1
                trim_steps += 1
                trimmed = True
        if stats is not None:
            stats.merge(memo.stats)
        tel = telemetry.active()
        if tel is not None:
            tel.count_many(
                {
                    "sizing.mixed_verifications": 1,
                    "sizing.grow_steps": grow_steps,
                    "sizing.trim_steps": trim_steps,
                    "sizing.simulate_calls": memo.stats.simulate_calls,
                    "sizing.memo_hits": memo.stats.memo_hits,
                }
            )
    return GenerationAwareSizing(
        reference_by_gen=reference,
        mixed_baselines_by_gen=mixed,
        mixed_green_servers=n_green,
    )
