"""GSF: the GreenSKU Framework — adoption, sizing, buffers, orchestration."""

from .adoption import AdoptionDecision, AdoptionModel, default_baseline_skus
from .buffer import (
    DEFAULT_BUFFER_FRACTION,
    BufferPlan,
    baseline_only_buffer,
    proportional_dual_buffer,
)
from .framework import GenerationAwareEvaluation, Gsf, GsfConfig
from .report import evaluation_markdown
from .results import (
    CarbonAwareDelta,
    DeploymentEmissions,
    GsfEvaluation,
    IntensitySweepPoint,
)
from .sizing import (
    ClusterSizing,
    GenerationAwareSizing,
    right_size,
    size_generation_aware,
    size_mixed_cluster,
)

__all__ = [
    "AdoptionDecision",
    "AdoptionModel",
    "default_baseline_skus",
    "DEFAULT_BUFFER_FRACTION",
    "BufferPlan",
    "baseline_only_buffer",
    "proportional_dual_buffer",
    "evaluation_markdown",
    "GenerationAwareEvaluation",
    "Gsf",
    "GsfConfig",
    "CarbonAwareDelta",
    "DeploymentEmissions",
    "GsfEvaluation",
    "IntensitySweepPoint",
    "ClusterSizing",
    "GenerationAwareSizing",
    "right_size",
    "size_generation_aware",
    "size_mixed_cluster",
]
