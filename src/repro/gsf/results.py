"""Typed result records for GSF evaluations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..carbon.model import SkuAssessment
from .buffer import BufferPlan
from .sizing import ClusterSizing


@dataclass(frozen=True)
class DeploymentEmissions:
    """Lifetime emissions of one deployed cluster configuration.

    Attributes:
        baseline_servers: Deployed baseline servers (serving + OOS
            overhead + buffer).
        green_servers: Deployed GreenSKUs (serving + OOS overhead).
        baseline_kg: Lifetime kgCO2e attributed to the baseline servers.
        green_kg: Lifetime kgCO2e attributed to the GreenSKUs.
    """

    baseline_servers: float
    green_servers: float
    baseline_kg: float
    green_kg: float

    @property
    def total_kg(self) -> float:
        return self.baseline_kg + self.green_kg

    @property
    def total_servers(self) -> float:
        return self.baseline_servers + self.green_servers


@dataclass(frozen=True)
class GsfEvaluation:
    """End-to-end GSF output for one GreenSKU on one workload trace.

    Attributes:
        greensku_name: The evaluated GreenSKU.
        trace_name: The workload.
        carbon_intensity: Grid carbon intensity used (kgCO2e/kWh).
        sizing: Cluster sizing component output.
        buffer: Growth buffer plan (baseline-only policy).
        reference: Emissions of the all-baseline deployment.
        mixed: Emissions of the GreenSKU deployment.
        cluster_savings: Fractional cluster-level carbon savings.
        dc_savings: Fractional net data-center savings (cluster savings
            scaled by compute's share of DC emissions).
        adopted_core_hour_share: Fleet core-hour share that adopts.
        baseline_assessment / green_assessment: Per-core carbon detail.
    """

    greensku_name: str
    trace_name: str
    carbon_intensity: float
    sizing: ClusterSizing
    buffer: BufferPlan
    reference: DeploymentEmissions
    mixed: DeploymentEmissions
    adopted_core_hour_share: float
    baseline_assessment: SkuAssessment
    green_assessment: SkuAssessment

    @property
    def cluster_savings(self) -> float:
        """Fractional savings of the mixed cluster vs the reference."""
        if self.reference.total_kg == 0:
            return 0.0
        return 1.0 - self.mixed.total_kg / self.reference.total_kg

    def dc_savings(self, compute_share: float) -> float:
        """Net data-center savings given compute's share of DC emissions."""
        return self.cluster_savings * compute_share

    def to_payload(self) -> Dict[str, object]:
        """A JSON-ready dict of this evaluation (the catalog's storage form).

        Everything numeric that the sweep service publishes: the scalar
        identity fields, the sizing counts, the buffer, both deployments'
        server counts and emissions, and the derived savings.  Floats are
        stored as-is (canonical-JSON ``repr`` round-trips them exactly),
        so re-encoding an unchanged evaluation is byte-identical.
        """
        def emissions(dep: DeploymentEmissions) -> Dict[str, float]:
            return {
                "baseline_servers": dep.baseline_servers,
                "green_servers": dep.green_servers,
                "baseline_kg": dep.baseline_kg,
                "green_kg": dep.green_kg,
                "total_kg": dep.total_kg,
            }

        return {
            "greensku": self.greensku_name,
            "trace": self.trace_name,
            "carbon_intensity": self.carbon_intensity,
            "sizing": {
                "baseline_only_servers": self.sizing.baseline_only_servers,
                "mixed_baseline_servers": self.sizing.mixed_baseline_servers,
                "mixed_green_servers": self.sizing.mixed_green_servers,
                "oos_overhead_baseline": self.sizing.oos_overhead_baseline,
                "oos_overhead_green": self.sizing.oos_overhead_green,
            },
            "buffer": {
                "baseline_buffer_servers": self.buffer.baseline_buffer_servers,
                "green_buffer_servers": self.buffer.green_buffer_servers,
            },
            "reference": emissions(self.reference),
            "mixed": emissions(self.mixed),
            "adopted_core_hour_share": self.adopted_core_hour_share,
            "cluster_savings": self.cluster_savings,
        }


@dataclass(frozen=True)
class CarbonAwareDelta:
    """Operational-carbon delta of carbon-aware vs blind placement.

    Produced by the ``carbon-aware`` experiment family and the sweep
    service when a ``grid_signal`` axis is active: the same trace is
    replayed on the same mixed cluster under the blind policy and the
    carbon-aware policy, each with a :class:`~repro.carbon.grid.\
CarbonAccountant` attached, and the exact operational kgCO2e of both
    runs is compared.

    Attributes:
        evaluation: The underlying GSF evaluation of the cluster (the
            embodied/operational framing carbon-aware placement rides on).
        signal_name: Name of the attached grid :class:`CarbonSignal`.
        blind_kg: Operational kgCO2e of the carbon-blind replay.
        aware_kg: Operational kgCO2e of the carbon-aware replay.
        blind_digest: ``outcome_digest`` of the blind replay.
        aware_digest: ``outcome_digest`` of the carbon-aware replay.
    """

    evaluation: GsfEvaluation
    signal_name: str
    blind_kg: float
    aware_kg: float
    blind_digest: str
    aware_digest: str

    @property
    def delta_kg(self) -> float:
        """Operational kg saved by the carbon-aware policy (blind - aware)."""
        return self.blind_kg - self.aware_kg

    @property
    def delta_fraction(self) -> float:
        """Fractional operational savings relative to the blind replay."""
        if self.blind_kg == 0:
            return 0.0
        return self.delta_kg / self.blind_kg

    def to_payload(self) -> Dict[str, object]:
        """The evaluation payload plus a ``carbon_aware`` section."""
        payload = self.evaluation.to_payload()
        payload["carbon_aware"] = {
            "signal": self.signal_name,
            "blind_kg": self.blind_kg,
            "aware_kg": self.aware_kg,
            "delta_kg": self.delta_kg,
            "delta_fraction": self.delta_fraction,
            "blind_digest": self.blind_digest,
            "aware_digest": self.aware_digest,
        }
        return payload


@dataclass(frozen=True)
class IntensitySweepPoint:
    """One point of a Fig.-11-style carbon-intensity sweep."""

    carbon_intensity: float
    savings_by_sku: Dict[str, float]

    def best_sku(self) -> Tuple[str, float]:
        """The GreenSKU with the highest savings at this intensity."""
        name = max(self.savings_by_sku, key=self.savings_by_sku.get)
        return name, self.savings_by_sku[name]
