"""The GreenSKU Framework (GSF): end-to-end orchestration (Section IV).

``Gsf`` wires the seven components together the way Fig. 6 draws them:

- the **carbon model** prices every SKU to CO2e-per-core,
- the **performance** component supplies per-app scaling factors,
- the **maintenance** component supplies out-of-service overheads,
- the **adoption** component decides which apps run on the GreenSKU,
- the **VM allocation** simulator checks whether a cluster hosts a trace,
- the **cluster sizing** search right-sizes baseline and mixed clusters,
- the **growth buffer** adds baseline-SKU headroom.

The final output compares the lifetime emissions of the GreenSKU
deployment against an all-baseline deployment serving the same VM trace:
cluster-level savings, and net data-center savings after weighting by
compute's share of DC emissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..allocation.traces import VmTrace
from ..carbon.model import CarbonModel
from ..hardware.datacenter import DataCenterConfig
from ..hardware.rack import RackConfig
from ..hardware.sku import ServerSKU, all_greenskus, baseline_gen3
from ..reliability.afr import DEFAULT_FIP_EFFECTIVENESS, server_afr
from ..reliability.maintenance import (
    DEFAULT_REPAIR_TIME_DAYS,
    out_of_service_fraction,
)
from .adoption import AdoptionModel, default_baseline_skus
from .buffer import DEFAULT_BUFFER_FRACTION, baseline_only_buffer
from .results import DeploymentEmissions, GsfEvaluation, IntensitySweepPoint
from .sizing import (
    ClusterSizing,
    GenerationAwareSizing,
    size_generation_aware,
    size_mixed_cluster,
)


@dataclass(frozen=True)
class GsfConfig:
    """GSF inputs (the yellow boxes of Fig. 6).

    Attributes:
        datacenter: Facility parameters (lifetime, CI, PUE, ...).
        rack: Rack constraints.
        fip_effectiveness: Fail-In-Place effectiveness for DIMM/SSD.
        repair_time_days: Average repair turnaround.
        buffer_fraction: Growth-buffer headroom over serving capacity.
        cxl_scaling: Derive scaling factors with the CXL latency penalty
            applied (False: the paper's Pond-style mitigation keeps CXL
            off the critical path for non-tolerant apps).
    """

    datacenter: DataCenterConfig = field(default_factory=DataCenterConfig)
    rack: RackConfig = field(default_factory=RackConfig)
    fip_effectiveness: float = DEFAULT_FIP_EFFECTIVENESS
    repair_time_days: float = DEFAULT_REPAIR_TIME_DAYS
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION
    cxl_scaling: bool = False


class Gsf:
    """Evaluates GreenSKUs' carbon savings at data-center scale.

    Example::

        gsf = Gsf()
        trace = generate_trace(seed=1)
        result = gsf.evaluate(greensku_full(), trace)
        print(f"cluster savings: {result.cluster_savings:.1%}")
    """

    def __init__(
        self,
        config: Optional[GsfConfig] = None,
        baseline: Optional[ServerSKU] = None,
        baselines: Optional[Dict[int, ServerSKU]] = None,
    ):
        self.config = config or GsfConfig()
        self.baseline = baseline or baseline_gen3()
        self.baselines = baselines or default_baseline_skus()
        self.carbon_model = CarbonModel(self.config.datacenter, self.config.rack)

    # -- component plumbing -------------------------------------------------

    def adoption_model(self, greensku: ServerSKU) -> AdoptionModel:
        """The adoption component for one GreenSKU under this config."""
        return AdoptionModel(
            self.carbon_model,
            greensku,
            baselines=self.baselines,
            cxl=self.config.cxl_scaling,
        )

    def oos_fraction(self, sku: ServerSKU) -> float:
        """Maintenance component: out-of-service fraction for one SKU."""
        repair_rate = server_afr(sku).repair_rate(self.config.fip_effectiveness)
        return out_of_service_fraction(
            repair_rate, self.config.repair_time_days
        )

    # -- end-to-end evaluation ------------------------------------------------

    def evaluate(
        self,
        greensku: ServerSKU,
        trace: VmTrace,
        sizing: Optional[ClusterSizing] = None,
    ) -> GsfEvaluation:
        """Estimate the GreenSKU deployment's savings on one trace.

        Args:
            greensku: The GreenSKU to evaluate.
            trace: VM workload.
            sizing: Reuse a precomputed sizing (e.g. across a carbon-
                intensity sweep where adoption decisions did not change).
        """
        adoption = self.adoption_model(greensku)
        if sizing is None:
            base_sizing = size_mixed_cluster(
                trace, self.baseline, greensku, adoption.policy()
            )
        else:
            base_sizing = sizing
        sizing_with_oos = ClusterSizing(
            baseline_only_servers=base_sizing.baseline_only_servers,
            mixed_baseline_servers=base_sizing.mixed_baseline_servers,
            mixed_green_servers=base_sizing.mixed_green_servers,
            oos_overhead_baseline=self.oos_fraction(self.baseline),
            oos_overhead_green=self.oos_fraction(greensku),
        )

        base_assessment = self.carbon_model.assess(self.baseline)
        green_assessment = self.carbon_model.assess(greensku)
        e_base = base_assessment.per_server_total_kg
        e_green = green_assessment.per_server_total_kg

        # Reference deployment: all-baseline serving + OOS + buffer.
        ref_serving = sizing_with_oos.deployed_baseline_only
        ref_buffer = baseline_only_buffer(
            sizing_with_oos.baseline_only_servers * self.baseline.cores,
            self.baseline.cores,
            self.config.buffer_fraction,
        )
        ref_servers = ref_serving + ref_buffer.baseline_buffer_servers
        reference = DeploymentEmissions(
            baseline_servers=ref_servers,
            green_servers=0.0,
            baseline_kg=ref_servers * e_base,
            green_kg=0.0,
        )

        # Mixed deployment: baseline + GreenSKU serving, baseline-only
        # buffer (the paper's single-buffer workaround).
        mixed_base, mixed_green = sizing_with_oos.deployed_mixed
        serving_cores = (
            sizing_with_oos.mixed_baseline_servers * self.baseline.cores
            + sizing_with_oos.mixed_green_servers * greensku.cores
        )
        mixed_buffer = baseline_only_buffer(
            serving_cores, self.baseline.cores, self.config.buffer_fraction
        )
        mixed_base_total = mixed_base + mixed_buffer.baseline_buffer_servers
        mixed = DeploymentEmissions(
            baseline_servers=mixed_base_total,
            green_servers=mixed_green,
            baseline_kg=mixed_base_total * e_base,
            green_kg=mixed_green * e_green,
        )

        return GsfEvaluation(
            greensku_name=greensku.name,
            trace_name=trace.name,
            carbon_intensity=(
                self.config.datacenter.carbon_intensity_kg_per_kwh
            ),
            sizing=sizing_with_oos,
            buffer=mixed_buffer,
            reference=reference,
            mixed=mixed,
            adopted_core_hour_share=adoption.adopted_core_hour_share(),
            baseline_assessment=base_assessment,
            green_assessment=green_assessment,
        )

    def dc_savings(self, evaluation: GsfEvaluation) -> float:
        """Net data-center savings for an evaluation under this config."""
        return evaluation.dc_savings(
            self.config.datacenter.compute_share_of_dc
        )

    def evaluate_generation_aware(
        self, greensku: ServerSKU, trace: VmTrace
    ) -> "GenerationAwareEvaluation":
        """Savings against a generation-aware reference fleet.

        The default :meth:`evaluate` prices the reference as all-Gen3
        hardware.  The fleet reality the paper describes — old VM images
        keep deploying onto their own hardware generations — is modelled
        here: the reference hosts Gen-g VMs on Gen-g SKUs, and the mixed
        deployment keeps per-generation baseline pools for non-adopters.
        """
        adoption = self.adoption_model(greensku)
        sizing = size_generation_aware(
            trace, self.baselines, greensku, adoption.policy()
        )
        per_server = {
            gen: self.carbon_model.assess(sku).per_server_total_kg
            * (1 + self.oos_fraction(sku))
            for gen, sku in self.baselines.items()
        }
        e_green = self.carbon_model.assess(greensku).per_server_total_kg * (
            1 + self.oos_fraction(greensku)
        )
        reference_kg = sum(
            sizing.reference_by_gen[gen] * per_server[gen]
            for gen in sizing.reference_by_gen
        )
        mixed_kg = (
            sum(
                sizing.mixed_baselines_by_gen[gen] * per_server[gen]
                for gen in sizing.mixed_baselines_by_gen
            )
            + sizing.mixed_green_servers * e_green
        )
        savings = 1 - mixed_kg / reference_kg if reference_kg else 0.0
        return GenerationAwareEvaluation(
            greensku_name=greensku.name,
            trace_name=trace.name,
            sizing=sizing,
            reference_kg=reference_kg,
            mixed_kg=mixed_kg,
            cluster_savings=savings,
        )

    # -- sweeps ----------------------------------------------------------------

    def at_intensity(self, ci: float) -> "Gsf":
        """A copy of this framework at another grid carbon intensity."""
        new_dc = self.config.datacenter.with_carbon_intensity(ci)
        new_config = GsfConfig(
            datacenter=new_dc,
            rack=self.config.rack,
            fip_effectiveness=self.config.fip_effectiveness,
            repair_time_days=self.config.repair_time_days,
            buffer_fraction=self.config.buffer_fraction,
            cxl_scaling=self.config.cxl_scaling,
        )
        return Gsf(new_config, self.baseline, self.baselines)

    def intensity_sweep(
        self,
        trace: VmTrace,
        intensities: Sequence[float],
        greenskus: Optional[Sequence[ServerSKU]] = None,
    ) -> List[IntensitySweepPoint]:
        """Fig. 11: cluster savings across grid carbon intensities.

        Cluster sizing is reused across intensities whenever the adoption
        decisions are unchanged (sizing depends on the CI only through
        adoption).
        """
        greenskus = list(greenskus) if greenskus is not None else all_greenskus()
        points: List[IntensitySweepPoint] = []
        sizing_cache: Dict[Tuple[str, Tuple], ClusterSizing] = {}
        for ci in intensities:
            gsf_ci = self.at_intensity(ci)
            savings: Dict[str, float] = {}
            for sku in greenskus:
                adoption = gsf_ci.adoption_model(sku)
                decisions = tuple(
                    sorted(
                        (d.app_name, d.generation, d.adopt, d.scaling_factor)
                        for d in adoption.decisions()
                    )
                )
                key = (sku.name, decisions)
                sizing = sizing_cache.get(key)
                evaluation = gsf_ci.evaluate(sku, trace, sizing=sizing)
                sizing_cache[key] = ClusterSizing(
                    baseline_only_servers=(
                        evaluation.sizing.baseline_only_servers
                    ),
                    mixed_baseline_servers=(
                        evaluation.sizing.mixed_baseline_servers
                    ),
                    mixed_green_servers=evaluation.sizing.mixed_green_servers,
                )
                savings[sku.name] = evaluation.cluster_savings
            points.append(
                IntensitySweepPoint(carbon_intensity=ci, savings_by_sku=savings)
            )
        return points


@dataclass(frozen=True)
class GenerationAwareEvaluation:
    """Result of :meth:`Gsf.evaluate_generation_aware`.

    Emissions include out-of-service overheads; the growth buffer is
    omitted (it is identical policy on both sides and cancels to first
    order in the ratio).
    """

    greensku_name: str
    trace_name: str
    sizing: GenerationAwareSizing
    reference_kg: float
    mixed_kg: float
    cluster_savings: float
