"""Human-readable reports for GSF evaluations.

Renders a :class:`~repro.gsf.results.GsfEvaluation` as Markdown — the
artifact a capacity planner or sustainability team would circulate: the
deployment plan, the savings chain, the adoption picture, and the
assumptions that produced them.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import ConfigError
from .adoption import AdoptionModel
from .results import GsfEvaluation


def evaluation_markdown(
    evaluation: GsfEvaluation,
    compute_share: float = 0.5,
    adoption: Optional[AdoptionModel] = None,
) -> str:
    """Render one evaluation as a Markdown report.

    Args:
        evaluation: The framework's output.
        compute_share: Compute's share of DC emissions (for net savings).
        adoption: Optionally the adoption model, to list the applications
            that were kept off the GreenSKU and why.
    """
    if not 0 < compute_share <= 1:
        raise ConfigError("compute share must be in (0, 1]")
    ev = evaluation
    sizing = ev.sizing
    lines: List[str] = [
        f"# GSF evaluation: {ev.greensku_name}",
        "",
        f"Workload: trace `{ev.trace_name}`; grid carbon intensity "
        f"{ev.carbon_intensity} kgCO2e/kWh.",
        "",
        "## Savings",
        "",
        f"- per-core: baseline {ev.baseline_assessment.total_per_core:.1f}"
        f" kg -> {ev.green_assessment.total_per_core:.1f} kg "
        f"({1 - ev.green_assessment.total_per_core / ev.baseline_assessment.total_per_core:.1%})",
        f"- cluster (adoption + packing + buffer): "
        f"{ev.cluster_savings:.1%}",
        f"- net data-center (x{compute_share:.0%} compute share): "
        f"{ev.dc_savings(compute_share):.1%}",
        "",
        "## Deployment plan",
        "",
        "| item | count |",
        "|---|---|",
        f"| all-baseline reference | {sizing.baseline_only_servers} |",
        f"| baseline SKUs (serving) | {sizing.mixed_baseline_servers} |",
        f"| {ev.greensku_name} (serving) | {sizing.mixed_green_servers} |",
        f"| growth buffer (baseline SKUs) | "
        f"{ev.buffer.baseline_buffer_servers} |",
        f"| out-of-service headroom | "
        f"{sizing.oos_overhead_baseline:.2%} baseline / "
        f"{sizing.oos_overhead_green:.2%} GreenSKU |",
        "",
        f"Adopted fleet core-hours: {ev.adopted_core_hour_share:.0%}.",
    ]
    if adoption is not None:
        rejected = [
            d
            for d in adoption.decisions()
            if d.generation == 3 and not d.adopt
        ]
        if rejected:
            lines += [
                "",
                "## Applications kept on baseline SKUs (vs Gen3)",
                "",
                "| application | scaling factor | reason |",
                "|---|---|---|",
            ]
            for d in sorted(rejected, key=lambda d: d.app_name):
                import math

                if not math.isfinite(d.scaling_factor):
                    reason = "cannot meet SLO at any evaluated scale"
                    factor = ">1.5"
                else:
                    reason = (
                        "scaled carbon exceeds baseline "
                        f"({d.green_carbon_kg:.0f} vs "
                        f"{d.baseline_carbon_kg:.0f} kg)"
                    )
                    factor = f"{d.scaling_factor:g}"
                lines.append(f"| {d.app_name} | {factor} | {reason} |")
    lines += [
        "",
        "## Assumptions",
        "",
        "- Lifetime emissions over a 6-year deployment; reused parts "
        "carry zero embodied carbon.",
        "- SLOs: baseline p95 at 90% of peak; scaling candidates "
        "8/10/12 cores.",
        "- Growth buffer held on baseline SKUs only (no GreenSKU demand "
        "history).",
    ]
    return "\n".join(lines)
