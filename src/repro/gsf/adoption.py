"""GSF's adoption component (Section IV-C / V).

Decides, per application and per baseline generation, whether running on a
GreenSKU *saves carbon while meeting performance goals*:

- the performance component supplies the scaling factor (GreenSKU cores
  needed per 8-core baseline VM, Table III),
- the carbon model supplies CO2e-per-core for the GreenSKU and baselines,
- the application adopts the GreenSKU iff
  ``scaled_cores * co2e_green < baseline_cores * co2e_baseline``
  (and the scaling factor is finite at all).

The output doubles as the allocation simulator's placement policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..carbon.model import CarbonModel
from ..core.errors import ConfigError
from ..hardware.sku import (
    ServerSKU,
    baseline_gen1,
    baseline_gen2,
    baseline_gen3,
)
from ..perf.apps import APPLICATIONS, ApplicationProfile
from ..perf.scaling import BASELINE_CORES, scaling_factor


@dataclass(frozen=True)
class AdoptionDecision:
    """One application's adoption outcome against one baseline generation.

    Attributes:
        app_name: Application.
        generation: Baseline generation the VM would otherwise run on.
        scaling_factor: Performance component's factor (inf = cannot meet
            the SLO on the GreenSKU at any evaluated scale).
        green_carbon_kg: Lifetime CO2e to serve the VM on the GreenSKU
            (scaled cores x GreenSKU CO2e-per-core).
        baseline_carbon_kg: Lifetime CO2e to serve it on the baseline.
        adopt: The decision.
    """

    app_name: str
    generation: int
    scaling_factor: float
    green_carbon_kg: float
    baseline_carbon_kg: float

    @property
    def adopt(self) -> bool:
        """Adopt iff the GreenSKU meets the goal and emits less carbon."""
        return (
            math.isfinite(self.scaling_factor)
            and self.green_carbon_kg < self.baseline_carbon_kg
        )

    @property
    def savings_fraction(self) -> float:
        """Per-VM carbon savings when adopting (negative = regression)."""
        if not math.isfinite(self.scaling_factor):
            return -math.inf
        return 1.0 - self.green_carbon_kg / self.baseline_carbon_kg


def default_baseline_skus() -> Dict[int, ServerSKU]:
    """The deployed baseline SKUs by generation."""
    return {1: baseline_gen1(), 2: baseline_gen2(), 3: baseline_gen3()}


class AdoptionModel:
    """Evaluates and caches adoption decisions for one GreenSKU.

    Example::

        model = AdoptionModel(CarbonModel(), greensku_full())
        decision = model.decide("Xapian", generation=3)
        policy = model.policy()           # for allocation.simulate
    """

    def __init__(
        self,
        carbon_model: CarbonModel,
        greensku: ServerSKU,
        baselines: Optional[Dict[int, ServerSKU]] = None,
        apps: Optional[Sequence[ApplicationProfile]] = None,
        cxl: bool = False,
        baseline_cores: int = BASELINE_CORES,
    ):
        self.carbon_model = carbon_model
        self.greensku = greensku
        self.baselines = baselines or default_baseline_skus()
        self.apps = {
            a.name: a for a in (apps if apps is not None else APPLICATIONS)
        }
        self.cxl = cxl
        self.baseline_cores = baseline_cores
        self._green_per_core = carbon_model.assess(greensku).total_per_core
        self._base_per_core = {
            gen: carbon_model.assess(sku).total_per_core
            for gen, sku in self.baselines.items()
        }
        self._decisions: Dict[Tuple[str, int], AdoptionDecision] = {}

    def decide(self, app_name: str, generation: int) -> AdoptionDecision:
        """The (cached) adoption decision for one app and generation."""
        key = (app_name, generation)
        if key in self._decisions:
            return self._decisions[key]
        if generation not in self._base_per_core:
            raise ConfigError(f"no baseline SKU for generation {generation}")
        try:
            app = self.apps[app_name]
        except KeyError:
            raise ConfigError(f"unknown application {app_name!r}") from None
        result = scaling_factor(app, generation, cxl=self.cxl)
        baseline_carbon = self.baseline_cores * self._base_per_core[generation]
        if math.isfinite(result.factor):
            green_cores = self.baseline_cores * result.factor
            green_carbon = green_cores * self._green_per_core
        else:
            green_carbon = math.inf
        decision = AdoptionDecision(
            app_name=app_name,
            generation=generation,
            scaling_factor=result.factor,
            green_carbon_kg=green_carbon,
            baseline_carbon_kg=baseline_carbon,
        )
        self._decisions[key] = decision
        return decision

    def decisions(self) -> List[AdoptionDecision]:
        """Decisions for every known app against every baseline generation."""
        return [
            self.decide(name, gen)
            for name in sorted(self.apps)
            for gen in sorted(self.baselines)
        ]

    def policy(self):
        """An :data:`~repro.allocation.cluster.AdoptionPolicy` callable.

        Maps (app_name, generation) to the scaling factor when the app
        adopts, else None.
        """

        def adoption_policy(app_name: str, generation: int) -> Optional[float]:
            decision = self.decide(app_name, generation)
            return decision.scaling_factor if decision.adopt else None

        return adoption_policy

    def adopted_core_hour_share(self) -> float:
        """Fleet core-hour share that adopts, weighted like the traces.

        Weights classes by Table III's core-hour shares, applications
        uniformly within a class, and generations by nothing (reported per
        generation would differ; this uses Gen3, the dominant target).
        """
        from ..perf.apps import FLEET_CORE_HOUR_SHARE, apps_in_class

        share = 0.0
        for app_class, class_share in FLEET_CORE_HOUR_SHARE.items():
            members = apps_in_class(app_class)
            members = [m for m in members if m.name in self.apps]
            if not members:
                continue
            adopted = sum(
                1 for m in members if self.decide(m.name, 3).adopt
            )
            share += class_share * adopted / len(members)
        return share
