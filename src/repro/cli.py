"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — list the reproducible paper experiments.
- ``run <id>`` — run one experiment and print its rendered rows/series.
- ``run-all`` — run every experiment (the full paper reproduction).
- ``price <sku>`` — carbon-price one SKU (CO2e per core, power, rack fit).
- ``savings`` — the Table VIII per-core savings table.
- ``evaluate`` — end-to-end GSF on a synthetic trace.
- ``trace`` — generate/inspect synthetic VM traces: per-trace summary
  stats, CSV export, content digests (``--digest``), and trace-store
  pre-warming for a suite (``--suite N --warm``).
- ``trace ingest <paths>`` — ingest real AzurePublicDataset vmtable
  CSVs into the trace store: per-file row-accounting reports
  (``--report DIR``), content digests, and quarantine of corrupt
  sources into a sibling ``quarantine/`` directory.
- ``stats`` — validate and pretty-print a telemetry run manifest.

Global flags: ``--jobs N`` sets the worker-process count for the
trace-suite experiments (default: the ``REPRO_JOBS`` env var, else all
cores); ``--cache`` / ``--no-cache`` toggle the opt-in on-disk result
cache (default: the ``REPRO_CACHE`` env var, else off);
``--telemetry PATH`` instruments the run and writes a JSON manifest of
counters, timers, and phase spans (see ``docs/observability.md``);
``--queueing {vectorized,reference}`` selects the queueing grid
dispatch backend for sim-mode experiments (default: the
``REPRO_QUEUEING`` env var, else the vectorized path; ``reference`` is
the scalar oracle, bit-identical but slower);
``--alloc-engine {indexed,reference,soa}`` selects the placement
backend for allocation replays (default: the ``REPRO_ALLOC_ENGINE``
env var, else indexed; all backends are bit-identical in outcome);
``--trace-backend {synthetic,azure}`` selects where trace-suite
experiments get their workload: the synthetic generator (default) or
ingested Azure vmtable traces (``REPRO_AZURE_TRACE_DIR``, falling back
to the bundled offline sample).

Resilience flags (see ``docs/resilience.md``): ``--resume`` checkpoints
every completed suite task to an on-disk journal and loads completed
tasks from it on the next run, so an interrupted 35-seed suite picks up
where it stopped, bit-identically; ``--journal DIR`` relocates the
journal (implies ``--resume``); ``--retries N`` / ``--task-timeout S``
bound each task's attempts and wall clock; ``--keep-going`` opts into
graceful degradation — a task or experiment that exhausts its retry
budget is recorded as a structured failure and the run continues
(without it, a degraded task aborts the run after checkpointing the
survivors, so a fixed rerun resumes); ``--faults SPEC`` injects
deterministic worker kills and latency for testing the layer itself.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .allocation.cluster import ENGINE_ENV, ENGINES
from .allocation.ingest import (
    BACKEND_ENV,
    INGEST_CORRUPT_ERRORS,
    TRACE_BACKENDS,
    azure_trace_suite,
    ingest_azure_vm_trace,
    resolve_trace_backend,
)
from .allocation.io import save_trace
from .allocation.traces import (
    TraceParams,
    generate_trace,
    production_trace_suite,
)
from .carbon.model import CarbonModel
from .carbon.savings import paper_savings_table, render_savings_table
from .core import provenance, resilience, runner, telemetry
from .core.errors import ConfigError, ReproError
from .core.faults import parse_fault_spec
from .experiments.registry import EXPERIMENTS, get_experiment
from .gsf.framework import Gsf
from .hardware.datacenter import DataCenterConfig
from .hardware.sku import paper_skus
from .perf import queueing


def _model(args: argparse.Namespace) -> CarbonModel:
    dc = DataCenterConfig().with_carbon_intensity(args.ci)
    if getattr(args, "lifetime", None):
        dc = dc.with_lifetime(args.lifetime)
    return CarbonModel(dc)


def cmd_list(args: argparse.Namespace) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for exp in EXPERIMENTS.values():
        print(f"{exp.experiment_id.ljust(width)}  {exp.title}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.experiment)
    with telemetry.span(f"experiment.{experiment.experiment_id}"):
        experiment.module.main()
    return 0


def cmd_run_all(args: argparse.Namespace) -> int:
    from .experiments.registry import run_all

    on_failure = "record" if args.keep_going else "raise"
    results = run_all(verbose=True, on_failure=on_failure)
    failures = [
        value
        for value in results.values()
        if isinstance(value, resilience.TaskFailure)
    ]
    if failures:
        print(
            f"{len(failures)}/{len(results)} experiments degraded: "
            + ", ".join(str(f.key) for f in failures),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_price(args: argparse.Namespace) -> int:
    skus = paper_skus()
    if args.sku not in skus:
        raise ConfigError(
            f"unknown SKU {args.sku!r}; known: {sorted(skus)}"
        )
    sku = skus[args.sku]
    assessment = _model(args).assess(sku)
    print(f"{sku.name}: {sku.cores} cores, {sku.memory_gb} GB memory "
          f"({sku.cxl_memory_gb} GB via CXL), {sku.storage_tb:g} TB SSD")
    print(f"  server power:        {assessment.server.power_watts:8.1f} W")
    print(f"  server embodied:     {assessment.server.embodied_kg:8.1f} kg")
    print(f"  servers per rack:    {assessment.servers_per_rack:8d} "
          f"({'space' if assessment.space_bound else 'power'}-bound)")
    print(f"  operational/core:    {assessment.operational_per_core:8.1f} kg")
    print(f"  embodied/core:       {assessment.embodied_per_core:8.1f} kg")
    print(f"  total/core:          {assessment.total_per_core:8.1f} kg")
    return 0


def cmd_savings(args: argparse.Namespace) -> int:
    rows = paper_savings_table(_model(args))
    print(
        render_savings_table(
            rows,
            title=f"Per-core savings at CI = {args.ci} kgCO2e/kWh",
        )
    )
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    skus = paper_skus()
    if args.sku not in skus:
        raise ConfigError(
            f"unknown SKU {args.sku!r}; known: {sorted(skus)}"
        )
    gsf = Gsf().at_intensity(args.ci)
    if resolve_trace_backend() == "azure":
        trace = azure_trace_suite(count=1)[0]
        source = f"azure backend, {trace.name!r}"
        days = trace.duration_hours / 24.0
    else:
        trace = generate_trace(
            seed=args.seed,
            params=TraceParams(
                mean_concurrent_vms=args.vms, duration_days=args.days
            ),
        )
        source = f"seed {args.seed}"
        days = args.days
    evaluation = gsf.evaluate(skus[args.sku], trace)
    print(f"trace: {trace.vm_count} VMs over {days:g} days "
          f"({source})")
    print(f"sizing: {evaluation.sizing.baseline_only_servers} baseline-only"
          f" -> {evaluation.sizing.mixed_baseline_servers} baseline + "
          f"{evaluation.sizing.mixed_green_servers} {args.sku} "
          f"(+{evaluation.buffer.baseline_buffer_servers} buffer)")
    print(f"cluster savings:      {evaluation.cluster_savings:.1%}")
    print(f"net DC savings:       {gsf.dc_savings(evaluation):.1%}")
    print(f"adopted core-hours:   {evaluation.adopted_core_hour_share:.0%}")
    if args.report:
        from .gsf.report import evaluation_markdown

        adoption = gsf.adoption_model(skus[args.sku])
        import pathlib

        pathlib.Path(args.report).write_text(
            evaluation_markdown(
                evaluation,
                compute_share=gsf.config.datacenter.compute_share_of_dc,
                adoption=adoption,
            )
            + "\n"
        )
        print(f"report written to {args.report}")
    return 0


def _trace_summary_rows(traces) -> List[List[str]]:
    rows = []
    for trace in traces:
        columns = trace.columns
        full_share = (
            float(columns.full_node.mean()) if columns.n else 0.0
        )
        rows.append(
            [
                trace.name,
                f"{columns.n}",
                f"{trace.peak_concurrent_cores()}",
                f"{full_share:.2%}",
            ]
        )
    return rows


def cmd_trace(args: argparse.Namespace) -> int:
    from .core.tables import render_table

    params = TraceParams(
        mean_concurrent_vms=args.vms, duration_days=args.days
    )
    if args.suite:
        if args.out:
            raise ConfigError(
                "--out writes one trace as CSV; it cannot combine with "
                "--suite"
            )
        store = None
        if args.warm:
            from .allocation.store import TraceStore

            store = TraceStore()
        traces = production_trace_suite(
            count=args.suite,
            base_seed=args.seed,
            params=params,
            jobs=args.jobs,
            store=store,
        )
        print(
            render_table(
                ["trace", "VMs", "peak cores", "full-node share"],
                _trace_summary_rows(traces),
                title=f"trace suite (count={args.suite}, "
                      f"base seed {args.seed})",
            )
        )
        if args.digest:
            for trace in traces:
                print(f"{trace.name}: {trace.digest()}")
        if store is not None:
            print(
                f"store: {store.hits} hits, {store.misses} misses "
                f"-> {store.directory}"
            )
        return 0
    if args.warm:
        raise ConfigError("--warm pre-warms the trace store; it needs --suite")
    trace = generate_trace(seed=args.seed, params=params)
    print(
        render_table(
            ["trace", "VMs", "peak cores", "full-node share"],
            _trace_summary_rows([trace]),
        )
    )
    if args.digest:
        print(f"{trace.name}: {trace.digest()}")
    if args.out:
        save_trace(trace, args.out)
        print(f"wrote {trace.vm_count} VMs to {args.out}")
    return 0


def _quarantine_source(path) -> str:
    """Move an unusable source file into a sibling ``quarantine/`` dir."""
    import pathlib
    import shutil

    path = pathlib.Path(path)
    target_dir = path.parent / "quarantine"
    target_dir.mkdir(exist_ok=True)
    target = target_dir / path.name
    counter = 1
    while target.exists():
        target = target_dir / f"{path.name}.{counter}"
        counter += 1
    shutil.move(str(path), str(target))
    return str(target)


def cmd_trace_ingest(args: argparse.Namespace) -> int:
    """Ingest real Azure vmtable CSVs; quarantine unusable files.

    Damaged *rows* are skipped and counted in the per-file report;
    *files* that cannot be ingested at all (bad gzip, undecodable
    bytes, zero usable rows) are moved to a ``quarantine/`` directory
    next to the source so a partially corrupt download batch degrades
    instead of failing.  Exit 0 when at least one file ingested.
    """
    import json
    import pathlib

    from .core.ioutil import atomic_write_text
    from .core.tables import render_table

    store = None
    if args.warm:
        from .allocation.store import TraceStore

        store = TraceStore()
    ingested, failed = [], []
    for raw in args.paths:
        path = pathlib.Path(raw)
        try:
            trace, report = ingest_azure_vm_trace(
                path,
                name=path.name.split(".csv")[0],
                store=store,
                mmap=args.mmap,
                rebase_time=args.rebase,
            )
        except INGEST_CORRUPT_ERRORS as exc:
            if path.exists():
                moved = _quarantine_source(path)
                print(
                    f"error: {path}: {exc} -> quarantined to {moved}",
                    file=sys.stderr,
                )
            else:
                print(f"error: {path}: {exc}", file=sys.stderr)
            failed.append(str(path))
            continue
        ingested.append((trace, report))
        if args.report:
            report_dir = pathlib.Path(args.report)
            report_dir.mkdir(parents=True, exist_ok=True)
            out = report_dir / f"{trace.name}.ingest.json"
            atomic_write_text(
                out, json.dumps(report.to_dict(), indent=2) + "\n"
            )
    if ingested:
        rows = []
        for trace, report in ingested:
            rows.append(
                [
                    trace.name,
                    f"{report.rows_kept}",
                    f"{report.rows_total - report.rows_kept}",
                    f"{report.start_hours:.1f}",
                    f"{report.span_hours:.1f}",
                    report.store,
                ]
            )
        print(
            render_table(
                ["trace", "kept", "skipped", "start h", "span h", "store"],
                rows,
                title=f"ingested {len(ingested)}/{len(args.paths)} files",
            )
        )
        if args.digest:
            for trace, _report in ingested:
                print(f"{trace.name}: {trace.digest()}")
    return 0 if ingested else 2


# -- sweep / catalog -----------------------------------------------------------


def _parse_axis(raw: str, label: str) -> List[str]:
    values = [part.strip() for part in raw.split(",") if part.strip()]
    if not values:
        raise ConfigError(f"--{label} needs at least one value")
    return values


def _sweep_spec(args: argparse.Namespace):
    """Build a :class:`~repro.catalog.SweepSpec` from the axes flags."""
    from .catalog import SweepSpec

    cxl: List[Optional[int]] = []
    for part in _parse_axis(args.cxl, "cxl"):
        if part == "stock":
            cxl.append(None)
        else:
            try:
                cxl.append(int(part))
            except ValueError:
                raise ConfigError(
                    f"--cxl values must be 'stock' or an even integer, "
                    f"got {part!r}"
                ) from None
    try:
        buffers = tuple(
            float(part) for part in _parse_axis(args.buffers, "buffers")
        )
    except ValueError:
        raise ConfigError("--buffers values must be numbers") from None
    signals = tuple(
        None if part == "none" else part
        for part in _parse_axis(args.signals, "signals")
    )
    return SweepSpec(
        skus=tuple(_parse_axis(args.skus, "skus")),
        adoption_rules=tuple(_parse_axis(args.rules, "rules")),
        buffer_fractions=buffers,
        cxl_dimm_counts=tuple(cxl),
        backends=tuple(_parse_axis(args.backends, "backends")),
        grid_signals=signals,
        placement_policies=tuple(_parse_axis(args.policies, "policies")),
        carbon_intensity=args.ci,
        seed=args.seed,
        vms=args.vms,
        days=args.days,
    )


def _catalog_and_log(args: argparse.Namespace):
    """The catalog and provenance log the sweep/catalog commands use."""
    from .catalog import ResultsCatalog

    catalog = ResultsCatalog(
        args.catalog_dir if args.catalog_dir is not None else None
    )
    log = provenance.active_log() or provenance.ProvenanceLog()
    return catalog, log


def _add_sweep_axes(parser: argparse.ArgumentParser) -> None:
    """The shared scenario-grid flags (sweep + catalog subcommands)."""
    parser.add_argument(
        "--skus", default="GreenSKU-Full", metavar="A,B",
        help="comma-separated SKU names (paper_skus)",
    )
    parser.add_argument(
        "--rules", default="carbon-aware", metavar="A,B",
        help="adoption rules: carbon-aware, performance-only, always",
    )
    parser.add_argument(
        "--buffers", default="0.15", metavar="F,F",
        help="growth-buffer fractions",
    )
    parser.add_argument(
        "--cxl", default="stock", metavar="N,N",
        help="reused-DDR4 DIMM counts behind CXL ('stock' keeps the "
             "SKU's own configuration)",
    )
    parser.add_argument(
        "--backends", default="synthetic", metavar="A,B",
        help="trace backends: synthetic, azure",
    )
    parser.add_argument(
        "--signals", default="none", metavar="A,B",
        help="grid carbon signals: none, flat, diurnal, seasonal "
             "('none' skips the carbon-aware replay pair)",
    )
    parser.add_argument(
        "--policies", default="blind", metavar="A,B",
        help="placement policies: blind, carbon_aware "
             "(carbon_aware needs a non-'none' --signals value)",
    )
    parser.add_argument("--ci", type=float, default=None,
                        help="grid carbon intensity override, kgCO2e/kWh")
    parser.add_argument("--seed", type=int, default=7,
                        help="synthetic trace seed")
    parser.add_argument("--vms", type=int, default=60,
                        help="synthetic mean concurrent VMs")
    parser.add_argument("--days", type=float, default=2.0,
                        help="synthetic trace window, days")
    parser.add_argument(
        "--catalog-dir", default=None, metavar="DIR",
        help="results-catalog directory (default: REPRO_CATALOG_DIR, "
             "else <cache dir>/catalog)",
    )


def _sweep_rows(summary) -> List[List[str]]:
    return [
        [
            row["sku"],
            row["rule"],
            f"{row['buffer_fraction']:g}",
            "stock" if row["cxl_dimms"] is None else str(row["cxl_dimms"]),
            row["backend"],
            row["grid_signal"] or "-",
            row["placement_policy"],
            f"{row['cluster_savings']:.2%}",
            (
                f"{row['carbon_delta_kg']:+.4f}"
                if "carbon_delta_kg" in row else "-"
            ),
        ]
        for row in summary["points"]
    ]


_SWEEP_HEADER = [
    "sku", "rule", "buffer", "cxl", "backend", "signal", "policy",
    "savings", "op-delta-kg",
]


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run (or incrementally re-run) a scenario sweep over the catalog."""
    from .catalog import run_sweep
    from .core.tables import render_table

    spec = _sweep_spec(args)
    catalog, log = _catalog_and_log(args)
    outcome = run_sweep(spec, catalog, log, jobs=args.jobs)
    print(
        render_table(
            _SWEEP_HEADER,
            _sweep_rows(outcome.summary),
            title=f"scenario sweep ({outcome.summary['count']} points)",
        )
    )
    report = outcome.invalidation
    print(
        f"{len(outcome.recomputed)} recomputed, {len(outcome.warm)} warm "
        f"catalog reads -> {catalog.directory}"
    )
    if report.changed_inputs:
        print(
            f"changed inputs: {', '.join(report.changed_inputs)} "
            f"(invalidated {len(report.invalid)} artifacts, cone digest "
            f"{report.cone_digest()})"
        )
    if args.gc:
        removed = catalog.gc(outcome.live_keys())
        print(f"gc: removed {removed} stale catalog entries")
    return 0


def cmd_catalog_query(args: argparse.Namespace) -> int:
    """Warm-read a grid from the catalog; exit 3 if any point misses."""
    from .catalog import closure_key, current_leaf_inputs, point_inputs, sweep_points
    from .core.tables import render_table

    spec = _sweep_spec(args)
    catalog, _log = _catalog_and_log(args)
    points = sweep_points(spec)
    leaves = current_leaf_inputs(spec)
    rows = []
    hits = 0
    for point in points:
        key = closure_key(point_inputs(point, leaves))
        payload = catalog.get_payload(key)
        if payload is None:
            savings = delta = "(miss)"
        else:
            hits += 1
            savings = f"{payload['cluster_savings']:.2%}"
            delta = (
                f"{payload['carbon_aware']['delta_kg']:+.4f}"
                if "carbon_aware" in payload else "-"
            )
        rows.append(
            [
                point.sku,
                point.rule,
                f"{point.buffer_fraction:g}",
                "stock" if point.cxl_dimms is None else str(point.cxl_dimms),
                point.backend,
                point.grid_signal or "-",
                point.placement_policy,
                savings,
                delta,
            ]
        )
    print(
        render_table(
            _SWEEP_HEADER,
            rows,
            title=f"catalog query: {hits}/{len(points)} warm "
                  f"({catalog.directory})",
        )
    )
    return 0 if hits == len(points) else 3


def cmd_catalog_gc(args: argparse.Namespace) -> int:
    """Drop catalog entries outside a grid's current input closure."""
    from .catalog import (
        closure_key,
        current_leaf_inputs,
        payload_digest,
        point_inputs,
        sweep_points,
    )

    spec = _sweep_spec(args)
    catalog, _log = _catalog_and_log(args)
    points = sweep_points(spec)
    leaves = current_leaf_inputs(spec)
    live = []
    digests = {}
    for point in points:
        key = closure_key(point_inputs(point, leaves))
        live.append(key)
        payload = catalog.get_payload(key)
        if payload is not None:
            digests[point.artifact_id] = payload_digest(payload)
    if len(digests) == len(points):
        # Every point is warm, so the current summary entry is
        # reconstructible and stays live; with any cold point the
        # summary is stale by definition and collects with the rest.
        summary_inputs = {"code": leaves["code"]}
        summary_inputs.update(digests)
        live.append(closure_key(summary_inputs))
    before = len(catalog.keys())
    removed = catalog.gc(live)
    print(
        f"gc: removed {removed}/{before} entries, kept "
        f"{before - removed} live ({catalog.directory})"
    )
    return 0


def cmd_catalog_stats(args: argparse.Namespace) -> int:
    """Print the results-catalog manifest (entries, bytes, counters)."""
    import json

    catalog, _log = _catalog_and_log(args)
    print(json.dumps(catalog.manifest(), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GreenSKU/GSF: evaluate low-carbon cloud server designs "
            "(reproduction of Wang et al., ISCA 2024)"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for trace-suite experiments "
             "(default: REPRO_JOBS env, else all cores)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", dest="cache", action="store_true", default=None,
        help="enable the on-disk result cache (REPRO_CACHE_DIR, "
             "default ./.repro-cache)",
    )
    cache_group.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="disable the on-disk result cache even if REPRO_CACHE is set",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="instrument the run and write a JSON telemetry manifest "
             "(counters, timers, phase spans) to PATH",
    )
    parser.add_argument(
        "--queueing", default=None, choices=queueing.QUEUEING_BACKENDS,
        help="queueing grid dispatch backend: 'vectorized' (default) "
             "or the scalar 'reference' oracle (default: the "
             "REPRO_QUEUEING env var, else vectorized)",
    )
    parser.add_argument(
        "--alloc-engine", default=None, choices=ENGINES,
        help="placement backend for allocation replays: 'indexed' "
             "(default), the scalar 'reference' oracle, or the "
             "fleet-scale 'soa' arrays (default: the "
             "REPRO_ALLOC_ENGINE env var, else indexed; all backends "
             "are bit-identical in outcome)",
    )
    parser.add_argument(
        "--trace-backend", default=None, choices=TRACE_BACKENDS,
        help="workload source for trace-suite experiments: the "
             "'synthetic' generator (default) or ingested 'azure' "
             "vmtable traces (REPRO_AZURE_TRACE_DIR, else the bundled "
             "sample; default: the REPRO_TRACE_BACKEND env var)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="checkpoint completed suite tasks to the on-disk journal "
             "and resume from it (bit-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="checkpoint-journal directory (implies --resume; default "
             "<cache dir>/journal)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry each failed suite task up to N times with "
             "exponential backoff (default 2 when resilience is active)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock bound; a timed-out attempt counts as "
             "a failure and its worker is reclaimed",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="degrade gracefully: record tasks/experiments that exhaust "
             "their retry budget as structured failures and continue "
             "instead of aborting",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject deterministic faults, e.g. 'kill=0;3 p=0.1 "
             "attempts=1 mode=hard latency=0.01 seed=7' (testing only)",
    )
    parser.add_argument(
        "--provenance", default=None, metavar="PATH",
        help="record input/output content digests for every cached task "
             "and experiment into an append-only JSONL provenance log at "
             "PATH ('auto' = <cache dir>/provenance.jsonl)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list paper experiments").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="run one paper experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.set_defaults(func=cmd_run)

    sub.add_parser("run-all", help="run every experiment").set_defaults(
        func=cmd_run_all
    )

    price = sub.add_parser("price", help="carbon-price one SKU")
    price.add_argument("sku", help="SKU name (e.g. GreenSKU-Full)")
    price.add_argument("--ci", type=float, default=0.1,
                       help="grid carbon intensity, kgCO2e/kWh")
    price.add_argument("--lifetime", type=float, default=None,
                       help="server lifetime, years")
    price.set_defaults(func=cmd_price)

    savings = sub.add_parser("savings", help="Table VIII savings table")
    savings.add_argument("--ci", type=float, default=0.1)
    savings.set_defaults(func=cmd_savings)

    evaluate = sub.add_parser("evaluate", help="end-to-end GSF evaluation")
    evaluate.add_argument("--sku", default="GreenSKU-Full")
    evaluate.add_argument("--seed", type=int, default=1)
    evaluate.add_argument("--vms", type=int, default=500,
                          help="mean concurrent VMs")
    evaluate.add_argument("--days", type=float, default=14.0)
    evaluate.add_argument("--ci", type=float, default=0.1)
    evaluate.add_argument(
        "--report", default=None,
        help="write a Markdown evaluation report to this path",
    )
    evaluate.set_defaults(func=cmd_evaluate)

    trace = sub.add_parser(
        "trace",
        help="generate/inspect VM traces and pre-warm the trace store",
    )
    trace.add_argument("--seed", type=int, default=1,
                       help="trace seed (suite mode: the base seed)")
    trace.add_argument("--vms", type=int, default=350)
    trace.add_argument("--days", type=float, default=14.0)
    trace.add_argument("--out", default=None,
                       help="write the generated trace to this CSV path")
    trace.add_argument(
        "--suite", type=int, default=None, metavar="N",
        help="operate on the N-trace production suite instead of one trace",
    )
    trace.add_argument(
        "--warm", action="store_true",
        help="pre-warm the persistent trace store for the suite "
             "(REPRO_TRACE_STORE_DIR, default <cache dir>/traces)",
    )
    trace.add_argument(
        "--digest", action="store_true",
        help="print each trace's content digest (the CI golden values)",
    )
    trace.set_defaults(func=cmd_trace, trace_command=None)

    trace_sub = trace.add_subparsers(dest="trace_command")
    ingest = trace_sub.add_parser(
        "ingest",
        help="ingest AzurePublicDataset vmtable CSV/CSV.gz files",
    )
    ingest.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="vmtable CSV or CSV.gz files to ingest",
    )
    ingest.add_argument(
        "--mmap", action="store_true",
        help="memory-map store hits instead of eager-loading them",
    )
    ingest.add_argument(
        "--rebase", action="store_true",
        help="shift arrivals so the trace window starts at t=0",
    )
    ingest.add_argument(
        "--report", default=None, metavar="DIR",
        help="write a per-file JSON ingestion report into DIR",
    )
    ingest.add_argument(
        "--digest", action="store_true",
        help="print each ingested trace's content digest",
    )
    ingest.add_argument(
        "--warm", action="store_true",
        help="register ingested traces in the persistent trace store "
             "(REPRO_TRACE_STORE_DIR, default <cache dir>/traces)",
    )
    ingest.set_defaults(func=cmd_trace_ingest)

    export = sub.add_parser(
        "export", help="write experiment artifacts to a directory"
    )
    export.add_argument("--out", required=True)
    export.add_argument(
        "--all",
        action="store_true",
        help="include the heavy trace-driven experiments",
    )
    export.set_defaults(func=cmd_export)

    stats = sub.add_parser(
        "stats", help="validate and pretty-print a telemetry manifest"
    )
    stats.add_argument("manifest", help="path to a --telemetry JSON file")
    stats.set_defaults(func=cmd_stats)

    sweep = sub.add_parser(
        "sweep",
        help="incremental scenario sweep over the results catalog "
             "(recomputes only provenance-invalidated points)",
    )
    _add_sweep_axes(sweep)
    sweep.add_argument(
        "--gc", action="store_true",
        help="after the sweep, drop catalog entries outside its closure",
    )
    sweep.set_defaults(func=cmd_sweep)

    catalog = sub.add_parser(
        "catalog", help="build/query/gc the closure-keyed results catalog"
    )
    catalog_sub = catalog.add_subparsers(
        dest="catalog_command", required=True
    )
    build = catalog_sub.add_parser(
        "build", help="populate the catalog for a scenario grid (= sweep)"
    )
    _add_sweep_axes(build)
    build.set_defaults(func=cmd_sweep, gc=False)
    query = catalog_sub.add_parser(
        "query",
        help="warm-read a scenario grid from the catalog (no compute; "
             "exit 3 if any point is missing)",
    )
    _add_sweep_axes(query)
    query.set_defaults(func=cmd_catalog_query)
    gc = catalog_sub.add_parser(
        "gc", help="drop entries outside a scenario grid's closure"
    )
    _add_sweep_axes(gc)
    gc.set_defaults(func=cmd_catalog_gc)
    cstats = catalog_sub.add_parser(
        "stats", help="print the catalog manifest as JSON"
    )
    cstats.add_argument("--catalog-dir", default=None, metavar="DIR",
                        help="results-catalog directory")
    cstats.set_defaults(func=cmd_catalog_stats)
    return parser


def cmd_export(args: argparse.Namespace) -> int:
    from .experiments.export import FAST_EXPERIMENT_IDS, export_experiments

    ids = list(EXPERIMENTS) if args.all else list(FAST_EXPERIMENT_IDS)
    written = export_experiments(args.out, ids)
    total = sum(len(files) for files in written.values())
    print(f"exported {len(written)} experiments ({total} files) to "
          f"{args.out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    try:
        manifest = telemetry.load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read manifest: {exc}", file=sys.stderr)
        return 2
    problems = telemetry.validate_manifest(manifest)
    if problems:
        for problem in problems:
            print(f"invalid manifest: {problem}", file=sys.stderr)
        return 2
    print(telemetry.render_manifest(manifest))
    return 0


def _run_command(args: argparse.Namespace, argv: List[str]) -> int:
    if args.telemetry is None:
        return args.func(args)
    with telemetry.capture() as tel:
        try:
            return args.func(args)
        finally:
            telemetry.write_manifest(
                tel.manifest(command=args.command, argv=argv),
                args.telemetry,
            )
            print(f"telemetry written to {args.telemetry}", file=sys.stderr)


def _build_policy(
    args: argparse.Namespace,
) -> Optional[resilience.ResiliencePolicy]:
    """The process-wide resilience policy the flags ask for, if any."""
    wants_resilience = (
        args.resume
        or args.journal is not None
        or args.retries is not None
        or args.task_timeout is not None
        or args.faults is not None
    )
    if not wants_resilience:
        return None
    journal = None
    if args.resume or args.journal is not None:
        journal = resilience.CheckpointJournal(
            directory=args.journal if args.journal is not None else None
        )
    retry = resilience.RetryPolicy(
        max_retries=args.retries if args.retries is not None else 2,
        timeout_s=args.task_timeout,
    )
    faults = parse_fault_spec(args.faults) if args.faults else None
    return resilience.ResiliencePolicy(
        journal=journal, retry=retry, faults=faults,
        # Degradation is an explicit opt-in: without --keep-going a
        # task that exhausts its budget aborts the run (survivors stay
        # checkpointed for --resume) instead of silently thinning the
        # seed set behind a figure.
        on_failure="record" if args.keep_going else "raise",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    saved_engine = os.environ.get(ENGINE_ENV)
    saved_backend = os.environ.get(BACKEND_ENV)
    try:
        runner.set_default_jobs(args.jobs)
        runner.set_cache_enabled(args.cache)
        queueing.set_default_backend(args.queueing)
        if args.alloc_engine is not None:
            # The engine resolution order is argument > env > default;
            # experiments call simulate() without an engine argument, so
            # the env var is the process-wide selection point (and it
            # inherits into the worker processes a fleet fan-out spawns).
            os.environ[ENGINE_ENV] = args.alloc_engine
        if args.trace_backend is not None:
            # Same selection pattern as the engine: experiments resolve
            # the backend at suite-build time via the env var.
            os.environ[BACKEND_ENV] = args.trace_backend
        resilience.set_active_policy(_build_policy(args))
        if args.provenance is not None:
            # 'auto' puts the log at its default cache-dir location.
            provenance.set_active_log(
                provenance.ProvenanceLog(
                    None if args.provenance == "auto" else args.provenance
                )
            )
        return _run_command(
            args, list(sys.argv[1:] if argv is None else argv)
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        runner.set_default_jobs(None)
        runner.set_cache_enabled(None)
        queueing.set_default_backend(None)
        if saved_engine is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = saved_engine
        if saved_backend is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = saved_backend
        resilience.set_active_policy(None)
        provenance.set_active_log(None)


if __name__ == "__main__":
    sys.exit(main())
