"""Experiment Table II: DevOps build slowdowns vs baseline generations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..perf.devops import DevOpsRow, render_table2, table2_rows

#: The slowdowns the paper reports (app -> gen1, gen2, gen3, eff, cxl).
PAPER_TABLE2 = {
    "Build-PHP": (1.27, 1.11, 1.00, 1.17, 1.38),
    "Build-Python": (1.28, 1.13, 1.00, 1.15, 1.21),
    "Build-Wasm": (1.34, 1.19, 1.00, 1.15, 1.28),
}


@dataclass(frozen=True)
class Table2Result:
    rows: List[DevOpsRow]

    def max_abs_error(self) -> float:
        """Largest deviation from the paper's published cells."""
        worst = 0.0
        for row in self.rows:
            expected = PAPER_TABLE2[row.app_name]
            got = [
                row.slowdowns[c]
                for c in ("gen1", "gen2", "gen3", "efficient", "cxl")
            ]
            worst = max(
                worst, max(abs(g - e) for g, e in zip(got, expected))
            )
        return worst


def run() -> Table2Result:
    return Table2Result(rows=table2_rows())


def render(result: Table2Result) -> str:
    return (
        "Table II: DevOps slowdowns normalized to Gen3 (8 cores)\n"
        + render_table2(result.rows)
        + f"\nmax deviation from the paper's cells: "
        f"{result.max_abs_error():.3f}"
    )


def main() -> Table2Result:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
