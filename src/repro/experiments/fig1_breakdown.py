"""Experiment Fig. 1: carbon breakdown of general-purpose data centers.

Regenerates the attribution the paper opens with: operational vs embodied
emissions by server type, compute-server emissions by component, and the
headline shares (operational ~58% of total, compute ~57% of DC emissions,
DRAM/SSD/CPU the top compute-server contributors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..carbon.breakdown import DataCenterBreakdown, breakdown
from ..carbon.model import CarbonModel
from ..core.tables import render_table
from ..hardware.components import Category


@dataclass(frozen=True)
class Fig1Result:
    """Computed breakdown plus the headline shares the paper quotes."""

    detail: DataCenterBreakdown
    operational_share: float
    compute_share: float
    component_shares: Dict[Category, float]


def run(model: Optional[CarbonModel] = None) -> Fig1Result:
    """Compute the Fig. 1 attribution under the (default) carbon model."""
    detail = breakdown(model=model)
    return Fig1Result(
        detail=detail,
        operational_share=detail.operational_share,
        compute_share=detail.compute_share,
        component_shares=detail.compute_component_shares(),
    )


def render(result: Fig1Result) -> str:
    """Text rendering of the Fig. 1 attribution."""
    d = result.detail
    total = d.total
    bucket_rows = []
    buckets = sorted(set(d.operational) | set(d.embodied))
    for bucket in buckets:
        op = d.operational.get(bucket, 0.0)
        emb = d.embodied.get(bucket, 0.0)
        bucket_rows.append(
            [bucket, 100 * op / total, 100 * emb / total,
             100 * (op + emb) / total]
        )
    lines = [
        render_table(
            ["bucket", "operational %", "embodied %", "total %"],
            bucket_rows,
            title="Fig. 1: data-center emission attribution (percent of total)",
            float_fmt="{:.1f}",
        ),
        "",
        render_table(
            ["compute component", "share of compute emissions %"],
            [
                [cat.value, 100 * share]
                for cat, share in sorted(
                    result.component_shares.items(),
                    key=lambda kv: -kv[1],
                )
            ],
            float_fmt="{:.1f}",
        ),
        "",
        f"operational share of total: {result.operational_share:.1%} "
        "(paper: ~58%)",
        f"compute share of DC emissions: {result.compute_share:.1%} "
        "(paper: ~57%)",
    ]
    return "\n".join(lines)


def main() -> Fig1Result:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
