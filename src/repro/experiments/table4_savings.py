"""Experiment Table IV / Table VIII: per-core carbon savings of the SKUs.

Regenerates the headline savings table.  With the open-source component
data (Table V/VI of the paper's artifact appendix) the targets are the
paper's Table VIII cells; Table IV's internal-data cells are listed for
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..carbon.model import CarbonModel
from ..carbon.savings import SavingsRow, paper_savings_table, render_savings_table

#: Table VIII (open-source data): SKU -> (operational, embodied, total)
#: savings percentages.
PAPER_TABLE8: Dict[str, Tuple[int, int, int]] = {
    "Baseline-Resized": (6, 10, 8),
    "GreenSKU-Efficient": (16, 14, 15),
    "GreenSKU-CXL": (15, 32, 24),
    "GreenSKU-Full": (14, 38, 26),
}

#: Table IV (Azure-internal data), for reference comparison only.
PAPER_TABLE4: Dict[str, Tuple[int, int, int]] = {
    "Baseline-Resized": (3, 6, 4),
    "GreenSKU-Efficient": (29, 14, 23),
    "GreenSKU-CXL": (23, 25, 24),
    "GreenSKU-Full": (17, 43, 28),
}


@dataclass(frozen=True)
class Table4Result:
    """Computed savings rows plus per-cell deviations from Table VIII."""

    rows: List[SavingsRow]

    def deviations(self) -> Dict[str, Tuple[int, int, int]]:
        """Per SKU: (op, emb, total) deviation in percentage points."""
        out = {}
        for row in self.rows:
            if row.sku_name not in PAPER_TABLE8:
                continue
            expected = PAPER_TABLE8[row.sku_name]
            got = (
                round(100 * row.operational_savings),
                round(100 * row.embodied_savings),
                round(100 * row.total_savings),
            )
            out[row.sku_name] = tuple(g - e for g, e in zip(got, expected))
        return out

    @property
    def max_abs_deviation_points(self) -> int:
        """Largest |deviation| across all 12 compared cells."""
        return max(
            abs(d) for devs in self.deviations().values() for d in devs
        )


def run(model: Optional[CarbonModel] = None) -> Table4Result:
    return Table4Result(rows=paper_savings_table(model))


def render(result: Table4Result) -> str:
    table = render_savings_table(
        result.rows,
        title=(
            "Table VIII: per-core savings vs the Gen3 baseline "
            "(open-source data, CI = 0.1 kgCO2e/kWh)"
        ),
    )
    dev_lines = [
        f"  {sku}: deviation (op, emb, total) = {devs} points"
        for sku, devs in result.deviations().items()
    ]
    return "\n".join(
        [table, "vs the paper's Table VIII:"]
        + dev_lines
        + [
            f"max |deviation|: {result.max_abs_deviation_points} point(s)",
        ]
    )


def main() -> Table4Result:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
