"""Experiment Fig. 9: VM packing density CDFs across production traces.

For each trace: right-size an all-baseline cluster and a mixed
baseline+GreenSKU-Full cluster, replay both, and record the mean core and
memory packing densities on non-empty servers.  The paper's finding: the
baseline's higher memory:core ratio (9.6 vs 8) buys higher core-packing
density at the cost of memory wastage, while GreenSKU-Full packs memory
better and cores worse.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..allocation.cluster import ClusterSpec, adopt_nothing, simulate
from ..allocation.packing import PackingPoint, packing_point
from ..allocation.ingest import trace_suite
from ..allocation.traces import TraceParams, VmTrace
from ..core.resilience import drop_failures
from ..core.runner import DiskCache, cached_map, content_key
from ..core.tables import render_csv
from ..gsf.framework import Gsf
from ..gsf.sizing import size_mixed_cluster
from ..hardware.sku import ServerSKU, baseline_gen3, greensku_full

#: Bumped when the per-trace computation changes, invalidating disk-cache
#: entries from older code.
_CACHE_VERSION = "fig9-v3"


@dataclass(frozen=True)
class Fig9Result:
    """Per-trace packing points for baseline and GreenSKU servers."""

    baseline_points: List[PackingPoint]
    green_points: List[PackingPoint]

    def summary(self) -> dict:
        """Median packing densities, the way the figure is usually read."""
        base_core = np.median(
            [p.mean_core_density for p in self.baseline_points]
        )
        base_mem = np.median(
            [p.mean_memory_density for p in self.baseline_points]
        )
        green_core = np.median(
            [p.mean_core_density for p in self.green_points]
        )
        green_mem = np.median(
            [p.mean_memory_density for p in self.green_points]
        )
        return {
            "baseline_core_median": float(base_core),
            "baseline_memory_median": float(base_mem),
            "green_core_median": float(green_core),
            "green_memory_median": float(green_mem),
        }


def run_trace(
    trace: VmTrace,
    gsf: Gsf,
    baseline: ServerSKU,
    greensku: ServerSKU,
) -> "tuple[PackingPoint, PackingPoint]":
    """One trace's baseline and GreenSKU packing points."""
    adoption = gsf.adoption_model(greensku).policy()
    sizing = size_mixed_cluster(trace, baseline, greensku, adoption)
    base_cluster = ClusterSpec.of((baseline, sizing.baseline_only_servers))
    base_outcome = simulate(trace, base_cluster, adoption=adopt_nothing)
    mixed_cluster = ClusterSpec.of(
        (baseline, sizing.mixed_baseline_servers),
        (greensku, sizing.mixed_green_servers),
    )
    mixed_outcome = simulate(trace, mixed_cluster, adoption=adoption)
    return (
        packing_point(base_outcome, trace.name, kind="baseline"),
        packing_point(mixed_outcome, trace.name, kind="green"),
    )


def _trace_key(
    trace: VmTrace, gsf: Gsf, baseline: ServerSKU, greensku: ServerSKU
) -> str:
    """Disk-cache key: content hash of the trace, SKUs, and policy."""
    adoption = gsf.adoption_model(greensku)
    decisions = tuple(
        sorted(
            (d.app_name, d.generation, d.adopt, d.scaling_factor)
            for d in adoption.decisions()
        )
    )
    return content_key(
        _CACHE_VERSION, trace.name, trace.params, trace.digest(),
        baseline, greensku, decisions,
    )


def run(
    traces: Optional[Sequence[VmTrace]] = None,
    trace_count: int = 35,
    mean_concurrent_vms: int = 250,
    gsf: Optional[Gsf] = None,
    jobs: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    trace_backend: Optional[str] = None,
) -> Fig9Result:
    """Run the packing study over the trace suite.

    Per-trace evaluations are independent, so they fan out over
    ``jobs`` worker processes (resolved by the runner's precedence
    rules) with results collected in trace order — byte-identical to the
    serial path.  ``cache`` (or the opt-in global switch) skips traces
    whose content hash already has a stored result.  Under a degrading
    resilience policy (the CLI's ``--keep-going``) a trace whose task
    exhausted its retry budget is explicitly dropped from the study —
    medians are computed over the surviving traces, and the drop is
    visible in the telemetry manifest (``resilience.degraded_dropped``).

    ``trace_backend`` selects the workload source (the CLI's
    ``--trace-backend``): the synthetic generator (default) or ingested
    Azure vmtable traces; cache keys include each trace's content
    digest, so the two backends never collide in the disk cache.
    """
    if traces is None:
        traces = trace_suite(
            backend=trace_backend,
            count=trace_count,
            params=TraceParams(mean_concurrent_vms=mean_concurrent_vms),
        )
    gsf = gsf or Gsf()
    baseline, greensku = baseline_gen3(), greensku_full()
    pairs = drop_failures(cached_map(
        functools.partial(
            run_trace, gsf=gsf, baseline=baseline, greensku=greensku
        ),
        traces,
        key_fn=functools.partial(
            _trace_key, gsf=gsf, baseline=baseline, greensku=greensku
        ),
        jobs=jobs,
        cache=cache,
    ))
    return Fig9Result(
        baseline_points=[bp for bp, _gp in pairs],
        green_points=[gp for _bp, gp in pairs],
    )


def render(result: Fig9Result) -> str:
    s = result.summary()
    return "\n".join(
        [
            "Fig. 9: mean packing density across traces "
            f"({len(result.baseline_points)} traces)",
            f"  baseline cluster: core median {s['baseline_core_median']:.2f}, "
            f"memory median {s['baseline_memory_median']:.2f}",
            f"  GreenSKU-Full:    core median {s['green_core_median']:.2f}, "
            f"memory median {s['green_memory_median']:.2f}",
            "  paper: GreenSKU-Full trades better memory packing for worse "
            "core packing",
        ]
    )


def to_csv(result: Fig9Result) -> str:
    rows = []
    for kind, points in (
        ("baseline", result.baseline_points),
        ("greensku-full", result.green_points),
    ):
        for p in points:
            rows.append(
                [kind, p.trace_name, p.mean_core_density, p.mean_memory_density]
            )
    return render_csv(["kind", "trace", "core_density", "memory_density"], rows)


def main() -> Fig9Result:
    result = run(trace_count=12, mean_concurrent_vms=200)
    print(render(result))
    return result


if __name__ == "__main__":
    main()
