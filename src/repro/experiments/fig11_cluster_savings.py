"""Experiment Fig. 11 / Fig. 12: cluster savings across carbon intensities.

Sweeps the grid carbon intensity and, for each of the three GreenSKUs,
runs the full GSF pipeline (adoption -> packing -> sizing -> buffer) to
estimate cluster-level savings versus an all-baseline cluster.  The
paper's findings to reproduce in shape:

- reuse-heavy designs (GreenSKU-Full) win where the grid is clean
  (embodied-dominated, e.g. Azure-us-south),
- GreenSKU-Efficient catches up and wins where the grid is dirty
  (operational-dominated, e.g. Azure-europe-north),
- savings stay positive across the spectrum.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..allocation.traces import TraceParams, VmTrace, generate_trace
from ..core.runner import parallel_map, resolve_jobs
from ..core.tables import render_csv, render_table
from ..gsf.framework import Gsf
from ..gsf.results import IntensitySweepPoint
from ..hardware.datacenter import AZURE_REGION_CI

#: Default CI axis (kgCO2e/kWh), covering the paper's plotted range.
DEFAULT_INTENSITIES = tuple(np.linspace(0.0, 0.4, 9))


@dataclass(frozen=True)
class Fig11Result:
    """The sweep plus the annotated Azure-region readings."""

    points: List[IntensitySweepPoint]
    regions: Dict[str, float]

    def savings_series(self, sku_name: str) -> List[float]:
        return [p.savings_by_sku[sku_name] for p in self.points]

    def average_savings(self, sku_name: str) -> float:
        """Mean savings across the sweep (artifact: ~14% for the best)."""
        return float(np.mean(self.savings_series(sku_name)))

    def best_at(self, ci: float) -> str:
        """Which GreenSKU wins nearest to a given carbon intensity."""
        idx = int(
            np.argmin(
                [abs(p.carbon_intensity - ci) for p in self.points]
            )
        )
        return self.points[idx].best_sku()[0]


def _sweep_one(ci: float, gsf: Gsf, trace: VmTrace) -> IntensitySweepPoint:
    """One carbon intensity's sweep point (worker-process entry)."""
    return gsf.intensity_sweep(trace, [ci])[0]


def run(
    trace: Optional[VmTrace] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    gsf: Optional[Gsf] = None,
    mean_concurrent_vms: int = 1000,
    seed: int = 1,
    jobs: Optional[int] = None,
    trace_backend: Optional[str] = None,
) -> Fig11Result:
    """Run the sweep for the three GreenSKUs.

    Each intensity's evaluation is independent (the serial path's sizing
    cache only short-circuits recomputing results that are identical by
    construction), so the sweep fans out per intensity over ``jobs``
    workers; the serial path keeps the shared cache across intensities.
    ``trace_backend`` selects synthetic vs ingested Azure traces; the
    azure backend sweeps the first ingested trace.
    """
    gsf = gsf or Gsf()
    if trace is None:
        from ..allocation.ingest import resolve_trace_backend

        if resolve_trace_backend(trace_backend) == "azure":
            from ..allocation.ingest import azure_trace_suite

            trace = azure_trace_suite(count=1)[0]
        else:
            trace = generate_trace(
                seed=seed,
                params=TraceParams(mean_concurrent_vms=mean_concurrent_vms),
            )
    intensities = list(intensities)
    if resolve_jobs(jobs) <= 1:
        points = gsf.intensity_sweep(trace, intensities)
    else:
        points = parallel_map(
            functools.partial(_sweep_one, gsf=gsf, trace=trace),
            intensities,
            jobs=jobs,
        )
    return Fig11Result(points=points, regions=dict(AZURE_REGION_CI))


def render(result: Fig11Result) -> str:
    sku_names = sorted(result.points[0].savings_by_sku)
    rows = []
    for p in result.points:
        rows.append(
            [p.carbon_intensity]
            + [100 * p.savings_by_sku[name] for name in sku_names]
            + [p.best_sku()[0]]
        )
    table = render_table(
        ["CI (kg/kWh)"] + [f"{n} %" for n in sku_names] + ["best"],
        rows,
        title="Fig. 11/12: cluster-level savings vs carbon intensity",
        float_fmt="{:.1f}",
    )
    region_lines = [
        f"  {name}: CI={ci:.2f}, best SKU = {result.best_at(ci)}"
        for name, ci in sorted(result.regions.items(), key=lambda kv: kv[1])
    ]
    avg_lines = [
        f"  average savings {name}: {result.average_savings(name):.1%}"
        for name in sku_names
    ]
    return "\n".join([table, "Azure regions:"] + region_lines + avg_lines)


def to_csv(result: Fig11Result) -> str:
    sku_names = sorted(result.points[0].savings_by_sku)
    rows = [
        [p.carbon_intensity] + [p.savings_by_sku[n] for n in sku_names]
        for p in result.points
    ]
    return render_csv(["carbon_intensity"] + sku_names, rows)


def main() -> Fig11Result:
    result = run(mean_concurrent_vms=500, intensities=np.linspace(0, 0.4, 5))
    print(render(result))
    return result


if __name__ == "__main__":
    main()
