"""Experiment index: paper artifact id -> harness module.

Every table and figure in the paper's evaluation maps to one module with a
``run()`` returning a structured result and a ``render()`` producing the
rows/series the paper reports.  ``python -m repro.experiments.<module>``
runs any of them standalone.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Dict, List

from ..core import telemetry
from ..core.errors import ConfigError
from . import (
    end_to_end,
    expt_carbon_aware,
    fig1_breakdown,
    fig2_failures,
    fig7_latency,
    fig8_cxl,
    fig9_packing,
    fig10_memutil,
    fig11_cluster_savings,
    section5_maintenance,
    section7_alternatives,
    section7_tco,
    table1_cpus,
    table2_devops,
    table3_scaling,
    table4_savings,
    validation,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    experiment_id: str
    title: str
    module: ModuleType


_EXPERIMENTS: List[Experiment] = [
    Experiment("fig1", "Carbon breakdown of Azure data centers",
               fig1_breakdown),
    Experiment("fig2", "DDR4 DIMM failure rates over 7 years",
               fig2_failures),
    Experiment("table1", "Baseline CPUs vs efficient Bergamo", table1_cpus),
    Experiment("fig7", "Tail latency vs load per app class", fig7_latency),
    Experiment("table2", "DevOps build slowdowns", table2_devops),
    Experiment("table3", "GreenSKU-Efficient scaling factors",
               table3_scaling),
    Experiment("fig8", "CXL latency impact (Moses vs HAProxy)", fig8_cxl),
    Experiment("fig9", "VM packing density CDFs", fig9_packing),
    Experiment("fig10", "Per-server max memory utilization CDF",
               fig10_memutil),
    Experiment("table4", "Per-core carbon savings (Table IV/VIII)",
               table4_savings),
    Experiment("fig11", "Cluster savings vs carbon intensity (Fig 11/12)",
               fig11_cluster_savings),
    Experiment("sec5-maintenance", "AFR / FIP / C_OOS accounting",
               section5_maintenance),
    Experiment("sec7-alternatives", "Equivalent alternative strategies",
               section7_alternatives),
    Experiment("sec7-tco", "Cost vs carbon efficiency", section7_tco),
    Experiment("end-to-end", "28% -> 15% -> 8% savings chain", end_to_end),
    Experiment("carbon-aware",
               "Carbon-aware vs blind placement under diurnal grids",
               expt_carbon_aware),
    Experiment("validation", "All fast calibration anchors, PASS/FAIL",
               validation),
]

EXPERIMENTS: Dict[str, Experiment] = {
    e.experiment_id: e for e in _EXPERIMENTS
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment, with a helpful error."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None


def _record_provenance(exp: Experiment, result: object) -> None:
    """Record one experiment artifact into the active provenance log.

    No-op unless a log is installed (the CLI's ``--provenance`` flag).
    Inputs are the code salt — figure-level experiments have no external
    data inputs beyond the code and their internal seeds, which the code
    pins — and the output digest is a content hash of the result, so a
    changed outcome shows up as a new record.
    """
    from ..core import provenance

    log = provenance.active_log()
    if log is None:
        return
    log.record(
        f"experiment/{exp.experiment_id}",
        "experiment",
        {"code": provenance.code_salt()},
        provenance.result_digest(result),
    )


def run_all(
    verbose: bool = True, on_failure: str = "raise"
) -> Dict[str, object]:
    """Run every experiment's ``main()``; returns id -> result.

    ``on_failure="record"`` (the CLI's ``--keep-going``) degrades
    gracefully: a failing experiment becomes a structured
    :class:`repro.core.resilience.TaskFailure` in the returned mapping —
    and in the telemetry manifest — instead of aborting the runs that
    follow it.  The default (``"raise"``) aborts on the first failing
    experiment.
    """
    from ..core import resilience

    if on_failure not in ("raise", "record"):
        raise ConfigError(
            f"on_failure must be 'raise' or 'record', got {on_failure!r}"
        )
    results: Dict[str, object] = {}
    for index, exp in enumerate(_EXPERIMENTS):
        if verbose:
            print(f"=== {exp.experiment_id}: {exp.title} ===")
        try:
            with telemetry.span(f"experiment.{exp.experiment_id}"):
                results[exp.experiment_id] = exp.module.main()
            _record_provenance(exp, results[exp.experiment_id])
        except Exception as exc:
            if on_failure == "raise":
                raise
            failure = resilience.TaskFailure(
                index=index,
                key=exp.experiment_id,
                attempts=1,
                error_type=type(exc).__name__,
                message=str(exc) or type(exc).__name__,
            )
            results[exp.experiment_id] = failure
            telemetry.count("resilience.failures")
            tel = telemetry.active()
            if tel is not None:
                tel.record_failure(failure.to_dict())
            if verbose:
                print(
                    f"FAILED (recorded, continuing): "
                    f"{failure.error_type}: {failure.message}"
                )
        if verbose:
            print()
    return results
