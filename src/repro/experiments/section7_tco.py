"""Experiment Section VII-A: TCO of cost- vs carbon-efficient designs.

Swaps the carbon model for the TCO model (same GSF structure, dollars
instead of kgCO2e) and reproduces the high-level insight: the cost-optimal
SKU is only ~5% cheaper per core than the carbon-efficient GreenSKU-Full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.tco import TcoAssessment, TcoModel, cost_efficient_sku
from ..core.tables import render_table
from ..hardware.sku import baseline_gen3, greensku_full


@dataclass(frozen=True)
class TcoResult:
    assessments: List[TcoAssessment]
    cost_efficient_delta: float

    @property
    def within_paper_band(self) -> bool:
        """Whether the delta lands near the paper's ~5%."""
        return 0.0 <= self.cost_efficient_delta <= 0.10


def run(model: Optional[TcoModel] = None) -> TcoResult:
    model = model or TcoModel()
    skus = [baseline_gen3(), cost_efficient_sku(), greensku_full()]
    assessments = [model.assess(sku) for sku in skus]
    delta = model.per_core_delta(cost_efficient_sku(), greensku_full())
    return TcoResult(assessments=assessments, cost_efficient_delta=delta)


def render(result: TcoResult) -> str:
    rows = [
        [a.sku_name, a.capex_usd, a.opex_usd, a.total_usd, a.usd_per_core]
        for a in result.assessments
    ]
    table = render_table(
        ["SKU", "capex $", "opex $", "total $", "$/core"],
        rows,
        title="Section VII-A: lifetime TCO",
        float_fmt="{:,.0f}",
    )
    return (
        f"{table}\ncost-efficient SKU is "
        f"{result.cost_efficient_delta:.1%} cheaper per core than "
        "GreenSKU-Full (paper: ~5%)"
    )


def main() -> TcoResult:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
