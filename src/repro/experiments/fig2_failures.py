"""Experiment Fig. 2: DDR4 DIMM failure rates vs deployment time.

Regenerates the moving-average failure-rate view over a 7-year deployment
window: an initial infant-mortality period, then a flat annual failure rate
— the empirical case for reusing old DIMMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.tables import render_csv
from ..reliability.traces import (
    FailureTraceParams,
    moving_average,
    steady_state_slope,
    synthesize_failure_trace,
)


@dataclass(frozen=True)
class Fig2Result:
    """The synthesized trace, its moving average, and the flatness fit."""

    months: np.ndarray
    raw_rates: np.ndarray
    smoothed: np.ndarray
    steady_slope_per_month: float

    @property
    def steady_mean(self) -> float:
        """Mean normalized rate after the infant period."""
        return float(self.smoothed[24:].mean())


def run(
    params: Optional[FailureTraceParams] = None,
    seed: int = 7,
    window: int = 6,
) -> Fig2Result:
    """Synthesize the failure trace and fit the steady-state slope."""
    params = params or FailureTraceParams()
    months, rates = synthesize_failure_trace(params, seed=seed)
    smoothed = moving_average(rates, window=window)
    slope = steady_state_slope(months, rates)
    return Fig2Result(
        months=months,
        raw_rates=rates,
        smoothed=smoothed,
        steady_slope_per_month=slope,
    )


def render(result: Fig2Result) -> str:
    """Text rendering: series summary plus the flatness headline."""
    lines = [
        "Fig. 2: normalized DDR4 DIMM failure rate vs deployment month",
        f"  months: 0..{int(result.months[-1])}",
        f"  initial (month 0) moving average: {result.smoothed[0]:.2f}",
        f"  steady-state mean (months 24+):   {result.steady_mean:.2f}",
        f"  steady-state slope: {result.steady_slope_per_month:+.5f}/month "
        "(paper: ~flat after the initial period)",
    ]
    return "\n".join(lines)


def to_csv(result: Fig2Result) -> str:
    """CSV of the series (month, raw, moving average)."""
    rows = [
        [int(m), float(r), float(s)]
        for m, r, s in zip(result.months, result.raw_rates, result.smoothed)
    ]
    return render_csv(["month", "raw_rate", "moving_average"], rows)


def main() -> Fig2Result:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
