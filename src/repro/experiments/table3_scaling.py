"""Experiment Table III: GreenSKU-Efficient scaling factors per application.

Regenerates the paper's per-application, per-generation scaling factors and
compares every cell against the published table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.tables import render_table
from ..perf.apps import FLEET_CORE_HOUR_SHARE, get_app
from ..perf.scaling import ScalingResult, scaling_table

#: The published Table III cells: app -> (gen1, gen2, gen3) factors;
#: ``math.inf`` encodes the paper's ">1.5".
PAPER_TABLE3: Dict[str, Tuple[float, float, float]] = {
    "Redis": (1, 1, 1),
    "Masstree": (1, 1, math.inf),
    "Silo": (math.inf, math.inf, math.inf),
    "Shore": (1, 1, 1),
    "Xapian": (1, 1, 1.5),
    "WebF-Dynamic": (1, 1.25, 1.25),
    "WebF-Hot": (1, 1.25, 1.5),
    "WebF-Cold": (1, 1, 1),
    "Moses": (1, 1, 1.25),
    "Sphinx": (1, 1.25, 1.25),
    "Img-DNN": (1, 1, 1),
    "Nginx": (1, 1, 1.25),
    "Caddy": (1, 1, 1),
    "Envoy": (1, 1, 1),
    "HAProxy": (1, 1, 1.25),
    "Traefik": (1, 1, 1.25),
    "Build-Python": (1, 1, 1.25),
    "Build-Wasm": (1, 1, 1.25),
    "Build-PHP": (1, 1, 1.25),
}


@dataclass(frozen=True)
class Table3Result:
    """Computed factors plus the cell-level match against the paper."""

    table: Dict[str, Dict[int, ScalingResult]]

    def mismatches(self) -> List[Tuple[str, int, float, float]]:
        """(app, generation, got, expected) for every differing cell."""
        diffs = []
        for app, expected in PAPER_TABLE3.items():
            for gen, exp in zip((1, 2, 3), expected):
                got = self.table[app][gen].factor
                if got != exp:
                    diffs.append((app, gen, got, exp))
        return diffs

    @property
    def matched_cells(self) -> int:
        return 3 * len(PAPER_TABLE3) - len(self.mismatches())


def run(
    method: str = "analytic", backend: Optional[str] = None
) -> Table3Result:
    """Compute Table III (one batched grid; see ``scaling_table``)."""
    apps = [get_app(name) for name in PAPER_TABLE3]
    return Table3Result(
        table=scaling_table(apps, method=method, backend=backend)
    )


def render(result: Table3Result) -> str:
    rows = []
    for app_name in PAPER_TABLE3:
        app = get_app(app_name)
        per_gen = result.table[app_name]
        rows.append(
            [
                app.app_class.value,
                f"{100 * FLEET_CORE_HOUR_SHARE[app.app_class]:.0f}%",
                app_name + (" *" if app.production else ""),
                per_gen[1].display,
                per_gen[2].display,
                per_gen[3].display,
            ]
        )
    table = render_table(
        ["Category", "Core Hours", "Application", "Gen1", "Gen2", "Gen3"],
        rows,
        title=(
            "Table III: GreenSKU-Efficient scaling factors "
            "(* = production application)"
        ),
    )
    total = 3 * len(PAPER_TABLE3)
    return (
        f"{table}\nmatched {result.matched_cells}/{total} published cells"
    )


def main() -> Table3Result:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
