"""Experiment Fig. 7: tail latency vs load across application classes.

For one representative application per class (the paper shows five of its
six classes), sweep offered load and record p95 tail latency for:

- an 8-core VM on the Gen3 baseline (the orange curve), whose latency at
  90% of peak defines the SLO (the dotted line), and
- GreenSKU-Efficient VMs scaled up to the core count that approaches the
  baseline's peak throughput (8, 10, or 12 cores).

Applications like Xapian and Nginx reach the SLO with scaling; Masstree
cannot even at 12 cores — the hockey-stick lands before the SLO load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.tables import render_csv
from ..perf.apps import ApplicationProfile, get_app
from ..perf.latency import (
    CurveSpec,
    LatencyCurve,
    Slo,
    derive_slo,
    latency_curves,
)
from ..perf.scaling import CANDIDATE_CORES, scaling_factor

#: The representative application per class shown in Fig. 7.
FIG7_APPS: Tuple[str, ...] = ("Masstree", "Xapian", "Moses", "Img-DNN", "Nginx")

#: Load fractions of the baseline's peak swept for each curve.
LOAD_FRACTIONS: Tuple[float, ...] = tuple(
    round(0.1 + 0.05 * i, 2) for i in range(18)
)


@dataclass(frozen=True)
class Fig7Panel:
    """One application's panel: baseline curve, GreenSKU curves, SLO."""

    app_name: str
    slo: Slo
    baseline_curve: LatencyCurve
    green_curves: List[LatencyCurve]
    green_cores_needed: Optional[int]  # None = cannot meet SLO (">1.5")

    @property
    def meets_slo(self) -> bool:
        return self.green_cores_needed is not None


def run_panel(
    app: ApplicationProfile,
    generation: int = 3,
    method: str = "analytic",
    backend: Optional[str] = None,
) -> Fig7Panel:
    """Build one Fig. 7 panel: the whole panel is one batched grid call."""
    slo = derive_slo(app, generation, method=method)
    result = scaling_factor(app, generation, method=method)
    # Show curves up to the minimum core count approaching the baseline's
    # peak (all candidates when the SLO is never met).
    if result.cores is not None:
        counts = [c for c in CANDIDATE_CORES if c <= result.cores]
    else:
        counts = list(CANDIDATE_CORES)
    specs = [
        CurveSpec(
            platform={3: "gen3", 2: "gen2", 1: "gen1"}[generation],
            cores=8,
            label=f"Gen{generation} (8 cores)",
        )
    ] + [
        CurveSpec(
            platform="bergamo",
            cores=cores,
            reference_peak_qps=slo.baseline_peak_qps,
            label=f"GreenSKU-Efficient ({cores} cores)",
        )
        for cores in counts
    ]
    curves = latency_curves(
        app, specs, load_fractions=LOAD_FRACTIONS, method=method,
        backend=backend,
    )
    return Fig7Panel(
        app_name=app.name,
        slo=slo,
        baseline_curve=curves[0],
        green_curves=list(curves[1:]),
        green_cores_needed=result.cores,
    )


def run(
    app_names: Sequence[str] = FIG7_APPS,
    generation: int = 3,
    method: str = "analytic",
    backend: Optional[str] = None,
) -> List[Fig7Panel]:
    """All Fig. 7 panels."""
    return [
        run_panel(get_app(name), generation, method, backend=backend)
        for name in app_names
    ]


def render(panels: Sequence[Fig7Panel]) -> str:
    """Text rendering: per-app SLO outcome and saturation summary."""
    lines = ["Fig. 7: p95 tail latency vs load (Gen3 SLO at 90% of peak)"]
    for panel in panels:
        outcome = (
            f"meets SLO with {panel.green_cores_needed} cores"
            if panel.meets_slo
            else "cannot meet SLO even with 12 cores (>1.5 scaling)"
        )
        lines.append(
            f"  {panel.app_name:10s} SLO={panel.slo.latency_ms:8.2f} ms @ "
            f"{panel.slo.load_qps:9.0f} QPS | baseline peak "
            f"{panel.slo.baseline_peak_qps:9.0f} QPS | GreenSKU {outcome}"
        )
    return "\n".join(lines)


def to_csv(panels: Sequence[Fig7Panel]) -> str:
    """CSV of every curve point (app, curve, qps, p95_ms)."""
    rows = []
    for panel in panels:
        for curve in [panel.baseline_curve] + panel.green_curves:
            for qps, p95 in zip(curve.qps, curve.p95_ms):
                rows.append([panel.app_name, curve.label, qps, p95])
    return render_csv(["app", "curve", "qps", "p95_ms"], rows)


def main() -> List[Fig7Panel]:
    panels = run()
    print(render(panels))
    return panels


if __name__ == "__main__":
    main()
