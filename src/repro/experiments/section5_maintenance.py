"""Experiment Section V (maintenance): AFRs, Fail-In-Place, C_OOS.

Regenerates the maintenance accounting: the baseline's AFR of 4.8 vs
GreenSKU-Full's 7.2, Fail-In-Place reducing actionable repairs to 3.0 and
3.6, and the relative maintenance carbon overheads C_OOS of 3.0 vs ~2.98 —
the paper's evidence that GreenSKU-Full's extra DIMMs/SSDs do not raise
maintenance emissions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tables import render_table
from ..reliability.maintenance import (
    MaintenanceAssessment,
    paper_maintenance_comparison,
)


@dataclass(frozen=True)
class MaintenanceResult:
    baseline: MaintenanceAssessment
    greensku: MaintenanceAssessment

    @property
    def overhead_delta(self) -> float:
        """C_OOS difference (paper: ~-0.02, i.e. negligible)."""
        return self.greensku.c_oos - self.baseline.c_oos


def run(
    servers_ratio: float = 0.66,
    per_server_emissions_ratio: float = 1.262,
) -> MaintenanceResult:
    base, green = paper_maintenance_comparison(
        servers_ratio=servers_ratio,
        per_server_emissions_ratio=per_server_emissions_ratio,
    )
    return MaintenanceResult(baseline=base, greensku=green)


def render(result: MaintenanceResult) -> str:
    rows = []
    for a in (result.baseline, result.greensku):
        rows.append(
            [
                a.sku_name,
                a.afr.total,
                a.repair_rate,
                100 * a.oos_fraction,
                a.c_oos,
            ]
        )
    table = render_table(
        ["SKU", "AFR /100", "repairs /100 (FIP)", "OOS %", "C_OOS"],
        rows,
        title="Section V: maintenance overheads",
    )
    return (
        f"{table}\nC_OOS delta: {result.overhead_delta:+.2f} "
        "(paper: negligible, ~-0.02)"
    )


def main() -> MaintenanceResult:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
