"""Experiment harnesses: one module per paper table/figure.

See :mod:`repro.experiments.registry` for the full index.  Each module
exposes ``run()`` (structured result), ``render()`` (the rows/series the
paper reports, as text), and ``main()`` (run + print).
"""

from . import (
    end_to_end,
    expt_carbon_aware,
    fig1_breakdown,
    fig2_failures,
    fig7_latency,
    fig8_cxl,
    fig9_packing,
    fig10_memutil,
    fig11_cluster_savings,
    section5_maintenance,
    section7_alternatives,
    section7_tco,
    table1_cpus,
    table2_devops,
    table3_scaling,
    table4_savings,
    validation,
)
from .registry import EXPERIMENTS, Experiment, get_experiment, run_all

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "run_all",
    "end_to_end",
    "expt_carbon_aware",
    "fig1_breakdown",
    "fig2_failures",
    "fig7_latency",
    "fig8_cxl",
    "fig9_packing",
    "fig10_memutil",
    "fig11_cluster_savings",
    "section5_maintenance",
    "section7_alternatives",
    "section7_tco",
    "table1_cpus",
    "table2_devops",
    "table3_scaling",
    "table4_savings",
    "validation",
]
