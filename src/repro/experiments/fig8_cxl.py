"""Experiment Fig. 8: CXL's tail-latency impact on Moses vs HAProxy.

Compares p95-vs-load on GreenSKU-Efficient and GreenSKU-CXL at the same
core count (the count each app needs to meet its Gen3 SLO).  Moses — a
memory-bound speech translator — saturates early under CXL's higher memory
latency and misses the SLO well before the baseline load; HAProxy —
compute/network-bound — keeps the SLO over most of the load range and only
loses ~11% of peak throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.tables import render_csv
from ..perf.apps import get_app
from ..perf.latency import (
    CurveSpec,
    LatencyCurve,
    Slo,
    derive_slo,
    latency_curves,
    peak_qps,
)
from ..perf.scaling import scaling_factor
from .fig7_latency import LOAD_FRACTIONS

#: The two applications the paper contrasts.
FIG8_APPS: Tuple[str, ...] = ("Moses", "HAProxy")


@dataclass(frozen=True)
class Fig8Panel:
    """One application's Efficient-vs-CXL comparison."""

    app_name: str
    cores: int
    slo: Slo
    efficient_curve: LatencyCurve
    cxl_curve: LatencyCurve
    efficient_peak_qps: float
    cxl_peak_qps: float

    @property
    def peak_reduction(self) -> float:
        """Fraction of peak throughput lost to CXL (HAProxy: ~0.11)."""
        return 1.0 - self.cxl_peak_qps / self.efficient_peak_qps

    @property
    def cxl_slo_load_qps(self) -> float:
        """Highest swept load where the CXL config still meets the SLO."""
        return self.cxl_curve.max_load_meeting(self.slo.latency_ms)


def run_panel(app_name: str, generation: int = 3,
              method: str = "analytic",
              backend: Optional[str] = None) -> Fig8Panel:
    """Build one Fig. 8 panel (both curves in one batched grid call)."""
    app = get_app(app_name)
    slo = derive_slo(app, generation, method=method)
    result = scaling_factor(app, generation, method=method)
    cores = result.cores if result.cores is not None else 12
    efficient, cxl = latency_curves(
        app,
        [
            CurveSpec(
                platform="bergamo",
                cores=cores,
                reference_peak_qps=slo.baseline_peak_qps,
                label=f"GreenSKU-Efficient ({cores} cores)",
            ),
            CurveSpec(
                platform="bergamo",
                cores=cores,
                cxl=True,
                reference_peak_qps=slo.baseline_peak_qps,
                label=f"GreenSKU-CXL ({cores} cores)",
            ),
        ],
        load_fractions=LOAD_FRACTIONS,
        method=method,
        backend=backend,
    )
    return Fig8Panel(
        app_name=app.name,
        cores=cores,
        slo=slo,
        efficient_curve=efficient,
        cxl_curve=cxl,
        efficient_peak_qps=peak_qps(app, "bergamo", cores),
        cxl_peak_qps=peak_qps(app, "bergamo", cores, cxl=True),
    )


def run(app_names: Sequence[str] = FIG8_APPS, generation: int = 3,
        method: str = "analytic",
        backend: Optional[str] = None) -> List[Fig8Panel]:
    """All Fig. 8 panels."""
    return [
        run_panel(name, generation, method=method, backend=backend)
        for name in app_names
    ]


def render(panels: Sequence[Fig8Panel]) -> str:
    lines = ["Fig. 8: CXL impact on p95 tail latency vs load"]
    for p in panels:
        lines.append(
            f"  {p.app_name:8s} ({p.cores} cores): peak "
            f"{p.efficient_peak_qps:8.0f} -> {p.cxl_peak_qps:8.0f} QPS "
            f"({p.peak_reduction:.0%} reduction); CXL meets SLO up to "
            f"{p.cxl_slo_load_qps:8.0f} QPS (SLO load "
            f"{p.slo.load_qps:8.0f})"
        )
    return "\n".join(lines)


def to_csv(panels: Sequence[Fig8Panel]) -> str:
    rows = []
    for panel in panels:
        for curve in (panel.efficient_curve, panel.cxl_curve):
            for qps, p95 in zip(curve.qps, curve.p95_ms):
                rows.append([panel.app_name, curve.label, qps, p95])
    return render_csv(["app", "curve", "qps", "p95_ms"], rows)


def main() -> List[Fig8Panel]:
    panels = run()
    print(render(panels))
    return panels


if __name__ == "__main__":
    main()
