"""Experiment Section VII-B: what alternatives need to match GreenSKU-Full.

Computes, for the measured data-center savings target, the equivalent
renewable-energy increase, uniform component-efficiency improvement, and
server-lifetime extension.  The paper's reference answers (for its internal
8% DC savings): +2.6 points of renewables, 28% component efficiency, and
6 -> 13 year lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.alternatives import EquivalenceReport, equivalence_report
from ..carbon.intensity import EnergyMix


@dataclass(frozen=True)
class AlternativesResult:
    report: EquivalenceReport


def run(
    target_savings: float = 0.15,
    mix: Optional[EnergyMix] = None,
) -> AlternativesResult:
    """Equivalences for a savings target.

    Defaults to 0.15 — the paper's performance-adjusted cluster savings,
    which its efficiency equivalence visibly targets (28% efficiency at a
    ~55% operational share implies a ~15% target).
    """
    return AlternativesResult(
        report=equivalence_report(target_savings, mix=mix)
    )


def render(result: AlternativesResult) -> str:
    r = result.report
    return "\n".join(
        [
            "Section VII-B: matching GreenSKU-Full's data-center savings "
            f"({r.target_savings:.0%}) requires:",
            f"  +{100 * r.renewables_increase:.1f} points more renewable "
            "energy (paper: +2.6 points; actual grids add ~1.2/yr)",
            f"  {r.efficiency_improvement:.0%} better energy efficiency in "
            "every component (paper: 28%, ~one CPU generation)",
            f"  server lifetimes of {r.lifetime_years:.1f} years, up from 6 "
            "(paper: 13 years)",
        ]
    )


def main() -> AlternativesResult:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
