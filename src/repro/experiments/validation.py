"""Validation report: every fast quantitative anchor, PASS/FAIL.

The equivalent of the paper artifact's expected-results check: runs the
calibration anchors that take under a second each (the Section V worked
example, Table VIII, Tables II/III, maintenance, headline claims) and
prints a line per claim.  Heavier artifacts (Figs. 9-11) are validated by
their own benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..carbon.model import CarbonModel
from ..carbon.savings import paper_savings_table
from ..hardware.datacenter import appendix_config
from ..hardware.sku import baseline_gen3, greensku_cxl, greensku_full
from ..perf.apps import APPLICATIONS, cxl_tolerant_core_hour_share
from ..perf.pond import mitigated_share
from ..perf.scaling import factors_by_app
from ..reliability.afr import server_afr
from ..reliability.maintenance import paper_maintenance_comparison


@dataclass(frozen=True)
class Check:
    """One validated claim."""

    claim: str
    expected: str
    measured: str
    passed: bool


def _close(value: float, target: float, abs_tol: float) -> bool:
    return abs(value - target) <= abs_tol


def run() -> List[Check]:
    """Run every fast anchor check."""
    checks: List[Check] = []

    def add(claim: str, expected: str, measured: str, passed: bool) -> None:
        checks.append(Check(claim, expected, measured, passed))

    # Section V worked example.
    a = CarbonModel(appendix_config()).assess(greensku_cxl(appendix_data=True))
    add("worked example: server power", "403 W",
        f"{a.server.power_watts:.1f} W",
        _close(a.server.power_watts, 403, 1))
    add("worked example: server embodied", "1644 kg",
        f"{a.server.embodied_kg:.0f} kg",
        _close(a.server.embodied_kg, 1644, 1))
    add("worked example: servers per rack", "16",
        str(a.servers_per_rack), a.servers_per_rack == 16)
    add("worked example: rack total", "63,351 kg",
        f"{a.rack_total_kg:,.0f} kg",
        _close(a.rack_total_kg, 63_351, 150))
    add("worked example: per-core", "~31 kg",
        f"{a.total_per_core:.1f} kg", _close(a.total_per_core, 31, 0.3))

    # Table VIII.
    table8 = {
        "Baseline-Resized": (6, 10, 8),
        "GreenSKU-Efficient": (16, 14, 15),
        "GreenSKU-CXL": (15, 32, 24),
        "GreenSKU-Full": (14, 38, 26),
    }
    for row in paper_savings_table():
        if row.sku_name not in table8:
            continue
        op, emb, total = table8[row.sku_name]
        got = (
            round(100 * row.operational_savings),
            round(100 * row.embodied_savings),
            round(100 * row.total_savings),
        )
        add(
            f"Table VIII: {row.sku_name}",
            f"{op}/{emb}/{total}%",
            f"{got[0]}/{got[1]}/{got[2]}%",
            all(abs(g - e) <= 1.5 for g, e in zip(got, (op, emb, total))),
        )

    # Table III head-counts.
    factors = factors_by_app(generation=3)
    n1 = sum(1 for f in factors.values() if f == 1.0)
    n125 = sum(1 for f in factors.values() if f == 1.25)
    add("Table III: apps needing no scaling vs Gen3", "7", str(n1), n1 == 7)
    add("Table III: apps needing 25% scaling", "9", str(n125), n125 == 9)
    add("Table III: Silo cannot adopt", ">1.5",
        ">1.5" if math.isinf(factors["Silo"]) else str(factors["Silo"]),
        math.isinf(factors["Silo"]))

    # Maintenance chain.
    add("maintenance: baseline AFR", "4.8",
        f"{server_afr(baseline_gen3()).total:.1f}",
        _close(server_afr(baseline_gen3()).total, 4.8, 0.01))
    add("maintenance: GreenSKU-Full AFR", "7.2",
        f"{server_afr(greensku_full()).total:.1f}",
        _close(server_afr(greensku_full()).total, 7.2, 0.01))
    base, green = paper_maintenance_comparison()
    add("maintenance: C_OOS delta negligible", "~0",
        f"{green.c_oos - base.c_oos:+.2f}",
        abs(green.c_oos - base.c_oos) < 0.1)

    # CXL behaviour.
    add("CXL-tolerant core-hour share", "20.2%",
        f"{cxl_tolerant_core_hour_share():.1%}",
        _close(cxl_tolerant_core_hour_share(), 0.202, 0.02))
    add("Pond: apps within 5% CXL slowdown", ">=95% (paper: 98%)",
        f"{mitigated_share(APPLICATIONS):.0%}",
        mitigated_share(APPLICATIONS) >= 0.95)

    return checks


def render(checks: List[Check]) -> str:
    passed = sum(1 for c in checks if c.passed)
    lines = [f"Validation: {passed}/{len(checks)} anchors pass"]
    for c in checks:
        mark = "PASS" if c.passed else "FAIL"
        lines.append(
            f"  [{mark}] {c.claim}: expected {c.expected}, "
            f"measured {c.measured}"
        )
    return "\n".join(lines)


def main() -> List[Check]:
    checks = run()
    print(render(checks))
    return checks


if __name__ == "__main__":
    main()
