"""Experiment Fig. 10: per-server maximum memory utilization CDF.

Replays each trace on a baseline-only cluster and on a GreenSKU-CXL
cluster, aggregating every VM's maximum touched memory per server and
averaging across servers and snapshots.  The paper's finding: most traces
stay below 60% utilization, comfortably inside GreenSKU-CXL's local-DDR5
fraction (75%), so the CXL-backed 25% of memory can hold untouched pages —
only ~3% of traces would dip into CXL at all.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..allocation.cluster import ClusterSpec, adopt_nothing, simulate
from ..allocation.packing import cdf, fraction_below
from ..allocation.ingest import trace_suite
from ..allocation.traces import TraceParams, VmTrace
from ..core.resilience import drop_failures
from ..core.runner import DiskCache, cached_map, content_key
from ..core.tables import render_csv
from ..gsf.adoption import AdoptionModel
from ..gsf.framework import Gsf
from ..gsf.sizing import right_size
from ..hardware.sku import ServerSKU, baseline_gen3, greensku_cxl

#: Bumped when the per-trace computation changes, invalidating disk-cache
#: entries from older code.
_CACHE_VERSION = "fig10-v3"


@dataclass(frozen=True)
class Fig10Result:
    """Per-trace mean maximum memory utilization for both clusters.

    ``cxl_boundary`` is the local-memory fraction of GreenSKU-CXL (0.75):
    utilization above it would spill into CXL-backed DRAM.
    ``cxl_pool_utilization`` reports how full the CXL pool actually runs
    under the Pond tiering policy (untouched memory + tolerant apps).
    """

    baseline_utilization: List[float]
    green_utilization: List[float]
    cxl_boundary: float
    cxl_pool_utilization: List[float]

    @property
    def share_below_60pct(self) -> float:
        """Fraction of traces with GreenSKU utilization at or below 0.6."""
        return fraction_below(self.green_utilization, 0.6)

    @property
    def share_needing_cxl(self) -> float:
        """Fraction of traces whose utilization is strictly above the CXL
        boundary.  A trace sitting exactly on the boundary (utilization
        == 0.75) still fits in local DDR5, so it does not need CXL —
        :func:`fraction_below` is inclusive at the threshold.
        """
        return 1.0 - fraction_below(self.green_utilization, self.cxl_boundary)


class PermissiveAdoption:
    """Fig. 10's hosting policy: adopters scale, everyone else is hosted
    unscaled (the figure studies the SKU's memory headroom, not
    adoption).  A module-level class so worker processes can unpickle it.
    """

    def __init__(self, model: AdoptionModel):
        self.model = model

    def __call__(self, app_name: str, generation: int) -> float:
        decision = self.model.decide(app_name, generation)
        if decision.adopt:
            return decision.scaling_factor
        return 1.0  # hosted unscaled for the memory study

    def decision_key(self) -> tuple:
        """Stable content summary of the policy, for cache keys."""
        return tuple(
            sorted(
                (d.app_name, d.generation, d.adopt, d.scaling_factor)
                for d in self.model.decisions()
            )
        )


def run_trace(
    trace: VmTrace,
    baseline: ServerSKU,
    greensku: ServerSKU,
    adoption,
) -> "tuple[float, float, float]":
    """(baseline util, green util, green CXL-pool util) for one trace.

    Full-node VMs are excluded: the paper strictly assigns them to
    baseline SKUs, so they never contribute to a GreenSKU's memory
    pressure, and keeping them out of both replays keeps the comparison
    apples to apples.
    """
    shared = trace.filter(~trace.columns.full_node)
    n_base = right_size(shared, baseline)
    base_out = simulate(
        shared, ClusterSpec.of((baseline, n_base)), adoption=adopt_nothing
    )
    # The green search warm-starts from the baseline count: the GreenSKU
    # has at least as many cores, so its right-size lands at or below it.
    n_green = right_size(shared, greensku, adoption, hint=n_base)
    green_out = simulate(
        shared, ClusterSpec.of((greensku, n_green)), adoption=adoption
    )
    return (
        base_out.baseline_stats.mean_touched_memory,
        green_out.green_stats.mean_touched_memory,
        green_out.green_stats.mean_cxl_utilization,
    )


def _trace_key(
    trace: VmTrace,
    baseline: ServerSKU,
    greensku: ServerSKU,
    adoption: PermissiveAdoption,
) -> str:
    """Disk-cache key: content hash of the trace, SKUs, and policy."""
    return content_key(
        _CACHE_VERSION, trace.name, trace.params, trace.digest(),
        baseline, greensku, adoption.decision_key(),
    )


def run(
    traces: Optional[Sequence[VmTrace]] = None,
    trace_count: int = 35,
    mean_concurrent_vms: int = 250,
    gsf: Optional[Gsf] = None,
    jobs: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    trace_backend: Optional[str] = None,
) -> Fig10Result:
    """Run the memory-utilization study over the trace suite.

    GreenSKU-CXL clusters host every VM here (the paper's point is about
    the SKU's memory headroom, not adoption), scaling adopters as usual;
    non-adopters keep their size.  Traces fan out over ``jobs`` worker
    processes with results in trace order (byte-identical to serial);
    ``cache`` skips traces whose content hash already has a result.
    Under a degrading resilience policy (the CLI's ``--keep-going``)
    traces whose tasks exhausted their retry budget are explicitly
    dropped from the study (``resilience.degraded_dropped``).
    ``trace_backend`` selects synthetic vs ingested Azure traces (the
    CLI's ``--trace-backend``).
    """
    if traces is None:
        traces = trace_suite(
            backend=trace_backend,
            count=trace_count,
            params=TraceParams(mean_concurrent_vms=mean_concurrent_vms),
        )
    gsf = gsf or Gsf()
    baseline, greensku = baseline_gen3(), greensku_cxl()
    permissive = PermissiveAdoption(gsf.adoption_model(greensku))

    triples = drop_failures(cached_map(
        functools.partial(
            run_trace,
            baseline=baseline,
            greensku=greensku,
            adoption=permissive,
        ),
        traces,
        key_fn=functools.partial(
            _trace_key,
            baseline=baseline,
            greensku=greensku,
            adoption=permissive,
        ),
        jobs=jobs,
        cache=cache,
    ))
    base_utils = [b for b, _g, _c in triples]
    green_utils = [g for _b, g, _c in triples]
    cxl_utils = [c for _b, _g, c in triples]
    return Fig10Result(
        baseline_utilization=base_utils,
        green_utilization=green_utils,
        cxl_boundary=1.0 - greensku.cxl_fraction,
        cxl_pool_utilization=cxl_utils,
    )


def render(result: Fig10Result) -> str:
    return "\n".join(
        [
            "Fig. 10: mean per-server maximum memory utilization "
            f"({len(result.green_utilization)} traces)",
            f"  baseline median: "
            f"{np.median(result.baseline_utilization):.2f}",
            f"  GreenSKU-CXL median: "
            f"{np.median(result.green_utilization):.2f}",
            f"  traces below 60% utilization: "
            f"{result.share_below_60pct:.0%} (paper: most)",
            f"  traces crossing into the CXL region "
            f"(> {result.cxl_boundary:.0%}): "
            f"{result.share_needing_cxl:.0%} (paper: ~3%)",
            f"  CXL pool utilization under Pond tiering (median): "
            f"{np.median(result.cxl_pool_utilization):.0%} — the reused "
            "DDR4 holds untouched pages and tolerant apps",
        ]
    )


def to_csv(result: Fig10Result) -> str:
    xs_b, ps_b = cdf(result.baseline_utilization)
    xs_g, ps_g = cdf(result.green_utilization)
    rows = [["baseline", float(x), float(p)] for x, p in zip(xs_b, ps_b)]
    rows += [["greensku-cxl", float(x), float(p)] for x, p in zip(xs_g, ps_g)]
    return render_csv(["cluster", "utilization", "cdf"], rows)


def main() -> Fig10Result:
    result = run(trace_count=12, mean_concurrent_vms=200)
    print(render(result))
    return result


if __name__ == "__main__":
    main()
