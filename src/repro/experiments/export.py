"""Export experiment artifacts to a directory.

The equivalent of the paper artifact's ``figures/generated_figures``
output: run experiments from the registry, render each one's rows/series,
and write ``<id>.txt`` (plus ``<id>.csv`` where the harness exports series
data) under an output directory.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterable, List, Optional, Union

from .registry import EXPERIMENTS, get_experiment

#: Experiments cheap enough for the default export set (< ~2 s each).
FAST_EXPERIMENT_IDS = (
    "fig1",
    "fig2",
    "table1",
    "fig7",
    "table2",
    "table3",
    "fig8",
    "table4",
    "sec5-maintenance",
    "sec7-alternatives",
    "sec7-tco",
    "validation",
)


def export_experiments(
    out_dir: Union[str, pathlib.Path],
    experiment_ids: Optional[Iterable[str]] = None,
) -> Dict[str, List[pathlib.Path]]:
    """Run experiments and write their artifacts.

    Args:
        out_dir: Directory to write into (created if missing).
        experiment_ids: Which experiments to export (default: the fast
            set; pass ``EXPERIMENTS`` keys for everything).

    Returns:
        Experiment id -> list of files written.
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    ids = list(experiment_ids) if experiment_ids else list(
        FAST_EXPERIMENT_IDS
    )
    written: Dict[str, List[pathlib.Path]] = {}
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        module = experiment.module
        result = module.run()
        files: List[pathlib.Path] = []
        text_path = out / f"{experiment_id}.txt"
        text_path.write_text(module.render(result) + "\n")
        files.append(text_path)
        if hasattr(module, "to_csv"):
            csv_path = out / f"{experiment_id}.csv"
            csv_path.write_text(module.to_csv(result) + "\n")
            files.append(csv_path)
        written[experiment_id] = files
    return written
