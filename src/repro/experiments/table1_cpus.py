"""Experiment Table I: baseline AMD CPUs vs the efficient Bergamo CPU."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.tables import render_table
from ..hardware.catalog import table1_rows


@dataclass(frozen=True)
class Table1Result:
    """The table rows in the paper's layout."""

    rows: List[Tuple]


def run() -> Table1Result:
    return Table1Result(rows=list(table1_rows()))


def render(result: Table1Result) -> str:
    headers = [
        "CPU Characteristic",
        "Bergamo",
        "Rome (Gen 1)",
        "Milan (Gen 2)",
        "Genoa (Gen 3)",
    ]
    return render_table(
        headers,
        result.rows,
        title="Table I: baseline AMD CPUs vs the efficient Bergamo CPU",
        float_fmt="{:g}",
    )


def main() -> Table1Result:
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
