"""Experiment: the paper's headline savings chain.

The abstract's three numbers for GreenSKU-Full, each one level deeper in
GSF's accounting:

1. **per-core savings** — raw CO2e-per-core advantage over the Gen3
   baseline (paper: 28% internal / 26% open data),
2. **performance-adjusted cluster savings** — after adoption decisions,
   VM scaling, packing, sizing, and the growth buffer (paper: 15%
   internal / 14% open-data average),
3. **net data-center savings** — after weighting by compute's share of
   total data-center emissions (paper: 8% internal / 7% open data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..allocation.traces import TraceParams, VmTrace, generate_trace
from ..core.units import savings_fraction
from ..gsf.framework import Gsf
from ..gsf.results import GsfEvaluation
from ..hardware.sku import ServerSKU, greensku_full


@dataclass(frozen=True)
class EndToEndResult:
    """The three-step savings chain for one GreenSKU on one trace."""

    per_core_savings: float
    cluster_savings: float
    dc_savings: float
    evaluation: GsfEvaluation


def run(
    trace: Optional[VmTrace] = None,
    greensku: Optional[ServerSKU] = None,
    gsf: Optional[Gsf] = None,
    mean_concurrent_vms: int = 1000,
    seed: int = 1,
) -> EndToEndResult:
    """Evaluate the chain with the default (open-data) configuration."""
    gsf = gsf or Gsf()
    greensku = greensku or greensku_full()
    if trace is None:
        trace = generate_trace(
            seed=seed,
            params=TraceParams(mean_concurrent_vms=mean_concurrent_vms),
        )
    evaluation = gsf.evaluate(greensku, trace)
    per_core = savings_fraction(
        evaluation.baseline_assessment.total_per_core,
        evaluation.green_assessment.total_per_core,
    )
    return EndToEndResult(
        per_core_savings=per_core,
        cluster_savings=evaluation.cluster_savings,
        dc_savings=gsf.dc_savings(evaluation),
        evaluation=evaluation,
    )


def render(result: EndToEndResult) -> str:
    ev = result.evaluation
    return "\n".join(
        [
            f"End-to-end savings chain for {ev.greensku_name} "
            f"(trace {ev.trace_name}, CI={ev.carbon_intensity} kg/kWh):",
            f"  1. per-core savings:           "
            f"{result.per_core_savings:.1%}  (paper: 28% / 26% open data)",
            f"  2. cluster savings (adoption + packing + buffer): "
            f"{result.cluster_savings:.1%}  (paper: 15% / 14% open data)",
            f"  3. net data-center savings:    "
            f"{result.dc_savings:.1%}  (paper: 8% / 7% open data)",
            f"  sizing: {ev.sizing.baseline_only_servers} baseline-only -> "
            f"({ev.sizing.mixed_baseline_servers} baseline + "
            f"{ev.sizing.mixed_green_servers} GreenSKU) "
            f"+ {ev.buffer.baseline_buffer_servers} buffer",
            f"  adopted core-hour share: {ev.adopted_core_hour_share:.0%}",
        ]
    )


def main() -> EndToEndResult:
    result = run(mean_concurrent_vms=600)
    print(render(result))
    return result


if __name__ == "__main__":
    main()
