"""Experiment: carbon-aware vs blind placement under time-varying grids.

ROADMAP item 5 — outside the paper's reproduced figures.  For each trace
and each grid signal: size a mixed baseline+GreenSKU cluster the Fig.
9/10 way, widen the baseline side to two generations (gen2 + gen3, whose
marginal watts-per-core differ), then replay the same trace twice — once
under the blind policy (today's generation-routed behavior, bit-for-bit)
and once under ``carbon_aware`` placement with the signal attached.  An
exact :class:`~repro.carbon.grid.CarbonAccountant` integrates each
replay's operational gCO2, and the pair is reported as a
:class:`~repro.gsf.results.CarbonAwareDelta` riding on the trace's
:class:`~repro.gsf.results.GsfEvaluation`.

The two baseline generations are what give the policy room to act: the
blind scheduler routes each VM to its own generation's pool, while the
carbon-aware tiers prefer the lower-watts-per-core generation regardless
of VM generation, so the two replays pack differently and the
operational delta is nonzero (golden-pinned by ``bench_carbon_aware``).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..allocation.cluster import ClusterSpec, simulate
from ..allocation.ingest import trace_suite
from ..allocation.traces import TraceParams, VmTrace
from ..carbon.grid import CarbonAccountant, carbon_aware_policy, grid_signal
from ..core.resilience import drop_failures
from ..core.runner import DiskCache, cached_map, content_key
from ..core.tables import render_csv
from ..gsf.framework import Gsf
from ..gsf.results import CarbonAwareDelta
from ..gsf.sizing import size_mixed_cluster
from ..hardware.sku import ServerSKU, baseline_gen2, baseline_gen3, greensku_full

#: Bumped when the per-trace computation changes, invalidating disk-cache
#: entries from older code.
_CACHE_VERSION = "carbon-aware-v1"

#: Default signals the experiment sweeps (see ``repro.carbon.grid``).
DEFAULT_SIGNALS = ("diurnal", "seasonal")


@dataclass(frozen=True)
class CarbonAwareResult:
    """Per-(trace, signal) operational-carbon deltas."""

    deltas: List[CarbonAwareDelta]

    def by_signal(self) -> Dict[str, List[CarbonAwareDelta]]:
        """Deltas grouped by grid-signal name, insertion-ordered."""
        groups: Dict[str, List[CarbonAwareDelta]] = {}
        for delta in self.deltas:
            groups.setdefault(delta.signal_name, []).append(delta)
        return groups

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-signal mean operational delta (kg and fraction of blind)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, deltas in self.by_signal().items():
            count = len(deltas)
            out[name] = {
                "mean_delta_kg": sum(d.delta_kg for d in deltas) / count,
                "mean_delta_fraction": (
                    sum(d.delta_fraction for d in deltas) / count
                ),
                "traces": float(count),
            }
        return out


def run_trace(
    trace: VmTrace,
    gsf: Gsf,
    greensku: ServerSKU,
    signal_name: str,
) -> CarbonAwareDelta:
    """One trace's blind-vs-carbon-aware pair under one grid signal.

    Sizes the mixed cluster against the gen3 baseline, then deploys the
    baseline side as *two* generations (the sized gen3 count plus an
    equal gen2 count — extra headroom, never fewer servers, so both
    replays stay rejection-free) and replays the trace under both
    policies with exact accountants attached.
    """
    from ..allocation.cluster import outcome_digest

    gen2, gen3 = baseline_gen2(), baseline_gen3()
    adoption = gsf.adoption_model(greensku).policy()
    sizing = size_mixed_cluster(trace, gen3, greensku, adoption)
    cluster = ClusterSpec.of(
        (gen2, sizing.mixed_baseline_servers),
        (gen3, sizing.mixed_baseline_servers),
        (greensku, sizing.mixed_green_servers),
    )
    signal = grid_signal(signal_name)

    blind_acct = CarbonAccountant(signal)
    blind = simulate(trace, cluster, adoption=adoption, accountant=blind_acct)
    aware_acct = CarbonAccountant(signal)
    aware = simulate(
        trace,
        cluster,
        adoption=adoption,
        placement=carbon_aware_policy(signal),
        accountant=aware_acct,
    )
    evaluation = gsf.evaluate(greensku, trace, sizing=sizing)
    return CarbonAwareDelta(
        evaluation=evaluation,
        signal_name=signal_name,
        blind_kg=blind.operational.total_kg,
        aware_kg=aware.operational.total_kg,
        blind_digest=outcome_digest(blind),
        aware_digest=outcome_digest(aware),
    )


def _run_pair(
    pair: Tuple[VmTrace, str], gsf: Gsf, greensku: ServerSKU
) -> CarbonAwareDelta:
    """Worker wrapper: one (trace, signal-name) unit of work."""
    trace, signal_name = pair
    return run_trace(trace, gsf, greensku, signal_name)


def _pair_key(
    pair: Tuple[VmTrace, str], gsf: Gsf, greensku: ServerSKU
) -> str:
    """Disk-cache key: trace content, SKUs, policy decisions, signal."""
    trace, signal_name = pair
    adoption = gsf.adoption_model(greensku)
    decisions = tuple(
        sorted(
            (d.app_name, d.generation, d.adopt, d.scaling_factor)
            for d in adoption.decisions()
        )
    )
    return content_key(
        _CACHE_VERSION, trace.name, trace.params, trace.digest(),
        greensku, decisions, signal_name,
    )


def run(
    traces: Optional[Sequence[VmTrace]] = None,
    trace_count: int = 4,
    mean_concurrent_vms: int = 150,
    duration_days: float = 2.0,
    signals: Sequence[str] = DEFAULT_SIGNALS,
    gsf: Optional[Gsf] = None,
    jobs: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    trace_backend: Optional[str] = None,
) -> CarbonAwareResult:
    """Run the carbon-aware study over the trace suite × signal grid.

    Per-(trace, signal) pairs are independent, so they fan out through
    :func:`~repro.core.runner.cached_map` (inheriting any resilience
    policy); under a degrading ``--keep-going`` run, failed pairs are
    dropped from the study and surface in the telemetry manifest.
    """
    if traces is None:
        traces = trace_suite(
            backend=trace_backend,
            count=trace_count,
            params=TraceParams(
                mean_concurrent_vms=mean_concurrent_vms,
                duration_days=duration_days,
            ),
        )
    gsf = gsf or Gsf()
    greensku = greensku_full()
    pairs = [
        (trace, signal_name)
        for trace in traces
        for signal_name in signals
    ]
    deltas = drop_failures(cached_map(
        functools.partial(_run_pair, gsf=gsf, greensku=greensku),
        pairs,
        key_fn=functools.partial(_pair_key, gsf=gsf, greensku=greensku),
        jobs=jobs,
        cache=cache,
    ))
    return CarbonAwareResult(deltas=list(deltas))


def render(result: CarbonAwareResult) -> str:
    """Human-readable per-signal rollup."""
    lines = [
        "Carbon-aware vs blind placement "
        f"({len(result.deltas)} trace-signal pairs; not a paper figure)",
    ]
    for name, row in result.summary().items():
        lines.append(
            f"  {name:<10s} mean operational delta "
            f"{row['mean_delta_kg']:+.4f} kg "
            f"({row['mean_delta_fraction']:+.3%} of blind, "
            f"{int(row['traces'])} traces)"
        )
    lines.append(
        "  blind replays are bit-identical to the pre-policy engines; "
        "deltas come from carbon-aware tiering alone"
    )
    return "\n".join(lines)


def to_csv(result: CarbonAwareResult) -> str:
    """One row per (trace, signal) pair."""
    rows = [
        [
            d.evaluation.trace_name,
            d.signal_name,
            d.blind_kg,
            d.aware_kg,
            d.delta_kg,
            d.delta_fraction,
        ]
        for d in result.deltas
    ]
    return render_csv(
        ["trace", "signal", "blind_kg", "aware_kg", "delta_kg",
         "delta_fraction"],
        rows,
    )


def main() -> CarbonAwareResult:
    """Standalone entry: a small diurnal+seasonal study."""
    result = run(trace_count=2, mean_concurrent_vms=120)
    print(render(result))
    return result


if __name__ == "__main__":
    main()
