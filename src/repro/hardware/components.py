"""Server component specifications.

A *component spec* carries everything the GSF carbon, reliability, and
performance models need to know about one physical part:

- power: thermal design power (TDP) in watts, plus the loss factor of its
  power-delivery electronics (Eq. 1's ``(1 + l)``; the paper applies a 5%
  voltage-regulator loss to the CPU),
- embodied carbon in kgCO2e (zero when the part is *reused*: the paper,
  following Switzer et al., treats second-life parts as carbon-free),
- an annual failure rate (AFR) contribution, expressed as failures per 100
  servers per year, matching the paper's Section V accounting,
- a *category* used for Fig.-1-style emission attribution.

Specs are frozen dataclasses: a catalog entry never mutates, and SKUs are
composed from (spec, count) pairs.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigError


class Category(str, enum.Enum):
    """Attribution buckets for emission breakdowns (Fig. 1)."""

    CPU = "cpu"
    DRAM = "dram"
    SSD = "ssd"
    CXL = "cxl"
    NIC = "nic"
    OTHER = "other"


@dataclass(frozen=True)
class ComponentSpec:
    """One physical server part, as seen by the carbon/reliability models.

    Attributes:
        name: Human-readable part name (e.g. ``"DDR5-64GB"``).
        category: Attribution bucket for breakdowns.
        tdp_watts: Thermal design power of one part, in watts.
        embodied_kg: Embodied emissions of one *new* part, in kgCO2e.
        reused: Whether the part is second-life.  Reused parts contribute
            zero embodied carbon but keep their full operational footprint.
        loss_factor: Power-electronics loss ``l`` applied to this part's
            derated power (Eq. 1).  0.05 for the CPU's voltage regulator.
        afr_per_100_servers: The part's contribution to server AFR,
            in failures per 100 servers per year.
        fip_eligible: Whether Fail-In-Place can absorb this part's failures
            (true for DIMMs and SSDs in the paper).
    """

    name: str
    category: Category
    tdp_watts: float
    embodied_kg: float
    reused: bool = False
    loss_factor: float = 0.0
    afr_per_100_servers: float = 0.0
    fip_eligible: bool = False

    def __post_init__(self) -> None:
        if self.tdp_watts < 0:
            raise ConfigError(f"{self.name}: TDP must be >= 0")
        if self.embodied_kg < 0:
            raise ConfigError(f"{self.name}: embodied carbon must be >= 0")
        if self.loss_factor < 0:
            raise ConfigError(f"{self.name}: loss factor must be >= 0")
        if self.afr_per_100_servers < 0:
            raise ConfigError(f"{self.name}: AFR must be >= 0")

    @property
    def effective_embodied_kg(self) -> float:
        """Embodied carbon counted by the model: zero for reused parts."""
        return 0.0 if self.reused else self.embodied_kg

    def powered_watts(self, derate: float) -> float:
        """Average power of this part under a TDP derating factor.

        Implements one term of the paper's Eq. 1:
        ``TDP_i * d_i * (1 + l_i)``.
        """
        if not 0 <= derate <= 1:
            raise ConfigError(f"derate factor must be in [0, 1], got {derate}")
        return self.tdp_watts * derate * (1.0 + self.loss_factor)

    def as_reused(self) -> "ComponentSpec":
        """A second-life copy of this part: zero embodied, same power/AFR.

        The paper keeps AFRs unchanged for reused DIMMs/SSDs because field
        data shows reused parts fail at the same or lower rates (Fig. 2).
        """
        return dataclasses.replace(self, reused=True)


@dataclass(frozen=True)
class CpuSpec(ComponentSpec):
    """A CPU part, extending :class:`ComponentSpec` with performance data.

    Attributes:
        cores: Physical cores per socket.
        max_freq_ghz: Maximum core frequency.
        llc_mib: Last-level cache per socket, in MiB.
        perf_per_core: Relative single-thread performance (Gen3 Genoa = 1.0),
            calibrated from the paper's Sysbench numbers (Bergamo is 10%
            slower than Genoa and 6% slower than Milan per core).
        mem_bw_gbps: Socket memory bandwidth (GB/s) from native channels.
    """

    cores: int = 0
    max_freq_ghz: float = 0.0
    llc_mib: int = 0
    perf_per_core: float = 1.0
    mem_bw_gbps: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cores <= 0:
            raise ConfigError(f"{self.name}: CPU must have > 0 cores")
        if self.perf_per_core <= 0:
            raise ConfigError(f"{self.name}: per-core perf must be > 0")

    @property
    def tdp_per_core(self) -> float:
        """Watts of TDP per physical core."""
        return self.tdp_watts / self.cores


@dataclass(frozen=True)
class DramSpec(ComponentSpec):
    """A DRAM DIMM, extending :class:`ComponentSpec` with capacity.

    Attributes:
        capacity_gb: DIMM capacity in GB.
        technology: ``"ddr4"`` or ``"ddr5"``.
        via_cxl: Whether the DIMM is attached behind a CXL controller
            (higher access latency; memory exposed as a compute-less
            NUMA node per the paper's Pond-style mitigation).
    """

    capacity_gb: int = 0
    technology: str = "ddr5"
    via_cxl: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacity_gb <= 0:
            raise ConfigError(f"{self.name}: DIMM capacity must be > 0")
        if self.technology not in ("ddr4", "ddr5"):
            raise ConfigError(
                f"{self.name}: unknown DRAM technology {self.technology!r}"
            )

    @property
    def watts_per_gb(self) -> float:
        """Operational power density of the DIMM."""
        return self.tdp_watts / self.capacity_gb


@dataclass(frozen=True)
class SsdSpec(ComponentSpec):
    """An SSD, extending :class:`ComponentSpec` with capacity and I/O limits.

    Attributes:
        capacity_tb: Drive capacity in TB.
        write_bw_gbps: Sequential/random write bandwidth in GB/s
            (paper: old drives 1.0, new drives 2.3).
        write_kiops: Random write thousands-of-IOPS
            (paper reports 250 vs 600 "IOPS" for old vs new drives).
        interface: ``"m.2"`` (PCIe3-era, reused via passive adapter) or
            ``"e1.s"`` (PCIe5-era).
    """

    capacity_tb: float = 0.0
    write_bw_gbps: float = 0.0
    write_kiops: float = 0.0
    interface: str = "e1.s"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacity_tb <= 0:
            raise ConfigError(f"{self.name}: SSD capacity must be > 0")
        if self.interface not in ("m.2", "e1.s"):
            raise ConfigError(
                f"{self.name}: unknown SSD interface {self.interface!r}"
            )

    @property
    def watts_per_tb(self) -> float:
        """Operational power density of the drive."""
        return self.tdp_watts / self.capacity_tb


@dataclass(frozen=True)
class CxlControllerSpec(ComponentSpec):
    """A CXL memory (Type 3, CXL.mem) controller card.

    Attributes:
        dimm_slots: Number of DDR4 DIMMs the card can hold (paper: 4).
        pcie_lanes: PCIe5 lanes consumed by the card.
        added_bw_gbps: Memory bandwidth added behind the card (the paper
            cites ~100 GB/s for 32 CXL/PCIe5 lanes with 256-byte
            interleaving, i.e. ~50 GB/s for a 16-lane card).
        load_latency_ns: Loaded access latency through the card (paper:
            ~280 ns at medium load vs ~140 ns for local DDR5).
    """

    dimm_slots: int = 4
    pcie_lanes: int = 16
    added_bw_gbps: float = 50.0
    load_latency_ns: float = 280.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.dimm_slots <= 0:
            raise ConfigError(f"{self.name}: controller needs >= 1 DIMM slot")


@dataclass(frozen=True)
class SimpleSpec(ComponentSpec):
    """A catch-all part (NIC, fans, boards, PSU, chassis)."""


def reused(spec: ComponentSpec) -> ComponentSpec:
    """Functional alias for :meth:`ComponentSpec.as_reused`."""
    return spec.as_reused()


def scaled_dram(
    base: DramSpec, capacity_gb: int, name: Optional[str] = None
) -> DramSpec:
    """A DIMM like ``base`` but at a different capacity.

    TDP and embodied carbon scale linearly with capacity, matching the
    paper's per-GB accounting (Table V).
    """
    if capacity_gb <= 0:
        raise ConfigError("capacity_gb must be > 0")
    factor = capacity_gb / base.capacity_gb
    return dataclasses.replace(
        base,
        name=name or f"{base.name}-{capacity_gb}GB",
        capacity_gb=capacity_gb,
        tdp_watts=base.tdp_watts * factor,
        embodied_kg=base.embodied_kg * factor,
    )


def scaled_ssd(
    base: SsdSpec, capacity_tb: float, name: Optional[str] = None
) -> SsdSpec:
    """An SSD like ``base`` but at a different capacity (per-TB scaling)."""
    if capacity_tb <= 0:
        raise ConfigError("capacity_tb must be > 0")
    factor = capacity_tb / base.capacity_tb
    return dataclasses.replace(
        base,
        name=name or f"{base.name}-{capacity_tb:g}TB",
        capacity_tb=capacity_tb,
        tdp_watts=base.tdp_watts * factor,
        embodied_kg=base.embodied_kg * factor,
    )
