"""Bottom-up embodied-carbon estimation (paper Section II methodology).

"To calculate embodied emissions, we estimate raw materials from vendor
manifests, measure devices' silicon area, and use averaged emissions for
manufacturing processes reported in industry datasets such as IMEC and
Makersite.  Our embodied emission estimation counts emissions once per
component across the supply chain."

This module implements that derivation: per-process-node carbon per cm2
of silicon (IMEC netzero-style), memory/NAND bit densities, and
kgCO2e-per-kg factors for boards and mechanicals.  The catalog's Table V
values (CPU 28.3 kg, DRAM 1.65 kg/GB, SSD 17.3 kg/TB) fall out of these
inputs within tolerance — the test suite checks the consistency — so a
user can price parts the catalog does not list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.errors import ConfigError

#: Fab emissions per cm2 of processed wafer by logic node (kgCO2e/cm2),
#: IMEC netzero-style figures at typical 2023 fab energy mixes.  Newer
#: nodes take more passes (EUV layers) and more energy per cm2.
LOGIC_NODE_KG_PER_CM2: Dict[str, float] = {
    "N28": 0.9,
    "N14": 1.1,
    "N7": 1.6,
    "N6": 1.7,
    "N5": 2.2,
    "N3": 2.8,
}

#: DRAM: manufacturing emissions per cm2 and achievable density per cm2
#: (1z/1alpha-class DDR4/DDR5 dies).
DRAM_KG_PER_CM2 = 2.1
DRAM_GB_PER_CM2 = 1.45

#: 3D NAND: emissions per cm2 and density per cm2 (~176-layer TLC).
NAND_KG_PER_CM2 = 1.5
NAND_TB_PER_CM2 = 0.10

#: Mechanicals and boards, kgCO2e per kg of product (Makersite-style
#: averages for PCBs and sheet-metal assemblies).
PCB_KG_PER_KG = 30.0
SHEET_METAL_KG_PER_KG = 3.0

#: Packaging/test/assembly uplift on die-level emissions.
PACKAGE_OVERHEAD = 0.15

#: Wafer yield; losses scale emissions per good die.
DEFAULT_YIELD = 0.875


def die_embodied_kg(
    area_cm2: float,
    node: str,
    fab_yield: float = DEFAULT_YIELD,
    package_overhead: float = PACKAGE_OVERHEAD,
) -> float:
    """Embodied kgCO2e of one packaged logic die.

    ``area / yield`` cm2 of wafer are consumed per good die; packaging,
    test, and assembly add a fractional uplift.

    >>> round(die_embodied_kg(1.0, "N5", fab_yield=1.0,
    ...                        package_overhead=0.0), 2)
    2.2
    """
    if area_cm2 <= 0:
        raise ConfigError("die area must be > 0")
    if not 0 < fab_yield <= 1:
        raise ConfigError("yield must be in (0, 1]")
    try:
        per_cm2 = LOGIC_NODE_KG_PER_CM2[node]
    except KeyError:
        raise ConfigError(
            f"unknown process node {node!r}; "
            f"known: {sorted(LOGIC_NODE_KG_PER_CM2)}"
        ) from None
    return area_cm2 / fab_yield * per_cm2 * (1.0 + package_overhead)


def cpu_embodied_kg(
    compute_die_cm2: float,
    compute_node: str,
    io_die_cm2: float = 0.0,
    io_node: str = "N6",
    fab_yield: float = DEFAULT_YIELD,
) -> float:
    """Embodied kgCO2e of a chiplet CPU (compute dies + IO die).

    AMD's Zen 4 parts pair N5 compute chiplets with an N6 IO die; the
    catalog's 28.3 kg for Bergamo corresponds to ~7 cm2 of N5 CCDs
    plus a ~4 cm2 IO die.
    """
    total = die_embodied_kg(compute_die_cm2, compute_node, fab_yield)
    if io_die_cm2 > 0:
        total += die_embodied_kg(io_die_cm2, io_node, fab_yield)
    return total


def dram_embodied_kg_per_gb(
    kg_per_cm2: float = DRAM_KG_PER_CM2,
    gb_per_cm2: float = DRAM_GB_PER_CM2,
    package_overhead: float = PACKAGE_OVERHEAD,
) -> float:
    """Embodied kgCO2e per GB of DRAM (Table V: 1.65).

    >>> 1.5 < dram_embodied_kg_per_gb() < 2.0
    True
    """
    if gb_per_cm2 <= 0:
        raise ConfigError("DRAM density must be > 0")
    return kg_per_cm2 / gb_per_cm2 * (1.0 + package_overhead)


def nand_embodied_kg_per_tb(
    kg_per_cm2: float = NAND_KG_PER_CM2,
    tb_per_cm2: float = NAND_TB_PER_CM2,
    controller_overhead_kg: float = 0.3,
    package_overhead: float = PACKAGE_OVERHEAD,
) -> float:
    """Embodied kgCO2e per TB of SSD (Table V: 17.3).

    >>> 15.0 < nand_embodied_kg_per_tb() < 20.0
    True
    """
    if tb_per_cm2 <= 0:
        raise ConfigError("NAND density must be > 0")
    return (
        kg_per_cm2 / tb_per_cm2 * (1.0 + package_overhead)
        + controller_overhead_kg
    )


def board_embodied_kg(pcb_kg: float, metal_kg: float = 0.0) -> float:
    """Embodied kgCO2e of boards and mechanicals by mass."""
    if pcb_kg < 0 or metal_kg < 0:
        raise ConfigError("masses must be >= 0")
    return pcb_kg * PCB_KG_PER_KG + metal_kg * SHEET_METAL_KG_PER_KG


@dataclass(frozen=True)
class DerivedComponentCarbon:
    """Bottom-up derivation vs the catalog's Table V value."""

    component: str
    derived_kg: float
    catalog_kg: float

    @property
    def relative_error(self) -> float:
        if self.catalog_kg == 0:
            return 0.0
        return (self.derived_kg - self.catalog_kg) / self.catalog_kg


def derive_catalog_consistency() -> Dict[str, DerivedComponentCarbon]:
    """Derive the catalog's headline embodied values from first inputs.

    Returns derivations for the Bergamo CPU, DDR5 per GB, and new SSD per
    TB; the tests bound every relative error.
    """
    from . import catalog

    bergamo = cpu_embodied_kg(
        compute_die_cm2=7.0, compute_node="N5", io_die_cm2=4.0
    )
    dram = dram_embodied_kg_per_gb()
    nand = nand_embodied_kg_per_tb()
    return {
        "bergamo": DerivedComponentCarbon(
            "AMD Bergamo", bergamo, catalog.BERGAMO.embodied_kg
        ),
        "ddr5_per_gb": DerivedComponentCarbon(
            "DDR5 per GB", dram, catalog.DDR5_64GB.embodied_kg / 64
        ),
        "ssd_per_tb": DerivedComponentCarbon(
            "SSD per TB", nand, catalog.SSD_2TB_NEW.embodied_kg / 2
        ),
    }
