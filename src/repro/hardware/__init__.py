"""Hardware substrate: component catalog, SKU composition, rack and DC models."""

from . import catalog, embodied
from .io import load_sku, save_sku, sku_from_json, sku_to_json
from .components import (
    Category,
    ComponentSpec,
    CpuSpec,
    CxlControllerSpec,
    DramSpec,
    SimpleSpec,
    SsdSpec,
    reused,
    scaled_dram,
    scaled_ssd,
)
from .datacenter import (
    AZURE_REGION_CI,
    DataCenterConfig,
    appendix_config,
    region_config,
)
from .rack import RackConfig
from .sku import (
    ServerSKU,
    all_greenskus,
    baseline_gen1,
    baseline_gen2,
    baseline_gen3,
    baseline_resized,
    greensku_cxl,
    greensku_efficient,
    greensku_full,
    paper_skus,
)

__all__ = [
    "catalog",
    "embodied",
    "load_sku",
    "save_sku",
    "sku_from_json",
    "sku_to_json",
    "Category",
    "ComponentSpec",
    "CpuSpec",
    "CxlControllerSpec",
    "DramSpec",
    "SimpleSpec",
    "SsdSpec",
    "reused",
    "scaled_dram",
    "scaled_ssd",
    "AZURE_REGION_CI",
    "DataCenterConfig",
    "appendix_config",
    "region_config",
    "RackConfig",
    "ServerSKU",
    "all_greenskus",
    "baseline_gen1",
    "baseline_gen2",
    "baseline_gen3",
    "baseline_resized",
    "greensku_cxl",
    "greensku_efficient",
    "greensku_full",
    "paper_skus",
]
