"""Rack-level configuration.

The carbon model amortizes rack overheads (structure, power bus, rack
controller) across the servers in the rack.  How many servers fit is the
minimum of a *space* constraint (usable rack units / server form factor) and
a *power* constraint (rack power capacity net of the rack's own draw,
divided by server power) — the paper's ``N_s = min(floor(P_cap/P_s),
N_s_cap)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import CarbonModelError, ConfigError


@dataclass(frozen=True)
class RackConfig:
    """Physical rack parameters (Table VI defaults).

    Attributes:
        space_capacity_u: Rack units usable by servers (42U minus 10U of
            overhead for networking/power gear = 32U).
        power_capacity_watts: Rack power budget (15 kW).
        overhead_power_watts: Power drawn by the rack itself — "rack misc"
            in Table V (500 W).
        overhead_embodied_kg: Embodied carbon of the empty rack (500 kg).
    """

    space_capacity_u: int = 32
    power_capacity_watts: float = 15000.0
    overhead_power_watts: float = 500.0
    overhead_embodied_kg: float = 500.0

    def __post_init__(self) -> None:
        if self.space_capacity_u <= 0:
            raise ConfigError("rack space capacity must be > 0 U")
        if self.power_capacity_watts <= self.overhead_power_watts:
            raise ConfigError(
                "rack power capacity must exceed the rack's own draw"
            )

    def servers_per_rack(
        self, server_power_watts: float, form_factor_u: int
    ) -> int:
        """Servers that fit: min(space-constrained, power-constrained).

        Raises :class:`CarbonModelError` when not even one server fits,
        since such a SKU cannot be deployed at all.
        """
        if server_power_watts <= 0:
            raise ConfigError("server power must be > 0")
        by_space = self.space_capacity_u // form_factor_u
        available = self.power_capacity_watts - self.overhead_power_watts
        by_power = int(available // server_power_watts)
        n = min(by_space, by_power)
        if n < 1:
            raise CarbonModelError(
                f"no server fits the rack: space allows {by_space}, "
                f"power allows {by_power}"
            )
        return n

    def is_space_bound(
        self, server_power_watts: float, form_factor_u: int
    ) -> bool:
        """True when the space constraint binds before the power constraint."""
        by_space = self.space_capacity_u // form_factor_u
        available = self.power_capacity_watts - self.overhead_power_watts
        by_power = int(available // server_power_watts)
        return by_space <= by_power

    def rack_power_watts(
        self, server_power_watts: float, servers: int
    ) -> float:
        """Total rack power: ``N_s * P_s + rack overhead`` (Eq. 2)."""
        return servers * server_power_watts + self.overhead_power_watts
