"""SKU serialization: share custom server designs as JSON.

A `ServerSKU` round-trips through a plain dictionary/JSON document so
designs explored with the library (e.g. via
`examples/design_space_exploration.py`) can be saved, diffed, and loaded
back — including every component field the carbon, reliability, and
performance models read.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, Type, Union

from ..core.errors import ConfigError
from .components import (
    Category,
    ComponentSpec,
    CpuSpec,
    CxlControllerSpec,
    DramSpec,
    SimpleSpec,
    SsdSpec,
)
from .sku import ServerSKU

#: Type tags written into serialized specs.
_SPEC_TYPES: Dict[str, Type[ComponentSpec]] = {
    "cpu": CpuSpec,
    "dram": DramSpec,
    "ssd": SsdSpec,
    "cxl_controller": CxlControllerSpec,
    "simple": SimpleSpec,
    "component": ComponentSpec,
}


def _type_tag(spec: ComponentSpec) -> str:
    for tag, cls in _SPEC_TYPES.items():
        if type(spec) is cls:
            return tag
    raise ConfigError(f"unserializable spec type {type(spec).__name__}")


def spec_to_dict(spec: ComponentSpec) -> Dict[str, Any]:
    """Serialize one component spec to a plain dict."""
    data = dataclasses.asdict(spec)
    data["category"] = spec.category.value
    data["__type__"] = _type_tag(spec)
    return data


def spec_from_dict(data: Dict[str, Any]) -> ComponentSpec:
    """Reconstruct a component spec from :func:`spec_to_dict` output."""
    payload = dict(data)
    tag = payload.pop("__type__", None)
    if tag not in _SPEC_TYPES:
        raise ConfigError(
            f"unknown or missing spec type tag {tag!r}; "
            f"known: {sorted(_SPEC_TYPES)}"
        )
    try:
        payload["category"] = Category(payload["category"])
        return _SPEC_TYPES[tag](**payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"invalid spec payload: {exc}") from exc


def sku_to_dict(sku: ServerSKU) -> Dict[str, Any]:
    """Serialize a SKU (bill of materials + metadata) to a plain dict."""
    return {
        "name": sku.name,
        "form_factor_u": sku.form_factor_u,
        "generation": sku.generation,
        "parts": [
            {"count": count, "spec": spec_to_dict(spec)}
            for spec, count in sku.parts
        ],
    }


def sku_from_dict(data: Dict[str, Any]) -> ServerSKU:
    """Reconstruct a SKU from :func:`sku_to_dict` output."""
    try:
        parts = [
            (spec_from_dict(entry["spec"]), int(entry["count"]))
            for entry in data["parts"]
        ]
        return ServerSKU.build(
            data["name"],
            parts,
            form_factor_u=int(data.get("form_factor_u", 2)),
            generation=int(data.get("generation", 0)),
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"invalid SKU payload: {exc}") from exc


def sku_to_json(sku: ServerSKU, indent: int = 2) -> str:
    """Serialize a SKU to JSON text."""
    return json.dumps(sku_to_dict(sku), indent=indent)


def sku_from_json(text: str) -> ServerSKU:
    """Parse a SKU from JSON text."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid SKU JSON: {exc}") from exc
    return sku_from_dict(data)


def save_sku(sku: ServerSKU, path: Union[str, pathlib.Path]) -> None:
    """Write a SKU definition to a JSON file."""
    pathlib.Path(path).write_text(sku_to_json(sku) + "\n")


def load_sku(path: Union[str, pathlib.Path]) -> ServerSKU:
    """Read a SKU definition from a JSON file."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigError(f"SKU file not found: {path}")
    return sku_from_json(path.read_text())
