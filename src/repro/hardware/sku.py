"""Server SKU composition.

A :class:`ServerSKU` is an immutable bill of materials: a CPU plus counted
DIMMs, SSDs, CXL controllers, and platform parts, with a physical form
factor.  This module also defines the paper's five evaluated configurations
(Table IV / Table VIII) and the two older baseline generations used by the
VM traces:

==================  ====== ==========================  =====================
SKU                 Cores  DIMMs                       SSDs
==================  ====== ==========================  =====================
Baseline (Gen3)     80     12 x 64 GB DDR5             6 x 2 TB new
Baseline-Resized    80     10 x 64 GB DDR5             6 x 2 TB new
GreenSKU-Efficient  128    12 x 96 GB DDR5             5 x 4 TB new
GreenSKU-CXL        128    12 x 64 DDR5 + 8 x 32 CXL   5 x 4 TB new
GreenSKU-Full       128    12 x 64 DDR5 + 8 x 32 CXL   2 x 4 new + 12 x 1 reused
==================  ====== ==========================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.errors import ConfigError
from .components import (
    Category,
    ComponentSpec,
    CpuSpec,
    CxlControllerSpec,
    DramSpec,
    SsdSpec,
)
from . import catalog


@dataclass(frozen=True)
class ServerSKU:
    """An immutable server bill of materials.

    Attributes:
        name: SKU name (e.g. ``"GreenSKU-Full"``).
        parts: Sequence of ``(spec, count)`` pairs.  Exactly one CPU spec
            must appear (multi-socket servers model the package as one
            logical CPU spec with combined cores/TDP).
        form_factor_u: Rack units occupied by one server (paper: 2U).
        generation: Baseline generation tag (1, 2, 3) or ``None`` for
            GreenSKUs; the VM traces pre-assign VMs to generations.
    """

    name: str
    parts: Tuple[Tuple[ComponentSpec, int], ...]
    form_factor_u: int = 2
    generation: int = 0  # 0 means "not a numbered baseline generation".

    def __post_init__(self) -> None:
        if self.form_factor_u <= 0:
            raise ConfigError(f"{self.name}: form factor must be > 0 U")
        cpus = [s for s, n in self.parts if isinstance(s, CpuSpec) and n > 0]
        if len(cpus) != 1:
            raise ConfigError(
                f"{self.name}: a SKU must contain exactly one CPU spec, "
                f"found {len(cpus)}"
            )
        for spec, count in self.parts:
            if count < 0:
                raise ConfigError(
                    f"{self.name}: negative count for {spec.name}"
                )
        slots_needed = sum(
            n for s, n in self.parts if isinstance(s, DramSpec) and s.via_cxl
        )
        slots_available = sum(
            s.dimm_slots * n
            for s, n in self.parts
            if isinstance(s, CxlControllerSpec)
        )
        if slots_needed > slots_available:
            raise ConfigError(
                f"{self.name}: {slots_needed} CXL-attached DIMMs but only "
                f"{slots_available} controller slots"
            )

    # -- composition ------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        parts: Sequence[Tuple[ComponentSpec, int]],
        form_factor_u: int = 2,
        generation: int = 0,
    ) -> "ServerSKU":
        """Build a SKU from any iterable of (spec, count) pairs."""
        return cls(
            name=name,
            parts=tuple((spec, int(count)) for spec, count in parts),
            form_factor_u=form_factor_u,
            generation=generation,
        )

    @property
    def cpu(self) -> CpuSpec:
        """The SKU's CPU spec."""
        for spec, count in self.parts:
            if isinstance(spec, CpuSpec) and count > 0:
                return spec
        raise ConfigError(f"{self.name}: no CPU")  # unreachable post-init

    @property
    def cores(self) -> int:
        """Physical cores in the server."""
        return sum(
            spec.cores * count
            for spec, count in self.parts
            if isinstance(spec, CpuSpec)
        )

    @property
    def local_memory_gb(self) -> int:
        """Directly-attached (non-CXL) memory capacity."""
        return sum(
            spec.capacity_gb * count
            for spec, count in self.parts
            if isinstance(spec, DramSpec) and not spec.via_cxl
        )

    @property
    def cxl_memory_gb(self) -> int:
        """CXL-attached memory capacity."""
        return sum(
            spec.capacity_gb * count
            for spec, count in self.parts
            if isinstance(spec, DramSpec) and spec.via_cxl
        )

    @property
    def memory_gb(self) -> int:
        """Total memory capacity (local + CXL)."""
        return self.local_memory_gb + self.cxl_memory_gb

    @property
    def memory_per_core(self) -> float:
        """Memory:core ratio (paper: 9.6 for baseline, 8 for GreenSKU-Full)."""
        return self.memory_gb / self.cores

    @property
    def storage_tb(self) -> float:
        """Total SSD capacity in TB."""
        return sum(
            spec.capacity_tb * count
            for spec, count in self.parts
            if isinstance(spec, SsdSpec)
        )

    @property
    def dimm_count(self) -> int:
        """Number of DIMMs (local + CXL-attached)."""
        return sum(
            count for spec, count in self.parts if isinstance(spec, DramSpec)
        )

    @property
    def ssd_count(self) -> int:
        """Number of SSDs."""
        return sum(
            count for spec, count in self.parts if isinstance(spec, SsdSpec)
        )

    @property
    def cxl_fraction(self) -> float:
        """Fraction of total memory behind CXL (0.25 for GreenSKU-CXL)."""
        total = self.memory_gb
        return self.cxl_memory_gb / total if total else 0.0

    @property
    def mem_bw_gbps(self) -> float:
        """Aggregate memory bandwidth: native channels plus CXL cards."""
        cxl_bw = sum(
            spec.added_bw_gbps * count
            for spec, count in self.parts
            if isinstance(spec, CxlControllerSpec)
        )
        return self.cpu.mem_bw_gbps + cxl_bw

    @property
    def mem_bw_per_core(self) -> float:
        """Memory bandwidth per core (paper: 5.8 Genoa, 4.4 Bergamo+CXL)."""
        return self.mem_bw_gbps / self.cores

    # -- model hooks -------------------------------------------------------

    def iter_parts(self):
        """Yield (spec, count) with count > 0."""
        for spec, count in self.parts:
            if count > 0:
                yield spec, count

    def category_counts(self) -> Dict[Category, int]:
        """Part counts per attribution category."""
        counts: Dict[Category, int] = {}
        for spec, count in self.iter_parts():
            counts[spec.category] = counts.get(spec.category, 0) + count
        return counts

    def with_name(self, name: str) -> "ServerSKU":
        """A copy of this SKU under a different name."""
        return ServerSKU(
            name=name,
            parts=self.parts,
            form_factor_u=self.form_factor_u,
            generation=self.generation,
        )


def _platform_parts() -> List[Tuple[ComponentSpec, int]]:
    """Parts common to every SKU: one NIC plus aggregated platform misc."""
    return [(catalog.NIC_100G, 1), (catalog.PLATFORM_MISC, 1)]


def baseline_gen3() -> ServerSKU:
    """The paper's Gen3 baseline: Genoa, 12 x 64 GB DDR5, 6 x 2 TB SSD."""
    return ServerSKU.build(
        "Baseline",
        [(catalog.GENOA, 1), (catalog.DDR5_64GB, 12), (catalog.SSD_2TB_NEW, 6)]
        + _platform_parts(),
        generation=3,
    )


def baseline_resized() -> ServerSKU:
    """Baseline with memory:core reduced from 9.6 to 8 (10 x 64 GB)."""
    return ServerSKU.build(
        "Baseline-Resized",
        [(catalog.GENOA, 1), (catalog.DDR5_64GB, 10), (catalog.SSD_2TB_NEW, 6)]
        + _platform_parts(),
        generation=3,
    )


def greensku_efficient() -> ServerSKU:
    """GreenSKU-Efficient: Bergamo, 12 x 96 GB DDR5, 5 x 4 TB SSD."""
    return ServerSKU.build(
        "GreenSKU-Efficient",
        [
            (catalog.BERGAMO, 1),
            (catalog.DDR5_96GB, 12),
            (catalog.SSD_4TB_NEW, 5),
        ]
        + _platform_parts(),
    )


def greensku_cxl(appendix_data: bool = False) -> ServerSKU:
    """GreenSKU-CXL: Bergamo, 12 x 64 DDR5 + 8 x 32 reused DDR4 via CXL.

    Args:
        appendix_data: When true, build the exact configuration the
            Section V worked example prices: only the CPU, DRAM, SSD and
            CXL parts (no NIC/platform), Table V's 0.37 W/GB for the
            reused DDR4, and a single CXL controller entry.  The deployed
            configuration (default) uses two physical CXL cards (4 DIMMs
            each), the platform parts, and the calibrated DDR4 power
            density.
    """
    if appendix_data:
        parts = [
            (catalog.BERGAMO, 1),
            (catalog.DDR5_64GB, 12),
            (catalog.DDR4_32GB_REUSED_APPENDIX, 8),
            (catalog.SSD_4TB_NEW, 5),
            (catalog.CXL_CONTROLLER_APPENDIX, 1),
        ]
        return ServerSKU.build("GreenSKU-CXL-appendix", parts)
    return ServerSKU.build(
        "GreenSKU-CXL",
        [
            (catalog.BERGAMO, 1),
            (catalog.DDR5_64GB, 12),
            (catalog.DDR4_32GB_REUSED, 8),
            (catalog.SSD_4TB_NEW, 5),
            (catalog.CXL_CONTROLLER, 2),
        ]
        + _platform_parts(),
    )


def greensku_full() -> ServerSKU:
    """GreenSKU-Full: GreenSKU-CXL plus 12 reused 1 TB m.2 SSDs.

    Replaces 60% of GreenSKU-CXL's storage: 2 x 4 TB new E1.S drives remain
    and 12 x 1 TB reused m.2 drives are added (20 DIMMs + 14 SSDs total,
    matching the Section V maintenance accounting).
    """
    return ServerSKU.build(
        "GreenSKU-Full",
        [
            (catalog.BERGAMO, 1),
            (catalog.DDR5_64GB, 12),
            (catalog.DDR4_32GB_REUSED, 8),
            (catalog.SSD_4TB_NEW, 2),
            (catalog.SSD_1TB_REUSED, 12),
            (catalog.CXL_CONTROLLER, 2),
        ]
        + _platform_parts(),
    )


def baseline_gen2() -> ServerSKU:
    """Gen2 baseline: Milan, 8 x 64 GB DDR4-era memory, 4 x 2 TB SSD.

    The paper evaluates against Gen1/Gen2 only for performance; this
    composition supplies plausible capacities for the VM packing traces
    (memory:core = 8).
    """
    return ServerSKU.build(
        "Baseline-Gen2",
        [(catalog.MILAN, 1), (catalog.DDR5_64GB, 8), (catalog.SSD_2TB_NEW, 4)]
        + _platform_parts(),
        generation=2,
    )


def baseline_gen1() -> ServerSKU:
    """Gen1 baseline: Rome, 6 x 64 GB memory, 4 x 2 TB SSD (memory:core 6)."""
    return ServerSKU.build(
        "Baseline-Gen1",
        [(catalog.ROME, 1), (catalog.DDR5_64GB, 6), (catalog.SSD_2TB_NEW, 4)]
        + _platform_parts(),
        generation=1,
    )


def paper_skus() -> Dict[str, ServerSKU]:
    """The five Table VIII configurations, keyed by name."""
    skus = [
        baseline_gen3(),
        baseline_resized(),
        greensku_efficient(),
        greensku_cxl(),
        greensku_full(),
    ]
    return {sku.name: sku for sku in skus}


def all_greenskus() -> List[ServerSKU]:
    """The three GreenSKU prototypes, in the paper's incremental order."""
    return [greensku_efficient(), greensku_cxl(), greensku_full()]
