"""Named catalog of server parts used by the paper's SKUs.

Data provenance, in decreasing order of authority:

1. **Paper Table V / Table VI (artifact Appendix A)** — open-source TDP and
   embodied-carbon values the paper itself uses for its reproducible results
   (Table VIII, Fig. 12).  These are used verbatim and anchor the Section V
   worked example (``P_s ~= 403 W``, ``E_emb,s = 1644 kgCO2e``).
2. **Paper Table I** — CPU characteristics (cores, frequency, LLC, TDP
   ranges) for Bergamo and the three baseline generations.
3. **Calibrated values** — parameters the paper's open data does not
   include (baseline CPU TDP/embodied carbon, reused-part power densities,
   platform parts).  Each is annotated with the constraint it satisfies;
   collectively they are calibrated so the model reproduces Table VIII's
   per-core savings and the Section V worked example simultaneously.
   EXPERIMENTS.md records paper-vs-measured for every reproduced cell.
"""

from __future__ import annotations

from .components import (
    Category,
    CpuSpec,
    CxlControllerSpec,
    DramSpec,
    SimpleSpec,
    SsdSpec,
)

# ---------------------------------------------------------------------------
# CPUs (Table I for characteristics; Table V for Bergamo carbon data).
#
# Per-core performance is normalized to Gen3 Genoa = 1.0.  The paper reports
# Bergamo incurring a 10% and 6% per-core Sysbench slowdown vs. Genoa and
# Milan respectively, which pins Bergamo = 0.90 and Milan ~= 0.957.  Gen1
# Rome is pinned by Table II's DevOps slowdowns (1.27-1.34x vs Gen3).
# ---------------------------------------------------------------------------

#: AMD Bergamo: the efficient 128-core CPU used by every GreenSKU.
#: TDP 400 W and 28.3 kgCO2e embodied are the paper's open-source values
#: (Table V, citing Phoronix measurements and ACT); Table I lists the
#: 350 W nominal TDP, which `table1_rows` reports.
BERGAMO = CpuSpec(
    name="AMD-Bergamo-128c",
    category=Category.CPU,
    tdp_watts=400.0,
    embodied_kg=28.3,
    loss_factor=0.05,  # CPU voltage-regulator loss, Table VI.
    cores=128,
    max_freq_ghz=3.0,
    llc_mib=256,
    perf_per_core=0.90,
    mem_bw_gbps=460.0,
)

#: AMD Genoa: the Gen3 baseline CPU.  TDP/embodied are calibrated (not in
#: the paper's open data): 308 W sits inside Table I's 300-350 W range and,
#: with 23 kgCO2e embodied (Genoa's compute dies are smaller than Bergamo's
#: sixteen CCDs), reproduces Table VIII's savings columns.
GENOA = CpuSpec(
    name="AMD-Genoa-80c",
    category=Category.CPU,
    tdp_watts=308.0,
    embodied_kg=23.0,
    loss_factor=0.05,
    cores=80,
    max_freq_ghz=3.7,
    llc_mib=384,
    perf_per_core=1.00,
    mem_bw_gbps=460.0,
)

#: AMD Milan: the Gen2 baseline CPU (Table I: 64 cores, 3.7 GHz, 280 W).
MILAN = CpuSpec(
    name="AMD-Milan-64c",
    category=Category.CPU,
    tdp_watts=280.0,
    embodied_kg=19.0,  # calibrated: older, smaller-area part than Genoa.
    loss_factor=0.05,
    cores=64,
    max_freq_ghz=3.7,
    llc_mib=256,
    perf_per_core=0.957,
    mem_bw_gbps=380.0,
)

#: AMD Rome: the Gen1 baseline CPU (Table I: 64 cores, 3.0 GHz, 240 W).
ROME = CpuSpec(
    name="AMD-Rome-64c",
    category=Category.CPU,
    tdp_watts=240.0,
    embodied_kg=17.0,  # calibrated: oldest, smallest-area baseline part.
    loss_factor=0.05,
    cores=64,
    max_freq_ghz=3.0,
    llc_mib=256,
    perf_per_core=0.78,
    mem_bw_gbps=300.0,
)

# ---------------------------------------------------------------------------
# DRAM (Table V: DDR5 at 0.37 W/GB and 1.65 kgCO2e/GB; reused DDR4 at zero
# embodied carbon).  Per-DIMM AFR of 0.1 failures per 100 servers per year
# comes from Section V footnote 3 (12 DIMMs + 6 SSDs = half of a baseline
# server's 4.8 AFR).
# ---------------------------------------------------------------------------

_DIMM_AFR = 0.1
_SSD_AFR = 0.2


def _ddr5(capacity_gb: int) -> DramSpec:
    """A new DDR5 DIMM at Table V's per-GB power and embodied carbon."""
    return DramSpec(
        name=f"DDR5-{capacity_gb}GB",
        category=Category.DRAM,
        tdp_watts=0.37 * capacity_gb,
        embodied_kg=1.65 * capacity_gb,
        afr_per_100_servers=_DIMM_AFR,
        fip_eligible=True,
        capacity_gb=capacity_gb,
        technology="ddr5",
    )


#: 64 GB DDR5 DIMM (baseline SKUs and GreenSKU-CXL/Full local memory).
DDR5_64GB = _ddr5(64)

#: 96 GB DDR5 DIMM (GreenSKU-Efficient).
DDR5_96GB = _ddr5(96)

#: Reused 32 GB DDR4 DIMM attached via CXL.  Embodied carbon is zero
#: (second life).  Power density is calibrated at 0.55 W/GB — above DDR5's
#: 0.37 W/GB — reflecting the paper's observation that reused low-density
#: DIMMs are less energy efficient; this reproduces Table VIII's ordering
#: in which GreenSKU-CXL saves slightly *less* operational carbon than
#: GreenSKU-Efficient (15% vs 16%) despite its smaller memory capacity.
DDR4_32GB_REUSED = DramSpec(
    name="DDR4-32GB-reused",
    category=Category.DRAM,
    tdp_watts=0.55 * 32,
    embodied_kg=0.0,
    reused=True,
    afr_per_100_servers=_DIMM_AFR,
    fip_eligible=True,
    capacity_gb=32,
    technology="ddr4",
    via_cxl=True,
)

#: Appendix-A variant of the reused DDR4 DIMM: Table V lists 0.37 W/GB for
#: both DRAM generations, and the Section V worked example (P_s = 403 W)
#: uses that value.  The worked-example tests use this spec.
DDR4_32GB_REUSED_APPENDIX = DramSpec(
    name="DDR4-32GB-reused-appendix",
    category=Category.DRAM,
    tdp_watts=0.37 * 32,
    embodied_kg=0.0,
    reused=True,
    afr_per_100_servers=_DIMM_AFR,
    fip_eligible=True,
    capacity_gb=32,
    technology="ddr4",
    via_cxl=True,
)

# ---------------------------------------------------------------------------
# SSDs (Table V: 5.6 W/TB and 17.3 kgCO2e/TB for new drives; Section III:
# old drives offer 1 GB/s + 250 kIOPS vs 2.3 GB/s + 600 kIOPS for new).
# ---------------------------------------------------------------------------


def _new_ssd(capacity_tb: float) -> SsdSpec:
    """A new E1.S NVMe drive at Table V's per-TB power/embodied values."""
    return SsdSpec(
        name=f"E1.S-{capacity_tb:g}TB",
        category=Category.SSD,
        tdp_watts=5.6 * capacity_tb,
        embodied_kg=17.3 * capacity_tb,
        afr_per_100_servers=_SSD_AFR,
        fip_eligible=True,
        capacity_tb=capacity_tb,
        write_bw_gbps=2.3,
        write_kiops=600.0,
        interface="e1.s",
    )


#: New 2 TB E1.S drive (baseline SKUs).
SSD_2TB_NEW = _new_ssd(2.0)

#: New 4 TB E1.S drive (GreenSKU-Efficient/CXL, and 2 remain in Full).
SSD_4TB_NEW = _new_ssd(4.0)

#: Reused 1 TB m.2 drive (2015-era, attached via passive E1.S adapter).
#: Zero embodied carbon (second life).  7.0 W/TB is calibrated: old drives
#: are less energy efficient per TB than new ones (Section III), sized so
#: GreenSKU-Full's operational savings land ~1 point below GreenSKU-CXL's
#: (Table VIII: 14% vs 15%).
SSD_1TB_REUSED = SsdSpec(
    name="m.2-1TB-reused",
    category=Category.SSD,
    tdp_watts=7.0,
    embodied_kg=0.0,
    reused=True,
    afr_per_100_servers=_SSD_AFR,
    fip_eligible=True,
    capacity_tb=1.0,
    write_bw_gbps=1.0,
    write_kiops=250.0,
    interface="m.2",
)

# ---------------------------------------------------------------------------
# CXL controllers (Table V: 5.8 W TDP, 2.5 kgCO2e embodied; Section III:
# each card holds 4 DDR4 DIMMs on 16 PCIe5 lanes, ~280 ns loaded latency).
# ---------------------------------------------------------------------------

#: Off-the-shelf CXL.mem controller card holding four DDR4 DIMMs.
CXL_CONTROLLER = CxlControllerSpec(
    name="CXL-MXC",
    category=Category.CXL,
    tdp_watts=5.8,
    embodied_kg=2.5,
    dimm_slots=4,
    pcie_lanes=16,
    added_bw_gbps=50.0,
    load_latency_ns=280.0,
)

#: Appendix-A accounting variant: the Section V worked example prices the
#: full 256 GB of reused DDR4 behind a *single* Table V controller entry
#: (the prototype physically uses two cards; the ~2.5 W / 2.5 kg delta is
#: inside the example's own rounding).
CXL_CONTROLLER_APPENDIX = CxlControllerSpec(
    name="CXL-MXC-appendix",
    category=Category.CXL,
    tdp_watts=5.8,
    embodied_kg=2.5,
    dimm_slots=8,
    pcie_lanes=32,
    added_bw_gbps=100.0,
    load_latency_ns=280.0,
)

# ---------------------------------------------------------------------------
# Platform parts common to every SKU.  The paper's open data does not break
# these out; values are calibrated so that (a) Fig.-1-style component
# attribution leaves a plausible "other" share and (b) the non-DIMM/SSD half
# of the baseline server AFR (2.4 per 100 servers, Section V footnote 3) is
# carried by the platform.
# ---------------------------------------------------------------------------

#: 100 GbE NIC.
NIC_100G = SimpleSpec(
    name="NIC-100G",
    category=Category.NIC,
    tdp_watts=25.0,
    embodied_kg=15.0,
)

#: Motherboard, fans, PSU, BMC, chassis — aggregated.  Carries the
#: remaining half of the baseline server AFR (2.4 per 100 servers/year).
PLATFORM_MISC = SimpleSpec(
    name="platform-misc",
    category=Category.OTHER,
    tdp_watts=60.0,
    embodied_kg=80.0,
    afr_per_100_servers=2.4,
)

#: Local DDR5 loaded access latency (ns), for the CXL slowdown model.
LOCAL_DDR5_LATENCY_NS = 140.0


def table1_rows() -> list:
    """The paper's Table I: baseline AMD CPUs vs the efficient Bergamo.

    Returns rows of (characteristic, Bergamo, Rome/Gen1, Milan/Gen2,
    Genoa/Gen3) matching the published table, including Bergamo's 350 W
    nominal TDP and Genoa's 300-350 W range.
    """
    return [
        ("Cores per socket", 128, 64, 64, 80),
        ("Max core freq. (GHz)", 3.0, 3.0, 3.7, 3.7),
        ("LLC size per socket (MiB)", 256, 256, 256, 384),
        ("TDP (W)", "350", "240", "280", "300-350"),
    ]
