"""Data-center-level parameters and Azure-like regions.

The carbon model needs a handful of facility-scale inputs: the server
lifetime over which operational emissions accrue, the grid carbon intensity,
PUE (cooling and power-distribution overhead on IT power), and the embodied
carbon of the building and non-IT equipment amortized over the compute
racks.  The paper evaluates across a spectrum of carbon intensities and
annotates three Azure regions (Fig. 11 / Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..core.errors import ConfigError


@dataclass(frozen=True)
class DataCenterConfig:
    """Facility parameters for the carbon model.

    Attributes:
        lifetime_years: Server deployment lifetime (Table VI: 6 years,
            i.e. 52,560 hours).
        carbon_intensity_kg_per_kwh: Grid carbon intensity of consumed
            energy (Table VI: 0.1 kgCO2e/kWh averaged across major Azure
            regions).
        pue: Power usage effectiveness; multiplies IT power to account for
            cooling and power distribution.  Calibrated at 1.18, a typical
            hyperscale value consistent with Fig. 1's small non-IT share.
        dc_embodied_per_rack_kg: Building and non-IT-equipment embodied
            carbon amortized per compute rack over the server lifetime.
            Not in the paper's open data; calibrated so the efficient
            SKU's denser racks yield Table VIII's 14% embodied savings for
            GreenSKU-Efficient (whose *server-level* embodied carbon is
            slightly higher than the baseline's).
        derate_factor: Fraction of component TDP drawn on average
            (Table VI: 0.44, the derating at 40% of max SPEC rate).
        compute_share_of_dc: Share of total data-center emissions caused
            by compute clusters; scales cluster savings to net DC savings
            (the artifact reports 14% cluster -> 7% DC, i.e. 0.5).
    """

    lifetime_years: float = 6.0
    carbon_intensity_kg_per_kwh: float = 0.1
    pue: float = 1.18
    dc_embodied_per_rack_kg: float = 8000.0
    derate_factor: float = 0.44
    compute_share_of_dc: float = 0.5

    def __post_init__(self) -> None:
        if self.lifetime_years <= 0:
            raise ConfigError("lifetime must be > 0 years")
        if self.carbon_intensity_kg_per_kwh < 0:
            raise ConfigError("carbon intensity must be >= 0")
        if self.pue < 1.0:
            raise ConfigError("PUE must be >= 1.0")
        if not 0 < self.derate_factor <= 1:
            raise ConfigError("derate factor must be in (0, 1]")
        if not 0 < self.compute_share_of_dc <= 1:
            raise ConfigError("compute share must be in (0, 1]")

    def with_carbon_intensity(self, ci: float) -> "DataCenterConfig":
        """A copy of this config at a different grid carbon intensity."""
        return replace(self, carbon_intensity_kg_per_kwh=ci)

    def with_lifetime(self, years: float) -> "DataCenterConfig":
        """A copy of this config with a different server lifetime."""
        return replace(self, lifetime_years=years)

    @property
    def lifetime_hours(self) -> float:
        """Lifetime in hours (6 years = 52,560 h)."""
        return self.lifetime_years * 8760.0


def appendix_config() -> DataCenterConfig:
    """The exact parameterization of the Section V worked example.

    The worked example computes *raw* rack emissions with no PUE uplift and
    no data-center embodied overhead; this config reproduces its numbers
    (P_s = 403 W, E_r = 63,351 kgCO2e, ~31 kgCO2e/core).
    """
    return DataCenterConfig(
        lifetime_years=6.0,
        carbon_intensity_kg_per_kwh=0.1,
        pue=1.0,
        dc_embodied_per_rack_kg=0.0,
        derate_factor=0.44,
    )


#: Estimated grid carbon intensities (kgCO2e/kWh) for the three Azure
#: regions annotated on Fig. 11 / Fig. 12.  The paper does not publish the
#: exact values; these are ordered as the figure shows them — us-south
#: lowest (embodied-dominated, GreenSKU-Full wins), europe-north highest
#: (operational-dominated, GreenSKU-Efficient competitive).
AZURE_REGION_CI: Dict[str, float] = {
    "Azure-us-south": 0.04,
    "Azure-us-central": 0.10,
    "Azure-europe-north": 0.24,
}


def region_config(region: str) -> DataCenterConfig:
    """Default config at the named Azure region's carbon intensity."""
    try:
        ci = AZURE_REGION_CI[region]
    except KeyError:
        raise ConfigError(
            f"unknown region {region!r}; known: {sorted(AZURE_REGION_CI)}"
        ) from None
    return DataCenterConfig().with_carbon_intensity(ci)
