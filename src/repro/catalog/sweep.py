"""Incremental scenario sweep: recompute only the invalidated cone.

``run_sweep`` evaluates the full adoption × buffer × CXL-fraction ×
SKU × trace-backend grid through the GSF pipeline, publishing every
point's payload into a :class:`~repro.catalog.results.ResultsCatalog`
and recording its provenance edges.  On a repeat run it:

1. digests the current leaf inputs (:func:`current_leaf_inputs` — trace
   content, hardware tables, code salt),
2. diffs them against the provenance graph
   (:func:`repro.core.provenance.invalidated`) to report the stale cone,
3. looks every point up by its closure key — unchanged inputs hit the
   catalog (a single compressed read), changed inputs *miss* because
   their key moved, and only those misses recompute, and
4. reconciles: a recomputed payload whose closure key already had a
   published entry must encode byte-identically to it, else the sweep
   raises — silent nondeterminism must never replace published results.

Recomputation rides :func:`repro.core.runner.cached_map`, so when a
resilience policy is active (the CLI's ``--resume`` / ``--retries`` /
``--faults``) the sweep inherits checkpoint/resume, retries, and fault
injection — a killed sweep resumes bit-identically.

Points are frozen dataclasses and the compute function is module-level,
so the grid fans out over worker processes like every other experiment.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..allocation.cluster import CARBON_PLACEMENT_POLICIES
from ..allocation.ingest import (
    AZURE_DIR_ENV,
    azure_trace_suite,
    bundled_sample_dir,
    file_digest,
)
from ..allocation.traces import TraceParams, generate_trace
from ..carbon.grid import GRID_SIGNALS
from ..core import provenance, telemetry
from ..core.errors import ConfigError, SimulationError
from ..core.runner import cached_map, content_key
from ..hardware import catalog as parts_catalog
from ..hardware.components import CxlControllerSpec, DramSpec
from ..hardware.sku import ServerSKU, paper_skus
from .results import ResultsCatalog, closure_key, payload_digest

#: Sweepable trace backends (mirrors ``repro.allocation.ingest``).
SWEEP_BACKENDS = ("synthetic", "azure")

#: The artifact id of the whole-sweep summary node.
SUMMARY_ARTIFACT = "sweep/summary"


# -- the grid ------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """The axes of one scenario sweep (the grid is their product).

    Attributes:
        skus: GreenSKU names from :func:`~repro.hardware.sku.paper_skus`.
        adoption_rules: Names understood by
            :func:`repro.analysis.ablations.adoption_policy`.
        buffer_fractions: Growth-buffer headrooms to evaluate.
        cxl_dimm_counts: Reused-DDR4 DIMM counts; ``None`` keeps the
            stock SKU, an even integer rebuilds it via
            :func:`with_cxl_dimms`.
        backends: Trace backends (``synthetic`` / ``azure``).
        grid_signals: Time-varying grid-signal names from
            :data:`repro.carbon.grid.GRID_SIGNALS`; ``None`` (the
            default) skips the carbon-aware replay pair entirely,
            keeping the point's payload byte-identical to pre-axis
            sweeps.
        placement_policies: Placement-policy names from
            :data:`~repro.allocation.cluster.CARBON_PLACEMENT_POLICIES`.
            ``carbon_aware`` requires every ``grid_signals`` value to
            name a real signal.
        carbon_intensity: Grid CI override (``None`` = framework default).
        seed / vms / days: Synthetic-trace generator inputs.  They shape
            the ``trace/synthetic`` *leaf digest*, not the point
            identity — mutating them invalidates every synthetic point's
            closure, which is exactly the incremental-recompute story.
    """

    skus: Tuple[str, ...] = ("GreenSKU-Full",)
    adoption_rules: Tuple[str, ...] = ("carbon-aware",)
    buffer_fractions: Tuple[float, ...] = (0.15,)
    cxl_dimm_counts: Tuple[Optional[int], ...] = (None,)
    backends: Tuple[str, ...] = ("synthetic",)
    grid_signals: Tuple[Optional[str], ...] = (None,)
    placement_policies: Tuple[str, ...] = ("blind",)
    carbon_intensity: Optional[float] = None
    seed: int = 7
    vms: int = 60
    days: float = 2.0

    def __post_init__(self) -> None:
        known = set(paper_skus())
        for name in self.skus:
            if name not in known:
                raise ConfigError(f"unknown SKU {name!r}")
        for backend in self.backends:
            if backend not in SWEEP_BACKENDS:
                raise ConfigError(f"unknown trace backend {backend!r}")
        for signal in self.grid_signals:
            if signal is not None and signal not in GRID_SIGNALS:
                raise ConfigError(
                    f"unknown grid signal {signal!r}; "
                    f"known: {GRID_SIGNALS} (or None)"
                )
        for policy in self.placement_policies:
            if policy not in CARBON_PLACEMENT_POLICIES:
                raise ConfigError(
                    f"unknown placement policy {policy!r}; "
                    f"known: {CARBON_PLACEMENT_POLICIES}"
                )
        if "carbon_aware" in self.placement_policies and any(
            signal is None for signal in self.grid_signals
        ):
            raise ConfigError(
                "carbon_aware placement needs a grid signal on every "
                "grid_signals value (None mixes a signal-less point "
                "into the policy axis)"
            )
        if not (self.skus and self.adoption_rules and self.buffer_fractions
                and self.cxl_dimm_counts and self.backends
                and self.grid_signals and self.placement_policies):
            raise ConfigError("every sweep axis needs at least one value")


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a fully resolved scenario.

    ``seed`` / ``vms`` / ``days`` ride along so the point is
    self-contained for worker processes, but :attr:`artifact_id`
    deliberately excludes them — trace content is a shared *leaf* of the
    provenance graph, so changing it moves the leaf digest (invalidating
    the cone) rather than renaming every artifact.
    """

    sku: str
    rule: str
    buffer_fraction: float
    cxl_dimms: Optional[int]
    backend: str
    grid_signal: Optional[str]
    placement_policy: str
    carbon_intensity: Optional[float]
    seed: int
    vms: int
    days: float

    @property
    def artifact_id(self) -> str:
        """The point's stable provenance node id."""
        return (
            f"point/{self.sku}/{self.rule}/buf{self.buffer_fraction!r}"
            f"/cxl{self.cxl_dimms}/{self.backend}/ci{self.carbon_intensity!r}"
            f"/sig{self.grid_signal}/pol{self.placement_policy}"
        )


def sweep_points(spec: SweepSpec) -> List[SweepPoint]:
    """The grid, in deterministic axis-major order."""
    points = []
    for sku in spec.skus:
        for rule in spec.adoption_rules:
            for buffer_fraction in spec.buffer_fractions:
                for cxl_dimms in spec.cxl_dimm_counts:
                    for backend in spec.backends:
                        for signal in spec.grid_signals:
                            for policy in spec.placement_policies:
                                points.append(
                                    SweepPoint(
                                        sku=sku,
                                        rule=rule,
                                        buffer_fraction=buffer_fraction,
                                        cxl_dimms=cxl_dimms,
                                        backend=backend,
                                        grid_signal=signal,
                                        placement_policy=policy,
                                        carbon_intensity=(
                                            spec.carbon_intensity
                                        ),
                                        seed=spec.seed,
                                        vms=spec.vms,
                                        days=spec.days,
                                    )
                                )
    return points


# -- the CXL-fraction axis -----------------------------------------------------


def with_cxl_dimms(sku: ServerSKU, cxl_dimms: int) -> ServerSKU:
    """Rebuild ``sku`` with ``cxl_dimms`` reused DDR4 DIMMs behind CXL.

    The ablation recipe generalized: strip the stock CXL memory and
    controllers, attach ``cxl_dimms`` × 32 GB reused DDR4 behind
    ``ceil(cxl_dimms / 4)`` controllers, and retune the local DIMM count
    so total capacity stays as close as possible to the stock SKU's
    (trading one 64 GB DDR5 for each pair of reused DIMMs, on the paper
    SKUs).  ``with_cxl_dimms(greensku_cxl(), 8)`` reproduces the stock
    GreenSKU-CXL memory configuration exactly.
    """
    if cxl_dimms < 0 or cxl_dimms % 2:
        raise ConfigError("cxl_dimms must be an even count >= 0")
    target_gb = sku.memory_gb
    kept = [
        (spec, count)
        for spec, count in sku.parts
        if not (isinstance(spec, DramSpec) and spec.via_cxl)
        and not isinstance(spec, CxlControllerSpec)
    ]
    local_dram = [
        (i, spec) for i, (spec, _count) in enumerate(kept)
        if isinstance(spec, DramSpec)
    ]
    if len(local_dram) != 1:
        raise ConfigError(
            f"{sku.name}: need exactly one local DRAM spec to retune, "
            f"found {len(local_dram)}"
        )
    index, local_spec = local_dram[0]
    cxl_gb = cxl_dimms * parts_catalog.DDR4_32GB_REUSED.capacity_gb
    local_count = round((target_gb - cxl_gb) / local_spec.capacity_gb)
    if local_count < 1:
        raise ConfigError(
            f"{sku.name}: {cxl_dimms} CXL DIMMs leave no local memory"
        )
    kept[index] = (local_spec, local_count)
    if cxl_dimms:
        kept.append((parts_catalog.DDR4_32GB_REUSED, cxl_dimms))
        kept.append(
            (parts_catalog.CXL_CONTROLLER, math.ceil(cxl_dimms / 4))
        )
    return ServerSKU.build(
        f"{sku.name}-cxl{cxl_dimms}",
        kept,
        form_factor_u=sku.form_factor_u,
        generation=sku.generation,
    )


# -- leaf-input digests --------------------------------------------------------


def _hardware_digest() -> str:
    """One digest over every paper SKU's full bill of materials."""
    skus = paper_skus()
    return content_key(*(skus[name] for name in sorted(skus)))


def _synthetic_trace_digest(spec: SweepSpec) -> str:
    """The synthetic backend's leaf digest: the generator's full input."""
    params = TraceParams(
        mean_concurrent_vms=spec.vms, duration_days=spec.days
    )
    return content_key("synthetic", spec.seed, params)


def _azure_trace_digest() -> str:
    """The azure backend's leaf digest: content of the source table.

    Digests the first (sorted) vmtable CSV under the configured
    directory — the same file :func:`_compute_point` will ingest.
    """
    env = os.environ.get(AZURE_DIR_ENV)
    directory = Path(env) if env else bundled_sample_dir()
    paths = sorted(
        p for p in directory.iterdir()
        if p.name.endswith((".csv", ".csv.gz"))
    )
    if not paths:
        raise ConfigError(f"no .csv/.csv.gz traces under {directory}")
    return content_key("azure", file_digest(paths[0]))


def current_leaf_inputs(spec: SweepSpec) -> Dict[str, str]:
    """Digest every leaf input the sweep depends on, *right now*.

    This is the 'current state of the world' side of the provenance
    diff: trace content per backend, the hardware tables, and the code
    salt.  Anything here changing is what invalidates catalog entries.
    """
    leaves = {
        "code": provenance.code_salt(),
        "hardware": _hardware_digest(),
    }
    if "synthetic" in spec.backends:
        leaves["trace/synthetic"] = _synthetic_trace_digest(spec)
    if "azure" in spec.backends:
        leaves["trace/azure"] = _azure_trace_digest()
    return leaves


def point_inputs(
    point: SweepPoint, leaves: Mapping[str, str]
) -> Dict[str, str]:
    """The full input closure of one point (its catalog address).

    The point's own configuration enters as a self-named leaf
    (``point/<id>`` → a content hash of the point), so two points never
    collide and a config change re-keys exactly that point.
    """
    return {
        f"cfg/{point.artifact_id}": content_key(point),
        "code": leaves["code"],
        "hardware": leaves["hardware"],
        f"trace/{point.backend}": leaves[f"trace/{point.backend}"],
    }


# -- the compute kernel --------------------------------------------------------


def _compute_point(point: SweepPoint) -> Dict[str, object]:
    """Evaluate one scenario end to end (worker entry; pure in ``point``).

    Builds the trace, the (possibly CXL-retuned) SKU, the adoption
    policy, runs the sizing search + GSF evaluation, and returns the
    JSON payload.  Policy callables are rebuilt from the rule name here
    because closures do not pickle.

    Points carrying a ``grid_signal`` additionally replay the trace on a
    two-generation mixed cluster under the blind and carbon-aware
    placement policies (see
    :func:`repro.experiments.expt_carbon_aware.run_trace`) and attach
    the operational delta as a ``carbon_aware`` payload section;
    signal-less points keep the pre-axis payload shape byte-for-byte.
    """
    from ..analysis.ablations import adoption_policy
    from ..gsf.framework import Gsf, GsfConfig
    from ..gsf.sizing import size_mixed_cluster

    if point.backend == "synthetic":
        trace = generate_trace(
            point.seed,
            TraceParams(
                mean_concurrent_vms=point.vms, duration_days=point.days
            ),
        )
    else:
        trace = azure_trace_suite(count=1)[0]
    gsf = Gsf(GsfConfig(buffer_fraction=point.buffer_fraction))
    if point.carbon_intensity is not None:
        gsf = gsf.at_intensity(point.carbon_intensity)
    sku = paper_skus()[point.sku]
    if point.cxl_dimms is not None:
        sku = with_cxl_dimms(sku, point.cxl_dimms)
    policy = adoption_policy(point.rule, gsf, sku)
    sizing = size_mixed_cluster(trace, gsf.baseline, sku, policy)
    evaluation = gsf.evaluate(sku, trace, sizing=sizing)
    payload = evaluation.to_payload()
    payload["point"] = {
        "sku": point.sku,
        "rule": point.rule,
        "buffer_fraction": point.buffer_fraction,
        "cxl_dimms": point.cxl_dimms,
        "backend": point.backend,
        "grid_signal": point.grid_signal,
        "placement_policy": point.placement_policy,
    }
    if point.grid_signal is not None:
        from ..experiments.expt_carbon_aware import run_trace as carbon_pair

        delta = carbon_pair(trace, gsf, sku, point.grid_signal)
        section = delta.to_payload()["carbon_aware"]
        section["policy"] = point.placement_policy
        payload["carbon_aware"] = section
    return payload


# -- the driver ----------------------------------------------------------------


@dataclass
class SweepOutcome:
    """Everything one ``run_sweep`` call produced or reused.

    Attributes:
        points: The grid, in order.
        keys: Each point's closure key (its catalog address).
        payloads: Each point's payload, warm or fresh, aligned with
            ``points`` (``None`` only for points that degraded under an
            active ``--keep-going`` resilience policy).
        recomputed: Artifact ids that actually recomputed this run.
        warm: Artifact ids served straight from the catalog.
        invalidation: The provenance diff against current inputs; its
            ``cone_digest()`` is the CI golden value.
        summary: The whole-sweep summary payload (also published).
        summary_key: The summary's catalog key.
    """

    points: List[SweepPoint]
    keys: List[str]
    payloads: List[Optional[Dict[str, object]]]
    recomputed: List[str]
    warm: List[str]
    invalidation: provenance.InvalidationReport
    summary: Dict[str, object]
    summary_key: str

    def live_keys(self) -> List[str]:
        """The catalog keys this sweep considers live (for ``gc``)."""
        return sorted(set(self.keys) | {self.summary_key})


def _summary_payload(
    points: Sequence[SweepPoint],
    payloads: Sequence[Optional[Dict[str, object]]],
) -> Dict[str, object]:
    """The sweep-level rollup: one row per completed point."""
    rows = []
    for point, payload in zip(points, payloads):
        if payload is None:
            continue
        row = {
            "id": point.artifact_id,
            "sku": point.sku,
            "rule": point.rule,
            "buffer_fraction": point.buffer_fraction,
            "cxl_dimms": point.cxl_dimms,
            "backend": point.backend,
            "grid_signal": point.grid_signal,
            "placement_policy": point.placement_policy,
            "cluster_savings": payload["cluster_savings"],
        }
        if "carbon_aware" in payload:
            row["carbon_delta_kg"] = payload["carbon_aware"]["delta_kg"]
        rows.append(row)
    return {"points": rows, "count": len(rows)}


def run_sweep(
    spec: SweepSpec,
    catalog: Optional[ResultsCatalog] = None,
    log: Optional[provenance.ProvenanceLog] = None,
    jobs: Optional[int] = None,
) -> SweepOutcome:
    """Run (or incrementally re-run) one scenario sweep.

    Warm points are a single compressed catalog read each; cold points
    recompute through :func:`~repro.core.runner.cached_map` (inheriting
    any active resilience policy) and are published + provenance-recorded.
    A recomputed payload whose closure key already had a catalog entry
    must encode to byte-identical entry bytes, else ``SimulationError``
    — nondeterminism must never silently replace published results.
    """
    catalog = catalog if catalog is not None else ResultsCatalog()
    log = log if log is not None else provenance.ProvenanceLog()
    points = sweep_points(spec)
    leaves = current_leaf_inputs(spec)
    report = provenance.invalidated(log.latest(), leaves)
    telemetry.count("catalog.invalidated", len(report.invalid))
    telemetry.count("catalog.sweep_points", len(points))

    inputs_by_point = [point_inputs(point, leaves) for point in points]
    keys = [closure_key(inputs) for inputs in inputs_by_point]
    key_of = dict(zip(points, keys))

    payloads: List[Optional[Dict[str, object]]] = []
    warm: List[str] = []
    cold_idx: List[int] = []
    for i, key in enumerate(keys):
        payload = catalog.get_payload(key)
        payloads.append(payload)
        if payload is None:
            cold_idx.append(i)
        else:
            warm.append(points[i].artifact_id)

    recomputed: List[str] = []
    if cold_idx:
        with telemetry.span("catalog.recompute"):
            fresh = cached_map(
                _compute_point,
                [points[i] for i in cold_idx],
                key_fn=key_of.__getitem__,
                jobs=jobs,
            )
        for i, payload in zip(cold_idx, fresh):
            if not isinstance(payload, dict):
                continue  # TaskFailure under --keep-going: not published
            entry_path = catalog.entry_path(keys[i])
            fresh_bytes = ResultsCatalog.encode_entry(
                inputs_by_point[i], payload
            )
            if entry_path.exists():
                with open(entry_path, "rb") as fh:
                    stored = fh.read()
                if stored != fresh_bytes:
                    raise SimulationError(
                        f"sweep reconciliation failed for "
                        f"{points[i].artifact_id}: recomputed payload "
                        f"differs from the published entry at an "
                        f"unchanged input closure"
                    )
            catalog.put(keys[i], inputs_by_point[i], payload)
            payloads[i] = payload
            recomputed.append(points[i].artifact_id)

    for point, inputs, payload in zip(points, inputs_by_point, payloads):
        if payload is not None:
            log.record(
                point.artifact_id, "point", inputs, payload_digest(payload)
            )

    summary = _summary_payload(points, payloads)
    summary_inputs = {"code": leaves["code"]}
    for point, payload in zip(points, payloads):
        if payload is not None:
            summary_inputs[point.artifact_id] = payload_digest(payload)
    summary_key = closure_key(summary_inputs)
    catalog.put(summary_key, summary_inputs, summary)
    log.record(
        SUMMARY_ARTIFACT, "sweep", summary_inputs, payload_digest(summary)
    )
    return SweepOutcome(
        points=points,
        keys=keys,
        payloads=payloads,
        recomputed=recomputed,
        warm=warm,
        invalidation=report,
        summary=summary,
        summary_key=summary_key,
    )


__all__ = [
    "SUMMARY_ARTIFACT",
    "SWEEP_BACKENDS",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "current_leaf_inputs",
    "point_inputs",
    "run_sweep",
    "sweep_points",
    "with_cxl_dimms",
]
