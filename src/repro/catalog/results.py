"""Content-hash-keyed results catalog: compressed JSON, byte-deterministic.

The store behind ``repro catalog`` and ``repro sweep``.  Each entry is
one experiment output (a GSF evaluation payload, a sweep summary)
addressed by :func:`closure_key` — a content hash over the *full* named
input-digest closure that produced it (trace digest, hardware tables,
point config, code salt).  The addressing scheme makes entries
self-invalidating: when any input changes, the closure key changes, so
the stale entry simply stops being found and garbage collection
(:meth:`ResultsCatalog.gc`) reclaims it later.

Entries are gzip-compressed canonical JSON written with ``mtime=0`` so
identical payloads produce identical *bytes* — the reconciliation in
``repro.catalog.sweep`` and the bit-identity tests compare files
directly.  Writes are atomic (temp + rename); unreadable entries are
quarantined, never silently overwritten — the same corruption posture as
the trace store and the disk cache.

Telemetry (off by default): ``catalog.hits`` / ``catalog.misses`` /
``catalog.writes`` / ``catalog.unchanged`` / ``catalog.evicted`` /
``catalog.quarantined``.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..core import telemetry
from ..core.ioutil import atomic_writer
from ..core.runner import content_key, default_cache_dir

#: Entry document schema; bump on breaking layout changes.
CATALOG_SCHEMA = "repro-catalog/1"

#: Default catalog location, next to the journal under the cache dir.
CATALOG_DIRNAME = "catalog"

#: Overrides the catalog directory (the CLI's ``--catalog-dir``).
CATALOG_DIR_ENV = "REPRO_CATALOG_DIR"


def default_catalog_dir() -> Path:
    """``<cache dir>/catalog`` unless ``REPRO_CATALOG_DIR`` overrides it."""
    env = os.environ.get(CATALOG_DIR_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / CATALOG_DIRNAME


def canonical_json(payload: Any) -> str:
    """The one true JSON encoding: sorted keys, no whitespace.

    Canonicalization is what makes 'bit-identical' meaningful for JSON
    payloads — two semantically equal dicts always serialize to the same
    bytes, so digests and file comparisons are exact.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Any) -> str:
    """sha256 of the canonical JSON encoding of ``payload``.

    This is the output digest recorded in the provenance graph for
    catalog-published artifacts, so a provenance record and a catalog
    entry agree about what 'the same output' means.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def closure_key(inputs: Mapping[str, str]) -> str:
    """The catalog address of an output: a hash over its input closure.

    ``inputs`` maps leaf-input names to content digests (the same pairs
    the provenance record stores).  Sorted before hashing so insertion
    order never matters.
    """
    return content_key(
        CATALOG_SCHEMA, tuple(sorted((str(k), str(v)) for k, v in inputs.items()))
    )


class ResultsCatalog:
    """On-disk catalog of compressed, closure-keyed experiment outputs.

    One ``<key>.json.gz`` file per entry, each a canonical-JSON document
    ``{"schema", "inputs", "payload"}`` — the inputs travel with the
    payload so :meth:`gc` and audits can reason about liveness without
    the provenance log.  Reads count hits/misses; corrupt entries are
    quarantined under ``<directory>/quarantine/`` and read as misses.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(
            directory if directory is not None else default_catalog_dir()
        )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.unchanged = 0
        self.evicted = 0
        self.quarantined = 0

    # -- paths -----------------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        """Where the compressed entry for ``key`` lives."""
        return self.directory / f"{key}.json.gz"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.directory / "quarantine"

    def _quarantine(self, path: Path) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            path.replace(self.quarantine_dir / f"{path.name}.quarantined")
        except OSError:
            return  # a concurrent reader already moved it
        self.quarantined += 1
        telemetry.count("catalog.quarantined")

    # -- entries ---------------------------------------------------------------

    @staticmethod
    def encode_entry(inputs: Mapping[str, str], payload: Any) -> bytes:
        """The deterministic on-disk bytes for one entry.

        Canonical JSON, gzip-compressed with ``mtime=0`` — the same
        (inputs, payload) always yields the same bytes, on any machine,
        at any time.
        """
        document = {
            "schema": CATALOG_SCHEMA,
            "inputs": {str(k): str(v) for k, v in inputs.items()},
            "payload": payload,
        }
        return gzip.compress(
            canonical_json(document).encode("utf-8"), mtime=0
        )

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The decoded entry document for ``key``, or ``None`` on a miss."""
        path = self.entry_path(key)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
            document = json.loads(gzip.decompress(raw).decode("utf-8"))
            if not isinstance(document, dict) or "payload" not in document:
                raise ValueError("not a catalog entry document")
        except FileNotFoundError:
            self.misses += 1
            telemetry.count("catalog.misses")
            return None
        except (OSError, ValueError, EOFError):
            self._quarantine(path)
            self.misses += 1
            telemetry.count("catalog.misses")
            return None
        self.hits += 1
        telemetry.count("catalog.hits")
        return document

    def get_payload(self, key: str) -> Optional[Any]:
        """Just the payload of the entry for ``key`` (``None`` on a miss)."""
        document = self.get(key)
        return None if document is None else document.get("payload")

    def put(self, key: str, inputs: Mapping[str, str], payload: Any) -> Path:
        """Publish one entry atomically; skip the write if bytes match.

        Returns the entry path.  An existing byte-identical entry is
        left untouched (and counted as ``unchanged``), so steady-state
        republishes never churn mtimes or rename over live files.
        """
        path = self.entry_path(key)
        data = self.encode_entry(inputs, payload)
        try:
            with open(path, "rb") as fh:
                if fh.read() == data:
                    self.unchanged += 1
                    return path
        except OSError:
            pass
        with atomic_writer(path) as tmp:
            with open(tmp, "wb") as fh:
                fh.write(data)
        self.writes += 1
        telemetry.count("catalog.writes")
        return path

    def keys(self) -> List[str]:
        """Every stored entry key, sorted."""
        try:
            names = list(self.directory.iterdir())
        except OSError:
            return []
        return sorted(
            p.name[: -len(".json.gz")]
            for p in names
            if p.name.endswith(".json.gz")
        )

    def gc(self, live_keys: Iterable[str]) -> int:
        """Delete every entry whose key is not in ``live_keys``.

        The closure-key scheme never overwrites stale entries — it
        abandons them — so gc is how disk space comes back.  Returns the
        number of entries removed.
        """
        live = set(live_keys)
        removed = 0
        for key in self.keys():
            if key in live:
                continue
            try:
                self.entry_path(key).unlink()
            except FileNotFoundError:
                continue
            removed += 1
        if removed:
            self.evicted += removed
            telemetry.count("catalog.evicted", removed)
        return removed

    # -- reporting -------------------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        """A JSON-ready summary of the catalog (the ``repro stats`` view)."""
        keys = self.keys()
        total_bytes = 0
        for key in keys:
            try:
                total_bytes += self.entry_path(key).stat().st_size
            except OSError:
                continue
        return {
            "schema": CATALOG_SCHEMA,
            "directory": str(self.directory),
            "entries": len(keys),
            "total_bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "unchanged": self.unchanged,
            "evicted": self.evicted,
            "quarantined": self.quarantined,
        }


__all__ = [
    "CATALOG_DIRNAME",
    "CATALOG_DIR_ENV",
    "CATALOG_SCHEMA",
    "ResultsCatalog",
    "canonical_json",
    "closure_key",
    "default_catalog_dir",
    "payload_digest",
]
