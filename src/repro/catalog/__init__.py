"""Published results catalog + incremental sweep recomputation.

The cloudperf model applied to the reproduction: experiment outputs are
published as compressed canonical JSON keyed by the content-digest
closure of everything that produced them, so consumers read instead of
recompute.  ``repro.catalog.results`` is the store;
``repro.catalog.sweep`` is the provenance-driven incremental sweep
driver feeding it.  See ``docs/catalog.md``.
"""

from .results import (
    CATALOG_DIRNAME,
    CATALOG_SCHEMA,
    ResultsCatalog,
    canonical_json,
    closure_key,
    default_catalog_dir,
    payload_digest,
)
from .sweep import (
    SweepOutcome,
    SweepPoint,
    SweepSpec,
    current_leaf_inputs,
    point_inputs,
    run_sweep,
    sweep_points,
    with_cxl_dimms,
)

__all__ = [
    "CATALOG_DIRNAME",
    "CATALOG_SCHEMA",
    "ResultsCatalog",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "canonical_json",
    "closure_key",
    "current_leaf_inputs",
    "default_catalog_dir",
    "payload_digest",
    "point_inputs",
    "run_sweep",
    "sweep_points",
    "with_cxl_dimms",
]
