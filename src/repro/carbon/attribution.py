"""Per-VM carbon attribution (paper Section IV-A).

The carbon model "must output emissions amortized at a hardware resource
granularity that allows attributing emissions to VMs" — the paper's chosen
currency is CO2e-per-core.  This module turns that into a chargeback:
each VM is attributed the per-core-hour emissions of the SKU hosting it,
times the cores it held, times the hours it ran.

This is what a cloud provider's customer-facing carbon report would use —
and it makes the adoption decision visible per VM: an 8-core VM that
scales to 10 GreenSKU cores is charged 10 x the (lower) GreenSKU rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..allocation.vm import VmRequest
from ..core.errors import ConfigError
from .model import SkuAssessment


def per_core_hour_kg(
    assessment: SkuAssessment, lifetime_years: float = 6.0
) -> float:
    """kgCO2e attributed to one core for one hour on this SKU.

    Lifetime per-core emissions (operational + embodied, overheads
    amortized) divided by the deployment lifetime in hours.
    """
    if lifetime_years <= 0:
        raise ConfigError("lifetime must be > 0")
    return assessment.total_per_core / (lifetime_years * 8760.0)


@dataclass(frozen=True)
class VmCarbonRecord:
    """Carbon attributed to one VM deployment."""

    vm_id: int
    app_name: str
    sku_name: str
    cores: int
    hours: float
    carbon_kg: float

    @property
    def core_hours(self) -> float:
        return self.cores * self.hours


def attribute_vm(
    vm: VmRequest,
    assessment: SkuAssessment,
    horizon_hours: float,
    scaled_cores: Optional[int] = None,
    lifetime_years: float = 6.0,
) -> VmCarbonRecord:
    """Attribute carbon to one VM hosted on the assessed SKU.

    Args:
        vm: The VM deployment.
        assessment: Carbon assessment of the hosting SKU.
        horizon_hours: Attribution window; VM hours are clipped to it
            (open-ended VMs are charged up to the horizon).
        scaled_cores: Cores actually held (after GreenSKU scaling);
            defaults to the VM's requested cores.
        lifetime_years: SKU deployment lifetime for rate amortization.
    """
    if horizon_hours <= 0:
        raise ConfigError("attribution horizon must be > 0")
    hours = min(vm.lifetime_hours, max(0.0, horizon_hours - vm.arrival_hours))
    hours = max(hours, 0.0)
    cores = scaled_cores if scaled_cores is not None else vm.cores
    rate = per_core_hour_kg(assessment, lifetime_years)
    return VmCarbonRecord(
        vm_id=vm.vm_id,
        app_name=vm.app_name,
        sku_name=assessment.sku_name,
        cores=cores,
        hours=hours,
        carbon_kg=cores * hours * rate,
    )


@dataclass(frozen=True)
class AttributionReport:
    """Aggregated VM-level carbon attribution."""

    records: List[VmCarbonRecord]

    @property
    def total_kg(self) -> float:
        return sum(r.carbon_kg for r in self.records)

    @property
    def total_core_hours(self) -> float:
        return sum(r.core_hours for r in self.records)

    def by_app(self) -> Dict[str, float]:
        """kgCO2e per application, descending."""
        totals: Dict[str, float] = {}
        for r in self.records:
            totals[r.app_name] = totals.get(r.app_name, 0.0) + r.carbon_kg
        return dict(
            sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
        )

    def by_sku(self) -> Dict[str, float]:
        """kgCO2e per hosting SKU."""
        totals: Dict[str, float] = {}
        for r in self.records:
            totals[r.sku_name] = totals.get(r.sku_name, 0.0) + r.carbon_kg
        return totals


def attribute_workload(
    vms: Iterable[VmRequest],
    assessment: SkuAssessment,
    horizon_hours: float,
    scaling: Optional[Dict[int, int]] = None,
    lifetime_years: float = 6.0,
) -> AttributionReport:
    """Attribute a whole workload hosted on one SKU.

    Args:
        vms: VM deployments.
        assessment: The hosting SKU's carbon assessment.
        horizon_hours: Attribution window (e.g. the trace duration).
        scaling: Optional vm_id -> actually-held cores (GreenSKU scaling).
    """
    scaling = scaling or {}
    records = [
        attribute_vm(
            vm,
            assessment,
            horizon_hours,
            scaled_cores=scaling.get(vm.vm_id),
            lifetime_years=lifetime_years,
        )
        for vm in vms
    ]
    return AttributionReport(records=records)
