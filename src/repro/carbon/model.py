"""GSF's carbon model component (paper Section IV-A / Section V).

Calculates a SKU's operational and embodied emissions at the server, rack,
and data-center level, and amortizes them to a CO2e-per-core value — the
common currency every other GSF component trades in.

The model implements the paper's equations:

- Eq. 1 (server power):   ``P_s = sum_i TDP_i * d_i * (1 + l_i)``
- servers per rack:       ``N_s = min(floor(P_cap/P_s), N_s_cap)``
- Eq. 2 (rack power):     ``P_r = N_s * P_s + P_rack_overhead``
- Eq. 3 (rack embodied):  ``E_emb,r = N_s * E_emb,s + CO2e_rack_overhead``
- operational emissions:  ``E_op = P * PUE * L * CI``
- per-core carbon:        ``(E_op + E_emb) / N_cores``

Reused components carry zero embodied carbon ("second life", following
Switzer et al.) but their full operational footprint.

The Section V worked example (GreenSKU-CXL with the open-source Table V
data) is the model's calibration anchor; ``tests/carbon/test_worked_example``
pins ``P_s ~= 403 W``, ``E_emb,s = 1644 kgCO2e``, ``N_s = 16``,
``E_r ~= 63,351 kgCO2e`` and ``~31 kgCO2e/core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.units import operational_carbon_kg
from ..hardware.components import Category
from ..hardware.datacenter import DataCenterConfig
from ..hardware.rack import RackConfig
from ..hardware.sku import ServerSKU


@dataclass(frozen=True)
class ServerEmissions:
    """Server-level power and embodied carbon, with category attribution.

    Attributes:
        power_watts: Average server power ``P_s`` (Eq. 1).
        embodied_kg: Server embodied carbon ``E_emb,s`` (new parts only).
        power_by_category: ``P_s`` attribution per component category.
        embodied_by_category: ``E_emb,s`` attribution per category.
    """

    power_watts: float
    embodied_kg: float
    power_by_category: Dict[Category, float] = field(default_factory=dict)
    embodied_by_category: Dict[Category, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SkuAssessment:
    """Full carbon assessment of one SKU under one facility configuration.

    All ``*_per_core`` values are lifetime emissions amortized over the
    cores in a rack (including rack- and DC-level overheads), in kgCO2e.
    """

    sku_name: str
    cores_per_server: int
    server: ServerEmissions
    servers_per_rack: int
    space_bound: bool
    rack_power_watts: float
    rack_operational_kg: float
    rack_embodied_kg: float
    dc_embodied_overhead_kg: float
    cores_per_rack: int
    operational_per_core: float
    embodied_per_core: float

    @property
    def total_per_core(self) -> float:
        """Lifetime kgCO2e per core: operational plus embodied."""
        return self.operational_per_core + self.embodied_per_core

    @property
    def rack_total_kg(self) -> float:
        """Rack-level lifetime emissions ``E_r`` (Section V example)."""
        return self.rack_operational_kg + self.rack_embodied_kg

    @property
    def operational_share(self) -> float:
        """Fraction of per-core emissions that is operational."""
        total = self.total_per_core
        return self.operational_per_core / total if total else 0.0

    @property
    def per_server_total_kg(self) -> float:
        """Lifetime emissions attributable to one server, overheads included.

        Used by the maintenance component, which weights repair rates by
        per-server emissions (``E_s`` in the paper's C_OOS calculation).
        """
        return self.total_per_core * self.cores_per_server


class CarbonModel:
    """Evaluates SKUs to CO2e-per-core under a facility configuration.

    Example::

        model = CarbonModel(DataCenterConfig(), RackConfig())
        assessment = model.assess(baseline_gen3())
        print(assessment.total_per_core)
    """

    def __init__(
        self,
        datacenter: Optional[DataCenterConfig] = None,
        rack: Optional[RackConfig] = None,
    ):
        self.datacenter = datacenter or DataCenterConfig()
        self.rack = rack or RackConfig()

    # -- server level -------------------------------------------------------

    def server_power_watts(self, sku: ServerSKU) -> float:
        """Average server power ``P_s`` per Eq. 1."""
        return self.server_emissions(sku).power_watts

    def server_embodied_kg(self, sku: ServerSKU) -> float:
        """Server embodied carbon ``E_emb,s`` (reused parts count zero)."""
        return self.server_emissions(sku).embodied_kg

    def server_emissions(self, sku: ServerSKU) -> ServerEmissions:
        """Server power and embodied carbon with category attribution."""
        derate = self.datacenter.derate_factor
        power_by_cat: Dict[Category, float] = {}
        emb_by_cat: Dict[Category, float] = {}
        for spec, count in sku.iter_parts():
            watts = spec.powered_watts(derate) * count
            emb = spec.effective_embodied_kg * count
            power_by_cat[spec.category] = (
                power_by_cat.get(spec.category, 0.0) + watts
            )
            emb_by_cat[spec.category] = (
                emb_by_cat.get(spec.category, 0.0) + emb
            )
        return ServerEmissions(
            power_watts=sum(power_by_cat.values()),
            embodied_kg=sum(emb_by_cat.values()),
            power_by_category=power_by_cat,
            embodied_by_category=emb_by_cat,
        )

    def server_operational_kg(self, sku: ServerSKU) -> float:
        """Lifetime operational kgCO2e of one server, PUE included."""
        dc = self.datacenter
        return operational_carbon_kg(
            self.server_power_watts(sku) * dc.pue,
            dc.lifetime_years,
            dc.carbon_intensity_kg_per_kwh,
        )

    # -- rack + data-center level -------------------------------------------

    def assess(self, sku: ServerSKU) -> SkuAssessment:
        """Full assessment: power, rack fit, per-core lifetime emissions."""
        dc = self.datacenter
        server = self.server_emissions(sku)
        n_s = self.rack.servers_per_rack(
            server.power_watts, sku.form_factor_u
        )
        space_bound = self.rack.is_space_bound(
            server.power_watts, sku.form_factor_u
        )
        rack_power = self.rack.rack_power_watts(server.power_watts, n_s)
        rack_operational = operational_carbon_kg(
            rack_power * dc.pue,
            dc.lifetime_years,
            dc.carbon_intensity_kg_per_kwh,
        )
        rack_embodied = (
            n_s * server.embodied_kg + self.rack.overhead_embodied_kg
        )
        cores_per_rack = n_s * sku.cores
        dc_overhead = dc.dc_embodied_per_rack_kg
        operational_per_core = rack_operational / cores_per_rack
        embodied_per_core = (rack_embodied + dc_overhead) / cores_per_rack
        return SkuAssessment(
            sku_name=sku.name,
            cores_per_server=sku.cores,
            server=server,
            servers_per_rack=n_s,
            space_bound=space_bound,
            rack_power_watts=rack_power,
            rack_operational_kg=rack_operational,
            rack_embodied_kg=rack_embodied,
            dc_embodied_overhead_kg=dc_overhead,
            cores_per_rack=cores_per_rack,
            operational_per_core=operational_per_core,
            embodied_per_core=embodied_per_core,
        )

    def co2e_per_core(self, sku: ServerSKU) -> float:
        """Shorthand for ``assess(sku).total_per_core``."""
        return self.assess(sku).total_per_core

    def at_intensity(self, ci: float) -> "CarbonModel":
        """A copy of this model at a different grid carbon intensity."""
        return CarbonModel(self.datacenter.with_carbon_intensity(ci), self.rack)

    def with_lifetime(self, years: float) -> "CarbonModel":
        """A copy of this model with a different server lifetime."""
        return CarbonModel(self.datacenter.with_lifetime(years), self.rack)
