"""Temporal carbon-aware scheduling on GreenSKU clusters (paper Section IX).

The paper's related work covers shifting workloads temporally to chase
clean energy (Wiesner et al., Radovanovic et al.) and notes "these
solutions can apply on top of GreenSKUs."  This module composes them:

- an hourly grid carbon-intensity profile (diurnal solar dip, optional
  windy nights),
- a deadline scheduler that moves *delay-tolerant* batch work (the
  DevOps share of the fleet) into the cleanest hours within its slack,
- the operational-emissions delta, stacked on top of a GreenSKU's
  per-core savings.

The point the composition makes: temporal shifting only touches the
*operational, flexible* slice of emissions, while the GreenSKU moves the
whole per-core footprint — they are complements, not substitutes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigError


def diurnal_intensity_profile(
    mean_ci: float = 0.1,
    solar_swing: float = 0.5,
    hours: int = 24,
) -> np.ndarray:
    """An hourly carbon-intensity profile with a midday solar dip.

    Args:
        mean_ci: Daily average intensity (kgCO2e/kWh).
        solar_swing: Relative swing of the solar dip (0.5 = middays run
            50% below the mean, nights 50% above, sinusoidally).
        hours: Profile length (wraps daily).
    """
    if mean_ci < 0:
        raise ConfigError("mean carbon intensity must be >= 0")
    if not 0 <= solar_swing < 1:
        raise ConfigError("solar swing must be in [0, 1)")
    t = np.arange(hours)
    # Minimum at 13:00, maximum around 01:00.
    return mean_ci * (1.0 + solar_swing * np.cos(2 * math.pi * (t - 1) / 24))


@dataclass(frozen=True)
class BatchJob:
    """One delay-tolerant job.

    Attributes:
        job_id: Identifier.
        submit_hour: Hour the job arrives.
        duration_hours: Contiguous hours of work.
        deadline_hour: Latest hour the job may *finish*.
        power_kw: Average power drawn while running.
    """

    job_id: int
    submit_hour: int
    duration_hours: int
    deadline_hour: int
    power_kw: float

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise ConfigError(f"job {self.job_id}: duration must be > 0")
        if self.power_kw <= 0:
            raise ConfigError(f"job {self.job_id}: power must be > 0")
        if self.deadline_hour < self.submit_hour + self.duration_hours:
            raise ConfigError(
                f"job {self.job_id}: deadline precedes earliest finish"
            )


@dataclass(frozen=True)
class ScheduledJob:
    """A job with its chosen start hour and emissions."""

    job: BatchJob
    start_hour: int
    emissions_kg: float


@dataclass(frozen=True)
class TemporalShiftResult:
    """Emissions with and without carbon-aware temporal shifting."""

    immediate: List[ScheduledJob]
    shifted: List[ScheduledJob]

    @property
    def immediate_kg(self) -> float:
        return sum(s.emissions_kg for s in self.immediate)

    @property
    def shifted_kg(self) -> float:
        return sum(s.emissions_kg for s in self.shifted)

    @property
    def savings_fraction(self) -> float:
        if self.immediate_kg == 0:
            return 0.0
        return 1.0 - self.shifted_kg / self.immediate_kg


def job_emissions(
    job: BatchJob, start_hour: int, profile: Sequence[float]
) -> float:
    """kgCO2e of running ``job`` starting at ``start_hour``."""
    if start_hour < job.submit_hour:
        raise ConfigError("jobs cannot start before submission")
    if start_hour + job.duration_hours > job.deadline_hour:
        raise ConfigError("start would miss the deadline")
    n = len(profile)
    return sum(
        job.power_kw * profile[(start_hour + h) % n]
        for h in range(job.duration_hours)
    )


def schedule_batch(
    jobs: Sequence[BatchJob],
    profile: Optional[Sequence[float]] = None,
) -> TemporalShiftResult:
    """Schedule each job immediately vs in its cleanest feasible window.

    Jobs are independent (capacity is assumed available across the slack
    window — the growth buffer and diurnal trough the allocation study
    shows make this realistic for the DevOps-scale batch share).
    """
    if profile is None:
        profile = diurnal_intensity_profile()
    immediate, shifted = [], []
    for job in jobs:
        immediate.append(
            ScheduledJob(
                job=job,
                start_hour=job.submit_hour,
                emissions_kg=job_emissions(job, job.submit_hour, profile),
            )
        )
        latest_start = job.deadline_hour - job.duration_hours
        best_start = min(
            range(job.submit_hour, latest_start + 1),
            key=lambda s: job_emissions(job, s, profile),
        )
        shifted.append(
            ScheduledJob(
                job=job,
                start_hour=best_start,
                emissions_kg=job_emissions(job, best_start, profile),
            )
        )
    return TemporalShiftResult(immediate=immediate, shifted=shifted)


def synthetic_batch_workload(
    jobs: int = 40,
    horizon_hours: int = 72,
    seed: int = 19,
) -> List[BatchJob]:
    """A synthetic delay-tolerant batch workload (build/CI-style jobs)."""
    from ..core.rng import RngFactory

    if jobs < 1 or horizon_hours < 12:
        raise ConfigError("need >= 1 job and a >= 12 h horizon")
    rng = RngFactory(seed).stream("batch-jobs")
    out: List[BatchJob] = []
    for i in range(jobs):
        submit = int(rng.integers(0, horizon_hours - 12))
        duration = int(rng.integers(1, 5))
        slack = int(rng.integers(4, 12))
        out.append(
            BatchJob(
                job_id=i,
                submit_hour=submit,
                duration_hours=duration,
                deadline_hour=submit + duration + slack,
                power_kw=float(rng.uniform(0.2, 1.5)),
            )
        )
    return out


def stacked_savings(
    greensku_per_core_savings: float,
    batch_operational_share: float,
    temporal_savings_on_batch: float,
    operational_share: float = 0.55,
) -> float:
    """Combined savings of GreenSKU + temporal shifting (complements).

    The GreenSKU saves on everything; temporal shifting additionally
    trims the *flexible operational* slice of what remains:

    ``1 - (1 - g) * (1 - t * f_op * f_batch)``
    """
    for name, value in (
        ("GreenSKU savings", greensku_per_core_savings),
        ("batch share", batch_operational_share),
        ("temporal savings", temporal_savings_on_batch),
        ("operational share", operational_share),
    ):
        if not 0 <= value <= 1:
            raise ConfigError(f"{name} must be in [0, 1]")
    residual_trim = (
        temporal_savings_on_batch
        * operational_share
        * batch_operational_share
    )
    return 1.0 - (1.0 - greensku_per_core_savings) * (1.0 - residual_trim)
