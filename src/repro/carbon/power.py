"""Utilization-dependent power modeling (paper Sections II/V).

The carbon model's single derating factor — "we derive the derating
factor as a fraction of TDP utilization at a given percentage of max SPEC
rate; at 40% SPEC rate, the corresponding derating factor is 0.44"
(von Kistowski et al., SPECpower) — abstracts a power-vs-load curve and a
fleet utilization distribution.  This module makes both explicit:

- a SPECpower-style server power curve (idle floor plus a concave rise
  to TDP),
- synthetic diurnal utilization telemetry (the "power traces from Azure"
  the paper estimates operational emissions from),
- the derate factor as the utilization-weighted average of the curve.

The default curve reproduces the paper's anchor (``derate(0.40) = 0.44``)
and lets users study derates for their own utilization profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.errors import ConfigError
from ..core.rng import RngFactory


@dataclass(frozen=True)
class PowerCurve:
    """A SPECpower-style normalized power-vs-load curve.

    Power as a fraction of TDP at utilization ``u``:

    ``p(u) = idle + (peak - idle) * u^exponent``

    Attributes:
        idle_fraction: Power at zero load over TDP (modern servers idle
            at ~25-30% of TDP).
        peak_fraction: Power at full SPEC load over TDP (servers rarely
            reach nameplate TDP; ~0.75 is typical).
        exponent: Curve concavity; < 1 bends the curve upward at low
            load (power rises quickly off idle, then flattens).
    """

    idle_fraction: float = 0.25
    peak_fraction: float = 0.70
    exponent: float = 0.94

    def __post_init__(self) -> None:
        if not 0 <= self.idle_fraction < self.peak_fraction <= 1:
            raise ConfigError(
                "need 0 <= idle < peak <= 1 for a power curve"
            )
        if self.exponent <= 0:
            raise ConfigError("exponent must be > 0")

    def power_fraction(self, utilization) -> np.ndarray:
        """Power over TDP at the given utilization(s) in [0, 1]."""
        u = np.asarray(utilization, dtype=float)
        if np.any(u < 0) or np.any(u > 1):
            raise ConfigError("utilization must be in [0, 1]")
        return self.idle_fraction + (
            self.peak_fraction - self.idle_fraction
        ) * np.power(u, self.exponent)

    def derate_at(self, utilization: float) -> float:
        """The derating factor at one utilization (paper: 0.44 at 0.40).

        >>> round(PowerCurve().derate_at(0.40), 2)
        0.44
        """
        return float(self.power_fraction(utilization))

    def derate_for_profile(self, utilizations: Sequence[float]) -> float:
        """Time-averaged derate over a utilization telemetry series."""
        if len(utilizations) == 0:
            raise ConfigError("need at least one utilization sample")
        return float(np.mean(self.power_fraction(utilizations)))


def synthesize_utilization_trace(
    days: float = 7.0,
    samples_per_hour: int = 4,
    mean_utilization: float = 0.40,
    diurnal_amplitude: float = 0.15,
    noise_std: float = 0.05,
    seed: int = 11,
) -> np.ndarray:
    """Synthetic fleet CPU-utilization telemetry with a diurnal cycle.

    Stands in for the Azure power/utilization traces the paper draws on;
    samples are clipped to [0, 1].
    """
    if days <= 0 or samples_per_hour < 1:
        raise ConfigError("need a positive window and sampling rate")
    if not 0 <= mean_utilization <= 1:
        raise ConfigError("mean utilization must be in [0, 1]")
    n = int(days * 24 * samples_per_hour)
    t = np.arange(n) / samples_per_hour  # hours
    rng = RngFactory(seed).stream("utilization")
    series = (
        mean_utilization
        + diurnal_amplitude * np.sin(2 * math.pi * t / 24.0)
        + rng.normal(0.0, noise_std, size=n)
    )
    return np.clip(series, 0.0, 1.0)


def fleet_derate(
    curve: Optional[PowerCurve] = None,
    utilization_trace: Optional[np.ndarray] = None,
) -> float:
    """The fleet derating factor: curve averaged over telemetry.

    With defaults this lands on the paper's 0.44 (a 40%-mean diurnal
    profile over the calibrated SPECpower curve).
    """
    curve = curve or PowerCurve()
    if utilization_trace is None:
        utilization_trace = synthesize_utilization_trace()
    return curve.derate_for_profile(utilization_trace)
