"""Time-varying grid carbon intensity: signals, exact integration, accounting.

The paper prices operational carbon against a single average grid mix
(:mod:`repro.carbon.intensity`).  This module adds the *time-varying*
axis (ROADMAP item 5): a :class:`CarbonSignal` is a piecewise-constant
hourly carbon-intensity series that wraps over its period, with

- deterministic synthetic generators (``flat`` / ``diurnal`` /
  ``seasonal``, registered in :data:`GRID_SIGNALS`),
- CSV ingestion with a per-row degradation report
  (:func:`signal_from_csv`, following the
  :mod:`repro.allocation.ingest` pattern),
- *exact* integration of gCO2-weight over arbitrary ``[t0, t1)``
  windows: :meth:`CarbonSignal.integrate_exact` evaluates an
  antiderivative in :class:`~fractions.Fraction` arithmetic, so
  integrals are exactly additive over adjacent windows and exactly
  invariant under whole-period shifts (Hypothesis-pinned in
  ``tests/carbon/test_grid.py``).

On top of the signal sit the two couplings to the allocation stack:

- :func:`carbon_aware_policy` builds the ``"carbon_aware"``
  :class:`~repro.allocation.cluster.PlacementPolicy`: servers are
  tiered by marginal operational carbon (Eq. 1 watts per core), and
  placement prefers lower tiers.  With a single attached signal the
  instantaneous intensity is a common positive factor across servers,
  so the tier *ordering* is time-invariant — time variation enters
  through the accounting, not the ranking.
- :class:`CarbonAccountant` integrates ``cores x intensity`` exactly
  over each VM's residency and converts to operational kgCO2e per SKU
  (an :class:`OperationalCarbonReport`), which is how carbon-aware and
  blind replays of the same trace are compared.
"""

from __future__ import annotations

import csv
import gzip
import hashlib
import io
import math
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.errors import ConfigError
from ..hardware.sku import ServerSKU
from .model import CarbonModel
from .temporal import diurnal_intensity_profile

#: Times accepted by the exact integrator.  Passing a ``Fraction`` keeps
#: the whole computation rational (floats are converted losslessly).
TimeLike = Union[int, float, Fraction]

#: Registered synthetic signal names accepted by :func:`grid_signal`
#: (and by the sweep's ``grid_signal`` axis / the CLI ``--signals`` flag).
GRID_SIGNALS = ("flat", "diurnal", "seasonal")

#: Schema tag stamped into :class:`GridCsvReport`.
GRID_CSV_SCHEMA = "repro-grid-csv/1"


def _as_fraction(t: TimeLike, label: str) -> Fraction:
    """Convert a time to an exact ``Fraction`` (floats losslessly)."""
    try:
        return Fraction(t)
    except (ValueError, OverflowError, TypeError) as exc:
        raise ConfigError(f"{label} must be a finite number, got {t!r}") from exc


@dataclass(frozen=True)
class CarbonSignal:
    """A piecewise-constant hourly grid carbon-intensity series.

    ``values[h]`` is the intensity (kgCO2e/kWh) over hour ``[h, h+1)``;
    the signal wraps with period ``len(values)`` hours, so a 24-value
    signal repeats daily.  All arithmetic that matters for equivalence
    testing is exact: see :meth:`integrate_exact`.

    Attributes:
        name: Label carried into reports and provenance records.
        values: Hourly intensities; at least one, all finite and >= 0.
    """

    name: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a carbon signal needs a name")
        if not self.values:
            raise ConfigError("a carbon signal needs at least one hourly value")
        for hour, value in enumerate(self.values):
            if not (isinstance(value, float) and math.isfinite(value)):
                raise ConfigError(
                    f"signal {self.name!r} hour {hour}: intensity must be "
                    f"a finite float, got {value!r}"
                )
            if value < 0:
                raise ConfigError(
                    f"signal {self.name!r} hour {hour}: intensity must be "
                    f">= 0, got {value!r}"
                )
        # Exact per-hour values and prefix sums for the antiderivative.
        exact = tuple(Fraction(v) for v in self.values)
        prefix = [Fraction(0)]
        for value in exact:
            prefix.append(prefix[-1] + value)
        object.__setattr__(self, "_exact", exact)
        object.__setattr__(self, "_prefix", tuple(prefix))

    @property
    def period_hours(self) -> int:
        """Length of one cycle of the signal, in hours."""
        return len(self.values)

    @property
    def mean_intensity(self) -> float:
        """Average intensity over one full period (kgCO2e/kWh)."""
        return float(self._prefix[-1] / len(self.values))

    def value_at(self, t: TimeLike) -> float:
        """Intensity in effect at absolute time ``t`` (hours)."""
        tf = _as_fraction(t, "time")
        n = len(self.values)
        rem = tf - (tf // n) * n
        return self.values[int(rem)]

    def _antiderivative(self, tf: Fraction) -> Fraction:
        """Exact ``F(t) = integral of the signal over [0, t)``."""
        n = len(self.values)
        full = tf // n
        rem = tf - full * n
        hour = int(rem)
        if hour == n:  # guard: rem is in [0, n) by construction
            hour, rem = 0, Fraction(0)
        return (
            full * self._prefix[-1]
            + self._prefix[hour]
            + (rem - hour) * self._exact[hour]
        )

    def integrate_exact(self, t0: TimeLike, t1: TimeLike) -> Fraction:
        """Exact integral of intensity over ``[t0, t1)`` in kgCO2e-h/kWh.

        The result is a :class:`~fractions.Fraction`; it is exactly
        additive over adjacent windows and exactly invariant under
        shifts by whole periods.
        """
        f0 = _as_fraction(t0, "window start")
        f1 = _as_fraction(t1, "window end")
        if f1 < f0:
            raise ConfigError(
                f"integration window must satisfy t1 >= t0, got "
                f"[{t0}, {t1})"
            )
        return self._antiderivative(f1) - self._antiderivative(f0)

    def integrate(self, t0: TimeLike, t1: TimeLike) -> float:
        """Float view of :meth:`integrate_exact` (one rounding, at the end)."""
        return float(self.integrate_exact(t0, t1))


def flat_signal(intensity: float = 0.1, name: str = "flat") -> CarbonSignal:
    """A constant-intensity signal (the degenerate one-hour period)."""
    return CarbonSignal(name=name, values=(float(intensity),))


def diurnal_signal(
    mean_ci: float = 0.1,
    solar_swing: float = 0.5,
    name: str = "diurnal",
) -> CarbonSignal:
    """A 24 h signal with a midday solar dip.

    Wraps :func:`repro.carbon.temporal.diurnal_intensity_profile`
    (minimum at 13:00, maximum around 01:00) into a wrapping signal.
    """
    profile = diurnal_intensity_profile(
        mean_ci=mean_ci, solar_swing=solar_swing, hours=24
    )
    return CarbonSignal(name=name, values=tuple(float(v) for v in profile))


def seasonal_signal(
    mean_ci: float = 0.1,
    solar_swing: float = 0.5,
    weekly_swing: float = 0.2,
    days: int = 7,
    name: str = "seasonal",
) -> CarbonSignal:
    """A multi-day signal: the diurnal dip modulated by a slow cycle.

    Each day ``d`` of the ``days``-day period scales the diurnal
    profile by ``1 + weekly_swing * cos(2 pi d / days)`` (windier
    mid-cycle, dirtier at the edges), modelling week-scale weather on
    top of the daily solar dip.
    """
    if not 0 <= weekly_swing < 1:
        raise ConfigError("weekly swing must be in [0, 1)")
    if days < 1:
        raise ConfigError("a seasonal signal needs at least one day")
    daily = diurnal_intensity_profile(
        mean_ci=mean_ci, solar_swing=solar_swing, hours=24
    )
    values: List[float] = []
    for day in range(days):
        season = 1.0 + weekly_swing * math.cos(2 * math.pi * day / days)
        values.extend(float(v) * season for v in daily)
    return CarbonSignal(name=name, values=tuple(values))


def grid_signal(name: str) -> CarbonSignal:
    """Build a registered synthetic signal by name (see GRID_SIGNALS)."""
    if name == "flat":
        return flat_signal()
    if name == "diurnal":
        return diurnal_signal()
    if name == "seasonal":
        return seasonal_signal()
    raise ConfigError(
        f"unknown grid signal {name!r}; known: {GRID_SIGNALS}"
    )


@dataclass(frozen=True)
class GridCsvReport:
    """Degradation report for one grid-intensity CSV ingestion.

    Mirrors the :class:`repro.allocation.ingest.IngestReport` pattern:
    every dropped row is counted by reason, nothing is silently
    repaired, and the source bytes are digest-pinned.

    Attributes:
        source: Path the CSV was read from.
        source_digest: sha256 of the raw file bytes.
        schema: Always :data:`GRID_CSV_SCHEMA`.
        rows_total: Data rows seen (header excluded).
        rows_kept: Rows that contributed an hourly value.
        rows_blank: Empty rows skipped.
        rows_invalid: Rows with missing/unparseable/negative fields.
        rows_duplicate: Repeated hours (first occurrence wins).
        out_of_order: Kept rows whose hour went backwards.
        hours: Hours in the resulting signal's period.
    """

    source: str
    source_digest: str
    schema: str
    rows_total: int
    rows_kept: int
    rows_blank: int
    rows_invalid: int
    rows_duplicate: int
    out_of_order: int
    hours: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the report."""
        return {
            "source": self.source,
            "source_digest": self.source_digest,
            "schema": self.schema,
            "rows_total": self.rows_total,
            "rows_kept": self.rows_kept,
            "rows_blank": self.rows_blank,
            "rows_invalid": self.rows_invalid,
            "rows_duplicate": self.rows_duplicate,
            "out_of_order": self.out_of_order,
            "hours": self.hours,
        }


def _parse_grid_row(cells: List[str]) -> Optional[Tuple[int, float]]:
    """Parse one ``hour,intensity`` row; None when the row is invalid."""
    if len(cells) < 2:
        return None
    try:
        hour_f = float(cells[0])
        intensity = float(cells[1])
    except ValueError:
        return None
    if not (math.isfinite(hour_f) and hour_f >= 0 and hour_f == int(hour_f)):
        return None
    if not (math.isfinite(intensity) and intensity >= 0):
        return None
    return int(hour_f), intensity


def signal_from_csv(
    path: Union[str, Path], name: Optional[str] = None
) -> Tuple[CarbonSignal, GridCsvReport]:
    """Ingest an ``hour,intensity`` CSV into a :class:`CarbonSignal`.

    Accepts plain or gzip-compressed CSVs with two columns: an integer
    hour (``0..n-1``) and a non-negative finite intensity
    (kgCO2e/kWh).  An optional header row is skipped.  Malformed rows
    degrade per-reason into the returned :class:`GridCsvReport` rather
    than aborting; duplicated hours keep their first value.  The kept
    hours must form the dense range ``0..max`` — gaps are a
    :class:`~repro.core.errors.ConfigError`, because a signal with
    missing hours has no well-defined integral.
    """
    path = Path(path)
    raw = path.read_bytes()
    digest = hashlib.sha256(raw).hexdigest()
    if path.suffix == ".gz":
        raw = gzip.decompress(raw)
    text = raw.decode("utf-8")

    rows_total = rows_kept = rows_blank = rows_invalid = 0
    rows_duplicate = out_of_order = 0
    by_hour: Dict[int, float] = {}
    last_hour = -1
    reader = csv.reader(io.StringIO(text))
    first = True
    for cells in reader:
        if not cells or all(not cell.strip() for cell in cells):
            if not first:
                rows_total += 1
                rows_blank += 1
            continue
        cells = [cell.strip() for cell in cells]
        if first:
            first = False
            if _parse_grid_row(cells) is None:
                continue  # header row, uncounted
        rows_total += 1
        parsed = _parse_grid_row(cells)
        if parsed is None:
            rows_invalid += 1
            continue
        hour, intensity = parsed
        if hour in by_hour:
            rows_duplicate += 1
            continue
        if hour < last_hour:
            out_of_order += 1
        last_hour = max(last_hour, hour)
        by_hour[hour] = intensity
        rows_kept += 1

    if not by_hour:
        raise ConfigError(f"grid CSV {path} has no usable hour rows")
    missing = sorted(set(range(max(by_hour) + 1)) - set(by_hour))
    if missing:
        raise ConfigError(
            f"grid CSV {path} is missing hours {missing[:8]}"
            f"{'...' if len(missing) > 8 else ''}; a signal must cover "
            f"the dense range 0..{max(by_hour)}"
        )
    if name is None:
        name = path.name
        for suffix in (".gz", ".csv"):
            if name.endswith(suffix):
                name = name[: -len(suffix)]
    values = tuple(by_hour[h] for h in range(len(by_hour)))
    report = GridCsvReport(
        source=str(path),
        source_digest=digest,
        schema=GRID_CSV_SCHEMA,
        rows_total=rows_total,
        rows_kept=rows_kept,
        rows_blank=rows_blank,
        rows_invalid=rows_invalid,
        rows_duplicate=rows_duplicate,
        out_of_order=out_of_order,
        hours=len(values),
    )
    return CarbonSignal(name=name, values=values), report


def marginal_watts_per_core(
    sku: ServerSKU, model: Optional[CarbonModel] = None
) -> float:
    """Marginal operational power of one core on ``sku`` (Eq. 1 watts).

    This is the carbon-aware placement rank: with one grid signal
    attached, the instantaneous intensity multiplies every server
    equally, so ordering servers by watts-per-core orders them by
    marginal operational carbon at every instant.
    """
    model = model or CarbonModel()
    if sku.cores <= 0:
        raise ConfigError(f"SKU {sku.name!r} has no cores to amortize over")
    return model.server_power_watts(sku) / sku.cores


def carbon_aware_policy(signal: CarbonSignal, model: Optional[CarbonModel] = None):
    """Build the ``"carbon_aware"`` placement policy for ``signal``.

    Returns a :class:`repro.allocation.cluster.PlacementPolicy` whose
    ``carbon_key`` ranks SKUs by :func:`marginal_watts_per_core` under
    ``model`` (default :class:`CarbonModel`).  The signal itself rides
    along for accounting and provenance; see the module docstring for
    why the ranking is time-invariant.
    """
    from ..allocation.cluster import PlacementPolicy

    if signal is None:
        raise ConfigError(
            "carbon_aware placement needs an attached CarbonSignal"
        )
    model = model or CarbonModel()

    def key(sku: ServerSKU) -> float:
        return marginal_watts_per_core(sku, model)

    return PlacementPolicy(name="carbon_aware", carbon_key=key, signal=signal)


@dataclass(frozen=True)
class OperationalCarbonReport:
    """Exact operational carbon of one replay under one grid signal.

    Attributes:
        signal_name: The :class:`CarbonSignal` integrated against.
        start_hours / end_hours: Accounting window (trace window).
        kg_by_sku: Operational kgCO2e attributed to each SKU's VMs.
        core_hours_by_sku: Allocated core-hours per SKU.
        events: Place/remove events the accountant observed.
    """

    signal_name: str
    start_hours: float
    end_hours: float
    kg_by_sku: Dict[str, float]
    core_hours_by_sku: Dict[str, float]
    events: int

    @property
    def total_kg(self) -> float:
        """Total operational kgCO2e across all SKUs."""
        return sum(self.kg_by_sku.values())

    @property
    def total_core_hours(self) -> float:
        """Total allocated core-hours across all SKUs."""
        return sum(self.core_hours_by_sku.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (keys sorted for byte determinism)."""
        return {
            "signal": self.signal_name,
            "start_hours": self.start_hours,
            "end_hours": self.end_hours,
            "total_kg": self.total_kg,
            "kg_by_sku": dict(sorted(self.kg_by_sku.items())),
            "core_hours_by_sku": dict(
                sorted(self.core_hours_by_sku.items())
            ),
            "events": self.events,
        }


class CarbonAccountant:
    """Integrates allocated cores against a grid signal, exactly.

    Attach one fresh accountant per replay (``simulate(...,
    accountant=...)``); the replay loop reports every placement and
    departure, and :meth:`finalize` closes the window.  Per SKU the
    accountant keeps the exact rational ``integral of active_cores x
    intensity dt`` (core-hours weighted by kgCO2e/kWh); multiplying by
    the SKU's watts-per-core / 1000 converts to kgCO2e with a single
    rounding at report time.  Because the integral is exact, blind and
    carbon-aware replays of the same trace are comparable to the bit.
    """

    def __init__(
        self, signal: CarbonSignal, model: Optional[CarbonModel] = None
    ) -> None:
        if not isinstance(signal, CarbonSignal):
            raise ConfigError("CarbonAccountant needs a CarbonSignal")
        self.signal = signal
        self._model = model or CarbonModel()
        self._watts_per_core: Dict[str, float] = {}
        self._skus: Dict[str, ServerSKU] = {}
        self._active_cores: Dict[str, int] = {}
        self._weighted: Dict[str, Fraction] = {}
        self._core_hours: Dict[str, Fraction] = {}
        self._t_first: Optional[float] = None
        self._t_last: Optional[Fraction] = None
        self.events = 0

    def _advance(self, t: TimeLike) -> Fraction:
        """Integrate active cores up to ``t``; returns exact ``t``."""
        tf = _as_fraction(t, "event time")
        if self._t_last is None:
            self._t_first = float(tf)
            self._t_last = tf
            return tf
        if tf < self._t_last:
            raise ConfigError(
                f"accountant events must be time-ordered: {float(tf)} "
                f"after {float(self._t_last)}"
            )
        if tf > self._t_last:
            segment = self.signal.integrate_exact(self._t_last, tf)
            dt = tf - self._t_last
            for name, cores in self._active_cores.items():
                if cores:
                    self._weighted[name] += cores * segment
                    self._core_hours[name] += cores * dt
            self._t_last = tf
        return tf

    def on_place(self, t: TimeLike, sku: ServerSKU, cores: int) -> None:
        """Record a VM placement of ``cores`` cores on ``sku`` at ``t``."""
        self._advance(t)
        self.events += 1
        name = sku.name
        if name not in self._watts_per_core:
            self._watts_per_core[name] = marginal_watts_per_core(
                sku, self._model
            )
            self._skus[name] = sku
            self._active_cores[name] = 0
            self._weighted[name] = Fraction(0)
            self._core_hours[name] = Fraction(0)
        self._active_cores[name] += cores

    def on_remove(self, t: TimeLike, sku: ServerSKU, cores: int) -> None:
        """Record the departure of a VM holding ``cores`` on ``sku``."""
        self._advance(t)
        self.events += 1
        name = sku.name
        if self._active_cores.get(name, 0) < cores:
            raise ConfigError(
                f"accountant underflow: removing {cores} cores from "
                f"{name!r} with {self._active_cores.get(name, 0)} active"
            )
        self._active_cores[name] -= cores

    def finalize(self, end: TimeLike) -> OperationalCarbonReport:
        """Close the window at ``end`` and emit the exact report."""
        if self._t_last is not None:
            self._advance(end)
            end_f = float(self._t_last)
            start_f = float(self._t_first)
        else:
            end_f = float(_as_fraction(end, "window end"))
            start_f = end_f
        kg = {
            name: float(
                Fraction(self._watts_per_core[name])
                / 1000
                * self._weighted[name]
            )
            for name in sorted(self._weighted)
        }
        core_hours = {
            name: float(self._core_hours[name])
            for name in sorted(self._core_hours)
        }
        return OperationalCarbonReport(
            signal_name=self.signal.name,
            start_hours=start_f,
            end_hours=end_f,
            kg_by_sku=kg,
            core_hours_by_sku=core_hours,
            events=self.events,
        )


__all__ = [
    "GRID_SIGNALS",
    "GRID_CSV_SCHEMA",
    "TimeLike",
    "CarbonSignal",
    "flat_signal",
    "diurnal_signal",
    "seasonal_signal",
    "grid_signal",
    "GridCsvReport",
    "signal_from_csv",
    "marginal_watts_per_core",
    "carbon_aware_policy",
    "CarbonAccountant",
    "OperationalCarbonReport",
]
