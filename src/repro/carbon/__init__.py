"""GSF carbon model: server/rack/DC emissions, savings tables, breakdowns."""

from .breakdown import (
    AuxServerProfile,
    DataCenterBreakdown,
    FleetComposition,
    breakdown,
    fleet_compute_sku,
)
from .attribution import (
    AttributionReport,
    VmCarbonRecord,
    attribute_vm,
    attribute_workload,
    per_core_hour_kg,
)
from .intensity import (
    FOSSIL_GRID_CI,
    RENEWABLE_LIFECYCLE_CI,
    EnergyMix,
    azure_average_mix,
    intensity_sweep,
    mix_for_intensity,
)
from .model import CarbonModel, ServerEmissions, SkuAssessment
from .power import PowerCurve, fleet_derate, synthesize_utilization_trace
from .temporal import (
    BatchJob,
    TemporalShiftResult,
    diurnal_intensity_profile,
    schedule_batch,
    stacked_savings,
    synthetic_batch_workload,
)
from .savings import (
    SavingsRow,
    paper_savings_table,
    render_savings_table,
    savings_table,
)

__all__ = [
    "AttributionReport",
    "VmCarbonRecord",
    "attribute_vm",
    "attribute_workload",
    "per_core_hour_kg",
    "fleet_compute_sku",
    "AuxServerProfile",
    "DataCenterBreakdown",
    "FleetComposition",
    "breakdown",
    "FOSSIL_GRID_CI",
    "RENEWABLE_LIFECYCLE_CI",
    "EnergyMix",
    "azure_average_mix",
    "intensity_sweep",
    "mix_for_intensity",
    "CarbonModel",
    "ServerEmissions",
    "SkuAssessment",
    "PowerCurve",
    "fleet_derate",
    "synthesize_utilization_trace",
    "BatchJob",
    "TemporalShiftResult",
    "diurnal_intensity_profile",
    "schedule_batch",
    "stacked_savings",
    "synthetic_batch_workload",
    "SavingsRow",
    "paper_savings_table",
    "render_savings_table",
    "savings_table",
]
