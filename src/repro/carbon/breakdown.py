"""Fig.-1-style carbon attribution for a general-purpose data center.

The paper opens by attributing a cloud data center's operational and
embodied emissions to server types (compute / storage / network) and, within
compute servers, to hardware components.  Headline findings the defaults
reproduce:

- IT equipment dominates both emission types; compute servers consume most
  of the power while storage servers carry a large embodied footprint.
- With Azure's 40-80% renewable mix, operational emissions are ~58% of the
  total and compute servers cause ~57% of data-center emissions.
- Within compute servers the top contributors are DRAM (~35%), SSDs (~28%)
  and CPUs (~24%).

Compute-server component shares are derived from the actual carbon model on
the baseline SKU; storage/network servers and facility overheads are
parameterized (their internals are out of the paper's scope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import ConfigError
from ..core.units import operational_carbon_kg
from ..hardware.components import Category
from ..hardware.sku import ServerSKU
from .model import CarbonModel


@dataclass(frozen=True)
class AuxServerProfile:
    """Power/embodied profile of a non-compute server type.

    Attributes:
        power_watts: Average draw of one server (derating included).
        embodied_kg: Embodied carbon of one server.
        count_per_compute: Servers of this type per compute server in a
            general-purpose fleet.
    """

    power_watts: float
    embodied_kg: float
    count_per_compute: float

    def __post_init__(self) -> None:
        if min(self.power_watts, self.embodied_kg, self.count_per_compute) < 0:
            raise ConfigError("aux-server profile values must be >= 0")


@dataclass(frozen=True)
class FleetComposition:
    """A general-purpose fleet, normalized to one compute server.

    Storage servers hold arrays of hard disks: high embodied carbon, modest
    power.  Network servers/switches are few and light.  Building embodied
    carbon is amortized per compute server over the facility lifetime.
    Defaults are calibrated so the attribution reproduces Fig. 1's
    headline shares (operational ~58%, compute ~57%).
    """

    storage: AuxServerProfile = AuxServerProfile(
        power_watts=300.0, embodied_kg=3200.0, count_per_compute=0.5
    )
    network: AuxServerProfile = AuxServerProfile(
        power_watts=180.0, embodied_kg=300.0, count_per_compute=0.12
    )
    building_embodied_per_compute_kg: float = 600.0

    def __post_init__(self) -> None:
        if self.building_embodied_per_compute_kg < 0:
            raise ConfigError("building embodied carbon must be >= 0")


def fleet_compute_sku() -> ServerSKU:
    """The fleet-average compute server used for Fig. 1's attribution.

    General-purpose compute nodes in the fleet carry far more flash than
    the minimal Table VIII baseline configuration (the paper notes each of
    the six SSDs "contains many chips" and attributes 28% of compute
    emissions to them); 6 x 8 TB drives with 10 x 64 GB DIMMs reproduces
    the published DRAM/SSD/CPU shares.
    """
    from ..hardware import catalog
    from ..hardware.components import scaled_ssd
    from ..hardware.sku import _platform_parts

    big_ssd = scaled_ssd(catalog.SSD_2TB_NEW, 8.0)
    return ServerSKU.build(
        "Fleet-Compute",
        [
            (catalog.GENOA, 1),
            (catalog.DDR5_64GB, 10),
            (big_ssd, 6),
        ]
        + _platform_parts(),
        generation=3,
    )


@dataclass(frozen=True)
class DataCenterBreakdown:
    """Attribution result: all values in kgCO2e per compute server.

    ``operational``/``embodied`` map coarse buckets (compute, storage,
    network, cooling+power, building) to lifetime emissions.
    ``compute_operational_by_component``/``compute_embodied_by_component``
    attribute the compute-server share to component categories.
    """

    operational: Dict[str, float]
    embodied: Dict[str, float]
    compute_operational_by_component: Dict[Category, float]
    compute_embodied_by_component: Dict[Category, float]

    @property
    def total_operational(self) -> float:
        """All operational emissions."""
        return sum(self.operational.values())

    @property
    def total_embodied(self) -> float:
        """All embodied emissions."""
        return sum(self.embodied.values())

    @property
    def total(self) -> float:
        """Total data-center emissions."""
        return self.total_operational + self.total_embodied

    @property
    def operational_share(self) -> float:
        """Operational emissions as a fraction of the total (~0.58)."""
        return self.total_operational / self.total if self.total else 0.0

    @property
    def compute_share(self) -> float:
        """Compute servers' share of total emissions (~0.57)."""
        compute = self.operational["compute"] + self.embodied["compute"]
        return compute / self.total if self.total else 0.0

    def compute_component_shares(self) -> Dict[Category, float]:
        """Each component's share of *compute-server* emissions.

        The paper reports DRAM ~35%, SSD ~28%, CPU ~24% here.
        """
        totals: Dict[Category, float] = {}
        for cat, kg in self.compute_operational_by_component.items():
            totals[cat] = totals.get(cat, 0.0) + kg
        for cat, kg in self.compute_embodied_by_component.items():
            totals[cat] = totals.get(cat, 0.0) + kg
        denom = sum(totals.values())
        if denom == 0:
            return {cat: 0.0 for cat in totals}
        return {cat: kg / denom for cat, kg in totals.items()}


def breakdown(
    model: Optional[CarbonModel] = None,
    compute_sku: Optional[ServerSKU] = None,
    fleet: Optional[FleetComposition] = None,
) -> DataCenterBreakdown:
    """Attribute a data center's emissions, Fig.-1 style.

    Args:
        model: Carbon model (facility parameters, intensity, PUE).
        compute_sku: The deployed compute SKU (default: Gen3 baseline).
        fleet: Fleet composition for non-compute equipment.
    """
    if model is None:
        # Fig. 1 is drawn at Azure's average renewable mix (40-80%
        # renewables), whose blended intensity exceeds Table VI's
        # major-region average.
        from .intensity import azure_average_mix

        model = CarbonModel().at_intensity(azure_average_mix().effective_ci)
    compute_sku = compute_sku or fleet_compute_sku()
    fleet = fleet or FleetComposition()
    dc = model.datacenter

    def lifetime_op(power_watts: float) -> float:
        return operational_carbon_kg(
            power_watts, dc.lifetime_years, dc.carbon_intensity_kg_per_kwh
        )

    server = model.server_emissions(compute_sku)
    assessment = model.assess(compute_sku)
    # Rack + DC embodied overheads, amortized per compute server.
    rack_overhead_emb = (
        model.rack.overhead_embodied_kg + dc.dc_embodied_per_rack_kg
    ) / assessment.servers_per_rack
    rack_overhead_power = (
        model.rack.overhead_power_watts / assessment.servers_per_rack
    )

    storage_power = fleet.storage.power_watts * fleet.storage.count_per_compute
    network_power = fleet.network.power_watts * fleet.network.count_per_compute
    it_power = (
        server.power_watts + rack_overhead_power + storage_power + network_power
    )
    # PUE overhead: cooling and power distribution draw on top of IT power.
    facility_power = it_power * (dc.pue - 1.0)

    operational = {
        "compute": lifetime_op(server.power_watts + rack_overhead_power),
        "storage": lifetime_op(storage_power),
        "network": lifetime_op(network_power),
        "cooling+power": lifetime_op(facility_power),
    }
    embodied = {
        "compute": server.embodied_kg + rack_overhead_emb,
        "storage": fleet.storage.embodied_kg * fleet.storage.count_per_compute,
        "network": fleet.network.embodied_kg * fleet.network.count_per_compute,
        "building": fleet.building_embodied_per_compute_kg,
    }

    # Attribute the compute bucket to component categories; rack/DC
    # overheads are amortized proportionally to the component shares.
    op_scale = operational["compute"] / server.power_watts
    comp_op = {
        cat: watts * op_scale
        for cat, watts in server.power_by_category.items()
    }
    emb_scale = (
        embodied["compute"] / server.embodied_kg if server.embodied_kg else 0.0
    )
    comp_emb = {
        cat: kg * emb_scale
        for cat, kg in server.embodied_by_category.items()
    }
    return DataCenterBreakdown(
        operational=operational,
        embodied=embodied,
        compute_operational_by_component=comp_op,
        compute_embodied_by_component=comp_emb,
    )
