"""Grid carbon intensity and renewable-energy mixes.

The paper accounts only for renewable purchases matched to a data center's
location, finds most Azure data centers use 40%-80% renewable energy, and
evaluates savings across a spectrum of carbon intensities (Fig. 11/12).

The effective carbon intensity of consumed energy mixes a fossil grid
intensity with the (small but nonzero) lifecycle intensity of renewables —
which is why, in the paper, a hypothetical 100% renewable mix still leaves
operational emissions at ~9% of data-center emissions rather than zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError

#: Lifecycle carbon intensity of renewable generation (kgCO2e/kWh); solar
#: PV and wind land in the 0.01-0.05 band, we use 0.025.
RENEWABLE_LIFECYCLE_CI = 0.025

#: Carbon intensity of a typical fossil-heavy grid (kgCO2e/kWh).
FOSSIL_GRID_CI = 0.40


@dataclass(frozen=True)
class EnergyMix:
    """An energy mix: a renewable fraction over a fossil grid.

    Attributes:
        renewable_fraction: Share of consumed energy from location-matched
            renewable purchases, in [0, 1].
        fossil_ci: Carbon intensity of the non-renewable remainder.
        renewable_ci: Lifecycle carbon intensity of the renewable share.
    """

    renewable_fraction: float
    fossil_ci: float = FOSSIL_GRID_CI
    renewable_ci: float = RENEWABLE_LIFECYCLE_CI

    def __post_init__(self) -> None:
        for label, value in (
            ("renewable fraction", self.renewable_fraction),
            ("fossil CI", self.fossil_ci),
            ("renewable CI", self.renewable_ci),
        ):
            if not math.isfinite(value):
                raise ConfigError(f"{label} must be finite, got {value}")
        if not 0 <= self.renewable_fraction <= 1:
            raise ConfigError("renewable fraction must be in [0, 1]")
        if self.fossil_ci < 0 or self.renewable_ci < 0:
            raise ConfigError("carbon intensities must be >= 0")

    @property
    def effective_ci(self) -> float:
        """Blended carbon intensity of consumed energy (kgCO2e/kWh).

        >>> EnergyMix(0.0).effective_ci
        0.4
        >>> EnergyMix(1.0).effective_ci
        0.025
        """
        r = self.renewable_fraction
        return r * self.renewable_ci + (1 - r) * self.fossil_ci

    def with_additional_renewables(self, delta: float) -> "EnergyMix":
        """The mix after adding ``delta`` (fraction) more renewables."""
        return EnergyMix(
            min(1.0, self.renewable_fraction + delta),
            self.fossil_ci,
            self.renewable_ci,
        )


def azure_average_mix() -> EnergyMix:
    """The average Azure mix: 60% renewables (middle of the 40-80% band).

    At the default fossil/renewable intensities this lands within rounding
    of the paper's 0.1 kgCO2e/kWh average (Table VI):

    >>> round(azure_average_mix().effective_ci, 3)
    0.175
    """
    return EnergyMix(renewable_fraction=0.60)


def mix_for_intensity(target_ci: float) -> EnergyMix:
    """The renewable fraction whose blended intensity equals ``target_ci``.

    Inverse of :attr:`EnergyMix.effective_ci`; raises :class:`ConfigError`
    (never a silent clamp) when the target is non-finite, non-positive, or
    outside the achievable [renewable_ci, fossil_ci] band.
    """
    if not math.isfinite(target_ci):
        raise ConfigError(f"target CI must be finite, got {target_ci}")
    if target_ci <= 0:
        raise ConfigError(f"target CI must be > 0, got {target_ci}")
    lo, hi = RENEWABLE_LIFECYCLE_CI, FOSSIL_GRID_CI
    if not lo <= target_ci <= hi:
        raise ConfigError(
            f"target CI {target_ci} outside achievable band [{lo}, {hi}]"
        )
    fraction = (hi - target_ci) / (hi - lo)
    return EnergyMix(renewable_fraction=fraction)


def intensity_sweep(
    lo: float = 0.0, hi: float = 0.4, points: int = 41
) -> np.ndarray:
    """Carbon-intensity axis for Fig. 11/12-style sweeps."""
    if points < 2:
        raise ConfigError("a sweep needs at least 2 points")
    if hi <= lo:
        raise ConfigError("sweep upper bound must exceed lower bound")
    return np.linspace(lo, hi, points)
