"""Per-core carbon savings tables (paper Table IV / Table VIII).

Given a baseline SKU and candidate SKUs, compute operational, embodied, and
total per-core savings percentages relative to the baseline — the rows of
the paper's headline tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.tables import render_table
from ..hardware.sku import ServerSKU, paper_skus
from .model import CarbonModel, SkuAssessment


def _savings(baseline: float, candidate: float) -> float:
    """Savings fraction; zero when the baseline bucket is itself zero
    (e.g. operational emissions at zero carbon intensity)."""
    if baseline == 0:
        return 0.0
    return (baseline - candidate) / baseline


@dataclass(frozen=True)
class SavingsRow:
    """One row of a savings table.

    Savings are fractions (0.28 = 28%); the baseline row holds ``None``.
    """

    sku_name: str
    cores: int
    memory_desc: str
    storage_desc: str
    operational_savings: Optional[float]
    embodied_savings: Optional[float]
    total_savings: Optional[float]
    assessment: SkuAssessment

    def percent_row(self) -> List:
        """Cells formatted the way the paper's table reports them."""

        def pct(x: Optional[float]) -> Optional[str]:
            return None if x is None else f"{round(100 * x)}%"

        return [
            self.sku_name,
            self.cores,
            self.memory_desc,
            self.storage_desc,
            pct(self.operational_savings),
            pct(self.embodied_savings),
            pct(self.total_savings),
        ]


def _memory_desc(sku: ServerSKU) -> str:
    """Describe DIMM population like the paper: ``12x64 + 8x32 CXL``."""
    local: Dict[int, int] = {}
    cxl: Dict[int, int] = {}
    for spec, count in sku.iter_parts():
        if spec.category.value != "dram":
            continue
        bucket = cxl if getattr(spec, "via_cxl", False) else local
        cap = spec.capacity_gb
        bucket[cap] = bucket.get(cap, 0) + count
    parts = [f"{n}x{cap}" for cap, n in sorted(local.items(), reverse=True)]
    parts += [
        f"{n}x{cap} CXL" for cap, n in sorted(cxl.items(), reverse=True)
    ]
    return " + ".join(parts)


def _storage_desc(sku: ServerSKU) -> str:
    """Describe SSD population like the paper: ``2x4 + 12x1 Reuse``."""
    new: Dict[float, int] = {}
    reused: Dict[float, int] = {}
    for spec, count in sku.iter_parts():
        if spec.category.value != "ssd":
            continue
        bucket = reused if spec.reused else new
        cap = spec.capacity_tb
        bucket[cap] = bucket.get(cap, 0) + count
    parts = [f"{n}x{cap:g}" for cap, n in sorted(new.items(), reverse=True)]
    parts += [
        f"{n}x{cap:g} Reuse" for cap, n in sorted(reused.items(), reverse=True)
    ]
    return " + ".join(parts)


def savings_table(
    model: CarbonModel,
    baseline: ServerSKU,
    candidates: Sequence[ServerSKU],
) -> List[SavingsRow]:
    """Per-core savings of each candidate relative to ``baseline``.

    The baseline itself is the first row (savings = None), matching the
    layout of Table IV / Table VIII.
    """
    base = model.assess(baseline)
    rows = [
        SavingsRow(
            sku_name=baseline.name,
            cores=baseline.cores,
            memory_desc=_memory_desc(baseline),
            storage_desc=_storage_desc(baseline),
            operational_savings=None,
            embodied_savings=None,
            total_savings=None,
            assessment=base,
        )
    ]
    for sku in candidates:
        assessment = model.assess(sku)
        rows.append(
            SavingsRow(
                sku_name=sku.name,
                cores=sku.cores,
                memory_desc=_memory_desc(sku),
                storage_desc=_storage_desc(sku),
                operational_savings=_savings(
                    base.operational_per_core, assessment.operational_per_core
                ),
                embodied_savings=_savings(
                    base.embodied_per_core, assessment.embodied_per_core
                ),
                total_savings=_savings(
                    base.total_per_core, assessment.total_per_core
                ),
                assessment=assessment,
            )
        )
    return rows


def paper_savings_table(
    model: Optional[CarbonModel] = None,
) -> List[SavingsRow]:
    """Table VIII: the five paper configurations under the default model."""
    model = model or CarbonModel()
    skus = paper_skus()
    baseline = skus.pop("Baseline")
    order = [
        "Baseline-Resized",
        "GreenSKU-Efficient",
        "GreenSKU-CXL",
        "GreenSKU-Full",
    ]
    return savings_table(model, baseline, [skus[name] for name in order])


def render_savings_table(rows: Iterable[SavingsRow], title: str = "") -> str:
    """Render savings rows as the paper's table layout."""
    headers = [
        "SKU Config.",
        "# Cores",
        "# x DIMM (GB)",
        "# x SSD (TB)",
        "Operational Savings",
        "Embodied Savings",
        "Total Savings",
    ]
    return render_table(
        headers, [row.percent_row() for row in rows], title=title or None
    )
