"""Section VII-B: GreenSKUs versus other carbon-reduction strategies.

The paper asks what it would take for three conventional strategies to match
GreenSKU-Full's data-center-wide savings:

- **More renewables**: how many percentage points of additional
  location-matched renewable energy (paper: +2.6%, against 1.2%/year of
  actual grid progress).
- **Better energy efficiency**: how much more energy-efficient every server
  component must become, assuming (optimistically) no embodied cost and
  uniform improvement (paper: 28%, roughly one two-year CPU generation).
- **Longer lifetimes**: how far the 6-year server lifetime must stretch,
  assuming (optimistically) no operational or maintenance growth
  (paper: 6 -> 13 years).

Each solver inverts the carbon model around the current operating point,
so the answers track whatever facility parameters the caller configures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..carbon.intensity import EnergyMix, azure_average_mix
from ..carbon.model import CarbonModel
from ..core.errors import ConfigError
from ..hardware.sku import ServerSKU, baseline_gen3


@dataclass(frozen=True)
class EquivalenceReport:
    """What each alternative strategy needs to match a savings target.

    Attributes:
        target_savings: The data-center savings fraction to match.
        renewables_increase: Additional renewable fraction (percentage
            points / 100) required.
        efficiency_improvement: Uniform component energy-efficiency
            improvement required (fraction).
        lifetime_years: Required server lifetime (from the 6-year base).
    """

    target_savings: float
    renewables_increase: float
    efficiency_improvement: float
    lifetime_years: float


def operational_share(
    model: Optional[CarbonModel] = None,
    sku: Optional[ServerSKU] = None,
) -> float:
    """Operational fraction of per-core lifetime emissions for a SKU."""
    model = model or CarbonModel()
    sku = sku or baseline_gen3()
    return model.assess(sku).operational_share


def renewables_increase_equivalent(
    target_savings: float,
    mix: Optional[EnergyMix] = None,
    model: Optional[CarbonModel] = None,
    sku: Optional[ServerSKU] = None,
) -> float:
    """Extra renewable fraction matching ``target_savings`` of DC emissions.

    Increasing the renewable share from ``r`` to ``r + d`` lowers the
    effective carbon intensity linearly, scaling operational emissions;
    embodied emissions are untouched.  Solves for ``d``.

    Raises :class:`ConfigError` when even 100% renewables cannot reach the
    target (embodied emissions dominate beyond it).
    """
    if not 0 <= target_savings < 1:
        raise ConfigError("target savings must be in [0, 1)")
    mix = mix or azure_average_mix()
    model = model or CarbonModel(
        datacenter=CarbonModel().datacenter.with_carbon_intensity(
            mix.effective_ci
        )
    )
    sku = sku or baseline_gen3()
    assessment = model.at_intensity(mix.effective_ci).assess(sku)
    op, emb = assessment.operational_per_core, assessment.embodied_per_core
    total = op + emb
    # Operational scales with effective CI; find the CI meeting the target.
    needed_op = op - target_savings * total
    if needed_op < 0:
        raise ConfigError(
            "target exceeds what eliminating all operational emissions "
            "could deliver"
        )
    needed_ci = mix.effective_ci * needed_op / op
    # Invert the mix: effective_ci = r*ci_ren + (1-r)*ci_fossil.
    denominator = mix.fossil_ci - mix.renewable_ci
    needed_r = (mix.fossil_ci - needed_ci) / denominator
    if needed_r > 1.0 + 1e-9:
        raise ConfigError(
            "target requires more than 100% renewable energy"
        )
    return max(0.0, needed_r - mix.renewable_fraction)


def efficiency_improvement_equivalent(
    target_savings: float,
    model: Optional[CarbonModel] = None,
    sku: Optional[ServerSKU] = None,
) -> float:
    """Uniform component efficiency gain matching ``target_savings``.

    Follows the paper's optimistic assumptions: the gain applies to every
    component equally and adds no embodied emissions, so operational
    emissions scale by ``1 - e``:

    ``e = target / operational_share``.
    """
    if not 0 <= target_savings < 1:
        raise ConfigError("target savings must be in [0, 1)")
    share = operational_share(model, sku)
    if target_savings >= share:
        raise ConfigError(
            f"target {target_savings:.0%} exceeds the operational share "
            f"{share:.0%}; efficiency alone cannot reach it"
        )
    return target_savings / share


def lifetime_extension_equivalent(
    target_savings: float,
    model: Optional[CarbonModel] = None,
    sku: Optional[ServerSKU] = None,
    base_lifetime_years: float = 6.0,
) -> float:
    """Server lifetime matching ``target_savings`` in per-core-year terms.

    Extending lifetime amortizes embodied emissions over more service
    years; with the paper's simplifying assumption that operational
    emissions per year do not grow, per-core-*year* emissions are
    ``op_rate + emb / L``.  Solves for the lifetime whose per-core-year
    emissions are ``(1 - target)`` of the 6-year base.
    """
    if not 0 <= target_savings < 1:
        raise ConfigError("target savings must be in [0, 1)")
    model = model or CarbonModel()
    sku = sku or baseline_gen3()
    assessment = model.with_lifetime(base_lifetime_years).assess(sku)
    op_per_year = assessment.operational_per_core / base_lifetime_years
    emb = assessment.embodied_per_core
    base_rate = op_per_year + emb / base_lifetime_years
    target_rate = (1.0 - target_savings) * base_rate
    if target_rate <= op_per_year:
        raise ConfigError(
            "target exceeds what amortizing all embodied emissions could "
            "deliver"
        )
    return emb / (target_rate - op_per_year)


def equivalence_report(
    target_savings: float,
    mix: Optional[EnergyMix] = None,
    model: Optional[CarbonModel] = None,
    sku: Optional[ServerSKU] = None,
) -> EquivalenceReport:
    """All three Section VII-B equivalences for one savings target."""
    return EquivalenceReport(
        target_savings=target_savings,
        renewables_increase=renewables_increase_equivalent(
            target_savings, mix, model, sku
        ),
        efficiency_improvement=efficiency_improvement_equivalent(
            target_savings, model, sku
        ),
        lifetime_years=lifetime_extension_equivalent(
            target_savings, model, sku
        ),
    )
