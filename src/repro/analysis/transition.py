"""Fleet transition planning toward 2030 (paper Section I framing).

"With a ~six-year lifetime for cloud servers, design choices made in the
next two years directly affect the industry's 2030 carbon goals."

This module turns that sentence into arithmetic: a fleet of N servers
refreshes at 1/lifetime per year; each refresh cohort either buys the
baseline SKU again or the GreenSKU.  The planner tracks the fleet's
annual and cumulative emissions through a horizon year, so the cost of
*delaying* GreenSKU adoption is a number rather than a slogan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..carbon.model import CarbonModel
from ..core.errors import ConfigError
from ..hardware.sku import ServerSKU, baseline_gen3, greensku_full


@dataclass(frozen=True)
class FleetYear:
    """One year of a transition scenario."""

    year: int
    green_share: float
    annual_kg: float
    cumulative_kg: float


@dataclass(frozen=True)
class TransitionScenario:
    """A transition trajectory under one adoption start year."""

    name: str
    years: List[FleetYear]

    @property
    def cumulative_kg(self) -> float:
        return self.years[-1].cumulative_kg

    def year_record(self, year: int) -> FleetYear:
        for record in self.years:
            if record.year == year:
                return record
        raise ConfigError(f"year {year} not in scenario {self.name}")


def _annual_rates(
    model: CarbonModel, sku: ServerSKU
) -> "tuple[float, float]":
    """(operational kg/server/year, embodied kg/server amortized/year)."""
    assessment = model.assess(sku)
    lifetime = model.datacenter.lifetime_years
    per_server = assessment.per_server_total_kg
    op = (
        assessment.operational_per_core
        * assessment.cores_per_server
        / lifetime
    )
    emb = (
        assessment.embodied_per_core
        * assessment.cores_per_server
        / lifetime
    )
    return op, emb


def transition_scenario(
    name: str,
    adoption_start_year: Optional[int],
    fleet_servers: int = 100_000,
    start_year: int = 2024,
    horizon_year: int = 2030,
    baseline: Optional[ServerSKU] = None,
    greensku: Optional[ServerSKU] = None,
    model: Optional[CarbonModel] = None,
    performance_scaling: float = 1.10,
) -> TransitionScenario:
    """Simulate one refresh policy.

    Args:
        adoption_start_year: First year refresh cohorts buy the GreenSKU
            (None = never; the all-baseline reference).
        fleet_servers: Constant serving capacity in baseline-server
            equivalents.
        performance_scaling: Extra GreenSKU capacity per replaced
            baseline server from VM scaling (the adoption-weighted core
            inflation; 1.10 = 10%).
        model: Carbon model (grid intensity etc.).

    Each year, ``1/lifetime`` of the fleet refreshes.  Emissions per year
    are the fleet-share-weighted operational rates plus the amortized
    embodied rate of each cohort's SKU.
    """
    if fleet_servers <= 0:
        raise ConfigError("fleet must have servers")
    if horizon_year < start_year:
        raise ConfigError("horizon precedes start")
    if performance_scaling < 1.0:
        raise ConfigError("performance scaling must be >= 1")
    model = model or CarbonModel()
    baseline = baseline or baseline_gen3()
    greensku = greensku or greensku_full()
    base_op, base_emb = _annual_rates(model, baseline)
    green_op, green_emb = _annual_rates(model, greensku)
    # A GreenSKU replaces (baseline cores / green cores) * scaling servers.
    servers_per_baseline = (
        baseline.cores / greensku.cores
    ) * performance_scaling

    refresh_fraction = 1.0 / model.datacenter.lifetime_years
    green_share = 0.0
    cumulative = 0.0
    years: List[FleetYear] = []
    for year in range(start_year, horizon_year + 1):
        if adoption_start_year is not None and year >= adoption_start_year:
            green_share = min(1.0, green_share + refresh_fraction)
        base_servers = fleet_servers * (1.0 - green_share)
        green_servers = (
            fleet_servers * green_share * servers_per_baseline
        )
        annual = base_servers * (base_op + base_emb) + green_servers * (
            green_op + green_emb
        )
        cumulative += annual
        years.append(
            FleetYear(
                year=year,
                green_share=green_share,
                annual_kg=annual,
                cumulative_kg=cumulative,
            )
        )
    return TransitionScenario(name=name, years=years)


@dataclass(frozen=True)
class TransitionStudy:
    """Reference vs adoption-now vs adoption-delayed trajectories."""

    reference: TransitionScenario
    adopt_now: TransitionScenario
    adopt_delayed: TransitionScenario

    @property
    def savings_by_2030_now(self) -> float:
        return 1.0 - self.adopt_now.cumulative_kg / self.reference.cumulative_kg

    @property
    def savings_by_2030_delayed(self) -> float:
        return (
            1.0
            - self.adopt_delayed.cumulative_kg
            / self.reference.cumulative_kg
        )

    @property
    def cost_of_delay_kg(self) -> float:
        """Cumulative kgCO2e the delay forfeits by the horizon."""
        return (
            self.adopt_delayed.cumulative_kg - self.adopt_now.cumulative_kg
        )


def transition_study(
    delay_years: int = 2,
    **scenario_kwargs,
) -> TransitionStudy:
    """The Section I argument as three trajectories.

    Compares never adopting, adopting at the start year, and adopting
    ``delay_years`` later — quantifying "design choices made in the next
    two years".
    """
    if delay_years < 0:
        raise ConfigError("delay must be >= 0 years")
    start = scenario_kwargs.get("start_year", 2024)
    reference = transition_scenario(
        "all-baseline", adoption_start_year=None, **scenario_kwargs
    )
    now = transition_scenario(
        "adopt-now", adoption_start_year=start, **scenario_kwargs
    )
    delayed = transition_scenario(
        f"adopt-in-{delay_years}y",
        adoption_start_year=start + delay_years,
        **scenario_kwargs,
    )
    return TransitionStudy(
        reference=reference, adopt_now=now, adopt_delayed=delayed
    )
