"""Second-generation GreenSKU candidates (paper Section III).

"Other GreenSKU designs that reuse NICs or use low-power DRAM may be
feasible, but yield low returns today.  These designs can help target
residual emissions for a potential second-generation GreenSKU."

This module quantifies those residual options on top of GreenSKU-Full,
using the same carbon model — demonstrating that GSF "flexibly considers
various such GreenSKU designs":

- **reused NIC**: removes the NIC's embodied carbon (small: one NIC per
  server vs 20 DIMMs),
- **low-power DRAM**: LPDDR-class DIMMs at ~60% of DDR5 power but ~15%
  higher embodied carbon (denser packaging, lower yields) and no ECC-DIMM
  reuse path,
- **both combined**.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from ..carbon.model import CarbonModel
from ..hardware import catalog
from ..hardware.components import Category, DramSpec
from ..hardware.sku import ServerSKU, baseline_gen3, greensku_full

#: Low-power DRAM characteristics relative to DDR5 (LPDDR5-class,
#: soldered/CAMM packaging): much lower active+idle power, somewhat higher
#: embodied carbon per GB.
LPDDR_POWER_RATIO = 0.60
LPDDR_EMBODIED_RATIO = 1.15


def lpddr_dimm(base: DramSpec = catalog.DDR5_64GB) -> DramSpec:
    """A low-power DRAM module derived from a DDR5 DIMM."""
    return dataclasses.replace(
        base,
        name=base.name.replace("DDR5", "LPDDR"),
        tdp_watts=base.tdp_watts * LPDDR_POWER_RATIO,
        embodied_kg=base.embodied_kg * LPDDR_EMBODIED_RATIO,
    )


def _swap_parts(sku: ServerSKU, name: str, reuse_nic: bool,
                lpddr: bool) -> ServerSKU:
    parts = []
    for spec, count in sku.parts:
        if reuse_nic and spec.category == Category.NIC:
            spec = spec.as_reused()
        if (
            lpddr
            and isinstance(spec, DramSpec)
            and not spec.via_cxl
            and not spec.reused
        ):
            spec = lpddr_dimm(spec)
        parts.append((spec, count))
    return ServerSKU.build(name, parts, sku.form_factor_u, sku.generation)


def greensku_gen2_nic() -> ServerSKU:
    """GreenSKU-Full plus a reused NIC."""
    return _swap_parts(greensku_full(), "GreenSKU-Gen2-NIC",
                       reuse_nic=True, lpddr=False)


def greensku_gen2_lpddr() -> ServerSKU:
    """GreenSKU-Full with low-power DRAM for the local tier."""
    return _swap_parts(greensku_full(), "GreenSKU-Gen2-LPDDR",
                       reuse_nic=False, lpddr=True)


def greensku_gen2_full() -> ServerSKU:
    """GreenSKU-Full plus both residual options."""
    return _swap_parts(greensku_full(), "GreenSKU-Gen2-Full",
                       reuse_nic=True, lpddr=True)


@dataclass(frozen=True)
class SecondGenOption:
    """Incremental value of one second-generation option."""

    name: str
    total_per_core: float
    savings_vs_baseline: float
    incremental_savings_vs_gen1_greensku: float


def second_generation_study(
    model: Optional[CarbonModel] = None,
) -> List[SecondGenOption]:
    """Quantify the residual options' returns (paper: low, today)."""
    model = model or CarbonModel()
    baseline = model.assess(baseline_gen3()).total_per_core
    gen1 = model.assess(greensku_full()).total_per_core
    options = []
    for sku in (
        greensku_full(),
        greensku_gen2_nic(),
        greensku_gen2_lpddr(),
        greensku_gen2_full(),
    ):
        per_core = model.assess(sku).total_per_core
        options.append(
            SecondGenOption(
                name=sku.name,
                total_per_core=per_core,
                savings_vs_baseline=1 - per_core / baseline,
                incremental_savings_vs_gen1_greensku=1 - per_core / gen1,
            )
        )
    return options
