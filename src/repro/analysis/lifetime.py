"""Server lifetime extension, evaluated through GSF (paper Section VII-B).

The paper's simple lifetime equivalence assumes extending lifetimes is
free.  Its discussion then lists why it is not: maintenance becomes cost-
prohibitive over long horizons (Hyrax), and older servers carry higher
per-core operational emissions relative to newer hardware (ACT,
GreenChip).  "GSF can evaluate server lifetime extension by considering
such extension's impact on maintenance, performance, and emissions."

This module does that evaluation: per-core-year emissions as a function of
lifetime with three effects layered in —

- embodied amortization (the benefit: emissions spread over more years),
- wear-out maintenance (AFR grows past the design lifetime, adding
  out-of-service capacity),
- efficiency stagnation (each year on old hardware forgoes the fleet's
  energy-efficiency progress, charged as an operational penalty).

The output is the *effective optimal lifetime*: where the marginal benefit
of amortization stops paying for the marginal operational/maintenance
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..carbon.model import CarbonModel
from ..core.errors import ConfigError
from ..hardware.sku import ServerSKU, baseline_gen3
from ..reliability.afr import server_afr
from ..reliability.maintenance import out_of_service_fraction


@dataclass(frozen=True)
class LifetimePoint:
    """Per-core-year emissions at one candidate lifetime."""

    lifetime_years: float
    embodied_per_core_year: float
    operational_per_core_year: float
    maintenance_overhead_per_core_year: float

    @property
    def total_per_core_year(self) -> float:
        return (
            self.embodied_per_core_year
            + self.operational_per_core_year
            + self.maintenance_overhead_per_core_year
        )


@dataclass(frozen=True)
class LifetimeStudy:
    """A lifetime sweep with the effective optimum."""

    points: List[LifetimePoint]

    @property
    def optimal_lifetime_years(self) -> float:
        best = min(self.points, key=lambda p: p.total_per_core_year)
        return best.lifetime_years

    def savings_vs(self, base_lifetime: float = 6.0) -> float:
        """Per-core-year savings of the optimum vs the base lifetime."""
        base = next(
            (
                p
                for p in self.points
                if abs(p.lifetime_years - base_lifetime) < 1e-9
            ),
            None,
        )
        if base is None:
            raise ConfigError(
                f"base lifetime {base_lifetime} not in the sweep"
            )
        best = min(self.points, key=lambda p: p.total_per_core_year)
        return 1.0 - best.total_per_core_year / base.total_per_core_year


def lifetime_study(
    sku: Optional[ServerSKU] = None,
    model: Optional[CarbonModel] = None,
    lifetimes: Sequence[float] = tuple(np.arange(3.0, 16.0, 1.0)),
    wearout_onset_years: float = 7.0,
    wearout_afr_growth_per_year: float = 2.0,
    efficiency_progress_per_year: float = 0.08,
    repair_time_days: float = 10.0,
    replacement_embodied_fraction: float = 0.05,
) -> LifetimeStudy:
    """Sweep candidate lifetimes with maintenance and efficiency effects.

    Args:
        sku: Server design under study (default: Gen3 baseline).
        model: Carbon model (facility parameters).
        lifetimes: Candidate lifetimes in years.
        wearout_onset_years: Age at which component wear-out begins to
            raise the server AFR (SSD erasure-cycle exhaustion and fan /
            PSU aging; DRAM stays flat per Fig. 2).
        wearout_afr_growth_per_year: Added AFR (per 100 servers/year) for
            each year past the onset — Hyrax's "maintenance can become
            cost prohibitive over this time frame".
        efficiency_progress_per_year: Fleet energy-efficiency progress an
            old server forgoes (paper: Zen 3 -> Zen 4 improved 25% in two
            years, ~12%/year; 8%/year reflects fleet-average progress).
        repair_time_days: Repair turnaround for the out-of-service model.
        replacement_embodied_fraction: Embodied carbon of the replacement
            parts one repair consumes, as a fraction of the server's
            embodied carbon.
    """
    if not lifetimes:
        raise ConfigError("need at least one candidate lifetime")
    sku = sku or baseline_gen3()
    model = model or CarbonModel()
    assessment = model.assess(sku)
    base_afr = server_afr(sku)
    points = []
    for lifetime in lifetimes:
        if lifetime <= 0:
            raise ConfigError("lifetimes must be > 0")
        embodied_rate = assessment.embodied_per_core / lifetime
        op_rate = (
            assessment.operational_per_core
            / model.datacenter.lifetime_years
        )
        # Efficiency stagnation: average penalty over the lifetime vs a
        # fleet refreshing on the default cadence.  Years beyond the
        # default lifetime run hardware that is (progress * years-behind)
        # less efficient than contemporary replacements would be.
        extra_years = max(0.0, lifetime - model.datacenter.lifetime_years)
        avg_years_behind = extra_years / 2.0
        stagnation = (
            op_rate * efficiency_progress_per_year * avg_years_behind
        )
        # Wear-out maintenance: average AFR over the lifetime.  The
        # repairs cost (a) extra deployed capacity via Little's law and
        # (b) the embodied carbon of replacement parts.
        past_onset = max(0.0, lifetime - wearout_onset_years)
        avg_extra_afr = (
            wearout_afr_growth_per_year * past_onset**2 / (2.0 * lifetime)
        )
        avg_afr = base_afr.total + avg_extra_afr
        oos = out_of_service_fraction(avg_afr, repair_time_days)
        replacement = (
            (avg_afr / 100.0)
            * replacement_embodied_fraction
            * assessment.embodied_per_core
        )
        maintenance = (op_rate + embodied_rate) * oos + replacement
        points.append(
            LifetimePoint(
                lifetime_years=float(lifetime),
                embodied_per_core_year=embodied_rate,
                operational_per_core_year=op_rate + stagnation,
                maintenance_overhead_per_core_year=maintenance,
            )
        )
    return LifetimeStudy(points=points)
