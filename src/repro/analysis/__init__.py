"""Section VII analyses: alternative strategies and TCO."""

from .alternatives import (
    EquivalenceReport,
    efficiency_improvement_equivalent,
    equivalence_report,
    lifetime_extension_equivalent,
    operational_share,
    renewables_increase_equivalent,
)
from .ablations import (
    AdoptionAblation,
    BufferAblation,
    CxlFractionAblation,
    FipAblation,
    PlacementAblation,
    adoption_rule_ablation,
    buffer_policy_ablation,
    cxl_fraction_sweep,
    fip_sweep,
    placement_policy_ablation,
)
from .lifetime import LifetimePoint, LifetimeStudy, lifetime_study
from .marginals import (
    fit_trace_params,
    ks_distance,
    marginals_report,
    validate_marginals_report,
)
from .second_gen import (
    SecondGenOption,
    greensku_gen2_full,
    greensku_gen2_lpddr,
    greensku_gen2_nic,
    lpddr_dimm,
    second_generation_study,
)
from .tco import CostData, TcoAssessment, TcoModel, cost_efficient_sku
from .transition import (
    TransitionScenario,
    TransitionStudy,
    transition_scenario,
    transition_study,
)

__all__ = [
    "TransitionScenario",
    "TransitionStudy",
    "transition_scenario",
    "transition_study",
    "LifetimePoint",
    "LifetimeStudy",
    "lifetime_study",
    "SecondGenOption",
    "greensku_gen2_full",
    "greensku_gen2_lpddr",
    "greensku_gen2_nic",
    "lpddr_dimm",
    "second_generation_study",
    "AdoptionAblation",
    "BufferAblation",
    "CxlFractionAblation",
    "FipAblation",
    "PlacementAblation",
    "adoption_rule_ablation",
    "buffer_policy_ablation",
    "cxl_fraction_sweep",
    "fip_sweep",
    "placement_policy_ablation",
    "EquivalenceReport",
    "efficiency_improvement_equivalent",
    "equivalence_report",
    "lifetime_extension_equivalent",
    "operational_share",
    "renewables_increase_equivalent",
    "CostData",
    "TcoAssessment",
    "TcoModel",
    "cost_efficient_sku",
    "fit_trace_params",
    "ks_distance",
    "marginals_report",
    "validate_marginals_report",
]
