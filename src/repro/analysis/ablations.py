"""Ablation studies for the design choices DESIGN.md calls out.

Each function isolates one GSF design decision and quantifies what it
buys, using the same substrates as the main evaluation:

- placement heuristic (production best-fit vs first-fit vs worst-fit),
- Fail-In-Place effectiveness (the paper assumes a conservative 75%),
- the adoption rule (carbon-aware vs performance-only vs always-adopt),
- the growth-buffer policy (the paper's baseline-only single buffer vs a
  per-SKU proportional dual buffer),
- the share of memory behind CXL (GreenSKU-CXL fixes it at 25%).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..allocation.cluster import ClusterSpec, adopt_nothing, simulate
from ..allocation.scheduler import PLACEMENT_POLICIES, BestFitScheduler
from ..allocation.traces import VmTrace
from ..carbon.model import CarbonModel
from ..core.errors import ConfigError
from ..core.runner import parallel_map
from ..gsf.buffer import baseline_only_buffer, proportional_dual_buffer
from ..gsf.framework import Gsf
from ..gsf.sizing import right_size, size_mixed_cluster
from ..hardware import catalog
from ..hardware.sku import ServerSKU, baseline_gen3, greensku_full
from ..hardware.sku import _platform_parts
from ..perf.scaling import scaling_factor
from ..reliability.afr import server_afr


# -- placement policy ---------------------------------------------------------


@dataclass(frozen=True)
class PlacementAblation:
    """Right-size and packing density under one placement heuristic."""

    policy: str
    servers_needed: int
    mean_core_density: float
    mean_memory_density: float


def _placement_one(
    policy: str, trace: VmTrace, sku: ServerSKU, bestfit_n: int
) -> PlacementAblation:
    """One placement heuristic's sizing + density (worker entry)."""
    scheduler = BestFitScheduler(policy)

    def feasible(n: int) -> bool:
        out = simulate(
            trace,
            ClusterSpec.of((sku, n)),
            adoption=adopt_nothing,
            snapshot_hours=1e9,
            scheduler=scheduler,
        )
        return out.feasible

    # The best-fit right-size is a lower bound for bracketing.
    n = bestfit_n
    while not feasible(n):
        n += 1
    outcome = simulate(
        trace,
        ClusterSpec.of((sku, n)),
        adoption=adopt_nothing,
        snapshot_hours=6.0,
        scheduler=scheduler,
    )
    return PlacementAblation(
        policy=policy,
        servers_needed=n,
        mean_core_density=outcome.baseline_stats.mean_core_density,
        mean_memory_density=outcome.baseline_stats.mean_memory_density,
    )


def placement_policy_ablation(
    trace: VmTrace,
    sku: Optional[ServerSKU] = None,
    policies: Sequence[str] = PLACEMENT_POLICIES,
    jobs: Optional[int] = None,
) -> List[PlacementAblation]:
    """How much the production best-fit rules buy over naive placement.

    For each heuristic: the minimum cluster size hosting the trace and
    the achieved packing density at that size.  Policies evaluate
    independently, so they fan out over ``jobs`` worker processes.
    """
    sku = sku or baseline_gen3()
    bestfit_n = right_size(trace, sku)
    return parallel_map(
        functools.partial(
            _placement_one, trace=trace, sku=sku, bestfit_n=bestfit_n
        ),
        list(policies),
        jobs=jobs,
    )


# -- Fail-In-Place ------------------------------------------------------------


@dataclass(frozen=True)
class FipAblation:
    """Repair rates at one FIP effectiveness level."""

    effectiveness: float
    baseline_repair_rate: float
    greensku_repair_rate: float

    @property
    def greensku_overhead(self) -> float:
        """GreenSKU-Full's repair-rate premium over the baseline."""
        return self.greensku_repair_rate - self.baseline_repair_rate


def fip_sweep(
    effectiveness_levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> List[FipAblation]:
    """How Fail-In-Place effectiveness shrinks GreenSKU-Full's repair
    premium (the paper assumes a conservative 75%)."""
    base_afr = server_afr(baseline_gen3())
    green_afr = server_afr(greensku_full())
    return [
        FipAblation(
            effectiveness=e,
            baseline_repair_rate=base_afr.repair_rate(e),
            greensku_repair_rate=green_afr.repair_rate(e),
        )
        for e in effectiveness_levels
    ]


# -- adoption rule -------------------------------------------------------------


@dataclass(frozen=True)
class AdoptionAblation:
    """Cluster savings under one adoption rule."""

    rule: str
    cluster_savings: float
    green_servers: int
    baseline_servers: int


#: The adoption rules the ablation compares (worker processes rebuild the
#: policy callables from these names — closures do not pickle).
ADOPTION_RULES = ("carbon-aware", "performance-only", "always")


def adoption_policy(rule: str, gsf: Gsf, greensku: ServerSKU) -> Callable:
    """Build the adoption-policy callable for one named rule.

    The returned policy has the `(app_name, generation) -> Optional[float]`
    shape `size_mixed_cluster` expects.  Workers rebuild policies from
    the rule name (closures do not pickle); the sweep driver
    (`repro.catalog.sweep`) reuses this as the adoption axis.
    """
    model = gsf.adoption_model(greensku)
    if rule == "carbon-aware":
        return model.policy()
    if rule == "performance-only":

        def performance_only(app_name: str, generation: int):
            result = scaling_factor(model.apps[app_name], generation)
            return result.factor if math.isfinite(result.factor) else None

        return performance_only
    if rule == "always":
        return lambda app_name, generation: 1.0
    raise ConfigError(f"unknown adoption rule {rule!r}")


#: Backward-compatible alias (pre-catalog private name).
_adoption_policy = adoption_policy


def _adoption_rule_one(
    rule: str, trace: VmTrace, gsf: Gsf, greensku: ServerSKU
) -> AdoptionAblation:
    """One adoption rule's mixed sizing + savings (worker entry)."""
    policy = _adoption_policy(rule, gsf, greensku)
    sizing = size_mixed_cluster(trace, gsf.baseline, greensku, policy)
    e_base = gsf.carbon_model.assess(gsf.baseline).per_server_total_kg
    e_green = gsf.carbon_model.assess(greensku).per_server_total_kg
    reference = sizing.baseline_only_servers * e_base
    mixed = (
        sizing.mixed_baseline_servers * e_base
        + sizing.mixed_green_servers * e_green
    )
    return AdoptionAblation(
        rule=rule,
        cluster_savings=1 - mixed / reference if reference else 0.0,
        green_servers=sizing.mixed_green_servers,
        baseline_servers=sizing.mixed_baseline_servers,
    )


def adoption_rule_ablation(
    trace: VmTrace,
    gsf: Optional[Gsf] = None,
    greensku: Optional[ServerSKU] = None,
    jobs: Optional[int] = None,
) -> List[AdoptionAblation]:
    """Carbon-aware adoption vs two naive rules.

    - ``carbon-aware``: the paper's rule (adopt iff the GreenSKU meets the
      SLO *and* saves carbon after scaling).
    - ``performance-only``: adopt whenever the SLO can be met (ignores
      the carbon cost of scaling).
    - ``always``: adopt everything unscaled (ignores SLOs entirely) — an
      upper bound on GreenSKU utilization that breaks performance goals.

    Each rule's full sizing search is independent; they fan out over
    ``jobs`` worker processes in rule order.
    """
    gsf = gsf or Gsf()
    greensku = greensku or greensku_full()
    return parallel_map(
        functools.partial(
            _adoption_rule_one, trace=trace, gsf=gsf, greensku=greensku
        ),
        list(ADOPTION_RULES),
        jobs=jobs,
    )


# -- growth buffer --------------------------------------------------------------


@dataclass(frozen=True)
class BufferAblation:
    """Buffer carbon under one buffer policy."""

    policy: str
    baseline_buffer_servers: int
    green_buffer_servers: int
    buffer_carbon_kg: float


def buffer_policy_ablation(
    baseline_serving: int,
    green_serving: int,
    model: Optional[CarbonModel] = None,
    buffer_fraction: float = 0.15,
) -> List[BufferAblation]:
    """The paper's single baseline-only buffer vs a dual buffer.

    The single buffer is deployable without GreenSKU demand history but
    pays for being all-baseline; the dual buffer is cheaper in carbon but
    needs per-SKU forecasts.
    """
    model = model or CarbonModel()
    baseline, greensku = baseline_gen3(), greensku_full()
    e_base = model.assess(baseline).per_server_total_kg
    e_green = model.assess(greensku).per_server_total_kg
    serving_cores = (
        baseline_serving * baseline.cores + green_serving * greensku.cores
    )
    single = baseline_only_buffer(
        serving_cores, baseline.cores, buffer_fraction
    )
    dual = proportional_dual_buffer(
        baseline_serving * baseline.cores,
        green_serving * greensku.cores,
        baseline.cores,
        greensku.cores,
        buffer_fraction,
    )
    return [
        BufferAblation(
            policy="baseline-only (paper)",
            baseline_buffer_servers=single.baseline_buffer_servers,
            green_buffer_servers=0,
            buffer_carbon_kg=single.baseline_buffer_servers * e_base,
        ),
        BufferAblation(
            policy="proportional dual",
            baseline_buffer_servers=dual.baseline_buffer_servers,
            green_buffer_servers=dual.green_buffer_servers,
            buffer_carbon_kg=(
                dual.baseline_buffer_servers * e_base
                + dual.green_buffer_servers * e_green
            ),
        ),
    ]


# -- CXL fraction ---------------------------------------------------------------


@dataclass(frozen=True)
class CxlFractionAblation:
    """Per-core carbon at one reused-DDR4 share."""

    cxl_dimms: int
    cxl_fraction: float
    total_per_core: float
    savings_vs_baseline: float


def cxl_fraction_sweep(
    dimm_counts: Sequence[int] = (0, 4, 8, 12, 16),
    model: Optional[CarbonModel] = None,
) -> List[CxlFractionAblation]:
    """Sweep how much memory rides behind CXL on reused DDR4.

    Each reused DIMM removes embodied carbon but adds controller power;
    GreenSKU-CXL's 8 DIMMs (25%) sit near the knee under the default
    carbon intensity.  Total capacity is held at 1024 GB where possible
    by trading 64 GB DDR5 DIMMs for pairs of 32 GB DDR4 DIMMs.
    """
    model = model or CarbonModel()
    baseline_per_core = model.assess(baseline_gen3()).total_per_core
    results = []
    for cxl_dimms in dimm_counts:
        if cxl_dimms % 2:
            raise ConfigError("cxl_dimms must be even (pairs replace DDR5)")
        ddr5 = 16 - cxl_dimms // 2
        controllers = (cxl_dimms + 3) // 4
        parts = [
            (catalog.BERGAMO, 1),
            (catalog.DDR5_64GB, ddr5),
            (catalog.SSD_4TB_NEW, 5),
        ]
        if cxl_dimms:
            parts += [
                (catalog.DDR4_32GB_REUSED, cxl_dimms),
                (catalog.CXL_CONTROLLER, controllers),
            ]
        sku = ServerSKU.build(
            f"CXL-sweep-{cxl_dimms}", parts + _platform_parts()
        )
        per_core = model.assess(sku).total_per_core
        results.append(
            CxlFractionAblation(
                cxl_dimms=cxl_dimms,
                cxl_fraction=sku.cxl_fraction,
                total_per_core=per_core,
                savings_vs_baseline=1 - per_core / baseline_per_core,
            )
        )
    return results
