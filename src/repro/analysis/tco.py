"""Section VII-A: Total Cost of Ownership analysis.

GSF's structure is metric-agnostic: replacing the carbon model's
kgCO2e-per-part data with dollars-per-part yields a TCO model, which the
paper uses to find that a cost-efficient SKU is only ~5% cheaper than the
carbon-efficient GreenSKU.  Azure's real cost data is sensitive; the
defaults here are list-price-order estimates that reproduce the paper's
high-level conclusion (reused parts are nearly free, so carbon-efficient
designs are close to cost-efficient ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigError
from ..core.units import energy_kwh, years_to_hours
from ..hardware.components import Category, CpuSpec, DramSpec, SsdSpec
from ..hardware.datacenter import DataCenterConfig
from ..hardware.sku import ServerSKU


@dataclass(frozen=True)
class CostData:
    """Dollar-cost parameters for the TCO model.

    Attributes:
        cpu_usd_per_core: New CPU cost per core.
        dram_usd_per_gb: New DRAM cost per GB.
        ssd_usd_per_tb: New SSD cost per TB.
        cxl_controller_usd: Cost of one CXL controller card (controller
            silicon plus the carrier board holding four DIMMs).
        nic_usd / platform_usd: Platform part costs.
        reused_part_discount: Fraction of new cost charged for a reused
            part.  Calibrated at 0.65: salvage is cheap but
            requalification, harvest labor, adapters, and 3D-printed
            carriers are not — which is why reuse is a *carbon* win far
            more than a cost win, and why the cost-efficient SKU ends up
            only ~5% cheaper than the carbon-efficient GreenSKU
            (Section VII-A).
        electricity_usd_per_kwh: Energy price for opex.
        maintenance_usd_per_repair: Cost per repair action.
    """

    cpu_usd_per_core: float = 55.0
    dram_usd_per_gb: float = 4.0
    ssd_usd_per_tb: float = 90.0
    cxl_controller_usd: float = 700.0
    nic_usd: float = 350.0
    platform_usd: float = 1400.0
    reused_part_discount: float = 0.65
    electricity_usd_per_kwh: float = 0.08
    maintenance_usd_per_repair: float = 600.0

    def __post_init__(self) -> None:
        if not 0 <= self.reused_part_discount <= 1:
            raise ConfigError("reused-part discount must be in [0, 1]")


@dataclass(frozen=True)
class TcoAssessment:
    """Lifetime TCO of one server, split into capex and opex."""

    sku_name: str
    capex_usd: float
    opex_usd: float
    cores: int

    @property
    def total_usd(self) -> float:
        return self.capex_usd + self.opex_usd

    @property
    def usd_per_core(self) -> float:
        return self.total_usd / self.cores


class TcoModel:
    """Prices SKUs in dollars the way the carbon model prices them in CO2e."""

    def __init__(
        self,
        costs: Optional[CostData] = None,
        datacenter: Optional[DataCenterConfig] = None,
    ):
        self.costs = costs or CostData()
        self.datacenter = datacenter or DataCenterConfig()

    def part_capex(self, spec, count: int) -> float:
        """Purchase cost of ``count`` parts, honoring reuse discounts."""
        costs = self.costs
        if isinstance(spec, CpuSpec):
            unit = costs.cpu_usd_per_core * spec.cores
        elif isinstance(spec, DramSpec):
            unit = costs.dram_usd_per_gb * spec.capacity_gb
        elif isinstance(spec, SsdSpec):
            unit = costs.ssd_usd_per_tb * spec.capacity_tb
        elif spec.category == Category.CXL:
            unit = costs.cxl_controller_usd
        elif spec.category == Category.NIC:
            unit = costs.nic_usd
        else:
            unit = costs.platform_usd
        if spec.reused:
            unit *= costs.reused_part_discount
        return unit * count

    def assess(self, sku: ServerSKU) -> TcoAssessment:
        """Lifetime TCO of one server (capex + energy + repairs)."""
        dc = self.datacenter
        capex = sum(
            self.part_capex(spec, count) for spec, count in sku.iter_parts()
        )
        power = sum(
            spec.powered_watts(dc.derate_factor) * count
            for spec, count in sku.iter_parts()
        )
        energy = energy_kwh(
            power * dc.pue, years_to_hours(dc.lifetime_years)
        )
        opex = energy * self.costs.electricity_usd_per_kwh
        # Repairs over the lifetime, from the reliability model.
        from ..reliability.afr import server_afr

        repairs = (
            server_afr(sku).repair_rate() / 100.0 * dc.lifetime_years
        )
        opex += repairs * self.costs.maintenance_usd_per_repair
        return TcoAssessment(
            sku_name=sku.name,
            capex_usd=capex,
            opex_usd=opex,
            cores=sku.cores,
        )

    def per_core_delta(
        self, cost_efficient: ServerSKU, carbon_efficient: ServerSKU
    ) -> float:
        """How much cheaper per core the cost-efficient SKU is (fraction).

        The paper reports ~5%: the carbon-efficient GreenSKU's TCO is only
        slightly above the cost-optimal design's.
        """
        cheap = self.assess(cost_efficient).usd_per_core
        green = self.assess(carbon_efficient).usd_per_core
        return (green - cheap) / green


def cost_efficient_sku() -> ServerSKU:
    """The TCO-optimal design under the default cost data.

    All-new parts on the efficient CPU: no CXL carriers, adapters, or
    requalification — the configuration a purely cost-driven designer
    would pick for the same core count and memory:core ratio of 8.
    """
    from ..hardware import catalog
    from ..hardware.sku import _platform_parts

    return ServerSKU.build(
        "Cost-Efficient",
        [
            (catalog.BERGAMO, 1),
            (catalog.DDR5_64GB, 16),
            (catalog.SSD_4TB_NEW, 5),
        ]
        + _platform_parts(),
    )
