"""Marginals validation: do ingested traces look like the paper's?

The synthetic generator encodes the *published* marginals of Azure's
workload; real ingested traces (``repro.allocation.ingest``) carry their
own.  This module closes the loop in both directions:

- :func:`fit_trace_params` — a :class:`TraceParams` method-of-moments
  fit over any trace's columns, so the synthetic generator can be
  re-parameterized to mimic an ingested capture;
- :func:`marginals_report` — a deterministic JSON-able report comparing
  an ingested trace's size / memory / lifetime / arrival-rate marginals
  against a synthetic reference via exact two-sample KS distances and
  decile tables (the offline stand-in for Fig. 9's "replayed production
  traces" claim: *how far* is our synthetic workload from a real one?);
- :func:`validate_marginals_report` — the schema gate CI applies to the
  emitted artifact.

Everything is a pure function of the trace bytes and the seed — no
timestamps, no environment — so reports are byte-stable across runs,
machines, and ``--jobs`` settings.
"""

from __future__ import annotations

import math
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..allocation.traces import TraceParams, VmTrace, generate_trace

#: Schema tag stamped into every report; bump on layout changes.
MARGINALS_SCHEMA = "repro-marginals/1"

#: The marginal metrics a report always covers.
METRICS = (
    "core_size",
    "memory_gb",
    "lifetime_hours",
    "interarrival_hours",
)

#: Decile grid used for the CDF tables.
_QUANTILES = tuple(round(q / 10.0, 1) for q in range(11))

#: Keep at most this many fitted memory-per-core buckets.
_MAX_MEM_BUCKETS = 8


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Exact two-sample Kolmogorov-Smirnov distance.

    ``sup_x |ECDF_a(x) - ECDF_b(x)|`` evaluated on the pooled sample via
    ``searchsorted`` — no SciPy, no binning error.
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        return 1.0
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def _normalized(weights: np.ndarray) -> tuple:
    """Weights as a tuple summing to exactly 1 (last takes the slack)."""
    weights = weights / weights.sum()
    values = [float(w) for w in weights[:-1]]
    values.append(1.0 - sum(values))
    return tuple(values)


def _beta_moments(samples: np.ndarray) -> tuple:
    """Beta(alpha, beta) method-of-moments fit over (0, 1) samples."""
    default = TraceParams()
    if samples.size < 2:
        return default.mem_touch_alpha, default.mem_touch_beta
    clipped = np.clip(samples, 0.01, 0.99)
    mean = float(clipped.mean())
    var = float(clipped.var())
    if var <= 1e-9:
        return default.mem_touch_alpha, default.mem_touch_beta
    common = mean * (1.0 - mean) / var - 1.0
    if common <= 0:
        return default.mem_touch_alpha, default.mem_touch_beta
    return max(mean * common, 1e-3), max((1.0 - mean) * common, 1e-3)


def _diurnal_amplitude(arrival_hours: np.ndarray) -> float:
    """First-harmonic Fourier amplitude of the daily arrival pattern.

    For arrivals with rate ``lambda(t) = base * (1 + A sin(2 pi t/24))``
    the magnitude of ``mean(exp(i 2 pi t / 24))`` over arrival times
    estimates ``A / 2``; doubling recovers ``A``.
    """
    if arrival_hours.size < 8:
        return 0.0
    phase = np.exp(2j * np.pi * arrival_hours / 24.0)
    amplitude = 2.0 * float(np.abs(phase.mean()))
    return min(max(amplitude, 0.0), 0.95)


def fit_trace_params(trace: VmTrace) -> TraceParams:
    """Method-of-moments :class:`TraceParams` fit over a trace.

    Every fitted field is clipped into the generator's validated domain,
    so the result always constructs — feeding it back through
    :func:`~repro.allocation.traces.generate_trace` yields a synthetic
    twin with matched marginals.
    """
    columns = trace.columns
    if columns.n == 0:
        raise ValueError("cannot fit params to an empty trace")
    defaults = TraceParams()

    core_values, core_counts = np.unique(columns.cores, return_counts=True)
    core_sizes = tuple(int(v) for v in core_values)
    core_weights = _normalized(core_counts.astype(np.float64))

    per_core = columns.memory_gb / columns.cores
    mem_values, mem_counts = np.unique(
        np.round(per_core, 3), return_counts=True
    )
    if mem_values.size > _MAX_MEM_BUCKETS:
        top = np.sort(np.argsort(mem_counts)[-_MAX_MEM_BUCKETS:])
        mem_values, mem_counts = mem_values[top], mem_counts[top]
    mem_buckets = tuple(float(v) for v in mem_values)
    mem_weights = _normalized(mem_counts.astype(np.float64))

    lifetimes = columns.lifetime_hours
    finite = lifetimes[np.isfinite(lifetimes)]
    long_mask = finite >= 24.0
    n_long = int(long_mask.sum()) + int(lifetimes.size - finite.size)
    long_lived_fraction = min(max(n_long / lifetimes.size, 0.0), 1.0)
    short = finite[~long_mask]
    long_finite = finite[long_mask]
    short_mean = (
        float(short.mean()) if short.size else defaults.short_lifetime_hours
    )
    long_mean = (
        float(long_finite.mean())
        if long_finite.size
        else defaults.long_lifetime_hours
    )

    gen_counts = np.array(
        [(columns.generation == g).sum() for g in (1, 2, 3)],
        dtype=np.float64,
    )
    if gen_counts.sum() == 0:
        generation_mix = defaults.generation_mix
    else:
        generation_mix = _normalized(gen_counts)

    window = trace.duration_hours
    departures = columns.arrival_hours + columns.lifetime_hours
    end = trace.end_hours
    overlap = np.clip(
        np.minimum(departures, end) - columns.arrival_hours, 0.0, None
    )
    mean_vms = max(1, int(round(float(overlap.sum()) / max(window, 1e-9))))

    return TraceParams(
        duration_days=max(window / 24.0, 1e-3),
        mean_concurrent_vms=mean_vms,
        core_sizes=core_sizes,
        core_size_weights=core_weights,
        memory_per_core_gb=mem_buckets,
        memory_per_core_weights=mem_weights,
        short_lifetime_hours=max(short_mean, 1e-3),
        long_lifetime_hours=max(long_mean, 24.0),
        long_lived_fraction=long_lived_fraction,
        generation_mix=generation_mix,
        full_node_fraction=min(
            float(columns.full_node.mean()), 0.999
        ),
        full_node_lifetime_hours=defaults.full_node_lifetime_hours,
        diurnal_amplitude=_diurnal_amplitude(
            columns.arrival_hours - columns.start_hours()
        ),
        mem_touch_alpha=_beta_moments(columns.max_memory_fraction)[0],
        mem_touch_beta=_beta_moments(columns.max_memory_fraction)[1],
    )


def _metric_samples(trace: VmTrace, metric: str) -> np.ndarray:
    columns = trace.columns
    if metric == "core_size":
        return columns.cores.astype(np.float64)
    if metric == "memory_gb":
        return np.asarray(columns.memory_gb, dtype=np.float64)
    if metric == "lifetime_hours":
        finite = columns.lifetime_hours[np.isfinite(columns.lifetime_hours)]
        return np.asarray(finite, dtype=np.float64)
    if metric == "interarrival_hours":
        arrivals = np.sort(columns.arrival_hours)
        return np.diff(arrivals) if arrivals.size > 1 else np.empty(0)
    raise ValueError(f"unknown metric {metric!r}")


def _deciles(samples: np.ndarray) -> List[float]:
    if samples.size == 0:
        return [0.0] * len(_QUANTILES)
    return [
        float(np.quantile(samples, q)) for q in _QUANTILES
    ]


def marginals_report(
    trace: VmTrace,
    reference_params: Optional[TraceParams] = None,
    seed: int = 7,
) -> dict:
    """Synthetic-vs-ingested marginals comparison, as a JSON-able dict.

    A reference trace is generated from ``reference_params`` (default:
    the paper's published marginals) and compared metric by metric:
    exact KS distance, means, and decile tables for both sides.  The
    report carries no timestamps or environment — identical inputs give
    byte-identical JSON.
    """
    reference_params = reference_params or TraceParams()
    reference = generate_trace(
        seed=seed, params=reference_params, name="marginals-reference"
    )
    metrics: Dict[str, dict] = {}
    for metric in METRICS:
        sample = _metric_samples(trace, metric)
        ref_sample = _metric_samples(reference, metric)
        metrics[metric] = {
            "ks_distance": ks_distance(sample, ref_sample),
            "trace_mean": float(sample.mean()) if sample.size else 0.0,
            "reference_mean": (
                float(ref_sample.mean()) if ref_sample.size else 0.0
            ),
            "quantiles": list(_QUANTILES),
            "trace_deciles": _deciles(sample),
            "reference_deciles": _deciles(ref_sample),
        }
    lifetimes = trace.columns.lifetime_hours
    infinite_fraction = (
        float(np.isinf(lifetimes).mean()) if lifetimes.size else 0.0
    )
    fitted = fit_trace_params(trace)
    return {
        "schema": MARGINALS_SCHEMA,
        "trace": {
            "name": trace.name,
            "n_vms": int(trace.columns.n),
            "digest": trace.digest(),
            "start_hours": trace.start_hours,
            "duration_hours": trace.duration_hours,
            "infinite_lifetime_fraction": infinite_fraction,
        },
        "reference": {
            "seed": seed,
            "n_vms": int(reference.columns.n),
            "digest": reference.digest(),
            "params": repr(reference_params),
        },
        "metrics": metrics,
        "fitted_params": asdict(fitted),
    }


def validate_marginals_report(report: dict) -> List[str]:
    """Schema-check a marginals report; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not a dict"]
    if report.get("schema") != MARGINALS_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, "
            f"expected {MARGINALS_SCHEMA!r}"
        )
    for section in ("trace", "reference", "metrics", "fitted_params"):
        if not isinstance(report.get(section), dict):
            problems.append(f"missing section {section!r}")
    trace = report.get("trace", {})
    if isinstance(trace, dict):
        for key in ("name", "n_vms", "digest", "duration_hours"):
            if key not in trace:
                problems.append(f"trace section missing {key!r}")
    metrics = report.get("metrics", {})
    if isinstance(metrics, dict):
        for metric in METRICS:
            entry = metrics.get(metric)
            if not isinstance(entry, dict):
                problems.append(f"missing metric {metric!r}")
                continue
            ks = entry.get("ks_distance")
            if (
                not isinstance(ks, (int, float))
                or not math.isfinite(ks)
                or not 0.0 <= ks <= 1.0
            ):
                problems.append(f"{metric}: ks_distance {ks!r} not in [0, 1]")
            for side in ("trace_deciles", "reference_deciles"):
                deciles = entry.get(side)
                if (
                    not isinstance(deciles, list)
                    or len(deciles) != len(_QUANTILES)
                ):
                    problems.append(f"{metric}: malformed {side}")
                elif any(b < a for a, b in zip(deciles, deciles[1:])):
                    problems.append(f"{metric}: {side} not non-decreasing")
    return problems
