"""Annual failure rate (AFR) aggregation (GSF maintenance component input).

The paper approximates a server's AFR by summing its components' AFRs
(Section V): DIMMs contribute ~0.1 and SSDs ~0.2 failures per 100 servers
per year, and DIMM+SSD failures constitute half of a baseline server's AFR
(Hyrax).  Reused DIMMs/SSDs keep new-part AFRs, since field data shows
reused parts fail at the same or lower rates (Fig. 2).

With 12 DIMMs and 6 SSDs the baseline server's AFR is 4.8; GreenSKU-Full's
20 DIMMs and 14 SSDs give 7.2.  Fail-In-Place (Hyrax) absorbs 75% of
DIMM/SSD failures, reducing actionable repair rates to 3.0 and 3.6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigError
from ..hardware.sku import ServerSKU

#: The paper's conservative Fail-In-Place effectiveness for DRAM and SSD.
DEFAULT_FIP_EFFECTIVENESS = 0.75


@dataclass(frozen=True)
class AfrBreakdown:
    """A server's AFR split into FIP-eligible and other failures.

    All rates are failures per 100 servers per year.
    """

    sku_name: str
    fip_eligible: float
    other: float

    @property
    def total(self) -> float:
        """Raw server AFR (baseline: 4.8; GreenSKU-Full: 7.2)."""
        return self.fip_eligible + self.other

    def repair_rate(
        self, fip_effectiveness: float = DEFAULT_FIP_EFFECTIVENESS
    ) -> float:
        """Actionable repairs per 100 servers/year after Fail-In-Place.

        FIP absorbs ``fip_effectiveness`` of DIMM/SSD failures in place;
        the rest, plus all other failures, require a repair action.

        >>> AfrBreakdown("Baseline", 2.4, 2.4).repair_rate()
        3.0
        """
        if not 0 <= fip_effectiveness <= 1:
            raise ConfigError("FIP effectiveness must be in [0, 1]")
        return self.other + self.fip_eligible * (1.0 - fip_effectiveness)


def server_afr(sku: ServerSKU) -> AfrBreakdown:
    """Aggregate a SKU's component AFRs into a server AFR breakdown."""
    eligible = 0.0
    other = 0.0
    for spec, count in sku.iter_parts():
        contribution = spec.afr_per_100_servers * count
        if spec.fip_eligible:
            eligible += contribution
        else:
            other += contribution
    return AfrBreakdown(sku_name=sku.name, fip_eligible=eligible, other=other)
