"""GSF's maintenance component: out-of-service overheads (Section IV-B / V).

When servers fail, a fraction of the fleet sits out of service awaiting
repair.  By Little's law the out-of-service fraction is the product of the
repair arrival rate and the average repair time.  A SKU with a higher AFR
therefore needs extra deployed servers, which costs carbon.

The paper's Section V comparison (reproduced by :func:`paper_maintenance_
comparison`): the baseline repairs at 3 per 100 servers/year and
GreenSKU-Full at 3.6 (after Fail-In-Place), but GreenSKU-Full needs only
0.66 servers per baseline server (more cores per server, net of VM scaling)
at 1.262x the per-server emissions — so the maintenance carbon overheads
``C_OOS`` are 3.0 vs ~2.98: negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigError
from ..hardware.sku import ServerSKU, baseline_gen3, greensku_full
from .afr import DEFAULT_FIP_EFFECTIVENESS, AfrBreakdown, server_afr

#: Average time a failed server waits for + undergoes repair, in days.
DEFAULT_REPAIR_TIME_DAYS = 10.0


def out_of_service_fraction(
    repair_rate_per_100: float,
    repair_time_days: float = DEFAULT_REPAIR_TIME_DAYS,
) -> float:
    """Little's law: fraction of servers out of service at any time.

    ``L = lambda * W`` with ``lambda`` the repair rate (per server per
    year) and ``W`` the repair time (years).

    >>> round(out_of_service_fraction(3.6, repair_time_days=365.0/3.6), 2)
    0.01
    """
    if repair_rate_per_100 < 0:
        raise ConfigError("repair rate must be >= 0")
    if repair_time_days < 0:
        raise ConfigError("repair time must be >= 0")
    per_server_per_year = repair_rate_per_100 / 100.0
    return per_server_per_year * (repair_time_days / 365.0)


@dataclass(frozen=True)
class MaintenanceAssessment:
    """Maintenance overheads of one SKU.

    Attributes:
        sku_name: The SKU.
        afr: Raw AFR breakdown (per 100 servers/year).
        repair_rate: Actionable repairs per 100 servers/year after FIP.
        oos_fraction: Out-of-service server fraction (Little's law).
        c_oos: Relative maintenance carbon overhead: repair rate x servers
            needed (relative to baseline) x per-server emissions (relative
            to baseline).  The baseline's own ``c_oos`` equals its repair
            rate.
    """

    sku_name: str
    afr: AfrBreakdown
    repair_rate: float
    oos_fraction: float
    c_oos: float


def assess_maintenance(
    sku: ServerSKU,
    servers_ratio: float = 1.0,
    per_server_emissions_ratio: float = 1.0,
    fip_effectiveness: float = DEFAULT_FIP_EFFECTIVENESS,
    repair_time_days: float = DEFAULT_REPAIR_TIME_DAYS,
) -> MaintenanceAssessment:
    """Maintenance assessment of ``sku`` relative to a baseline.

    Args:
        sku: The SKU to assess.
        servers_ratio: Servers of this SKU needed per baseline server to
            host the same workload (paper: 0.66 for GreenSKU-Full, from
            its higher core count net of VM scaling).
        per_server_emissions_ratio: This SKU's per-server lifetime
            emissions over the baseline's (paper: 1.262).
        fip_effectiveness: Fail-In-Place effectiveness on DIMM/SSD
            failures.
        repair_time_days: Average repair turnaround.
    """
    if servers_ratio < 0 or per_server_emissions_ratio < 0:
        raise ConfigError("ratios must be >= 0")
    afr = server_afr(sku)
    repair_rate = afr.repair_rate(fip_effectiveness)
    return MaintenanceAssessment(
        sku_name=sku.name,
        afr=afr,
        repair_rate=repair_rate,
        oos_fraction=out_of_service_fraction(repair_rate, repair_time_days),
        c_oos=repair_rate * servers_ratio * per_server_emissions_ratio,
    )


def paper_maintenance_comparison(
    baseline: Optional[ServerSKU] = None,
    greensku: Optional[ServerSKU] = None,
    servers_ratio: float = 0.66,
    per_server_emissions_ratio: float = 1.262,
):
    """The Section V maintenance comparison: baseline vs GreenSKU-Full.

    Returns ``(baseline_assessment, greensku_assessment)`` with the
    paper's defaults: the GreenSKU needs 0.66 servers per baseline server
    at 1.262x per-server emissions, yielding C_OOS of 3.0 vs ~2.98.
    """
    baseline = baseline or baseline_gen3()
    greensku = greensku or greensku_full()
    base = assess_maintenance(baseline)
    green = assess_maintenance(
        greensku,
        servers_ratio=servers_ratio,
        per_server_emissions_ratio=per_server_emissions_ratio,
    )
    return base, green
