"""GSF maintenance component: AFRs, Fail-In-Place, failure telemetry."""

from .afr import DEFAULT_FIP_EFFECTIVENESS, AfrBreakdown, server_afr
from .maintenance import (
    DEFAULT_REPAIR_TIME_DAYS,
    MaintenanceAssessment,
    assess_maintenance,
    out_of_service_fraction,
    paper_maintenance_comparison,
)
from .traces import (
    FailureTraceParams,
    expected_rate,
    moving_average,
    steady_state_slope,
    synthesize_failure_trace,
)

__all__ = [
    "DEFAULT_FIP_EFFECTIVENESS",
    "AfrBreakdown",
    "server_afr",
    "DEFAULT_REPAIR_TIME_DAYS",
    "MaintenanceAssessment",
    "assess_maintenance",
    "out_of_service_fraction",
    "paper_maintenance_comparison",
    "FailureTraceParams",
    "expected_rate",
    "moving_average",
    "steady_state_slope",
    "synthesize_failure_trace",
]
