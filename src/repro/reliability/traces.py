"""Synthetic DIMM failure-rate telemetry (paper Fig. 2).

The paper's Fig. 2 plots normalized DDR4 DIMM failure rates against
deployment time over a 7-year production window: after an initial period of
elevated infant mortality, the moving average stays flat — the empirical
basis for reusing old DIMMs.  Azure's raw telemetry is proprietary; this
module synthesizes a statistically equivalent monthly failure-rate process
(exponentially decaying infant mortality plus a flat intrinsic rate plus
sampling noise), following the field studies the paper cites (Sridharan &
Liberty 2012; Siddiqua et al. 2017).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.errors import ConfigError
from ..core.rng import RngFactory


@dataclass(frozen=True)
class FailureTraceParams:
    """Parameters of the synthetic failure process.

    Rates are normalized to the steady-state failure rate = 1.0, matching
    the paper's normalized y-axis.

    Attributes:
        months: Trace length (paper: a 7-year window, 84 months).
        infant_mortality: Extra failure rate at month 0 (decays away).
        infant_decay_months: e-folding time of the infant-mortality decay.
        noise_cv: Coefficient of variation of monthly sampling noise
            (gamma-distributed multiplicative noise).
        wearout_onset_month: Month at which age-related wear-out would
            begin; ``None``/past-end for DRAM, which shows no aging within
            the observed window (the paper's accelerated-aging studies
            show flat AFRs beyond 12 years).
        wearout_slope_per_month: Linear rate increase after onset.
    """

    months: int = 84
    infant_mortality: float = 1.2
    infant_decay_months: float = 4.0
    noise_cv: float = 0.18
    wearout_onset_month: int = 10_000
    wearout_slope_per_month: float = 0.0

    def __post_init__(self) -> None:
        if self.months < 1:
            raise ConfigError("trace needs at least one month")
        if self.infant_mortality < 0 or self.noise_cv < 0:
            raise ConfigError("rates and noise must be >= 0")
        if self.infant_decay_months <= 0:
            raise ConfigError("infant decay time must be > 0")


def expected_rate(params: FailureTraceParams, month: np.ndarray) -> np.ndarray:
    """Noise-free expected failure rate at each month (steady state = 1)."""
    rate = 1.0 + params.infant_mortality * np.exp(
        -np.asarray(month, dtype=float) / params.infant_decay_months
    )
    past_onset = np.maximum(
        0.0, np.asarray(month, dtype=float) - params.wearout_onset_month
    )
    return rate + params.wearout_slope_per_month * past_onset


def synthesize_failure_trace(
    params: FailureTraceParams = FailureTraceParams(),
    seed: int = 7,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate (months, normalized monthly failure rates).

    Noise is gamma-distributed with unit mean so rates stay positive and
    the moving average converges to the expected rate.
    """
    months = np.arange(params.months)
    mean = expected_rate(params, months)
    if params.noise_cv == 0:
        return months, mean
    rng = RngFactory(seed).stream("dimm-failures")
    shape = 1.0 / (params.noise_cv ** 2)
    noise = rng.gamma(shape=shape, scale=1.0 / shape, size=params.months)
    return months, mean * noise


def moving_average(values: np.ndarray, window: int = 6) -> np.ndarray:
    """Trailing moving average (the black line in Fig. 2).

    The first ``window - 1`` points average over the data available so far.
    """
    if window < 1:
        raise ConfigError("window must be >= 1")
    values = np.asarray(values, dtype=float)
    out = np.empty_like(values)
    cumsum = np.cumsum(values)
    for i in range(len(values)):
        lo = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def steady_state_slope(
    months: np.ndarray, rates: np.ndarray, skip_months: int = 24
) -> float:
    """Least-squares slope of the failure rate after the infant period.

    The paper's claim is that this is ~0 (failure rates stay constant over
    the 7-year window); units are normalized-rate per month.
    """
    months = np.asarray(months, dtype=float)
    rates = np.asarray(rates, dtype=float)
    mask = months >= skip_months
    if mask.sum() < 2:
        raise ConfigError("not enough steady-state months to fit a slope")
    slope, _intercept = np.polyfit(months[mask], rates[mask], 1)
    return float(slope)
