"""Discrete-event simulation of a multi-core server as an FCFS queue.

The paper measures 95th-percentile tail latency versus offered load (QPS)
for latency-critical applications on real servers (Figs. 7 and 8).  We
reproduce those curves with an open M/G/c queue: Poisson arrivals at the
offered QPS, ``c`` cores each serving one request at a time, FCFS dispatch.

For an FCFS multi-server queue the full event calendar collapses to a
single min-heap of per-core free times: each arriving request is assigned
to the earliest-free core, starts at ``max(arrival, core_free)``, and its
response time is ``start + service - arrival``.  This is exact for FCFS.
Arrivals and services are always drawn as whole per-stream blocks from
named :class:`~repro.core.rng.RngFactory` streams, so every backend sees
the bit-identical request stream.

Two dispatch backends produce **bit-identical** :class:`SimResult` /
:class:`SimGrid` statistics (mirroring the trace pipeline's
``REPRO_TRACE_GENERATOR`` contract):

- ``vectorized`` (default): :func:`simulate_fcfs_batch` runs a whole
  (app × load × platform × cores) grid in lockstep — one Python loop
  over the request index with numpy operating across the batch axis,
  so whole Table III / Fig. 7 grids evaluate in one call.  Only the
  popped *value* of the per-core free-time multiset matters for FCFS,
  so replacing the heap's pop-min/push with ``argmin``/assignment over
  a padded ``(batch, cores)`` array reproduces the scalar recurrence
  exactly.
- ``reference``: the per-simulation scalar dispatch loop (plain-float
  heap, single-core fast path) — the oracle behind the equivalence
  tests and CI golden digests.  :func:`simulate_fcfs` always uses it
  for single runs (for one simulation the scalar loop is also the
  fastest implementation: ~3 million requests/second multi-core, ~4.5
  million single-core on one 2026 container core).

Select the grid backend with the ``REPRO_QUEUEING`` env var, the CLI's
``--queueing`` flag, or the ``method=`` argument of
:func:`simulate_fcfs_batch` and the latency-grid evaluators built on it.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import telemetry
from ..core.errors import ConfigError, SimulationError
from ..core.rng import RngFactory

#: Grid-dispatch backends and the env var selecting the process default.
QUEUEING_BACKENDS = ("vectorized", "reference")
BACKEND_ENV = "REPRO_QUEUEING"

#: Process-default backend installed by the CLI's ``--queueing`` flag;
#: ``None`` defers to the env var.
_default_backend: Optional[str] = None


def set_default_backend(name: Optional[str]) -> None:
    """Install a process-default queueing backend (the CLI's ``--queueing``).

    ``None`` clears the default, deferring to ``REPRO_QUEUEING``.
    """
    global _default_backend
    if name is not None and name not in QUEUEING_BACKENDS:
        raise ConfigError(
            f"unknown queueing backend {name!r}; "
            f"choose from {QUEUEING_BACKENDS}"
        )
    _default_backend = name


def resolve_backend(method: Optional[str] = None) -> str:
    """The grid backend: explicit arg > CLI default > env > vectorized."""
    if method is None:
        method = _default_backend
    if method is None:
        method = os.environ.get(BACKEND_ENV) or "vectorized"
    if method not in QUEUEING_BACKENDS:
        raise ConfigError(
            f"unknown queueing backend {method!r}; "
            f"choose from {QUEUEING_BACKENDS}"
        )
    return method


@dataclass(frozen=True)
class SimResult:
    """Latency statistics from one simulation run at one offered load.

    Attributes:
        offered_qps: Poisson arrival rate (requests/second).
        cores: Number of serving cores.
        mean_service_ms: Mean service time used.
        p50_ms, p95_ms, p99_ms: Response-time percentiles.
        mean_ms: Mean response time.
        utilization: Offered load over service capacity
            (``lambda * E[S] / c``); > 1 means the queue is unstable and
            latency is reported from a truncated, growing backlog.
        requests: Number of measured requests (after warmup).
        quantiles_ms: Extra response-time quantiles, in the order the
            ``quantiles=`` argument requested them (``None`` when none
            were requested).
    """

    offered_qps: float
    cores: int
    mean_service_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    utilization: float
    requests: int
    quantiles_ms: Optional[Tuple[float, ...]] = None

    @property
    def saturated(self) -> bool:
        """Whether the offered load exceeds service capacity."""
        return self.utilization >= 1.0


def sample_service_times(
    rng: np.random.Generator,
    n: int,
    mean_ms: float,
    cv: float = 1.0,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Draw ``n`` service times with the given mean and coefficient of
    variation.

    ``cv == 1`` draws exponential times (the M/M/c case); other values use
    a lognormal with matching first two moments, a standard stand-in for
    measured service-time distributions.

    ``out`` lets the batch path draw straight into a stream-matrix row.
    ``scale * standard_exponential()`` produces bit-for-bit the same
    values as ``exponential(scale)`` (the generator applies the same
    scaling), so the two exponential branches are interchangeable; the
    lognormal path has no such out-form and falls back to a copy.
    """
    if mean_ms <= 0:
        raise SimulationError(f"mean service time must be > 0, got {mean_ms}")
    if cv <= 0:
        raise SimulationError(f"service-time CV must be > 0, got {cv}")
    if abs(cv - 1.0) < 1e-12:
        if out is None:
            return rng.exponential(mean_ms, size=n)
        rng.standard_exponential(out=out)
        out *= mean_ms
        return out
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean_ms) - sigma2 / 2.0
    values = rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=n)
    if out is None:
        return values
    out[:] = values
    return out


def _request_stream(
    seed: int,
    offered_qps: float,
    mean_service_ms: float,
    cv: float,
    total: int,
    arrivals_out: Optional[np.ndarray] = None,
    services_out: Optional[np.ndarray] = None,
    inter_scratch: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Block-draw one simulation's (arrival, service) arrays.

    Both backends share this helper, so the request stream is
    bit-identical by construction.  The ``*_out``/``inter_scratch``
    buffers let the batch path draw straight into its stream-matrix
    rows instead of allocating (and page-faulting) fresh arrays per
    grid point; every out-form reproduces the allocating form bit for
    bit (same generator calls, same arithmetic).
    """
    rngs = RngFactory(seed)
    arrival_rng = rngs.stream("arrivals")
    if inter_scratch is None:
        inter_ms = arrival_rng.exponential(1000.0 / offered_qps, size=total)
    else:
        arrival_rng.standard_exponential(out=inter_scratch)
        inter_scratch *= 1000.0 / offered_qps
        inter_ms = inter_scratch
    arrivals = np.cumsum(inter_ms, out=arrivals_out)
    services = sample_service_times(
        rngs.stream("services"), total, mean_service_ms, cv,
        out=services_out,
    )
    return arrivals, services


def _dispatch_scalar(
    arrivals: np.ndarray, services: np.ndarray, cores: int
) -> np.ndarray:
    """The reference FCFS dispatch recurrence for one simulation.

    Plain-float lists avoid per-element numpy scalar boxing, and the
    arithmetic matches the lockstep batch recurrence bit for bit.
    """
    arrival_list = arrivals.tolist()
    service_list = services.tolist()
    response_list: list = []
    append = response_list.append
    if cores == 1:
        # Single-core fast path: the "earliest-free core" is always the
        # previous request's completion time — no heap needed.
        done = 0.0
        for arrival, service in zip(arrival_list, service_list):
            done = (done if done > arrival else arrival) + service
            append(done - arrival)
    else:
        free_at = [0.0] * cores
        heapq.heapify(free_at)
        heappush, heappop = heapq.heappush, heapq.heappop
        for arrival, service in zip(arrival_list, service_list):
            core_free = heappop(free_at)
            done = (core_free if core_free > arrival else arrival) + service
            heappush(free_at, done)
            append(done - arrival)
    return np.asarray(response_list)


def _validated_quantiles(
    quantiles: Optional[Sequence[float]],
) -> Optional[Tuple[float, ...]]:
    """Normalize the extra-quantile request, rejecting values outside (0, 1)."""
    if quantiles is None:
        return None
    levels = tuple(float(q) for q in quantiles)
    for q in levels:
        if not 0.0 < q < 1.0:
            raise SimulationError(
                f"quantiles must be in (0, 1), got {q}"
            )
    return levels


def _measured_stats(
    measured: np.ndarray, levels: Optional[Tuple[float, ...]]
) -> Tuple[float, float, float, float, Optional[Tuple[float, ...]]]:
    """(p50, p95, p99, mean, extra quantiles) of one measured window.

    The scalar path's statistics arithmetic — one ``np.percentile`` call
    for the standard percentiles, one for the extras, a contiguous
    ``mean``.  The batch path applies the same reductions along
    contiguous rows of the transposed response matrix, which numpy
    evaluates with identical per-row arithmetic (bit-identical results;
    the equivalence suite enforces this).
    """
    p50, p95, p99 = np.percentile(measured, [50, 95, 99])
    extras = None
    if levels is not None:
        extras = tuple(
            float(v)
            for v in np.percentile(measured, [100.0 * q for q in levels])
        )
    return float(p50), float(p95), float(p99), float(measured.mean()), extras


def simulate_fcfs(
    offered_qps: float,
    cores: int,
    mean_service_ms: float,
    cv: float = 1.0,
    requests: int = 60_000,
    warmup: int = 5_000,
    seed: int = 0,
    quantiles: Optional[Sequence[float]] = None,
) -> SimResult:
    """Simulate an open FCFS M/G/c queue and report latency percentiles.

    This is the scalar oracle: single simulations always run the tight
    reference dispatch loop (for one run it is also the fastest path).
    Batched grids go through :func:`simulate_fcfs_batch`, which is
    bit-identical to calling this per point.

    Args:
        offered_qps: Poisson arrival rate, requests per second.
        cores: Number of cores (servers in the queueing sense).
        mean_service_ms: Mean per-request service time, milliseconds.
        cv: Service-time coefficient of variation (1.0 = exponential).
        requests: Measured requests after warmup.
        warmup: Requests discarded to let the queue reach steady state.
        seed: RNG seed; identical seeds give identical results.
        quantiles: Extra response-time quantiles (each in (0, 1)) to
            report in ``SimResult.quantiles_ms``, beyond the standard
            p50/p95/p99.
    """
    if offered_qps <= 0:
        raise SimulationError(f"offered QPS must be > 0, got {offered_qps}")
    if cores < 1:
        raise SimulationError(f"need at least 1 core, got {cores}")
    levels = _validated_quantiles(quantiles)
    tel = telemetry.active()
    if tel is not None:
        t_start = time.perf_counter()
    total = requests + warmup
    arrivals, services = _request_stream(
        seed, offered_qps, mean_service_ms, cv, total
    )
    responses = _dispatch_scalar(arrivals, services, cores)
    measured = responses[warmup:]
    utilization = offered_qps * (mean_service_ms / 1000.0) / cores
    p50, p95, p99, mean, extras = _measured_stats(measured, levels)
    if tel is not None:
        tel.count_many(
            {"queueing.runs": 1, "queueing.events_simulated": total}
        )
        tel.record_timer(
            "queueing.simulate_fcfs", time.perf_counter() - t_start
        )
    return SimResult(
        offered_qps=offered_qps,
        cores=cores,
        mean_service_ms=mean_service_ms,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        mean_ms=mean,
        utilization=utilization,
        requests=requests,
        quantiles_ms=extras,
    )


@dataclass(frozen=True, eq=False)
class SimGrid:
    """SoA latency statistics for a batch of FCFS simulations.

    One entry per grid point; all arrays share the flattened broadcast
    shape of the parameters handed to :func:`simulate_fcfs_batch`.

    Attributes:
        offered_qps, cores, mean_service_ms, cv, seeds: The parameter
            arrays the grid was evaluated over (flattened).
        p50_ms, p95_ms, p99_ms, mean_ms, utilization: Per-point response
            statistics, bit-identical to per-point :func:`simulate_fcfs`.
        requests, warmup: The (uniform) per-point request counts.
        quantile_levels: Extra quantiles requested, or ``None``.
        quantiles_ms: ``(points, len(quantile_levels))`` array of the
            extra quantiles, or ``None``.
    """

    offered_qps: np.ndarray
    cores: np.ndarray
    mean_service_ms: np.ndarray
    cv: np.ndarray
    seeds: np.ndarray
    p50_ms: np.ndarray
    p95_ms: np.ndarray
    p99_ms: np.ndarray
    mean_ms: np.ndarray
    utilization: np.ndarray
    requests: int
    warmup: int
    quantile_levels: Optional[Tuple[float, ...]] = None
    quantiles_ms: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.offered_qps.size)

    def result(self, i: int) -> SimResult:
        """The ``i``-th grid point as a scalar :class:`SimResult`."""
        extras = None
        if self.quantiles_ms is not None:
            extras = tuple(float(v) for v in self.quantiles_ms[i])
        return SimResult(
            offered_qps=float(self.offered_qps[i]),
            cores=int(self.cores[i]),
            mean_service_ms=float(self.mean_service_ms[i]),
            p50_ms=float(self.p50_ms[i]),
            p95_ms=float(self.p95_ms[i]),
            p99_ms=float(self.p99_ms[i]),
            mean_ms=float(self.mean_ms[i]),
            utilization=float(self.utilization[i]),
            requests=self.requests,
            quantiles_ms=extras,
        )

    def results(self) -> List[SimResult]:
        """All grid points as scalar :class:`SimResult` rows."""
        return [self.result(i) for i in range(len(self))]

    def digest(self) -> str:
        """Content hash of parameters and statistics (the CI golden value)."""
        h = hashlib.sha256()
        h.update(f"repro-simgrid/1:{self.requests}:{self.warmup}".encode())
        for arr in (
            self.offered_qps, self.cores, self.mean_service_ms, self.cv,
            self.seeds, self.p50_ms, self.p95_ms, self.p99_ms,
            self.mean_ms, self.utilization,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        if self.quantile_levels is not None:
            h.update(repr(self.quantile_levels).encode())
            h.update(np.ascontiguousarray(self.quantiles_ms).tobytes())
        return h.hexdigest()


def _batch_params(
    offered_qps, cores, mean_service_ms, cv, seeds
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Broadcast, flatten, and validate the SoA parameter arrays."""
    qps = np.asarray(offered_qps, dtype=np.float64)
    cores_a = np.asarray(cores, dtype=np.int64)
    svc = np.asarray(mean_service_ms, dtype=np.float64)
    cv_a = np.asarray(cv, dtype=np.float64)
    seed_a = np.asarray(seeds, dtype=np.int64)
    try:
        qps, cores_a, svc, cv_a, seed_a = (
            np.ravel(a)
            for a in np.broadcast_arrays(qps, cores_a, svc, cv_a, seed_a)
        )
    except ValueError as exc:
        raise SimulationError(
            f"batch parameter arrays do not broadcast: {exc}"
        ) from None
    if qps.size == 0:
        raise SimulationError("batch must contain at least one grid point")
    if (qps <= 0).any():
        raise SimulationError("offered QPS must be > 0 at every grid point")
    if (cores_a < 1).any():
        raise SimulationError("need at least 1 core at every grid point")
    if (svc <= 0).any():
        raise SimulationError("mean service time must be > 0 everywhere")
    if (cv_a <= 0).any():
        raise SimulationError("service-time CV must be > 0 everywhere")
    return qps, cores_a, svc, cv_a, seed_a


#: Requests per fused dispatch block — sized so the three scratch
#: buffers stay a few MB even on wide grids.
_DISPATCH_BLOCK = 512

#: Grid-point tile for the block transposes inside the dispatch loop.
_DISPATCH_TILE = 128

#: Widest core count the bubble-pool dispatch handles: its per-request
#: bubble pass costs ``cores.max() - 1`` row operations over *every*
#: point in the batch, so one wide SKU would tax the whole grid
#: linearly.  Points above the limit fall back to the scalar oracle
#: (bit-identical by contract) and tick
#: ``queueing.wide_core_fallback``.
WIDE_CORE_LIMIT = 16


def _dispatch_batch(
    arrivals_t: np.ndarray,
    services_t: np.ndarray,
    cores: np.ndarray,
    warmup: int,
) -> np.ndarray:
    """Lockstep FCFS dispatch fused with its layout changes.

    ``arrivals_t``/``services_t`` are ``(points, total)`` — one
    contiguous row per grid point, the layout the RNG streams land in;
    ``cores`` is ``(points,)``.  The request loop wants the transposed
    ``(total, points)`` layout and the percentile reductions afterwards
    want rows again, but reordering the full matrices costs two DRAM
    passes each (and a naive strided transpose misses the TLB on every
    element).  The loop therefore walks request blocks, tile-transposing
    each block into small reused scratch buffers on the way in and
    writing measured responses back transposed on the way out, so the
    full matrices never round-trip main memory in the wide layout.

    Each point's per-core free times live in an ascending-sorted pool
    of row buffers (inactive slots padded with ``inf``), so the
    earliest-free core is always ``rows[0]`` and re-inserting a
    completion is a single bubble pass of in-place min/max swaps — far
    cheaper than an argmin + scatter per request, and the buffers
    rotate so no pass allocates.  Only the popped *value* matters for
    FCFS, so this reproduces the reference heap bit for bit.

    Returns the ``(points, requests)`` post-warmup response matrix.
    """
    points, total = arrivals_t.shape
    measured = np.empty((points, total - warmup))
    cmax = int(cores.max())
    rows = [
        np.where(cores > k, 0.0, np.inf).astype(float)
        for k in range(cmax)
    ]
    spare = np.empty(points)
    block, tile = _DISPATCH_BLOCK, _DISPATCH_TILE
    arr_blk = np.empty((block, points))
    svc_blk = np.empty((block, points))
    resp_blk = np.empty((block, points))
    minimum, maximum, subtract = np.minimum, np.maximum, np.subtract
    for i0 in range(0, total, block):
        nb = min(block, total - i0)
        for j0 in range(0, points, tile):
            cols = slice(j0, j0 + tile)
            arr_blk[:nb, cols] = arrivals_t[cols, i0:i0 + nb].T
            svc_blk[:nb, cols] = services_t[cols, i0:i0 + nb].T
        for i in range(nb):
            arrival = arr_blk[i]
            done = spare
            maximum(rows[0], arrival, out=done)
            done += svc_blk[i]
            subtract(done, arrival, out=resp_blk[i])
            # The popped minimum's buffer becomes the new spare; the
            # completion bubbles up until the pool is sorted again.
            spare = rows[0]
            rows[0] = done
            for k in range(cmax - 1):
                lo, hi = rows[k], rows[k + 1]
                minimum(lo, hi, out=spare)
                maximum(lo, hi, out=hi)
                rows[k], spare = spare, lo
        first = max(i0, warmup)
        if first < i0 + nb:
            off = first - i0
            for j0 in range(0, points, tile):
                cols = slice(j0, j0 + tile)
                measured[cols, first - warmup:i0 + nb - warmup] = (
                    resp_blk[off:nb, cols].T
                )
    return measured


def _scalar_rows(qps, cores_a, svc, cv_a, seed_a, requests, warmup, levels):
    """Per-point oracle evaluation of a (sub)grid; returns result arrays."""
    rows = [
        simulate_fcfs(
            float(qps[b]),
            int(cores_a[b]),
            float(svc[b]),
            cv=float(cv_a[b]),
            requests=requests,
            warmup=warmup,
            seed=int(seed_a[b]),
            quantiles=levels,
        )
        for b in range(qps.size)
    ]
    return (
        np.array([r.p50_ms for r in rows]),
        np.array([r.p95_ms for r in rows]),
        np.array([r.p99_ms for r in rows]),
        np.array([r.mean_ms for r in rows]),
        np.array([r.utilization for r in rows]),
        np.array([r.quantiles_ms for r in rows])
        if levels is not None
        else None,
    )


def _vectorized_rows(
    qps, cores_a, svc, cv_a, seed_a, requests, warmup, levels
):
    """Batched evaluation of a (sub)grid; returns result arrays.

    Streams land as contiguous rows of the transposed matrices (a
    strided per-column write would miss the cache on every element);
    the fused dispatch transposes request blocks on the fly and hands
    back each point's measured window as a contiguous row.
    """
    points = qps.size
    total = requests + warmup
    arrivals_t = np.empty((points, total))
    services_t = np.empty((points, total))
    inter_scratch = np.empty(total)
    for b in range(points):
        _request_stream(
            int(seed_a[b]), float(qps[b]), float(svc[b]),
            float(cv_a[b]), total,
            arrivals_out=arrivals_t[b],
            services_out=services_t[b],
            inter_scratch=inter_scratch,
        )
    measured = _dispatch_batch(arrivals_t, services_t, cores_a, warmup)
    del arrivals_t, services_t
    # Axis reductions along the contiguous rows use the same
    # partition/pairwise-sum arithmetic as the scalar path's 1-D
    # calls (bit-identical).  The mean must come first — it is
    # order-sensitive (pairwise summation) and ``overwrite_input``
    # lets the percentiles partition the buffer in place
    # (order-insensitive: selection sees the same multiset).
    mean = measured.mean(axis=1)
    p50, p95, p99 = np.percentile(
        measured, [50, 95, 99], axis=1, overwrite_input=True
    )
    extras = (
        np.percentile(
            measured,
            [100.0 * q for q in levels],
            axis=1,
            overwrite_input=True,
        ).T.copy()
        if levels
        else None
    )
    # Same per-element expression and op order as the scalar path's
    # utilization, so the values are bit-identical.
    util = qps * (svc / 1000.0) / cores_a
    return p50, p95, p99, mean, util, extras


def simulate_fcfs_batch(
    offered_qps,
    cores,
    mean_service_ms,
    cv=1.0,
    requests: int = 60_000,
    warmup: int = 5_000,
    seeds=0,
    quantiles: Optional[Sequence[float]] = None,
    method: Optional[str] = None,
) -> SimGrid:
    """Simulate a whole grid of FCFS M/G/c queues in one call.

    Parameters broadcast against each other (numpy rules) and are
    flattened, so a full (app × load × platform × cores) grid evaluates
    in one call.  Every grid point draws its own named RNG streams from
    its own seed, so each point is bit-identical to
    ``simulate_fcfs(...)`` with the same scalar parameters — the
    ``reference`` backend *is* that per-point loop, kept as the oracle.

    Args:
        offered_qps, cores, mean_service_ms, cv, seeds: Scalars or
            arrays (broadcast together) describing each grid point.
        requests, warmup: Uniform per-point request counts.
        quantiles: Extra response-time quantiles reported per point.
        method: ``"vectorized"`` | ``"reference"``; default resolved by
            :func:`resolve_backend` (``REPRO_QUEUEING``).
    """
    backend = resolve_backend(method)
    qps, cores_a, svc, cv_a, seed_a = _batch_params(
        offered_qps, cores, mean_service_ms, cv, seeds
    )
    levels = _validated_quantiles(quantiles)
    points = qps.size
    total = requests + warmup
    tel = telemetry.active()
    if tel is not None:
        t_start = time.perf_counter()

    wide_points = 0
    if backend == "reference":
        p50, p95, p99, mean, util, extras = _scalar_rows(
            qps, cores_a, svc, cv_a, seed_a, requests, warmup, levels
        )
    else:
        wide = cores_a > WIDE_CORE_LIMIT
        wide_points = int(np.count_nonzero(wide))
        if wide_points:
            # Wide SKUs would make every point's dispatch pay the
            # widest pool's bubble pass; route them to the scalar
            # oracle (bit-identical by contract) and batch the rest.
            narrow_idx = np.flatnonzero(~wide)
            wide_idx = np.flatnonzero(wide)
            parts = [
                (
                    wide_idx,
                    _scalar_rows(
                        qps[wide_idx],
                        cores_a[wide_idx],
                        svc[wide_idx],
                        cv_a[wide_idx],
                        seed_a[wide_idx],
                        requests,
                        warmup,
                        levels,
                    ),
                )
            ]
            if narrow_idx.size:
                parts.append(
                    (
                        narrow_idx,
                        _vectorized_rows(
                            qps[narrow_idx],
                            cores_a[narrow_idx],
                            svc[narrow_idx],
                            cv_a[narrow_idx],
                            seed_a[narrow_idx],
                            requests,
                            warmup,
                            levels,
                        ),
                    )
                )
            p50, p95, p99, mean, util = (
                np.empty(points) for _ in range(5)
            )
            extras = (
                np.empty((points, len(levels))) if levels else None
            )
            for idx, part in parts:
                for full, sub in zip(
                    (p50, p95, p99, mean, util, extras), part
                ):
                    if full is not None:
                        full[idx] = sub
        else:
            p50, p95, p99, mean, util, extras = _vectorized_rows(
                qps, cores_a, svc, cv_a, seed_a, requests, warmup, levels
            )

    if tel is not None:
        counts = {"queueing.batches": 1, "queueing.grid_points": points}
        if backend != "reference":
            # Scalar-routed points (the reference backend, and wide
            # fallbacks) already counted per-run in simulate_fcfs.
            counts["queueing.runs"] = points - wide_points
            counts["queueing.events_simulated"] = (
                (points - wide_points) * total
            )
            if wide_points:
                counts["queueing.wide_core_fallback"] = wide_points
        tel.count_many(counts)
        tel.record_timer(
            "queueing.simulate_fcfs_batch", time.perf_counter() - t_start
        )
    return SimGrid(
        offered_qps=qps,
        cores=cores_a,
        mean_service_ms=svc,
        cv=cv_a,
        seeds=seed_a,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        mean_ms=mean,
        utilization=util,
        requests=requests,
        warmup=warmup,
        quantile_levels=levels,
        quantiles_ms=extras,
    )


def saturation_qps(cores: int, mean_service_ms: float) -> float:
    """The queue's capacity: the arrival rate at 100% utilization.

    >>> saturation_qps(8, 1.0)
    8000.0
    """
    if cores < 1 or mean_service_ms <= 0:
        raise SimulationError("cores must be >= 1 and service time > 0")
    return cores * 1000.0 / mean_service_ms


def load_points(
    cores: int,
    mean_service_ms: float,
    fractions: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """QPS values at the given fractions of saturation (for load sweeps)."""
    if fractions is None:
        fractions = np.arange(0.1, 1.0, 0.1)
    peak = saturation_qps(cores, mean_service_ms)
    return np.asarray([f * peak for f in fractions])
