"""Discrete-event simulation of a multi-core server as an FCFS queue.

The paper measures 95th-percentile tail latency versus offered load (QPS)
for latency-critical applications on real servers (Figs. 7 and 8).  We
reproduce those curves with an open M/G/c queue: Poisson arrivals at the
offered QPS, ``c`` cores each serving one request at a time, FCFS dispatch.

For an FCFS multi-server queue the full event calendar collapses to a
single min-heap of per-core free times: each arriving request is assigned
to the earliest-free core, starts at ``max(arrival, core_free)``, and its
response time is ``start + service - arrival``.  This is exact for FCFS.
Sampling is vectorized in numpy; the inherently sequential dispatch
recurrence runs as a tight Python loop over plain floats (locals bound,
heap-free fast path for one core).  Measured on one 2026 container core:
~3 million requests/second for the multi-core heap path and ~4.5 million
for the single-core fast path, about 2.4x the former loop that indexed
numpy arrays element by element.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core import telemetry
from ..core.errors import SimulationError
from ..core.rng import RngFactory


@dataclass(frozen=True)
class SimResult:
    """Latency statistics from one simulation run at one offered load.

    Attributes:
        offered_qps: Poisson arrival rate (requests/second).
        cores: Number of serving cores.
        mean_service_ms: Mean service time used.
        p50_ms, p95_ms, p99_ms: Response-time percentiles.
        mean_ms: Mean response time.
        utilization: Offered load over service capacity
            (``lambda * E[S] / c``); > 1 means the queue is unstable and
            latency is reported from a truncated, growing backlog.
        requests: Number of measured requests (after warmup).
    """

    offered_qps: float
    cores: int
    mean_service_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    utilization: float
    requests: int

    @property
    def saturated(self) -> bool:
        """Whether the offered load exceeds service capacity."""
        return self.utilization >= 1.0


def sample_service_times(
    rng: np.random.Generator,
    n: int,
    mean_ms: float,
    cv: float = 1.0,
) -> np.ndarray:
    """Draw ``n`` service times with the given mean and coefficient of
    variation.

    ``cv == 1`` draws exponential times (the M/M/c case); other values use
    a lognormal with matching first two moments, a standard stand-in for
    measured service-time distributions.
    """
    if mean_ms <= 0:
        raise SimulationError(f"mean service time must be > 0, got {mean_ms}")
    if cv <= 0:
        raise SimulationError(f"service-time CV must be > 0, got {cv}")
    if abs(cv - 1.0) < 1e-12:
        return rng.exponential(mean_ms, size=n)
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean_ms) - sigma2 / 2.0
    return rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=n)


def simulate_fcfs(
    offered_qps: float,
    cores: int,
    mean_service_ms: float,
    cv: float = 1.0,
    requests: int = 60_000,
    warmup: int = 5_000,
    seed: int = 0,
) -> SimResult:
    """Simulate an open FCFS M/G/c queue and report latency percentiles.

    Args:
        offered_qps: Poisson arrival rate, requests per second.
        cores: Number of cores (servers in the queueing sense).
        mean_service_ms: Mean per-request service time, milliseconds.
        cv: Service-time coefficient of variation (1.0 = exponential).
        requests: Measured requests after warmup.
        warmup: Requests discarded to let the queue reach steady state.
        seed: RNG seed; identical seeds give identical results.
    """
    if offered_qps <= 0:
        raise SimulationError(f"offered QPS must be > 0, got {offered_qps}")
    if cores < 1:
        raise SimulationError(f"need at least 1 core, got {cores}")
    tel = telemetry.active()
    if tel is not None:
        t_start = time.perf_counter()
    total = requests + warmup
    rngs = RngFactory(seed)
    inter_ms = rngs.stream("arrivals").exponential(
        1000.0 / offered_qps, size=total
    )
    arrivals = np.cumsum(inter_ms)
    services = sample_service_times(
        rngs.stream("services"), total, mean_service_ms, cv
    )

    # The dispatch recurrence is sequential, so it runs as a Python loop.
    # Plain-float lists avoid per-element numpy scalar boxing, and the
    # arithmetic matches the former numpy-scalar loop bit for bit.
    arrival_list = arrivals.tolist()
    service_list = services.tolist()
    response_list: list = []
    append = response_list.append
    if cores == 1:
        # Single-core fast path: the "earliest-free core" is always the
        # previous request's completion time — no heap needed.
        done = 0.0
        for arrival, service in zip(arrival_list, service_list):
            done = (done if done > arrival else arrival) + service
            append(done - arrival)
    else:
        free_at = [0.0] * cores
        heapq.heapify(free_at)
        heappush, heappop = heapq.heappush, heapq.heappop
        for arrival, service in zip(arrival_list, service_list):
            core_free = heappop(free_at)
            done = (core_free if core_free > arrival else arrival) + service
            heappush(free_at, done)
            append(done - arrival)
    responses = np.asarray(response_list)

    measured = responses[warmup:]
    utilization = offered_qps * (mean_service_ms / 1000.0) / cores
    p50, p95, p99 = np.percentile(measured, [50, 95, 99])
    if tel is not None:
        tel.count_many(
            {"queueing.runs": 1, "queueing.events_simulated": total}
        )
        tel.record_timer(
            "queueing.simulate_fcfs", time.perf_counter() - t_start
        )
    return SimResult(
        offered_qps=offered_qps,
        cores=cores,
        mean_service_ms=mean_service_ms,
        p50_ms=float(p50),
        p95_ms=float(p95),
        p99_ms=float(p99),
        mean_ms=float(measured.mean()),
        utilization=utilization,
        requests=requests,
    )


def saturation_qps(cores: int, mean_service_ms: float) -> float:
    """The queue's capacity: the arrival rate at 100% utilization.

    >>> saturation_qps(8, 1.0)
    8000.0
    """
    if cores < 1 or mean_service_ms <= 0:
        raise SimulationError("cores must be >= 1 and service time > 0")
    return cores * 1000.0 / mean_service_ms


def load_points(
    cores: int,
    mean_service_ms: float,
    fractions: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """QPS values at the given fractions of saturation (for load sweeps)."""
    if fractions is None:
        fractions = np.arange(0.1, 1.0, 0.1)
    peak = saturation_qps(cores, mean_service_ms)
    return np.asarray([f * peak for f in fractions])
