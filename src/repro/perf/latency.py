"""Latency-versus-load curves and SLO derivation (GSF performance component).

The paper's methodology (Section VI):

- For each application, sweep offered load (QPS) and record 95th-percentile
  tail latency on an 8-core VM on the baseline SKU and on 8/10/12-core VMs
  on the GreenSKU (Fig. 7).
- The SLO is the baseline's p95 latency at 90% of its peak saturation
  throughput (following PARTIES/TimeTrader-style methodology).
- "Low load" is 30% of peak throughput; low-load latency is a secondary
  metric (the paper reports the GreenSKU's median low-load latency 16%
  above Gen3).

Curves can be produced by the exact analytic M/M/c model (default; fast
and deterministic) or the discrete-event simulator (for non-exponential
service or validation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError
from .apps import ApplicationProfile, platform_for_generation
from .mmc import response_percentile_ms
from .queueing import simulate_fcfs

#: The paper sets the SLO at the tail latency reached at 90% of peak load.
SLO_LOAD_FRACTION = 0.9

#: The paper defines "low load" as 30% of peak throughput.
LOW_LOAD_FRACTION = 0.3

#: Tail percentile used throughout (the paper also checks p99).
TAIL_QUANTILE = 0.95


@dataclass(frozen=True)
class LatencyCurve:
    """A tail-latency-versus-load sweep for one (app, platform, cores).

    Attributes:
        label: Human-readable curve label (e.g. ``"Gen3 (8 cores)"``).
        cores: VM cores serving the load.
        peak_qps: Saturation throughput (requests/second).
        qps: Offered loads swept.
        p95_ms: Tail latency at each load; ``inf`` past saturation.
    """

    label: str
    cores: int
    peak_qps: float
    qps: Tuple[float, ...]
    p95_ms: Tuple[float, ...]

    def latency_at(self, load_qps: float) -> float:
        """Tail latency at the swept point nearest ``load_qps``."""
        idx = int(np.argmin(np.abs(np.asarray(self.qps) - load_qps)))
        return self.p95_ms[idx]

    def max_load_meeting(self, slo_ms: float) -> float:
        """Highest swept load whose tail latency meets ``slo_ms`` (0 if none)."""
        best = 0.0
        for q, lat in zip(self.qps, self.p95_ms):
            if lat <= slo_ms and q > best:
                best = q
        return best


def peak_qps(app: ApplicationProfile, platform: str, cores: int,
             cxl: bool = False) -> float:
    """Saturation throughput: ``cores / mean service time``."""
    service_s = app.service_ms_on(platform, cxl=cxl) / 1000.0
    return cores / service_s


def tail_latency_ms(
    app: ApplicationProfile,
    platform: str,
    cores: int,
    load_qps: float,
    cxl: bool = False,
    quantile: float = TAIL_QUANTILE,
    method: str = "analytic",
    seed: int = 0,
) -> float:
    """Tail latency of ``app`` on (platform, cores) at ``load_qps``.

    Returns ``inf`` when the load saturates the configuration.

    Args:
        method: ``"analytic"`` (exact M/M/c, default) or ``"sim"``
            (discrete-event M/G/c with the app's service-time CV).
    """
    if load_qps <= 0:
        raise ConfigError("load must be > 0 QPS")
    service_ms = app.service_ms_on(platform, cxl=cxl)
    mu_per_core = 1000.0 / service_ms
    if load_qps >= cores * mu_per_core:
        return math.inf
    if method == "analytic":
        return response_percentile_ms(quantile, load_qps, mu_per_core, cores)
    if method == "sim":
        result = simulate_fcfs(
            load_qps, cores, service_ms, cv=app.service_cv, seed=seed
        )
        return {0.5: result.p50_ms, 0.95: result.p95_ms, 0.99: result.p99_ms}[
            round(quantile, 2)
        ]
    raise ConfigError(f"unknown method {method!r}; use 'analytic' or 'sim'")


def latency_curve(
    app: ApplicationProfile,
    platform: str,
    cores: int,
    cxl: bool = False,
    load_fractions: Optional[Sequence[float]] = None,
    reference_peak_qps: Optional[float] = None,
    label: Optional[str] = None,
    method: str = "analytic",
    seed: int = 0,
) -> LatencyCurve:
    """Sweep offered load and record tail latency.

    Args:
        load_fractions: Fractions of the *reference* peak to sweep
            (default: 0.1..0.98).  Points past this configuration's own
            saturation report ``inf`` — the hockey-stick in Fig. 7.
        reference_peak_qps: Peak the fractions refer to.  Fig. 7 sweeps
            all configurations over the *baseline's* load axis; defaults
            to this configuration's own peak.
    """
    if load_fractions is None:
        load_fractions = tuple(np.arange(0.1, 1.0, 0.05))
    own_peak = peak_qps(app, platform, cores, cxl=cxl)
    ref_peak = reference_peak_qps if reference_peak_qps else own_peak
    qps_points = [f * ref_peak for f in load_fractions]
    latencies = [
        tail_latency_ms(
            app, platform, cores, q, cxl=cxl, method=method, seed=seed + i
        )
        for i, q in enumerate(qps_points)
    ]
    return LatencyCurve(
        label=label or f"{app.name} on {platform} ({cores} cores)",
        cores=cores,
        peak_qps=own_peak,
        qps=tuple(qps_points),
        p95_ms=tuple(latencies),
    )


@dataclass(frozen=True)
class Slo:
    """A baseline-derived service-level objective.

    Attributes:
        app_name: Application the SLO belongs to.
        generation: Baseline generation the SLO was derived from.
        latency_ms: Tail-latency bound (baseline p95 at 90% of peak).
        load_qps: The absolute load at which the SLO must be met.
        baseline_peak_qps: The baseline configuration's saturation load.
    """

    app_name: str
    generation: int
    latency_ms: float
    load_qps: float
    baseline_peak_qps: float


def derive_slo(
    app: ApplicationProfile,
    generation: int,
    baseline_cores: int = 8,
    method: str = "analytic",
) -> Slo:
    """The paper's SLO: baseline p95 at 90% of the baseline's peak load."""
    platform = platform_for_generation(generation)
    base_peak = peak_qps(app, platform, baseline_cores)
    slo_load = SLO_LOAD_FRACTION * base_peak
    latency = tail_latency_ms(
        app, platform, baseline_cores, slo_load, method=method
    )
    return Slo(
        app_name=app.name,
        generation=generation,
        latency_ms=latency,
        load_qps=slo_load,
        baseline_peak_qps=base_peak,
    )


def meets_slo(
    app: ApplicationProfile,
    slo: Slo,
    cores: int,
    platform: str = "bergamo",
    cxl: bool = False,
    method: str = "analytic",
) -> bool:
    """Whether (platform, cores) meets the SLO at the SLO's load."""
    latency = tail_latency_ms(
        app, platform, cores, slo.load_qps, cxl=cxl, method=method
    )
    # Tiny relative tolerance: an app with identical per-core speed on both
    # platforms meets its own SLO exactly.
    return latency <= slo.latency_ms * (1.0 + 1e-9)


def low_load_latency_ms(
    app: ApplicationProfile,
    platform: str,
    cores: int,
    cxl: bool = False,
    method: str = "analytic",
) -> float:
    """Tail latency at the paper's "low load" (30% of own peak)."""
    load = LOW_LOAD_FRACTION * peak_qps(app, platform, cores, cxl=cxl)
    return tail_latency_ms(app, platform, cores, load, cxl=cxl, method=method)


def low_load_comparison(
    apps: Sequence[ApplicationProfile],
    scaled_cores: "dict[str, int]",
    generation: int,
    baseline_cores: int = 8,
) -> List[float]:
    """Per-app low-load latency ratios, GreenSKU (scaled) over baseline.

    Mirrors the paper's analysis that finds GreenSKU-Efficient's median
    low-load latency 16% above Gen3 (and below Gen1/Gen2).

    Args:
        scaled_cores: App name -> cores used on the GreenSKU (the scaling
            factor already applied).  Apps missing from the map use the
            baseline core count.
    """
    platform = platform_for_generation(generation)
    ratios = []
    for app in apps:
        if not app.latency_critical:
            continue
        green_cores = scaled_cores.get(app.name, baseline_cores)
        base = low_load_latency_ms(app, platform, baseline_cores)
        green = low_load_latency_ms(app, "bergamo", green_cores)
        ratios.append(green / base)
    return ratios
