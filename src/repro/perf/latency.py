"""Latency-versus-load curves and SLO derivation (GSF performance component).

The paper's methodology (Section VI):

- For each application, sweep offered load (QPS) and record 95th-percentile
  tail latency on an 8-core VM on the baseline SKU and on 8/10/12-core VMs
  on the GreenSKU (Fig. 7).
- The SLO is the baseline's p95 latency at 90% of its peak saturation
  throughput (following PARTIES/TimeTrader-style methodology).
- "Low load" is 30% of peak throughput; low-load latency is a secondary
  metric (the paper reports the GreenSKU's median low-load latency 16%
  above Gen3).

Curves can be produced by the exact analytic M/M/c model (default; fast
and deterministic) or the discrete-event simulator (for non-exponential
service or validation).  Grid-shaped work — load sweeps, multi-curve
panels, (app × generation) SLO tables — goes through the batched
:func:`tail_latencies` evaluator, which feeds whole parameter arrays to
the vectorized queueing substrate in one call; per-point simulation
seeds derive from the load fraction (not the sweep index), so inserting
a load point never reshuffles the RNG of its neighbours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError
from ..core.rng import RngFactory
from .apps import ApplicationProfile, platform_for_generation
from .mmc import response_percentile_ms
from .queueing import simulate_fcfs, simulate_fcfs_batch

#: The paper sets the SLO at the tail latency reached at 90% of peak load.
SLO_LOAD_FRACTION = 0.9

#: The paper defines "low load" as 30% of peak throughput.
LOW_LOAD_FRACTION = 0.3

#: Tail percentile used throughout (the paper also checks p99).
TAIL_QUANTILE = 0.95


def _validated_quantile(quantile: float) -> float:
    """Validate a latency quantile, raising ``ConfigError`` outside (0, 1)."""
    try:
        q = float(quantile)
    except (TypeError, ValueError):
        raise ConfigError(
            f"quantile must be a number in (0, 1), got {quantile!r}"
        ) from None
    if not 0.0 < q < 1.0:
        raise ConfigError(f"quantile must be in (0, 1), got {quantile!r}")
    return q


def _point_seeds(seed: int, load_fractions: Sequence[float]) -> np.ndarray:
    """Per-sweep-point sim seeds derived from the load fraction.

    Hashing the fraction (not the sweep index) means adding or removing a
    load point leaves every other point's RNG stream untouched.
    """
    factory = RngFactory(seed)
    return np.array(
        [
            factory.child(f"load-fraction:{float(f)!r}").seed
            for f in load_fractions
        ],
        dtype=np.int64,
    )


@dataclass(frozen=True)
class LatencyCurve:
    """A tail-latency-versus-load sweep for one (app, platform, cores).

    Attributes:
        label: Human-readable curve label (e.g. ``"Gen3 (8 cores)"``).
        cores: VM cores serving the load.
        peak_qps: Saturation throughput (requests/second).
        qps: Offered loads swept.
        p95_ms: Tail latency at each load; ``inf`` past saturation.
    """

    label: str
    cores: int
    peak_qps: float
    qps: Tuple[float, ...]
    p95_ms: Tuple[float, ...]

    def latency_at(self, load_qps: float) -> float:
        """Tail latency at the swept point nearest ``load_qps``."""
        idx = int(np.argmin(np.abs(np.asarray(self.qps) - load_qps)))
        return self.p95_ms[idx]

    def max_load_meeting(self, slo_ms: float) -> float:
        """Highest swept load whose tail latency meets ``slo_ms`` (0 if none)."""
        best = 0.0
        for q, lat in zip(self.qps, self.p95_ms):
            if lat <= slo_ms and q > best:
                best = q
        return best


def peak_qps(app: ApplicationProfile, platform: str, cores: int,
             cxl: bool = False) -> float:
    """Saturation throughput: ``cores / mean service time``."""
    service_s = app.service_ms_on(platform, cxl=cxl) / 1000.0
    return cores / service_s


def tail_latency_ms(
    app: ApplicationProfile,
    platform: str,
    cores: int,
    load_qps: float,
    cxl: bool = False,
    quantile: float = TAIL_QUANTILE,
    method: str = "analytic",
    seed: int = 0,
) -> float:
    """Tail latency of ``app`` on (platform, cores) at ``load_qps``.

    Returns ``inf`` when the load saturates the configuration.  Both
    methods honor arbitrary ``quantile`` values in (0, 1); anything else
    raises :class:`~repro.core.errors.ConfigError`.

    Args:
        method: ``"analytic"`` (exact M/M/c, default) or ``"sim"``
            (discrete-event M/G/c with the app's service-time CV).
    """
    if load_qps <= 0:
        raise ConfigError("load must be > 0 QPS")
    q = _validated_quantile(quantile)
    service_ms = app.service_ms_on(platform, cxl=cxl)
    mu_per_core = 1000.0 / service_ms
    if load_qps >= cores * mu_per_core:
        return math.inf
    if method == "analytic":
        return response_percentile_ms(q, load_qps, mu_per_core, cores)
    if method == "sim":
        result = simulate_fcfs(
            load_qps, cores, service_ms, cv=app.service_cv, seed=seed,
            quantiles=(q,),
        )
        return result.quantiles_ms[0]
    raise ConfigError(f"unknown method {method!r}; use 'analytic' or 'sim'")


def tail_latencies(
    service_ms,
    cores,
    load_qps,
    cv=1.0,
    quantile: float = TAIL_QUANTILE,
    method: str = "analytic",
    seeds=0,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Batched tail latency over broadcast parameter arrays.

    The grid-shaped core of :func:`tail_latency_ms`: every argument may
    be a scalar or an array (numpy broadcasting applies), and the whole
    grid evaluates in one call to the vectorized substrate — the array
    M/M/c inversion for ``method="analytic"``, one
    :func:`~repro.perf.queueing.simulate_fcfs_batch` over the stable
    points for ``method="sim"``.  Saturated points report ``inf``.

    Args:
        service_ms: Mean service time per point, milliseconds.
        cores: Serving cores per point.
        load_qps: Offered load per point (must be > 0 everywhere).
        cv: Service-time CV per point (sim method only).
        quantile: Latency quantile in (0, 1).
        seeds: Sim seed per point (sim method only).
        method: ``"analytic"`` or ``"sim"``.
        backend: Queueing dispatch backend for the sim grid
            (``"vectorized"`` | ``"reference"``; default resolved from
            ``REPRO_QUEUEING``).
    """
    q = _validated_quantile(quantile)
    svc, cores_a, load, cv_a, seed_a = np.broadcast_arrays(
        np.asarray(service_ms, dtype=np.float64),
        np.asarray(cores, dtype=np.int64),
        np.asarray(load_qps, dtype=np.float64),
        np.asarray(cv, dtype=np.float64),
        np.asarray(seeds, dtype=np.int64),
    )
    if (load <= 0).any():
        raise ConfigError("load must be > 0 QPS at every grid point")
    shape = load.shape
    svc, cores_a, load, cv_a, seed_a = (
        np.ravel(a) for a in (svc, cores_a, load, cv_a, seed_a)
    )
    mu = 1000.0 / svc
    if method == "analytic":
        return response_percentile_ms(q, load, mu, cores_a).reshape(shape)
    if method == "sim":
        out = np.full(load.shape, math.inf)
        stable = load < cores_a * mu
        if stable.any():
            grid = simulate_fcfs_batch(
                load[stable],
                cores_a[stable],
                svc[stable],
                cv=cv_a[stable],
                seeds=seed_a[stable],
                quantiles=(q,),
                method=backend,
            )
            out[stable] = grid.quantiles_ms[:, 0]
        return out.reshape(shape)
    raise ConfigError(f"unknown method {method!r}; use 'analytic' or 'sim'")


def latency_curve(
    app: ApplicationProfile,
    platform: str,
    cores: int,
    cxl: bool = False,
    load_fractions: Optional[Sequence[float]] = None,
    reference_peak_qps: Optional[float] = None,
    label: Optional[str] = None,
    method: str = "analytic",
    seed: int = 0,
    backend: Optional[str] = None,
) -> LatencyCurve:
    """Sweep offered load and record tail latency (one batched call).

    Args:
        load_fractions: Fractions of the *reference* peak to sweep
            (default: 0.1..0.98).  Points past this configuration's own
            saturation report ``inf`` — the hockey-stick in Fig. 7.
        reference_peak_qps: Peak the fractions refer to.  Fig. 7 sweeps
            all configurations over the *baseline's* load axis; ``None``
            (the default) uses this configuration's own peak, and
            non-positive values raise ``ConfigError``.
        backend: Queueing dispatch backend for ``method="sim"``.
    """
    if load_fractions is None:
        load_fractions = tuple(np.arange(0.1, 1.0, 0.05))
    own_peak = peak_qps(app, platform, cores, cxl=cxl)
    if reference_peak_qps is not None:
        if reference_peak_qps <= 0:
            raise ConfigError(
                f"reference_peak_qps must be > 0, got {reference_peak_qps}"
            )
        ref_peak = reference_peak_qps
    else:
        ref_peak = own_peak
    qps_points = [f * ref_peak for f in load_fractions]
    latencies = tail_latencies(
        app.service_ms_on(platform, cxl=cxl),
        cores,
        np.asarray(qps_points),
        cv=app.service_cv,
        method=method,
        seeds=_point_seeds(seed, load_fractions),
        backend=backend,
    )
    return LatencyCurve(
        label=label or f"{app.name} on {platform} ({cores} cores)",
        cores=cores,
        peak_qps=own_peak,
        qps=tuple(qps_points),
        p95_ms=tuple(float(x) for x in latencies),
    )


@dataclass(frozen=True)
class CurveSpec:
    """One configuration of a multi-curve panel (see :func:`latency_curves`).

    Attributes:
        platform: Platform key (e.g. ``"gen3"``, ``"bergamo"``).
        cores: VM cores for this curve.
        cxl: Whether memory is CXL-attached.
        reference_peak_qps: Load axis the sweep fractions refer to
            (``None`` = this configuration's own peak).
        label: Curve label (``None`` = generated).
    """

    platform: str
    cores: int
    cxl: bool = False
    reference_peak_qps: Optional[float] = None
    label: Optional[str] = None


def latency_curves(
    app: ApplicationProfile,
    specs: Sequence[CurveSpec],
    load_fractions: Optional[Sequence[float]] = None,
    method: str = "analytic",
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[LatencyCurve]:
    """Evaluate a whole panel of latency curves in one batched call.

    Point-for-point identical to calling :func:`latency_curve` per spec;
    a Fig. 7 panel (baseline + three candidate counts × 18 load points)
    becomes a single grid evaluation.
    """
    if load_fractions is None:
        load_fractions = tuple(np.arange(0.1, 1.0, 0.05))
    n_points = len(load_fractions)
    point_seeds = _point_seeds(seed, load_fractions)
    svc_cols, cores_cols, qps_cols, cv_cols = [], [], [], []
    peaks, labels = [], []
    for spec in specs:
        own_peak = peak_qps(app, spec.platform, spec.cores, cxl=spec.cxl)
        if spec.reference_peak_qps is not None:
            if spec.reference_peak_qps <= 0:
                raise ConfigError(
                    "reference_peak_qps must be > 0, got "
                    f"{spec.reference_peak_qps}"
                )
            ref_peak = spec.reference_peak_qps
        else:
            ref_peak = own_peak
        qps_cols.append([f * ref_peak for f in load_fractions])
        svc_cols.append(
            np.full(n_points, app.service_ms_on(spec.platform, cxl=spec.cxl))
        )
        cores_cols.append(np.full(n_points, spec.cores, dtype=np.int64))
        cv_cols.append(np.full(n_points, app.service_cv))
        peaks.append(own_peak)
        labels.append(
            spec.label
            or f"{app.name} on {spec.platform} ({spec.cores} cores)"
        )
    latencies = tail_latencies(
        np.concatenate(svc_cols),
        np.concatenate(cores_cols),
        np.concatenate([np.asarray(c) for c in qps_cols]),
        cv=np.concatenate(cv_cols),
        method=method,
        seeds=np.tile(point_seeds, len(list(specs))),
        backend=backend,
    )
    curves = []
    for j, spec in enumerate(specs):
        segment = latencies[j * n_points:(j + 1) * n_points]
        curves.append(
            LatencyCurve(
                label=labels[j],
                cores=spec.cores,
                peak_qps=peaks[j],
                qps=tuple(qps_cols[j]),
                p95_ms=tuple(float(x) for x in segment),
            )
        )
    return curves


@dataclass(frozen=True)
class Slo:
    """A baseline-derived service-level objective.

    Attributes:
        app_name: Application the SLO belongs to.
        generation: Baseline generation the SLO was derived from.
        latency_ms: Tail-latency bound (baseline p95 at 90% of peak).
        load_qps: The absolute load at which the SLO must be met.
        baseline_peak_qps: The baseline configuration's saturation load.
    """

    app_name: str
    generation: int
    latency_ms: float
    load_qps: float
    baseline_peak_qps: float


def derive_slo(
    app: ApplicationProfile,
    generation: int,
    baseline_cores: int = 8,
    method: str = "analytic",
) -> Slo:
    """The paper's SLO: baseline p95 at 90% of the baseline's peak load."""
    platform = platform_for_generation(generation)
    base_peak = peak_qps(app, platform, baseline_cores)
    slo_load = SLO_LOAD_FRACTION * base_peak
    latency = tail_latency_ms(
        app, platform, baseline_cores, slo_load, method=method
    )
    return Slo(
        app_name=app.name,
        generation=generation,
        latency_ms=latency,
        load_qps=slo_load,
        baseline_peak_qps=base_peak,
    )


def derive_slos(
    apps: Sequence[ApplicationProfile],
    generations: Sequence[int],
    baseline_cores: int = 8,
    method: str = "analytic",
    backend: Optional[str] = None,
) -> Dict[Tuple[str, int], Slo]:
    """Batched :func:`derive_slo` over a whole (app × generation) grid.

    One :func:`tail_latencies` call covers every cell; keyed by
    ``(app.name, generation)``.
    """
    apps = list(apps)
    generations = list(generations)
    entries = []
    for app in apps:
        for gen in generations:
            platform = platform_for_generation(gen)
            base_peak = peak_qps(app, platform, baseline_cores)
            entries.append(
                (app, gen, base_peak, SLO_LOAD_FRACTION * base_peak,
                 app.service_ms_on(platform))
            )
    if not entries:
        return {}
    latencies = tail_latencies(
        np.array([e[4] for e in entries]),
        baseline_cores,
        np.array([e[3] for e in entries]),
        cv=np.array([e[0].service_cv for e in entries]),
        method=method,
        backend=backend,
    )
    return {
        (app.name, gen): Slo(
            app_name=app.name,
            generation=gen,
            latency_ms=float(latency),
            load_qps=slo_load,
            baseline_peak_qps=base_peak,
        )
        for (app, gen, base_peak, slo_load, _svc), latency in zip(
            entries, latencies
        )
    }


def meets_slo(
    app: ApplicationProfile,
    slo: Slo,
    cores: int,
    platform: str = "bergamo",
    cxl: bool = False,
    method: str = "analytic",
) -> bool:
    """Whether (platform, cores) meets the SLO at the SLO's load."""
    latency = tail_latency_ms(
        app, platform, cores, slo.load_qps, cxl=cxl, method=method
    )
    # Tiny relative tolerance: an app with identical per-core speed on both
    # platforms meets its own SLO exactly.
    return latency <= slo.latency_ms * (1.0 + 1e-9)


def low_load_latency_ms(
    app: ApplicationProfile,
    platform: str,
    cores: int,
    cxl: bool = False,
    method: str = "analytic",
) -> float:
    """Tail latency at the paper's "low load" (30% of own peak)."""
    load = LOW_LOAD_FRACTION * peak_qps(app, platform, cores, cxl=cxl)
    return tail_latency_ms(app, platform, cores, load, cxl=cxl, method=method)


def low_load_comparison(
    apps: Sequence[ApplicationProfile],
    scaled_cores: "dict[str, int]",
    generation: int,
    baseline_cores: int = 8,
) -> List[float]:
    """Per-app low-load latency ratios, GreenSKU (scaled) over baseline.

    Mirrors the paper's analysis that finds GreenSKU-Efficient's median
    low-load latency 16% above Gen3 (and below Gen1/Gen2).

    Args:
        scaled_cores: App name -> cores used on the GreenSKU (the scaling
            factor already applied).  Apps missing from the map use the
            baseline core count.
    """
    platform = platform_for_generation(generation)
    ratios = []
    for app in apps:
        if not app.latency_critical:
            continue
        green_cores = scaled_cores.get(app.name, baseline_cores)
        base = low_load_latency_ms(app, platform, baseline_cores)
        green = low_load_latency_ms(app, "bergamo", green_cores)
        ratios.append(green / base)
    return ratios
