"""DevOps build benchmarks (paper Table II).

The three DevOps applications (Build-PHP, Build-Python, Build-Wasm) report
throughput, not tail latency.  Table II reports each build's slowdown at 8
cores, normalized to the Gen3 baseline.  Slowdowns follow directly from the
measured per-core speeds in :mod:`repro.perf.apps` — a build's wall time is
inversely proportional to per-core speed at a fixed core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.tables import render_table
from .apps import AppClass, ApplicationProfile, apps_in_class

#: Platform columns in Table II's order.
TABLE2_COLUMNS = ("gen1", "gen2", "gen3", "efficient", "cxl")


@dataclass(frozen=True)
class DevOpsRow:
    """Normalized build slowdowns for one DevOps application.

    Values are wall-time multiples of the Gen3 baseline (Gen3 = 1.0).
    """

    app_name: str
    slowdowns: Dict[str, float]

    def cells(self) -> List:
        return [self.app_name] + [
            self.slowdowns[col] for col in TABLE2_COLUMNS
        ]


def build_slowdown(
    app: ApplicationProfile, platform: str, cxl: bool = False
) -> float:
    """Build wall time on ``platform`` relative to Gen3 at equal cores."""
    return app.speed_on("gen3") / app.speed_on(platform, cxl=cxl)


#: (platform, cxl) pairs backing Table II's columns, in column order.
TABLE2_PLATFORM_SPECS: Tuple[Tuple[str, bool], ...] = (
    ("gen1", False),
    ("gen2", False),
    ("gen3", False),
    ("bergamo", False),
    ("bergamo", True),
)


def slowdown_grid(
    apps: Sequence[ApplicationProfile],
    platform_specs: Sequence[Tuple[str, bool]] = TABLE2_PLATFORM_SPECS,
) -> np.ndarray:
    """Gen3-normalized slowdowns as an (apps × platforms) array.

    One broadcast divide covers the whole Table II grid; each cell is
    identical to the corresponding :func:`build_slowdown` call.
    """
    base = np.array([app.speed_on("gen3") for app in apps])
    speeds = np.array(
        [
            [app.speed_on(p, cxl=c) for (p, c) in platform_specs]
            for app in apps
        ]
    )
    return base[:, None] / speeds


def table2_rows(
    apps: Optional[Sequence[ApplicationProfile]] = None,
) -> List[DevOpsRow]:
    """Table II: normalized slowdowns for the DevOps builds.

    Columns: Gen1, Gen2, Gen3, GreenSKU-Efficient, GreenSKU-CXL.
    """
    if apps is None:
        apps = [
            a
            for a in apps_in_class(AppClass.DEVOPS)
            if a.name.startswith("Build-")
        ]
        apps = sorted(apps, key=lambda a: a.name)
    grid = slowdown_grid(apps)
    return [
        DevOpsRow(
            app_name=app.name,
            slowdowns=dict(zip(TABLE2_COLUMNS, (float(v) for v in row))),
        )
        for app, row in zip(apps, grid)
    ]


def render_table2(rows: Optional[Sequence[DevOpsRow]] = None) -> str:
    """Render Table II as the paper formats it."""
    rows = list(rows) if rows is not None else table2_rows()
    headers = [
        "DevOps App.",
        "Gen1",
        "Gen2",
        "Gen3",
        "GreenSKU-Efficient",
        "GreenSKU-CXL",
    ]
    return render_table(headers, [r.cells() for r in rows])
