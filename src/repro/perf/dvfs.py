"""CPU frequency tuning on GreenSKUs (paper Section VIII).

"Tuning CPU configurations (e.g., frequency) can also help a GreenSKU
adapt to application changes post-deployment."

A DVFS model over the queueing substrate: per-core speed scales with
frequency through the application's frequency sensitivity (memory-bound
work does not speed up with clocks), while core power follows the classic
``P = P_static + P_dynamic * (f/f0)^3`` voltage-frequency relation.  The
planner picks the lowest frequency whose tail latency still meets the SLO
at the offered load — energy headroom an operator can harvest at low
load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigError
from .apps import ApplicationProfile
from .latency import Slo, derive_slo
from .mmc import response_percentile_ms


@dataclass(frozen=True)
class DvfsModel:
    """Frequency-scaling behaviour of one application on one CPU.

    Attributes:
        static_power_fraction: Share of core power that does not scale
            with frequency (leakage, uncore).
        freq_sensitivity: How much of the application's service time
            scales with frequency (1 = fully clock-bound; Moses-like
            memory-bound apps sit near 0.4).
        f_min / f_max: Frequency range as fractions of nominal.
    """

    static_power_fraction: float = 0.3
    freq_sensitivity: float = 0.8
    f_min: float = 0.6
    f_max: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.static_power_fraction < 1:
            raise ConfigError("static power fraction must be in [0, 1)")
        if not 0 <= self.freq_sensitivity <= 1:
            raise ConfigError("frequency sensitivity must be in [0, 1]")
        if not 0 < self.f_min <= self.f_max:
            raise ConfigError("need 0 < f_min <= f_max")

    def speed_at(self, f: float) -> float:
        """Relative per-core speed at frequency fraction ``f``.

        The clock-bound share scales with ``f``; the rest (memory waits)
        does not:  ``1 / (s/f + (1-s))`` with ``s`` the sensitivity.
        """
        self._check(f)
        s = self.freq_sensitivity
        return 1.0 / (s / f + (1.0 - s))

    def power_at(self, f: float) -> float:
        """Relative core power at frequency fraction ``f`` (cubic dynamic
        term from the voltage-frequency relation)."""
        self._check(f)
        p_static = self.static_power_fraction
        return p_static + (1.0 - p_static) * f**3

    def _check(self, f: float) -> None:
        if not self.f_min - 1e-9 <= f <= self.f_max + 1e-9:
            raise ConfigError(
                f"frequency {f} outside [{self.f_min}, {self.f_max}]"
            )


@dataclass(frozen=True)
class DvfsPlan:
    """The planner's choice at one load point."""

    load_qps: float
    frequency: float
    power_fraction: float
    meets_slo: bool

    @property
    def power_savings(self) -> float:
        """Relative core-power saving vs running at nominal frequency."""
        return 1.0 - self.power_fraction


def plan_frequency(
    app: ApplicationProfile,
    load_qps: float,
    slo: Slo,
    cores: int,
    platform: str = "bergamo",
    model: Optional[DvfsModel] = None,
    steps: int = 9,
) -> DvfsPlan:
    """Lowest frequency meeting the SLO at ``load_qps`` on ``cores``.

    Falls back to nominal frequency (and reports ``meets_slo`` honestly)
    when even full clocks miss the SLO.
    """
    if load_qps <= 0:
        raise ConfigError("load must be > 0")
    model = model or DvfsModel()
    base_speed = app.speed_on(platform)
    for f in np.linspace(model.f_min, model.f_max, steps):
        speed = base_speed * model.speed_at(float(f))
        mu = speed * 1000.0 / app.base_service_ms
        if load_qps >= cores * mu:
            continue
        latency = response_percentile_ms(0.95, load_qps, mu, cores)
        if latency <= slo.latency_ms * (1 + 1e-9):
            return DvfsPlan(
                load_qps=load_qps,
                frequency=float(f),
                power_fraction=model.power_at(float(f)),
                meets_slo=True,
            )
    # Nominal frequency as the fallback.
    f = model.f_max
    speed = base_speed * model.speed_at(f)
    mu = speed * 1000.0 / app.base_service_ms
    meets = load_qps < cores * mu and response_percentile_ms(
        0.95, load_qps, mu, cores
    ) <= slo.latency_ms * (1 + 1e-9)
    return DvfsPlan(
        load_qps=load_qps,
        frequency=f,
        power_fraction=model.power_at(f),
        meets_slo=meets,
    )


def frequency_sweep(
    app: ApplicationProfile,
    cores: int,
    generation: int = 3,
    load_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.9),
    model: Optional[DvfsModel] = None,
) -> List[DvfsPlan]:
    """DVFS plans across a load range (low load -> deep frequency cuts)."""
    slo = derive_slo(app, generation)
    return [
        plan_frequency(
            app, frac * slo.baseline_peak_qps, slo, cores, model=model
        )
        for frac in load_fractions
    ]
