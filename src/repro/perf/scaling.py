"""Scaling-factor computation (GSF performance component output).

The performance component's output is, per application and per baseline
generation, a *scaling factor*: how many GreenSKU cores are needed per
baseline core for a VM to meet the application's performance goal
(Table III).

Methodology, following the paper:

- Latency-critical applications: scale an 8-core baseline VM to 8, 10, or
  12 GreenSKU cores (factors 1, 1.25, 1.5) and accept the smallest count
  that meets the baseline-derived SLO (p95 at 90% of baseline peak).  When
  even 12 cores fail, the factor is reported as ">1.5" (``math.inf``) —
  the adoption component will reject such applications.
- Throughput applications (DevOps builds): the factor is the measured
  slowdown rounded up to the {1, 1.25, 1.5} grid, since build throughput
  scales with cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core.errors import ConfigError
from .apps import (
    APPLICATIONS,
    ApplicationProfile,
    platform_for_generation,
    table3_apps,
)
from .latency import Slo, derive_slo, meets_slo

#: Core counts the paper evaluates on the GreenSKU for an 8-core baseline VM.
CANDIDATE_CORES: Tuple[int, ...] = (8, 10, 12)

#: Baseline VM core count the candidates are compared against.
BASELINE_CORES = 8

#: Grid of reportable scaling factors; beyond the last the paper reports
#: ">1.5".
FACTOR_GRID: Tuple[float, ...] = (1.0, 1.25, 1.5)

#: Tolerance when rounding throughput slowdowns onto the factor grid:
#: Table III reports all Build-* at factor 1 vs Gen2 even though Table II
#: shows the GreenSKU up to 5.4% slower (Build-PHP: 1.17 vs 1.11), so a
#: build within 6% of a grid point counts as that grid point.
THROUGHPUT_GRID_TOLERANCE = 0.06


@dataclass(frozen=True)
class ScalingResult:
    """Scaling outcome for one application against one baseline generation.

    Attributes:
        app_name: Application.
        generation: Baseline generation compared against.
        factor: Scaling factor on the {1, 1.25, 1.5} grid, or ``math.inf``
            when 12 GreenSKU cores cannot meet the SLO (">1.5").
        cores: GreenSKU cores corresponding to the factor (None for inf).
        slo: The SLO used (None for throughput applications).
    """

    app_name: str
    generation: int
    factor: float
    cores: Optional[int]
    slo: Optional[Slo] = None

    @property
    def adoptable_performance(self) -> bool:
        """Whether the app can meet its goal on the GreenSKU at all."""
        return math.isfinite(self.factor)

    @property
    def display(self) -> str:
        """Table III's cell text: ``1``, ``1.25``, ``1.5`` or ``>1.5``."""
        if not math.isfinite(self.factor):
            return ">1.5"
        if self.factor == int(self.factor):
            return str(int(self.factor))
        return f"{self.factor:g}"


def _snap_to_grid(ratio: float) -> float:
    """Round a throughput slowdown up to the factor grid (with tolerance)."""
    for factor in FACTOR_GRID:
        if ratio <= factor * (1.0 + THROUGHPUT_GRID_TOLERANCE):
            return factor
    return math.inf


def scaling_factor(
    app: ApplicationProfile,
    generation: int,
    platform: str = "bergamo",
    cxl: bool = False,
    method: str = "analytic",
) -> ScalingResult:
    """Scaling factor of ``app`` on the GreenSKU vs an 8-core baseline VM.

    Args:
        app: Application profile.
        generation: Baseline generation (1, 2, or 3).
        platform: GreenSKU CPU platform (``"bergamo"``).
        cxl: Evaluate with CXL-backed memory (GreenSKU-CXL/Full).
        method: Latency model, ``"analytic"`` or ``"sim"``.
    """
    if generation not in (1, 2, 3):
        raise ConfigError(f"generation must be 1, 2 or 3, got {generation}")
    if not app.latency_critical:
        base_platform = platform_for_generation(generation)
        slowdown = app.speed_on(base_platform) / app.speed_on(
            platform, cxl=cxl
        )
        factor = _snap_to_grid(slowdown)
        cores = (
            int(round(BASELINE_CORES * factor))
            if math.isfinite(factor)
            else None
        )
        return ScalingResult(app.name, generation, factor, cores)

    slo = derive_slo(app, generation, BASELINE_CORES, method=method)
    for cores in CANDIDATE_CORES:
        if meets_slo(app, slo, cores, platform=platform, cxl=cxl,
                     method=method):
            return ScalingResult(
                app.name,
                generation,
                cores / BASELINE_CORES,
                cores,
                slo,
            )
    return ScalingResult(app.name, generation, math.inf, None, slo)


def scaling_table(
    apps: Optional[Sequence[ApplicationProfile]] = None,
    generations: Sequence[int] = (1, 2, 3),
    cxl: bool = False,
    method: str = "analytic",
) -> Dict[str, Dict[int, ScalingResult]]:
    """Table III: scaling factors for every app against every generation."""
    apps = list(apps) if apps is not None else table3_apps()
    table: Dict[str, Dict[int, ScalingResult]] = {}
    for app in apps:
        table[app.name] = {
            gen: scaling_factor(app, gen, cxl=cxl, method=method)
            for gen in generations
        }
    return table


def factors_by_app(
    generation: int = 3,
    cxl: bool = False,
    apps: Optional[Sequence[ApplicationProfile]] = None,
) -> Dict[str, float]:
    """App name -> scaling factor against one generation (inf = cannot)."""
    apps = list(apps) if apps is not None else list(APPLICATIONS)
    return {
        app.name: scaling_factor(app, generation, cxl=cxl).factor
        for app in apps
    }
