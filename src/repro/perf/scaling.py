"""Scaling-factor computation (GSF performance component output).

The performance component's output is, per application and per baseline
generation, a *scaling factor*: how many GreenSKU cores are needed per
baseline core for a VM to meet the application's performance goal
(Table III).

Methodology, following the paper:

- Latency-critical applications: scale an 8-core baseline VM to 8, 10, or
  12 GreenSKU cores (factors 1, 1.25, 1.5) and accept the smallest count
  that meets the baseline-derived SLO (p95 at 90% of baseline peak).  When
  even 12 cores fail, the factor is reported as ">1.5" (``math.inf``) —
  the adoption component will reject such applications.
- Throughput applications (DevOps builds): the factor is the measured
  slowdown rounded up to the {1, 1.25, 1.5} grid, since build throughput
  scales with cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError
from .apps import (
    APPLICATIONS,
    ApplicationProfile,
    platform_for_generation,
    table3_apps,
)
from .latency import Slo, derive_slo, derive_slos, tail_latencies

#: Core counts the paper evaluates on the GreenSKU for an 8-core baseline VM.
CANDIDATE_CORES: Tuple[int, ...] = (8, 10, 12)

#: Baseline VM core count the candidates are compared against.
BASELINE_CORES = 8

#: Grid of reportable scaling factors; beyond the last the paper reports
#: ">1.5".
FACTOR_GRID: Tuple[float, ...] = (1.0, 1.25, 1.5)

#: Tolerance when rounding throughput slowdowns onto the factor grid:
#: Table III reports all Build-* at factor 1 vs Gen2 even though Table II
#: shows the GreenSKU up to 5.4% slower (Build-PHP: 1.17 vs 1.11), so a
#: build within 6% of a grid point counts as that grid point.
THROUGHPUT_GRID_TOLERANCE = 0.06


@dataclass(frozen=True)
class ScalingResult:
    """Scaling outcome for one application against one baseline generation.

    Attributes:
        app_name: Application.
        generation: Baseline generation compared against.
        factor: Scaling factor on the {1, 1.25, 1.5} grid, or ``math.inf``
            when 12 GreenSKU cores cannot meet the SLO (">1.5").
        cores: GreenSKU cores corresponding to the factor (None for inf).
        slo: The SLO used (None for throughput applications).
    """

    app_name: str
    generation: int
    factor: float
    cores: Optional[int]
    slo: Optional[Slo] = None

    @property
    def adoptable_performance(self) -> bool:
        """Whether the app can meet its goal on the GreenSKU at all."""
        return math.isfinite(self.factor)

    @property
    def display(self) -> str:
        """Table III's cell text: ``1``, ``1.25``, ``1.5`` or ``>1.5``."""
        if not math.isfinite(self.factor):
            return ">1.5"
        if self.factor == int(self.factor):
            return str(int(self.factor))
        return f"{self.factor:g}"


def _snap_to_grid(ratio: float) -> float:
    """Round a throughput slowdown up to the factor grid (with tolerance)."""
    for factor in FACTOR_GRID:
        if ratio <= factor * (1.0 + THROUGHPUT_GRID_TOLERANCE):
            return factor
    return math.inf


def scaling_factor(
    app: ApplicationProfile,
    generation: int,
    platform: str = "bergamo",
    cxl: bool = False,
    method: str = "analytic",
) -> ScalingResult:
    """Scaling factor of ``app`` on the GreenSKU vs an 8-core baseline VM.

    Args:
        app: Application profile.
        generation: Baseline generation (1, 2, or 3).
        platform: GreenSKU CPU platform (``"bergamo"``).
        cxl: Evaluate with CXL-backed memory (GreenSKU-CXL/Full).
        method: Latency model, ``"analytic"`` or ``"sim"``.
    """
    if generation not in (1, 2, 3):
        raise ConfigError(f"generation must be 1, 2 or 3, got {generation}")
    if not app.latency_critical:
        base_platform = platform_for_generation(generation)
        slowdown = app.speed_on(base_platform) / app.speed_on(
            platform, cxl=cxl
        )
        factor = _snap_to_grid(slowdown)
        cores = (
            int(round(BASELINE_CORES * factor))
            if math.isfinite(factor)
            else None
        )
        return ScalingResult(app.name, generation, factor, cores)

    slo = derive_slo(app, generation, BASELINE_CORES, method=method)
    # One batched feasibility probe over the whole candidate grid (the
    # same evaluation scaling_table uses) instead of one meets_slo call
    # per candidate.  Sims are per-point seeded, so evaluating every
    # candidate rather than stopping at the first hit changes nothing;
    # the bound matches meets_slo's tolerance, so decisions are
    # identical to the per-point loop (the regression test pins this).
    latencies = tail_latencies(
        app.service_ms_on(platform, cxl=cxl),
        np.array(CANDIDATE_CORES, dtype=np.int64),
        slo.load_qps,
        cv=app.service_cv,
        method=method,
    )
    bound = slo.latency_ms * (1.0 + 1e-9)
    for cores, latency in zip(CANDIDATE_CORES, latencies):
        if latency <= bound:
            return ScalingResult(
                app.name,
                generation,
                cores / BASELINE_CORES,
                cores,
                slo,
            )
    return ScalingResult(app.name, generation, math.inf, None, slo)


def scaling_table(
    apps: Optional[Sequence[ApplicationProfile]] = None,
    generations: Sequence[int] = (1, 2, 3),
    cxl: bool = False,
    method: str = "analytic",
    backend: Optional[str] = None,
) -> Dict[str, Dict[int, ScalingResult]]:
    """Table III: scaling factors for every app against every generation.

    Batched: all latency-critical cells share one :func:`derive_slos`
    call and one (cell × candidate-cores) :func:`tail_latencies` grid,
    so the whole table costs two vectorized evaluations instead of one
    latency inversion (or simulation) per candidate.  Cell outcomes
    match per-cell :func:`scaling_factor` calls — sims are per-point
    seeded, so evaluating the full candidate grid instead of stopping
    at the first hit changes nothing.

    Args:
        backend: Queueing dispatch backend for ``method="sim"`` grids
            (``"vectorized"`` | ``"reference"``).
    """
    apps = list(apps) if apps is not None else table3_apps()
    generations = list(generations)
    for gen in generations:
        if gen not in (1, 2, 3):
            raise ConfigError(f"generation must be 1, 2 or 3, got {gen}")
    table: Dict[str, Dict[int, ScalingResult]] = {app.name: {} for app in apps}

    for app in apps:
        if app.latency_critical:
            continue
        for gen in generations:
            table[app.name][gen] = scaling_factor(
                app, gen, cxl=cxl, method=method
            )

    lc_apps = [app for app in apps if app.latency_critical]
    if lc_apps and generations:
        slos = derive_slos(
            lc_apps, generations, BASELINE_CORES, method=method,
            backend=backend,
        )
        cells = [
            (app, gen, slos[(app.name, gen)])
            for app in lc_apps
            for gen in generations
        ]
        candidates = np.array(CANDIDATE_CORES, dtype=np.int64)
        latencies = tail_latencies(
            np.array(
                [app.service_ms_on("bergamo", cxl=cxl) for app, _, _ in cells]
            )[:, None],
            candidates[None, :],
            np.array([slo.load_qps for _, _, slo in cells])[:, None],
            cv=np.array([app.service_cv for app, _, _ in cells])[:, None],
            method=method,
            backend=backend,
        )
        for (app, gen, slo), row in zip(cells, latencies):
            # Same tolerance as meets_slo: equal-speed apps meet their
            # own SLO exactly.
            bound = slo.latency_ms * (1.0 + 1e-9)
            result = ScalingResult(app.name, gen, math.inf, None, slo)
            for cores, latency in zip(CANDIDATE_CORES, row):
                if latency <= bound:
                    result = ScalingResult(
                        app.name, gen, cores / BASELINE_CORES, cores, slo
                    )
                    break
            table[app.name][gen] = result
    return table


def factors_by_app(
    generation: int = 3,
    cxl: bool = False,
    apps: Optional[Sequence[ApplicationProfile]] = None,
) -> Dict[str, float]:
    """App name -> scaling factor against one generation (inf = cannot)."""
    apps = list(apps) if apps is not None else list(APPLICATIONS)
    table = scaling_table(apps, (generation,), cxl=cxl)
    return {app.name: table[app.name][generation].factor for app in apps}
