"""Pond-style CXL memory tiering (paper Section III).

The paper mitigates CXL-induced slowdowns with Pond's approach (Li et al.,
ASPLOS 2023):

- hardware counters identify applications that can run *entirely* on CXL
  memory without a slowdown (compute/network-bound);
- for every other VM, a prediction model finds *untouched* memory — on
  average almost half of a VM's allocation — and places only that on
  CXL-attached DDR4, exposed as a zero-core virtual NUMA node the guest
  never touches;
- the result: 98% of applications incur <5% slowdown with CXL.

This module implements that tiering policy: per-VM local/CXL splits, the
eligibility decision, and the resulting effective slowdown — the bridge
between the application profiles' measured ``cxl_slowdown`` (the
*unmitigated* penalty when hot memory rides on CXL, as in Fig. 8) and the
near-zero penalty the deployed system achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigError
from .apps import ApplicationProfile

#: Safety margin the predictor keeps below the VM's maximum touched
#: fraction: predicted-untouched memory is only declared untouched if the
#: VM's observed maximum footprint stays this far below it.
DEFAULT_PREDICTION_MARGIN = 0.10

#: Slowdown bound the paper reports for mitigated VMs ("98% of
#: applications incur <5% slowdown with CXL").
MITIGATED_SLOWDOWN_BOUND = 1.05


@dataclass(frozen=True)
class TieringPlan:
    """How one VM's memory is split between local DDR5 and CXL DDR4.

    Attributes:
        vm_memory_gb: The VM's allocated memory.
        local_gb: Memory served from directly-attached DDR5.
        cxl_gb: Memory served from CXL-attached DDR4 (the zero-core
            virtual NUMA node for mitigated VMs, or everything for
            fully-CXL-backed tolerant VMs).
        fully_cxl_backed: True when the whole VM runs from CXL memory
            (only chosen for CXL-tolerant applications).
        effective_slowdown: Multiplicative service-time inflation the VM
            experiences under this plan (1.0 = none).
    """

    vm_memory_gb: float
    local_gb: float
    cxl_gb: float
    fully_cxl_backed: bool
    effective_slowdown: float

    def __post_init__(self) -> None:
        if self.local_gb < 0 or self.cxl_gb < 0:
            raise ConfigError("tier sizes must be >= 0")
        total = self.local_gb + self.cxl_gb
        if abs(total - self.vm_memory_gb) > 1e-6:
            raise ConfigError(
                f"tier sizes ({total}) must sum to the VM's memory "
                f"({self.vm_memory_gb})"
            )
        if self.effective_slowdown < 1.0:
            raise ConfigError("slowdown must be >= 1.0")

    @property
    def cxl_fraction(self) -> float:
        """Share of the VM's memory behind CXL."""
        return self.cxl_gb / self.vm_memory_gb if self.vm_memory_gb else 0.0


def predicted_untouched_fraction(
    max_memory_fraction: float,
    margin: float = DEFAULT_PREDICTION_MARGIN,
) -> float:
    """Fraction of a VM's memory the predictor declares untouched.

    ``max_memory_fraction`` is the largest share of its allocation the VM
    ever touches (available in the traces; estimated online from hardware
    counters in production).  The predictor keeps a safety margin so that
    a prediction miss — the guest touching more than foreseen — stays
    rare.

    >>> predicted_untouched_fraction(0.5, margin=0.1)
    0.4
    >>> predicted_untouched_fraction(1.0)
    0.0
    """
    if not 0 <= max_memory_fraction <= 1:
        raise ConfigError("max memory fraction must be in [0, 1]")
    if not 0 <= margin < 1:
        raise ConfigError("margin must be in [0, 1)")
    return max(0.0, 1.0 - max_memory_fraction - margin)


def plan_tiering(
    app: ApplicationProfile,
    vm_memory_gb: float,
    max_memory_fraction: float,
    server_cxl_fraction: float = 0.25,
    margin: float = DEFAULT_PREDICTION_MARGIN,
) -> TieringPlan:
    """Pond's placement decision for one VM.

    Args:
        app: The VM's application profile (supplies CXL tolerance and the
            unmitigated slowdown).
        vm_memory_gb: The VM's memory allocation.
        max_memory_fraction: Largest share of its allocation the VM ever
            touches (trace-supplied).
        server_cxl_fraction: Share of the *server's* memory behind CXL —
            caps how much of the VM can ride on CXL (GreenSKU-CXL: 25%).
        margin: Untouched-memory prediction safety margin.

    Policy, per the paper:

    1. CXL-tolerant applications run entirely CXL-backed (no slowdown) —
       these are how the reused DIMMs earn their keep.
    2. Everyone else gets only *predicted-untouched* memory on CXL, which
       the guest never references, so the effective slowdown is ~1.0
       (bounded by :data:`MITIGATED_SLOWDOWN_BOUND` for prediction
       misses).
    """
    if vm_memory_gb <= 0:
        raise ConfigError("VM memory must be > 0")
    if not 0 <= server_cxl_fraction <= 1:
        raise ConfigError("server CXL fraction must be in [0, 1]")

    if app.cxl_tolerant:
        return TieringPlan(
            vm_memory_gb=vm_memory_gb,
            local_gb=0.0,
            cxl_gb=vm_memory_gb,
            fully_cxl_backed=True,
            effective_slowdown=1.0,
        )

    untouched = predicted_untouched_fraction(max_memory_fraction, margin)
    cxl_share = min(untouched, server_cxl_fraction)
    cxl_gb = vm_memory_gb * cxl_share
    # Untouched memory is never referenced; the residual slowdown models
    # occasional prediction misses, scaled by how aggressively the
    # predictor tiered relative to the truly untouched headroom.
    if untouched > 0:
        miss_exposure = cxl_share / (untouched + margin)
    else:
        miss_exposure = 0.0
    residual = 1.0 + miss_exposure * (
        min(app.cxl_slowdown, MITIGATED_SLOWDOWN_BOUND) - 1.0
    ) * 0.5
    return TieringPlan(
        vm_memory_gb=vm_memory_gb,
        local_gb=vm_memory_gb - cxl_gb,
        cxl_gb=cxl_gb,
        fully_cxl_backed=False,
        effective_slowdown=residual,
    )


def mitigated_share(
    apps,
    slowdown_bound: float = MITIGATED_SLOWDOWN_BOUND,
    server_cxl_fraction: float = 0.25,
    typical_max_memory_fraction: float = 0.55,
) -> float:
    """Share of applications whose mitigated slowdown stays in bound.

    The paper: "This approach ensures that 98% of applications incur <5%
    slowdown with CXL."
    """
    total = 0
    within = 0
    for app in apps:
        total += 1
        plan = plan_tiering(
            app,
            vm_memory_gb=32.0,
            max_memory_fraction=typical_max_memory_fraction,
            server_cxl_fraction=server_cxl_fraction,
        )
        if plan.effective_slowdown <= slowdown_bound + 1e-9:
            within += 1
    return within / total if total else 0.0
