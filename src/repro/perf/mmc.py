"""Analytic M/M/c queueing model (Erlang C) with response-time percentiles.

The scaling-factor search (Table III) needs thousands of latency
evaluations; the analytic model answers each in microseconds and is exact
for exponential service.  The discrete-event simulator in
:mod:`repro.perf.queueing` cross-validates it (see the test suite).

For an M/M/c queue with arrival rate ``lam`` and per-core service rate
``mu`` (both per second):

- Erlang-C waiting probability ``P_w``,
- waiting time ``W``: an atom at 0 with mass ``1 - P_w`` plus an
  exponential tail with rate ``theta = c*mu - lam``,
- response time ``R = W + S`` with ``S ~ Exp(mu)`` independent, giving a
  closed-form ``P(R > t)`` that we invert numerically for percentiles.
"""

from __future__ import annotations

import math

from ..core.errors import SimulationError


def erlang_c(cores: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait.

    Args:
        cores: Number of servers ``c``.
        offered_load: ``A = lam/mu`` in Erlangs; must satisfy ``A < c``.

    Computed in a numerically stable recurrence (no factorials).
    """
    if cores < 1:
        raise SimulationError("cores must be >= 1")
    if offered_load <= 0:
        return 0.0
    if offered_load >= cores:
        raise SimulationError(
            f"offered load {offered_load} must be < cores {cores} "
            "for a stable queue"
        )
    # Erlang-B recurrence: B(0) = 1; B(k) = A*B(k-1) / (k + A*B(k-1)).
    b = 1.0
    for k in range(1, cores + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / cores
    return b / (1.0 - rho + rho * b)


def response_tail_probability(
    t_ms: float, lam_qps: float, mu_per_core_qps: float, cores: int
) -> float:
    """``P(R > t)`` for the M/M/c response time ``R``.

    Args:
        t_ms: Threshold in milliseconds.
        lam_qps: Arrival rate, requests/second.
        mu_per_core_qps: Per-core service rate, requests/second.
        cores: Number of cores.
    """
    if t_ms < 0:
        return 1.0
    a = lam_qps / mu_per_core_qps
    pw = erlang_c(cores, a)
    mu = mu_per_core_qps / 1000.0  # per millisecond
    theta = (cores * mu_per_core_qps - lam_qps) / 1000.0
    no_wait = (1.0 - pw) * math.exp(-mu * t_ms)
    if abs(theta - mu) < 1e-12 * mu:
        waited = pw * math.exp(-mu * t_ms) * (1.0 + mu * t_ms)
    else:
        waited = (
            pw
            * (theta * math.exp(-mu * t_ms) - mu * math.exp(-theta * t_ms))
            / (theta - mu)
        )
    return no_wait + waited


def response_percentile_ms(
    quantile: float, lam_qps: float, mu_per_core_qps: float, cores: int
) -> float:
    """The ``quantile`` (e.g. 0.95) of M/M/c response time, in ms.

    Inverted by bisection on the closed-form tail probability.
    """
    if not 0 < quantile < 1:
        raise SimulationError("quantile must be in (0, 1)")
    if lam_qps >= cores * mu_per_core_qps:
        return math.inf
    target = 1.0 - quantile
    # Bracket: mean response time scales the upper bound.
    mean_ms = mean_response_ms(lam_qps, mu_per_core_qps, cores)
    lo, hi = 0.0, max(10.0 * mean_ms, 1.0)
    while response_tail_probability(hi, lam_qps, mu_per_core_qps, cores) > target:
        hi *= 2.0
        if hi > 1e12:
            raise SimulationError("percentile bisection failed to bracket")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if response_tail_probability(mid, lam_qps, mu_per_core_qps, cores) > target:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9 * (1.0 + hi):
            break
    return 0.5 * (lo + hi)


def mean_wait_ms(
    lam_qps: float, mu_per_core_qps: float, cores: int
) -> float:
    """Mean queueing delay (excluding service), in milliseconds."""
    if lam_qps <= 0:
        return 0.0
    if lam_qps >= cores * mu_per_core_qps:
        return math.inf
    a = lam_qps / mu_per_core_qps
    pw = erlang_c(cores, a)
    return 1000.0 * pw / (cores * mu_per_core_qps - lam_qps)


def mean_response_ms(
    lam_qps: float, mu_per_core_qps: float, cores: int
) -> float:
    """Mean response time (wait plus service), in milliseconds."""
    wait = mean_wait_ms(lam_qps, mu_per_core_qps, cores)
    if math.isinf(wait):
        return math.inf
    return wait + 1000.0 / mu_per_core_qps
