"""Analytic M/M/c queueing model (Erlang C) with response-time percentiles.

The scaling-factor search (Table III) needs thousands of latency
evaluations; the analytic model answers each in microseconds and is exact
for exponential service.  The discrete-event simulator in
:mod:`repro.perf.queueing` cross-validates it (see the test suite).

For an M/M/c queue with arrival rate ``lam`` and per-core service rate
``mu`` (both per second):

- Erlang-C waiting probability ``P_w``,
- waiting time ``W``: an atom at 0 with mass ``1 - P_w`` plus an
  exponential tail with rate ``theta = c*mu - lam``,
- response time ``R = W + S`` with ``S ~ Exp(mu)`` independent, giving a
  closed-form ``P(R > t)`` that we invert numerically for percentiles.

:func:`erlang_c`, :func:`response_tail_probability`, and
:func:`response_percentile_ms` accept numpy arrays (broadcast together)
as well as scalars, so a whole (app × load × cores) grid evaluates in
one call.  The array paths run the same recurrences element-wise with
per-element bracket/bisection freezing, so they track the scalar path to
within an ULP of the underlying ``exp`` (numpy's vector ``exp`` and
``math.exp`` may legitimately differ in the last bit); scalar calls are
untouched and remain the reference.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..core.errors import SimulationError


def _erlang_c_array(cores: np.ndarray, offered_load: np.ndarray) -> np.ndarray:
    """Element-wise Erlang C over broadcast ``(cores, offered_load)``.

    Runs the same Erlang-B recurrence as the scalar path, freezing each
    element once ``k`` passes its core count — identical operations per
    element, so identical IEEE results.
    """
    cores_a = np.asarray(cores, dtype=np.int64)
    load_a = np.asarray(offered_load, dtype=np.float64)
    cores_a, load_a = np.broadcast_arrays(cores_a, load_a)
    if (cores_a < 1).any():
        raise SimulationError("cores must be >= 1")
    if (load_a >= cores_a).any():
        raise SimulationError(
            "offered load must be < cores at every grid point "
            "for a stable queue"
        )
    # Idle points (A <= 0) never wait; mask them with a safely stable
    # load so the shared recurrence stays finite, then zero them out.
    safe = np.where(load_a > 0, load_a, 0.5)
    b = np.ones(safe.shape)
    for k in range(1, int(cores_a.max()) + 1):
        nb = safe * b / (k + safe * b)
        b = np.where(k <= cores_a, nb, b)
    rho = safe / cores_a
    pc = b / (1.0 - rho + rho * b)
    return np.where(load_a > 0, pc, 0.0)


def erlang_c(cores, offered_load):
    """Erlang-C probability that an arrival must wait.

    Args:
        cores: Number of servers ``c`` — an int or an integer array.
        offered_load: ``A = lam/mu`` in Erlangs; must satisfy ``A < c``.
            Scalars and arrays broadcast together.

    Computed in a numerically stable recurrence (no factorials).
    """
    if np.ndim(cores) or np.ndim(offered_load):
        return _erlang_c_array(cores, offered_load)
    if cores < 1:
        raise SimulationError("cores must be >= 1")
    if offered_load <= 0:
        return 0.0
    if offered_load >= cores:
        raise SimulationError(
            f"offered load {offered_load} must be < cores {cores} "
            "for a stable queue"
        )
    # Erlang-B recurrence: B(0) = 1; B(k) = A*B(k-1) / (k + A*B(k-1)).
    b = 1.0
    for k in range(1, cores + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / cores
    return b / (1.0 - rho + rho * b)


def _tail_terms(
    lam: np.ndarray, mu_qps: np.ndarray, cores: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Hoist the t-independent pieces of the array tail probability.

    Returns ``(pw, mu_ms, theta_ms, degenerate, theta_safe)``; the
    percentile bisection reuses them across every evaluation.
    """
    pw = _erlang_c_array(cores, lam / mu_qps)
    mu_ms = mu_qps / 1000.0
    theta_ms = (cores * mu_qps - lam) / 1000.0
    degenerate = np.abs(theta_ms - mu_ms) < 1e-12 * mu_ms
    theta_safe = np.where(degenerate, mu_ms + 1.0, theta_ms)
    return pw, mu_ms, theta_ms, degenerate, theta_safe


def _tail_at(
    t: np.ndarray,
    pw: np.ndarray,
    mu_ms: np.ndarray,
    degenerate: np.ndarray,
    theta_safe: np.ndarray,
) -> np.ndarray:
    """``P(R > t)`` element-wise given the hoisted terms."""
    emt = np.exp(-mu_ms * t)
    no_wait = (1.0 - pw) * emt
    waited = np.where(
        degenerate,
        pw * emt * (1.0 + mu_ms * t),
        pw
        * (theta_safe * emt - mu_ms * np.exp(-theta_safe * t))
        / (theta_safe - mu_ms),
    )
    return no_wait + waited


def response_tail_probability(t_ms, lam_qps, mu_per_core_qps, cores):
    """``P(R > t)`` for the M/M/c response time ``R``.

    Args:
        t_ms: Threshold in milliseconds.
        lam_qps: Arrival rate, requests/second.
        mu_per_core_qps: Per-core service rate, requests/second.
        cores: Number of cores.

    All arguments may be numpy arrays (broadcast together).
    """
    if (
        np.ndim(t_ms)
        or np.ndim(lam_qps)
        or np.ndim(mu_per_core_qps)
        or np.ndim(cores)
    ):
        t, lam, mu, cores_a = np.broadcast_arrays(
            np.asarray(t_ms, dtype=np.float64),
            np.asarray(lam_qps, dtype=np.float64),
            np.asarray(mu_per_core_qps, dtype=np.float64),
            np.asarray(cores, dtype=np.int64),
        )
        pw, mu_ms, _theta, degenerate, theta_safe = _tail_terms(
            lam, mu, cores_a
        )
        tail = _tail_at(np.maximum(t, 0.0), pw, mu_ms, degenerate, theta_safe)
        return np.where(t < 0, 1.0, tail)
    if t_ms < 0:
        return 1.0
    a = lam_qps / mu_per_core_qps
    pw = erlang_c(cores, a)
    mu = mu_per_core_qps / 1000.0  # per millisecond
    theta = (cores * mu_per_core_qps - lam_qps) / 1000.0
    no_wait = (1.0 - pw) * math.exp(-mu * t_ms)
    if abs(theta - mu) < 1e-12 * mu:
        waited = pw * math.exp(-mu * t_ms) * (1.0 + mu * t_ms)
    else:
        waited = (
            pw
            * (theta * math.exp(-mu * t_ms) - mu * math.exp(-theta * t_ms))
            / (theta - mu)
        )
    return no_wait + waited


def _response_percentile_array(quantile, lam_qps, mu_per_core_qps, cores):
    """Masked element-wise inversion of the response-time tail.

    Each element runs the same bracket-doubling and 200-step bisection
    as the scalar path, freezing independently once converged; unstable
    points (``lam >= c*mu``) report ``inf`` without participating.
    """
    q, lam, mu, cores_a = np.broadcast_arrays(
        np.asarray(quantile, dtype=np.float64),
        np.asarray(lam_qps, dtype=np.float64),
        np.asarray(mu_per_core_qps, dtype=np.float64),
        np.asarray(cores, dtype=np.int64),
    )
    if ((q <= 0) | (q >= 1)).any():
        raise SimulationError("quantile must be in (0, 1)")
    shape = q.shape
    q, lam, mu, cores_a = (np.ravel(a) for a in (q, lam, mu, cores_a))
    out = np.full(q.shape, math.inf)
    stable = lam < cores_a * mu
    if not stable.any():
        return out.reshape(shape)
    q, lam, mu, cores_a = (
        a[stable] for a in (q, lam, mu, cores_a)
    )
    pw, mu_ms, _theta, degenerate, theta_safe = _tail_terms(lam, mu, cores_a)
    target = 1.0 - q
    # Bracket: mean response time scales the upper bound (same formula
    # as mean_response_ms, with the hoisted Erlang-C value).
    wait_ms = np.where(
        lam > 0, 1000.0 * pw / (cores_a * mu - lam), 0.0
    )
    mean_ms = wait_ms + 1000.0 / mu
    lo = np.zeros(q.shape)
    hi = np.maximum(10.0 * mean_ms, 1.0)
    need = _tail_at(hi, pw, mu_ms, degenerate, theta_safe) > target
    while need.any():
        hi = np.where(need, hi * 2.0, hi)
        if (need & (hi > 1e12)).any():
            raise SimulationError("percentile bisection failed to bracket")
        need &= _tail_at(hi, pw, mu_ms, degenerate, theta_safe) > target
    active = np.ones(q.shape, dtype=bool)
    for _ in range(200):
        if not active.any():
            break
        mid = 0.5 * (lo + hi)
        go_lo = _tail_at(mid, pw, mu_ms, degenerate, theta_safe) > target
        lo = np.where(active & go_lo, mid, lo)
        hi = np.where(active & ~go_lo, mid, hi)
        active &= ~(hi - lo < 1e-9 * (1.0 + hi))
    out[stable] = 0.5 * (lo + hi)
    return out.reshape(shape)


def response_percentile_ms(quantile, lam_qps, mu_per_core_qps, cores):
    """The ``quantile`` (e.g. 0.95) of M/M/c response time, in ms.

    Inverted by bisection on the closed-form tail probability.  All
    arguments may be numpy arrays (broadcast together); unstable points
    (``lam >= c*mu``) report ``inf``.
    """
    if (
        np.ndim(quantile)
        or np.ndim(lam_qps)
        or np.ndim(mu_per_core_qps)
        or np.ndim(cores)
    ):
        return _response_percentile_array(
            quantile, lam_qps, mu_per_core_qps, cores
        )
    if not 0 < quantile < 1:
        raise SimulationError("quantile must be in (0, 1)")
    if lam_qps >= cores * mu_per_core_qps:
        return math.inf
    target = 1.0 - quantile
    # Bracket: mean response time scales the upper bound.
    mean_ms = mean_response_ms(lam_qps, mu_per_core_qps, cores)
    lo, hi = 0.0, max(10.0 * mean_ms, 1.0)
    while response_tail_probability(hi, lam_qps, mu_per_core_qps, cores) > target:
        hi *= 2.0
        if hi > 1e12:
            raise SimulationError("percentile bisection failed to bracket")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if response_tail_probability(mid, lam_qps, mu_per_core_qps, cores) > target:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9 * (1.0 + hi):
            break
    return 0.5 * (lo + hi)


def mean_wait_ms(
    lam_qps: float, mu_per_core_qps: float, cores: int
) -> float:
    """Mean queueing delay (excluding service), in milliseconds."""
    if lam_qps <= 0:
        return 0.0
    if lam_qps >= cores * mu_per_core_qps:
        return math.inf
    a = lam_qps / mu_per_core_qps
    pw = erlang_c(cores, a)
    return 1000.0 * pw / (cores * mu_per_core_qps - lam_qps)


def mean_response_ms(
    lam_qps: float, mu_per_core_qps: float, cores: int
) -> float:
    """Mean response time (wait plus service), in milliseconds."""
    wait = mean_wait_ms(lam_qps, mu_per_core_qps, cores)
    if math.isinf(wait):
        return math.inf
    return wait + 1000.0 / mu_per_core_qps
