"""Reactive VM autoscaling on GreenSKUs (paper Section VIII).

"Run-time systems that leverage GreenSKUs, post-deployment, are an
opportunity for future work.  For example, auto-scalers can improve
GreenSKUs' performance during load changes."

This module implements that future-work item on the queueing substrate: a
reactive autoscaler (AWARE/Autopilot-style) that re-picks a VM's core
count each epoch so the *measured* load of the previous epoch meets the
SLO with headroom.  Comparing against static peak provisioning yields the
core-hours an autoscaler saves on a GreenSKU — and the SLO violations the
one-epoch reaction lag costs when load ramps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigError
from .apps import ApplicationProfile
from .latency import Slo, derive_slo, tail_latency_ms


def diurnal_load(
    peak_qps: float,
    hours: int = 48,
    trough_fraction: float = 0.35,
) -> np.ndarray:
    """An hourly diurnal load profile peaking once per day."""
    if peak_qps <= 0:
        raise ConfigError("peak load must be > 0")
    if not 0 < trough_fraction <= 1:
        raise ConfigError("trough fraction must be in (0, 1]")
    t = np.arange(hours)
    mid = 0.5 * (1 + trough_fraction)
    amp = 0.5 * (1 - trough_fraction)
    return peak_qps * (mid + amp * np.sin(2 * math.pi * (t - 9) / 24.0))


def cores_needed(
    app: ApplicationProfile,
    platform: str,
    load_qps: float,
    slo: Slo,
    min_cores: int = 2,
    max_cores: int = 32,
    headroom: float = 1.1,
) -> int:
    """Smallest core count meeting the SLO at ``load * headroom``."""
    target = load_qps * headroom
    for cores in range(min_cores, max_cores + 1):
        latency = tail_latency_ms(app, platform, cores, target)
        if latency <= slo.latency_ms * (1 + 1e-9):
            return cores
    return max_cores


@dataclass(frozen=True)
class AutoscaleResult:
    """Outcome of one autoscaling run against a load profile.

    Attributes:
        core_hours_static: Core-hours under static peak provisioning.
        core_hours_autoscaled: Core-hours under the reactive policy.
        slo_violation_hours: Hours where the (lagged) allocation missed
            the SLO.
        cores_by_hour: The autoscaler's allocation trajectory.
    """

    core_hours_static: float
    core_hours_autoscaled: float
    slo_violation_hours: int
    cores_by_hour: List[int]

    @property
    def core_hour_savings(self) -> float:
        """Fraction of core-hours the autoscaler returns to the pool."""
        if self.core_hours_static == 0:
            return 0.0
        return 1.0 - self.core_hours_autoscaled / self.core_hours_static


def autoscale(
    app: ApplicationProfile,
    platform: str = "bergamo",
    generation: int = 3,
    load: Optional[Sequence[float]] = None,
    headroom: float = 1.1,
    max_cores: int = 32,
) -> AutoscaleResult:
    """Run the reactive autoscaler against a (diurnal) load profile.

    Each hour the scaler sizes for the *previous* hour's load (reactive,
    one-epoch lag); static provisioning sizes once for the peak.
    """
    slo = derive_slo(app, generation)
    if load is None:
        load = diurnal_load(peak_qps=0.9 * slo.baseline_peak_qps)
    load = np.asarray(load, dtype=float)
    if np.any(load <= 0):
        raise ConfigError("load must be positive everywhere")

    static_cores = cores_needed(
        app, platform, float(load.max()), slo, max_cores=max_cores,
        headroom=headroom,
    )
    allocations: List[int] = []
    violations = 0
    previous_load = float(load[0])
    for hour, current in enumerate(load):
        cores = cores_needed(
            app, platform, previous_load, slo, max_cores=max_cores,
            headroom=headroom,
        )
        allocations.append(cores)
        latency = tail_latency_ms(app, platform, cores, float(current))
        if latency > slo.latency_ms * (1 + 1e-9):
            violations += 1
        previous_load = float(current)
    return AutoscaleResult(
        core_hours_static=static_cores * len(load),
        core_hours_autoscaled=float(sum(allocations)),
        slo_violation_hours=violations,
        cores_by_hour=allocations,
    )
