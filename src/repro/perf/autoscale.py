"""Reactive VM autoscaling on GreenSKUs (paper Section VIII).

"Run-time systems that leverage GreenSKUs, post-deployment, are an
opportunity for future work.  For example, auto-scalers can improve
GreenSKUs' performance during load changes."

This module implements that future-work item on the queueing substrate: a
reactive autoscaler (AWARE/Autopilot-style) that re-picks a VM's core
count each epoch so the *measured* load of the previous epoch meets the
SLO with headroom.  Comparing against static peak provisioning yields the
core-hours an autoscaler saves on a GreenSKU — and the SLO violations the
one-epoch reaction lag costs when load ramps.

Sizing is infeasibility-aware: when even ``max_cores`` misses the SLO,
:func:`cores_needed` returns ``None`` (it used to silently return
``max_cores``, making static provisioning look feasible when it wasn't)
and :func:`autoscale` allocates ``max_cores`` best-effort, reporting the
hour in ``AutoscaleResult.infeasible_hours`` and counting it as a
violation.  The whole trajectory — every (hour × candidate-cores) cell
plus the per-hour violation check — evaluates in two batched
:func:`~repro.perf.latency.tail_latencies` calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigError
from .apps import ApplicationProfile
from .latency import Slo, derive_slo, tail_latencies


def diurnal_load(
    peak_qps: float,
    hours: int = 48,
    trough_fraction: float = 0.35,
) -> np.ndarray:
    """An hourly diurnal load profile peaking once per day."""
    if peak_qps <= 0:
        raise ConfigError("peak load must be > 0")
    if not 0 < trough_fraction <= 1:
        raise ConfigError("trough fraction must be in (0, 1]")
    t = np.arange(hours)
    mid = 0.5 * (1 + trough_fraction)
    amp = 0.5 * (1 - trough_fraction)
    return peak_qps * (mid + amp * np.sin(2 * math.pi * (t - 9) / 24.0))


def _first_meeting(
    latencies: np.ndarray, core_grid: np.ndarray, bound: float
) -> np.ndarray:
    """Per-row smallest core count with latency <= bound, -1 when none."""
    meets = latencies <= bound
    feasible = meets.any(axis=-1)
    first = core_grid[np.argmax(meets, axis=-1)]
    return np.where(feasible, first, -1)


def cores_needed(
    app: ApplicationProfile,
    platform: str,
    load_qps: float,
    slo: Slo,
    min_cores: int = 2,
    max_cores: int = 32,
    headroom: float = 1.1,
) -> Optional[int]:
    """Smallest core count meeting the SLO at ``load * headroom``.

    Returns ``None`` when even ``max_cores`` misses the SLO — the sizing
    is infeasible and callers must handle it explicitly rather than
    receive ``max_cores`` dressed up as a valid answer.  The whole
    candidate range is evaluated in one batched call.
    """
    if min_cores < 1 or max_cores < min_cores:
        raise ConfigError(
            f"need 1 <= min_cores <= max_cores, got {min_cores}..{max_cores}"
        )
    core_grid = np.arange(min_cores, max_cores + 1, dtype=np.int64)
    latencies = tail_latencies(
        app.service_ms_on(platform), core_grid, load_qps * headroom
    )
    found = int(
        _first_meeting(latencies, core_grid, slo.latency_ms * (1 + 1e-9))
    )
    return None if found < 0 else found


@dataclass(frozen=True)
class AutoscaleResult:
    """Outcome of one autoscaling run against a load profile.

    Attributes:
        core_hours_static: Core-hours under static peak provisioning.
        core_hours_autoscaled: Core-hours under the reactive policy.
        slo_violation_hours: Hours where the (lagged) allocation missed
            the SLO, including every infeasible hour.
        cores_by_hour: The autoscaler's allocation trajectory
            (``max_cores`` best-effort on infeasible hours).
        infeasible_hours: Hours whose sizing target exceeded what
            ``max_cores`` can serve within the SLO.
    """

    core_hours_static: float
    core_hours_autoscaled: float
    slo_violation_hours: int
    cores_by_hour: List[int]
    infeasible_hours: int = 0

    @property
    def core_hour_savings(self) -> float:
        """Fraction of core-hours the autoscaler returns to the pool."""
        if self.core_hours_static == 0:
            return 0.0
        return 1.0 - self.core_hours_autoscaled / self.core_hours_static


def autoscale(
    app: ApplicationProfile,
    platform: str = "bergamo",
    generation: int = 3,
    load: Optional[Sequence[float]] = None,
    headroom: float = 1.1,
    max_cores: int = 32,
) -> AutoscaleResult:
    """Run the reactive autoscaler against a (diurnal) load profile.

    Each hour the scaler sizes for the *previous* hour's load (reactive,
    one-epoch lag); static provisioning sizes once for the peak.  Hours
    whose sizing is infeasible even at ``max_cores`` get ``max_cores``
    best-effort and are reported (and counted as violations) via
    ``AutoscaleResult.infeasible_hours``.
    """
    slo = derive_slo(app, generation)
    if load is None:
        load = diurnal_load(peak_qps=0.9 * slo.baseline_peak_qps)
    load = np.asarray(load, dtype=float)
    if np.any(load <= 0):
        raise ConfigError("load must be positive everywhere")

    service_ms = app.service_ms_on(platform)
    bound = slo.latency_ms * (1 + 1e-9)
    core_grid = np.arange(2, max_cores + 1, dtype=np.int64)
    # Row 0..H-1: the lagged per-hour sizing loads; last row: the static
    # (peak) sizing.  One grid call covers the whole trajectory.
    sizing_loads = np.concatenate((load[:1], load[:-1], [load.max()]))
    latencies = tail_latencies(
        service_ms,
        core_grid[None, :],
        (sizing_loads * headroom)[:, None],
    )
    needed = _first_meeting(latencies, core_grid, bound)
    hourly, static_needed = needed[:-1], int(needed[-1])

    infeasible = hourly < 0
    allocations = np.where(infeasible, max_cores, hourly)
    static_cores = max_cores if static_needed < 0 else static_needed

    achieved = tail_latencies(service_ms, allocations, load)
    violation_mask = (achieved > bound) | infeasible
    return AutoscaleResult(
        core_hours_static=static_cores * len(load),
        core_hours_autoscaled=float(allocations.sum()),
        slo_violation_hours=int(violation_mask.sum()),
        cores_by_hour=[int(c) for c in allocations],
        infeasible_hours=int(infeasible.sum()),
    )
