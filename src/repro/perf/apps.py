"""Application profiles: the paper's 20 representative cloud applications.

The paper benchmarks 20 open- and closed-source applications across the six
classes that dominate Azure's fleet (Parayil et al.): big data, web
applications, real-time communication, ML inference, web proxy, and DevOps
(Table III lists the class core-hour shares).

Per-platform, per-application *per-core speeds* are hardware measurements in
the paper (Sysbench, TailBench-style load sweeps, build timings).  We encode
them here as calibration data, normalized to Gen3 Genoa = 1.0, chosen to
reproduce the paper's reported results:

- Bergamo's generic 10%/6% per-core Sysbench slowdown vs Genoa/Milan,
- Table II's DevOps build slowdowns (speed = 1/slowdown, exactly),
- Table III's scaling factors, which emerge from the queueing model in
  :mod:`repro.perf.scaling` given these speeds (an app with ``bergamo ==
  gen3`` speed is insensitive to Bergamo's lower frequency and smaller
  per-core LLC; an app like Silo collapses on Bergamo's 2 MiB/core LLC),
- Fig. 8's CXL behaviour (Moses heavily memory-bound and CXL-hurt; HAProxy
  compute/network-bound with an ~11% peak-throughput penalty),
- the paper's observation that 20.2% of applications, weighted by fleet
  core-hours, run fully CXL-backed with no slowdown (``cxl_tolerant``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..core.errors import ConfigError


class AppClass(str, enum.Enum):
    """The six application classes that run in the majority of Azure VMs."""

    BIG_DATA = "big data"
    WEB_APP = "web app"
    RTC = "real-time communication"
    ML_INFERENCE = "ml inference"
    WEB_PROXY = "web proxy"
    DEVOPS = "devops"


#: Share of production fleet core-hours per application class (Table III).
FLEET_CORE_HOUR_SHARE: Dict[AppClass, float] = {
    AppClass.BIG_DATA: 0.32,
    AppClass.WEB_APP: 0.27,
    AppClass.RTC: 0.24,
    AppClass.ML_INFERENCE: 0.11,
    AppClass.WEB_PROXY: 0.04,
    AppClass.DEVOPS: 0.01,
}

#: Platform keys accepted in speed tables.
PLATFORMS = ("gen1", "gen2", "gen3", "bergamo")


@dataclass(frozen=True)
class ApplicationProfile:
    """One representative application and its measured platform behaviour.

    Attributes:
        name: Application name as the paper reports it.
        app_class: One of the six fleet classes.
        production: True for Microsoft-internal services (the WebF-*
            applications, starred in Table III).
        latency_critical: True for applications with a tail-latency SLO;
            False for throughput-only DevOps builds.
        base_service_ms: Mean per-request service time on one Gen3 core.
        service_cv: Service-time coefficient of variation (1.0 =
            exponential; the M/M/c analytic model is then exact).
        speed: Per-core speed on each platform, normalized to gen3 = 1.0.
        cxl_slowdown: Multiplicative service-time inflation measured when
            the application runs on GreenSKU-CXL (reused DDR4 via CXL at
            ~280 ns vs ~140 ns local) instead of GreenSKU-Efficient.
        cxl_tolerant: True when the application can run entirely
            CXL-backed with no slowdown (compute/network-bound).
        mem_boundedness: Fraction of service time bound on memory latency;
            documentation of *why* ``cxl_slowdown`` is what it is.
    """

    name: str
    app_class: AppClass
    production: bool = False
    latency_critical: bool = True
    base_service_ms: float = 1.0
    service_cv: float = 1.0
    speed: Mapping[str, float] = field(default_factory=dict)
    cxl_slowdown: float = 1.0
    cxl_tolerant: bool = False
    mem_boundedness: float = 0.2

    def __post_init__(self) -> None:
        missing = [p for p in PLATFORMS if p not in self.speed]
        if missing:
            raise ConfigError(f"{self.name}: missing speeds for {missing}")
        for platform, value in self.speed.items():
            if value <= 0:
                raise ConfigError(
                    f"{self.name}: speed on {platform} must be > 0"
                )
        if self.base_service_ms <= 0:
            raise ConfigError(f"{self.name}: service time must be > 0")
        if self.cxl_slowdown < 1.0:
            raise ConfigError(
                f"{self.name}: CXL slowdown must be >= 1.0 "
                "(CXL never speeds an application up)"
            )
        if not 0 <= self.mem_boundedness <= 1:
            raise ConfigError(f"{self.name}: mem_boundedness must be in [0,1]")
        if self.cxl_tolerant and self.cxl_slowdown != 1.0:
            raise ConfigError(
                f"{self.name}: a CXL-tolerant app cannot have a CXL slowdown"
            )

    def speed_on(self, platform: str, cxl: bool = False) -> float:
        """Per-core speed on ``platform``, optionally behind CXL memory.

        Args:
            platform: ``"gen1"|"gen2"|"gen3"|"bergamo"``.
            cxl: Apply the measured CXL service-time inflation (used for
                GreenSKU-CXL/Full, which only differ from GreenSKU-
                Efficient in memory/storage).
        """
        if platform not in self.speed:
            raise ConfigError(
                f"{self.name}: unknown platform {platform!r}; "
                f"known: {sorted(self.speed)}"
            )
        base = self.speed[platform]
        if cxl and not self.cxl_tolerant:
            return base / self.cxl_slowdown
        return base

    def service_ms_on(self, platform: str, cxl: bool = False) -> float:
        """Mean per-request service time on ``platform``, milliseconds."""
        return self.base_service_ms / self.speed_on(platform, cxl=cxl)


def _app(
    name: str,
    app_class: AppClass,
    service_ms: float,
    gen1: float,
    gen2: float,
    bergamo: float,
    cxl_slowdown: float = 1.0,
    cxl_tolerant: bool = False,
    mem_boundedness: float = 0.2,
    production: bool = False,
    latency_critical: bool = True,
) -> ApplicationProfile:
    return ApplicationProfile(
        name=name,
        app_class=app_class,
        production=production,
        latency_critical=latency_critical,
        base_service_ms=service_ms,
        speed={"gen1": gen1, "gen2": gen2, "gen3": 1.0, "bergamo": bergamo},
        cxl_slowdown=cxl_slowdown,
        cxl_tolerant=cxl_tolerant,
        mem_boundedness=mem_boundedness,
    )


#: The 20 applications the paper studies.  Speeds reproduce Table III's
#: scaling factors through the queueing model; DevOps speeds are exactly
#: 1/slowdown from Table II.
APPLICATIONS: Tuple[ApplicationProfile, ...] = (
    # -- Big data (32% of fleet core-hours) --------------------------------
    _app(
        "Redis", AppClass.BIG_DATA, 0.25,
        gen1=0.87, gen2=0.96, bergamo=1.00,
        cxl_tolerant=True, mem_boundedness=0.30,
    ),
    _app(
        # Cache-craftiness: fits Genoa's 4.8 MiB/core LLC, collapses on
        # Bergamo's 2 MiB/core (and already missed on Rome/Milan).
        "Masstree", AppClass.BIG_DATA, 1.1,
        gen1=0.54, gen2=0.55, bergamo=0.55,
        cxl_slowdown=1.10, mem_boundedness=0.45,
    ),
    _app(
        # In-memory OLTP; LLC- and frequency-sensitive everywhere, the one
        # application that cannot adopt the GreenSKU against any baseline.
        "Silo", AppClass.BIG_DATA, 0.9,
        gen1=0.75, gen2=0.78, bergamo=0.45,
        cxl_slowdown=1.15, mem_boundedness=0.40,
    ),
    _app(
        "Shore", AppClass.BIG_DATA, 2.0,
        gen1=0.87, gen2=0.96, bergamo=1.00,
        cxl_slowdown=1.03, mem_boundedness=0.20,
    ),
    # -- Web applications (27%) --------------------------------------------
    _app(
        "Xapian", AppClass.WEB_APP, 4.0,
        gen1=0.70, gen2=0.72, bergamo=0.72,
        cxl_slowdown=1.08, mem_boundedness=0.35,
    ),
    _app(
        "WebF-Dynamic", AppClass.WEB_APP, 8.0,
        gen1=0.72, gen2=0.93, bergamo=0.85,
        cxl_slowdown=1.05, mem_boundedness=0.25, production=True,
    ),
    _app(
        "WebF-Hot", AppClass.WEB_APP, 6.0,
        gen1=0.62, gen2=0.82, bergamo=0.72,
        cxl_slowdown=1.06, mem_boundedness=0.30, production=True,
    ),
    _app(
        "WebF-Cold", AppClass.WEB_APP, 15.0,
        gen1=0.87, gen2=0.96, bergamo=1.00,
        cxl_slowdown=1.02, mem_boundedness=0.15, production=True,
    ),
    # -- Real-time communication (24%) -------------------------------------
    _app(
        # Statistical speech translation with large language models in
        # memory: the paper's exemplar of a CXL-hurt application (Fig. 8).
        "Moses", AppClass.RTC, 5.0,
        gen1=0.80, gen2=0.85, bergamo=0.85,
        cxl_slowdown=1.25, mem_boundedness=0.60,
    ),
    _app(
        "Sphinx", AppClass.RTC, 30.0,
        gen1=0.75, gen2=0.93, bergamo=0.85,
        cxl_slowdown=1.20, mem_boundedness=0.50,
    ),
    # -- ML inference (11%) -------------------------------------------------
    _app(
        "Img-DNN", AppClass.ML_INFERENCE, 10.0,
        gen1=0.87, gen2=0.96, bergamo=1.00,
        cxl_tolerant=True, mem_boundedness=0.25,
    ),
    # -- Web proxy (4%) ------------------------------------------------------
    _app(
        "Nginx", AppClass.WEB_PROXY, 0.5,
        gen1=0.78, gen2=0.85, bergamo=0.85,
        cxl_slowdown=1.03, mem_boundedness=0.10,
    ),
    _app(
        "Caddy", AppClass.WEB_PROXY, 0.6,
        gen1=0.87, gen2=0.96, bergamo=1.00,
        cxl_tolerant=True, mem_boundedness=0.10,
    ),
    _app(
        "Envoy", AppClass.WEB_PROXY, 0.4,
        gen1=0.87, gen2=0.96, bergamo=1.00,
        cxl_tolerant=True, mem_boundedness=0.08,
    ),
    _app(
        # Compute/network-bound load balancer: the paper's exemplar of a
        # CXL-tolerant latency-critical service (Fig. 8: ~11% peak loss).
        "HAProxy", AppClass.WEB_PROXY, 0.4,
        gen1=0.78, gen2=0.85, bergamo=0.85,
        cxl_slowdown=1.11, mem_boundedness=0.11,
    ),
    _app(
        "Traefik", AppClass.WEB_PROXY, 0.7,
        gen1=0.78, gen2=0.85, bergamo=0.85,
        cxl_slowdown=1.05, mem_boundedness=0.12,
    ),
    # -- DevOps (1%): throughput-only builds, speeds are 1/Table II ---------
    _app(
        "Build-Python", AppClass.DEVOPS, 1000.0,
        gen1=1 / 1.28, gen2=1 / 1.13, bergamo=1 / 1.15,
        cxl_slowdown=1.21 / 1.15, mem_boundedness=0.25,
        latency_critical=False,
    ),
    _app(
        "Build-Wasm", AppClass.DEVOPS, 1500.0,
        gen1=1 / 1.34, gen2=1 / 1.19, bergamo=1 / 1.15,
        cxl_slowdown=1.28 / 1.15, mem_boundedness=0.30,
        latency_critical=False,
    ),
    _app(
        "Build-PHP", AppClass.DEVOPS, 800.0,
        gen1=1 / 1.27, gen2=1 / 1.11, bergamo=1 / 1.17,
        cxl_slowdown=1.38 / 1.17, mem_boundedness=0.35,
        latency_critical=False,
    ),
    # The paper's 20th application: the fourth Microsoft production web
    # service (Section V names WebF-Mix; Table III omits its row).  Its
    # mixed request blend is not frequency-bound, making it the seventh
    # application that meets Gen3's SLO without scaling (Section VI counts
    # seven; Table III's 19 rows show six).
    _app(
        "WebF-Mix", AppClass.WEB_APP, 9.0,
        gen1=0.87, gen2=0.96, bergamo=1.00,
        cxl_slowdown=1.04, mem_boundedness=0.25, production=True,
    ),
)

#: Name -> profile lookup.
APP_BY_NAME: Dict[str, ApplicationProfile] = {
    app.name: app for app in APPLICATIONS
}


def get_app(name: str) -> ApplicationProfile:
    """Look up an application by name, with a helpful error."""
    try:
        return APP_BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown application {name!r}; known: {sorted(APP_BY_NAME)}"
        ) from None


def apps_in_class(app_class: AppClass) -> List[ApplicationProfile]:
    """All profiled applications in one class."""
    return [a for a in APPLICATIONS if a.app_class == app_class]


def table3_apps() -> List[ApplicationProfile]:
    """The applications Table III reports, in the paper's row order."""
    order = [
        "Redis", "Masstree", "Silo", "Shore",
        "Xapian", "WebF-Dynamic", "WebF-Hot", "WebF-Cold",
        "Moses", "Sphinx",
        "Img-DNN",
        "Nginx", "Caddy", "Envoy", "HAProxy", "Traefik",
        "Build-Python", "Build-Wasm", "Build-PHP",
    ]
    return [get_app(name) for name in order]


def cxl_tolerant_core_hour_share() -> float:
    """Fleet core-hour share of CXL-tolerant applications (~20.2%).

    Weighted by class share and uniform within a class, mirroring how the
    VM allocation component assigns applications to VMs.
    """
    share = 0.0
    for app_class, class_share in FLEET_CORE_HOUR_SHARE.items():
        members = apps_in_class(app_class)
        if not members:
            continue
        tolerant = sum(1 for a in members if a.cxl_tolerant)
        share += class_share * tolerant / len(members)
    return share


def platform_for_generation(generation: int) -> str:
    """Map a baseline generation number (1, 2, 3) to a platform key."""
    mapping = {1: "gen1", 2: "gen2", 3: "gen3"}
    try:
        return mapping[generation]
    except KeyError:
        raise ConfigError(
            f"unknown baseline generation {generation}; expected 1, 2, or 3"
        ) from None
