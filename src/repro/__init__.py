"""GreenSKU / GSF: evaluating low-carbon cloud server designs at scale.

Reproduction of "Designing Cloud Servers for Lower Carbon" (Wang et al.,
ISCA 2024).  The package implements the paper's GreenSKU Framework (GSF)
end to end, plus every substrate its evaluation depends on.

Quickstart::

    from repro import CarbonModel, Gsf, generate_trace, greensku_full

    model = CarbonModel()
    print(model.assess(greensku_full()).total_per_core)

    gsf = Gsf()
    result = gsf.evaluate(greensku_full(), generate_trace(seed=1))
    print(f"cluster savings: {result.cluster_savings:.1%}")

Subpackages:

- :mod:`repro.hardware` — component catalog, SKU composition, rack/DC
  parameters.
- :mod:`repro.carbon` — the carbon model (Eq. 1-3, CO2e-per-core),
  savings tables, and Fig.-1-style breakdowns.
- :mod:`repro.perf` — queueing models, application profiles, SLOs, and
  scaling factors (Table III).
- :mod:`repro.reliability` — AFRs, Fail-In-Place, maintenance overheads.
- :mod:`repro.allocation` — synthetic Azure-like VM traces and the
  best-fit allocation simulator.
- :mod:`repro.gsf` — the framework: adoption, cluster sizing, growth
  buffers, end-to-end savings.
- :mod:`repro.analysis` — Section VII analyses (alternatives, TCO).
- :mod:`repro.experiments` — one harness per paper table/figure.
"""

from .allocation import (
    ClusterSpec,
    TraceParams,
    VmRequest,
    VmTrace,
    generate_trace,
    production_trace_suite,
    simulate,
)
from .carbon import (
    CarbonModel,
    EnergyMix,
    SkuAssessment,
    breakdown,
    paper_savings_table,
    savings_table,
)
from .gsf import AdoptionModel, Gsf, GsfConfig, GsfEvaluation
from .hardware import (
    DataCenterConfig,
    RackConfig,
    ServerSKU,
    all_greenskus,
    baseline_gen3,
    baseline_resized,
    greensku_cxl,
    greensku_efficient,
    greensku_full,
    paper_skus,
)
from .perf import (
    APPLICATIONS,
    ApplicationProfile,
    derive_slo,
    latency_curve,
    scaling_factor,
    scaling_table,
)
from .reliability import assess_maintenance, server_afr

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "TraceParams",
    "VmRequest",
    "VmTrace",
    "generate_trace",
    "production_trace_suite",
    "simulate",
    "CarbonModel",
    "EnergyMix",
    "SkuAssessment",
    "breakdown",
    "paper_savings_table",
    "savings_table",
    "AdoptionModel",
    "Gsf",
    "GsfConfig",
    "GsfEvaluation",
    "DataCenterConfig",
    "RackConfig",
    "ServerSKU",
    "all_greenskus",
    "baseline_gen3",
    "baseline_resized",
    "greensku_cxl",
    "greensku_efficient",
    "greensku_full",
    "paper_skus",
    "APPLICATIONS",
    "ApplicationProfile",
    "derive_slo",
    "latency_curve",
    "scaling_factor",
    "scaling_table",
    "assess_maintenance",
    "server_afr",
    "__version__",
]
