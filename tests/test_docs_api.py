"""docs/api.md drift check: every documented symbol must exist.

Parses the markdown tables in ``docs/api.md``.  For each row, column 2
names a module (one backticked token) and column 1 names one or more
public symbols (each its own backticked token).  The test imports the
module and asserts every symbol is a real attribute — so renaming or
removing an API without updating the docs fails CI, and so does
documenting something that was never shipped.
"""

import importlib
import pathlib
import re

import pytest

DOC = pathlib.Path(__file__).parent.parent / "docs" / "api.md"

_BACKTICKED = re.compile(r"`([^`]+)`")


def _table_rows():
    """Yield ``(symbols, module, line_no)`` for each API table row."""
    rows = []
    for line_no, line in enumerate(DOC.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if len(cells) < 3 or cells[0] in ("name", "") or set(cells[1]) <= {
            "-", " "
        }:
            continue
        symbols = _BACKTICKED.findall(cells[0])
        modules = _BACKTICKED.findall(cells[1])
        if not symbols or not modules:
            continue
        rows.append((tuple(symbols), modules[0], line_no))
    return rows


ROWS = _table_rows()


def test_tables_were_parsed():
    # A regression guard for the parser itself: if the doc format
    # changes so nothing parses, the drift check must not silently
    # become vacuous.
    assert len(ROWS) >= 40
    modules = {module for _symbols, module, _line in ROWS}
    assert "repro.core.telemetry" in modules
    assert "repro.core.resilience" in modules
    assert "repro.allocation.store" in modules


@pytest.mark.parametrize(
    "symbols,module,line_no",
    ROWS,
    ids=[f"L{line}:{module}" for _s, module, line in ROWS],
)
def test_documented_symbols_exist(symbols, module, line_no):
    try:
        mod = importlib.import_module(module)
    except ImportError as exc:
        pytest.fail(
            f"docs/api.md:{line_no} documents module {module!r} "
            f"which does not import: {exc}"
        )
    missing = [s for s in symbols if not hasattr(mod, s)]
    assert not missing, (
        f"docs/api.md:{line_no} documents {missing} in {module}, "
        "but the module has no such attribute(s)"
    )
