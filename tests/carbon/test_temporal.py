"""Temporal carbon-aware scheduling tests."""

import numpy as np
import pytest

from repro.carbon.temporal import (
    BatchJob,
    diurnal_intensity_profile,
    job_emissions,
    schedule_batch,
    stacked_savings,
    synthetic_batch_workload,
)
from repro.core.errors import ConfigError


class TestProfile:
    def test_mean_preserved(self):
        profile = diurnal_intensity_profile(mean_ci=0.1)
        assert profile.mean() == pytest.approx(0.1, rel=1e-6)

    def test_midday_cleanest(self):
        profile = diurnal_intensity_profile()
        assert np.argmin(profile) == 13

    def test_invalid_swing(self):
        with pytest.raises(ConfigError):
            diurnal_intensity_profile(solar_swing=1.0)


class TestBatchJob:
    def test_impossible_deadline_rejected(self):
        with pytest.raises(ConfigError):
            BatchJob(1, submit_hour=0, duration_hours=5, deadline_hour=3,
                     power_kw=1.0)

    def test_emissions_sum_over_hours(self):
        profile = [0.1] * 24
        job = BatchJob(1, 0, 3, 10, power_kw=2.0)
        assert job_emissions(job, 0, profile) == pytest.approx(0.6)

    def test_start_before_submit_rejected(self):
        job = BatchJob(1, 5, 2, 10, power_kw=1.0)
        with pytest.raises(ConfigError):
            job_emissions(job, 4, [0.1] * 24)

    def test_start_missing_deadline_rejected(self):
        job = BatchJob(1, 0, 3, 5, power_kw=1.0)
        with pytest.raises(ConfigError):
            job_emissions(job, 4, [0.1] * 24)


class TestScheduler:
    def test_shifting_never_hurts(self):
        result = schedule_batch(synthetic_batch_workload())
        assert result.shifted_kg <= result.immediate_kg
        assert result.savings_fraction >= 0

    def test_shifting_saves_with_solar_swing(self):
        result = schedule_batch(synthetic_batch_workload(jobs=60))
        assert result.savings_fraction > 0.05

    def test_flat_grid_saves_nothing(self):
        profile = [0.1] * 24
        result = schedule_batch(synthetic_batch_workload(), profile=profile)
        assert result.savings_fraction == pytest.approx(0.0)

    def test_deadlines_respected(self):
        result = schedule_batch(synthetic_batch_workload())
        for s in result.shifted:
            assert s.start_hour >= s.job.submit_hour
            assert (
                s.start_hour + s.job.duration_hours <= s.job.deadline_hour
            )

    def test_zero_slack_job_cannot_move(self):
        job = BatchJob(1, 10, 4, 14, power_kw=1.0)
        result = schedule_batch([job])
        assert result.shifted[0].start_hour == 10


class TestStacking:
    def test_complements_not_substitutes(self):
        # Stacking adds to the GreenSKU's savings but far less than the
        # naive sum: temporal shifting only touches flexible op carbon.
        combined = stacked_savings(
            greensku_per_core_savings=0.26,
            batch_operational_share=0.05,
            temporal_savings_on_batch=0.25,
        )
        assert 0.26 < combined < 0.28

    def test_zero_greensku_leaves_temporal_only(self):
        combined = stacked_savings(0.0, 1.0, 0.3, operational_share=0.5)
        assert combined == pytest.approx(0.15)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            stacked_savings(1.5, 0.1, 0.1)


class TestSchedulerBoundaries:
    def test_job_longer_than_profile_wraps(self):
        # A 30 h job against a 24 h profile: emissions wrap modulo the
        # period and the scheduler still respects the (tight) window.
        job = BatchJob(1, 0, 30, 30, power_kw=1.0)
        profile = diurnal_intensity_profile()
        assert job_emissions(job, 0, profile) == pytest.approx(
            sum(profile[h % 24] for h in range(30))
        )
        result = schedule_batch([job], profile=profile)
        assert result.shifted[0].start_hour == 0

    def test_job_longer_than_horizon_with_slack_still_schedules(self):
        # Duration exceeds one period *and* the job has slack: every
        # candidate start stays within [submit, deadline - duration].
        job = BatchJob(1, 0, 26, 60, power_kw=1.0)
        result = schedule_batch([job])
        s = result.shifted[0]
        assert 0 <= s.start_hour <= 60 - 26
        assert result.shifted_kg <= result.immediate_kg

    def test_zero_length_job_rejected(self):
        with pytest.raises(ConfigError, match="duration must be > 0"):
            BatchJob(1, 0, 0, 5, power_kw=1.0)
        with pytest.raises(ConfigError, match="duration must be > 0"):
            BatchJob(1, 0, -2, 5, power_kw=1.0)

    def test_flat_profile_tie_picks_earliest_start(self):
        # Every start is equal-emission on a flat grid; the scheduler's
        # min() must break ties toward the earliest feasible hour.
        job = BatchJob(1, 2, 3, 20, power_kw=1.0)
        result = schedule_batch([job], profile=[0.1] * 24)
        assert result.shifted[0].start_hour == 2

    def test_equal_intensity_trough_tie_is_deterministic(self):
        # Two identical minima -> the earlier one wins, every run.
        profile = [0.3] * 24
        profile[5] = profile[11] = 0.1
        job = BatchJob(1, 0, 1, 24, power_kw=1.0)
        result = schedule_batch([job], profile=profile)
        assert result.shifted[0].start_hour == 5
