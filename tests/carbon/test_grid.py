"""Time-varying grid signals: construction, exact integration, ingestion."""

import gzip
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.grid import (
    GRID_CSV_SCHEMA,
    GRID_SIGNALS,
    CarbonAccountant,
    CarbonSignal,
    carbon_aware_policy,
    diurnal_signal,
    flat_signal,
    grid_signal,
    marginal_watts_per_core,
    seasonal_signal,
    signal_from_csv,
)
from repro.core.errors import ConfigError
from repro.hardware.sku import baseline_gen2, baseline_gen3, greensku_full


class TestCarbonSignal:
    def test_flat_integrates_linearly(self):
        signal = flat_signal(0.1)
        assert signal.period_hours == 1
        assert signal.integrate_exact(0, 5) == Fraction(0.1) * 5
        assert signal.integrate(2, Fraction(9, 2)) == pytest.approx(0.25)

    def test_full_period_integral_is_mean_times_period(self):
        signal = diurnal_signal()
        total = signal.integrate_exact(0, signal.period_hours)
        assert float(total / signal.period_hours) == pytest.approx(
            signal.mean_intensity
        )

    def test_value_at_wraps(self):
        signal = CarbonSignal("steps", (0.1, 0.2, 0.3))
        assert signal.value_at(0) == 0.1
        assert signal.value_at(1.5) == 0.2
        assert signal.value_at(3) == 0.1
        assert signal.value_at(7.25) == 0.2

    def test_reversed_window_rejected(self):
        with pytest.raises(ConfigError, match="t1 >= t0"):
            flat_signal().integrate_exact(3, 2)

    def test_empty_window_is_zero(self):
        assert diurnal_signal().integrate_exact(7.5, 7.5) == 0

    def test_validation(self):
        with pytest.raises(ConfigError, match="needs a name"):
            CarbonSignal("", (0.1,))
        with pytest.raises(ConfigError, match="at least one"):
            CarbonSignal("empty", ())
        with pytest.raises(ConfigError, match=">= 0"):
            CarbonSignal("neg", (0.1, -0.2))
        with pytest.raises(ConfigError, match="finite float"):
            CarbonSignal("nan", (float("nan"),))
        with pytest.raises(ConfigError, match="finite float"):
            CarbonSignal("int", (1,))

    def test_non_finite_time_rejected(self):
        with pytest.raises(ConfigError, match="finite number"):
            flat_signal().integrate_exact(0, float("inf"))


class TestGenerators:
    def test_flat_is_one_hour(self):
        assert flat_signal(0.2).values == (0.2,)

    def test_diurnal_shape(self):
        signal = diurnal_signal(mean_ci=0.1)
        assert signal.period_hours == 24
        assert signal.mean_intensity == pytest.approx(0.1, rel=1e-9)
        # Midday solar dip: hour 13 is the cleanest.
        assert min(signal.values) == signal.values[13]

    def test_seasonal_shape(self):
        signal = seasonal_signal(days=7)
        assert signal.period_hours == 7 * 24
        # The slow cycle modulates day means: day 0 dirtier than mid-cycle.
        day = lambda d: sum(signal.values[d * 24:(d + 1) * 24])  # noqa: E731
        assert day(0) > day(3)

    def test_seasonal_validation(self):
        with pytest.raises(ConfigError, match="weekly swing"):
            seasonal_signal(weekly_swing=1.0)
        with pytest.raises(ConfigError, match="at least one day"):
            seasonal_signal(days=0)

    def test_registry_dispatch(self):
        for name in GRID_SIGNALS:
            assert grid_signal(name).name == name
        with pytest.raises(ConfigError, match="unknown grid signal"):
            grid_signal("lunar")


# Exact rational times: floats would fail shift invariance at the LSB,
# which is exactly why the integrator is Fraction-based.
times = st.fractions(min_value=0, max_value=1000)
periods = st.integers(min_value=0, max_value=50)


class TestIntegrationProperties:
    @settings(deadline=None, max_examples=60)
    @given(t0=times, t1=times, t2=times)
    def test_additive_over_adjacent_windows(self, t0, t1, t2):
        a, b, c = sorted((t0, t1, t2))
        signal = diurnal_signal()
        assert signal.integrate_exact(a, b) + signal.integrate_exact(
            b, c
        ) == signal.integrate_exact(a, c)

    @settings(deadline=None, max_examples=60)
    @given(t0=times, t1=times, k=periods)
    def test_whole_period_shift_invariance(self, t0, t1, k):
        a, b = sorted((t0, t1))
        signal = seasonal_signal(days=2)
        shift = k * signal.period_hours
        assert signal.integrate_exact(
            a + shift, b + shift
        ) == signal.integrate_exact(a, b)


class TestCsvIngestion:
    def _write(self, tmp_path, text, name="grid.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_clean_roundtrip(self, tmp_path):
        path = self._write(
            tmp_path, "hour,intensity\n0,0.1\n1,0.2\n2,0.3\n"
        )
        signal, report = signal_from_csv(path)
        assert signal.values == (0.1, 0.2, 0.3)
        assert signal.name == "grid"
        assert report.schema == GRID_CSV_SCHEMA
        assert report.rows_total == report.rows_kept == 3
        assert report.hours == 3
        assert len(report.source_digest) == 64

    def test_degradation_counted_per_reason(self, tmp_path):
        path = self._write(
            tmp_path,
            "hour,intensity\n"
            "1,0.2\n"        # kept (out of order comes later)
            "0,0.1\n"        # kept, hour went backwards
            "1,0.9\n"        # duplicate: first value wins
            "\n"             # blank
            "2,-0.5\n"       # invalid: negative intensity
            "oops,0.1\n"     # invalid: unparseable hour
            "2,0.3\n",       # kept
        )
        signal, report = signal_from_csv(path)
        assert signal.values == (0.1, 0.2, 0.3)
        assert report.rows_kept == 3
        assert report.rows_blank == 1
        assert report.rows_invalid == 2
        assert report.rows_duplicate == 1
        assert report.out_of_order == 1
        assert report.rows_total == 7

    def test_gzip_and_name_stripping(self, tmp_path):
        raw = "0,0.1\n1,0.2\n".encode()
        path = tmp_path / "texas.csv.gz"
        path.write_bytes(gzip.compress(raw))
        signal, report = signal_from_csv(path)
        assert signal.name == "texas"
        assert signal.values == (0.1, 0.2)

    def test_missing_hours_rejected(self, tmp_path):
        path = self._write(tmp_path, "0,0.1\n2,0.3\n")
        with pytest.raises(ConfigError, match="missing hours"):
            signal_from_csv(path)

    def test_no_usable_rows_rejected(self, tmp_path):
        path = self._write(tmp_path, "hour,intensity\nx,y\n")
        with pytest.raises(ConfigError, match="no usable hour rows"):
            signal_from_csv(path)


class TestPolicyBuilder:
    def test_gen2_outranks_gen3_in_watts_per_core(self):
        # The divergent-scenario premise: gen2 burns more watts per core.
        assert marginal_watts_per_core(
            baseline_gen2()
        ) > marginal_watts_per_core(baseline_gen3())

    def test_policy_carries_key_and_signal(self):
        signal = diurnal_signal()
        policy = carbon_aware_policy(signal)
        assert policy.name == "carbon_aware"
        assert policy.signal is signal
        assert policy.carbon_key(baseline_gen3()) == pytest.approx(
            marginal_watts_per_core(baseline_gen3())
        )

    def test_signal_required(self):
        with pytest.raises(ConfigError, match="CarbonSignal"):
            carbon_aware_policy(None)


class TestAccountant:
    def test_exact_hand_computation(self):
        signal = flat_signal(0.1)
        sku = baseline_gen3()
        acct = CarbonAccountant(signal)
        acct.on_place(0, sku, 2)
        acct.on_remove(10, sku, 2)
        report = acct.finalize(24)
        wpc = marginal_watts_per_core(sku)
        # 2 cores x 10 h x 0.1 kg/kWh x (wpc/1000) kW per core.
        assert report.total_kg == pytest.approx(2 * 10 * 0.1 * wpc / 1000)
        assert report.core_hours_by_sku[sku.name] == pytest.approx(20.0)
        assert report.events == 2
        assert (report.start_hours, report.end_hours) == (0.0, 24.0)

    def test_multiple_skus_partition(self):
        signal = flat_signal(0.1)
        acct = CarbonAccountant(signal)
        acct.on_place(0, baseline_gen2(), 4)
        acct.on_place(0, greensku_full(), 4)
        acct.on_remove(5, baseline_gen2(), 4)
        acct.on_remove(5, greensku_full(), 4)
        report = acct.finalize(5)
        assert set(report.kg_by_sku) == {
            baseline_gen2().name, greensku_full().name,
        }
        assert report.total_core_hours == pytest.approx(40.0)
        # gen2's worse watts-per-core shows up directly in its share.
        assert (
            report.kg_by_sku[baseline_gen2().name]
            > report.kg_by_sku[greensku_full().name]
        )

    def test_underflow_rejected(self):
        acct = CarbonAccountant(flat_signal())
        acct.on_place(0, baseline_gen3(), 2)
        with pytest.raises(ConfigError, match="underflow"):
            acct.on_remove(1, baseline_gen3(), 3)

    def test_time_reversal_rejected(self):
        acct = CarbonAccountant(flat_signal())
        acct.on_place(5, baseline_gen3(), 1)
        with pytest.raises(ConfigError, match="time-ordered"):
            acct.on_place(4, baseline_gen3(), 1)

    def test_empty_accountant_finalizes_to_zero(self):
        report = CarbonAccountant(diurnal_signal()).finalize(48)
        assert report.total_kg == 0.0
        assert report.events == 0
        assert report.start_hours == report.end_hours == 48.0

    def test_requires_signal(self):
        with pytest.raises(ConfigError, match="CarbonSignal"):
            CarbonAccountant("diurnal")

    def test_report_dict_is_sorted(self):
        acct = CarbonAccountant(flat_signal())
        acct.on_place(0, greensku_full(), 1)
        acct.on_place(0, baseline_gen2(), 1)
        payload = acct.finalize(1).to_dict()
        assert list(payload["kg_by_sku"]) == sorted(payload["kg_by_sku"])
        assert payload["signal"] == "flat"
