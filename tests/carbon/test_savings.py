"""Savings table tests: the paper's Table VIII with open-source data."""

import pytest

from repro.carbon.model import CarbonModel
from repro.carbon.savings import (
    paper_savings_table,
    render_savings_table,
    savings_table,
)
from repro.hardware.sku import baseline_gen3, greensku_full

#: Table VIII cells: (operational, embodied, total) savings percent.
TABLE8 = {
    "Baseline-Resized": (6, 10, 8),
    "GreenSKU-Efficient": (16, 14, 15),
    "GreenSKU-CXL": (15, 32, 24),
    "GreenSKU-Full": (14, 38, 26),
}

#: Tolerance in percentage points for each reproduced cell.
TOLERANCE_POINTS = 1.5


@pytest.fixture(scope="module")
def rows():
    return paper_savings_table()


class TestTable8Reproduction:
    def test_five_rows_in_order(self, rows):
        assert [r.sku_name for r in rows] == [
            "Baseline",
            "Baseline-Resized",
            "GreenSKU-Efficient",
            "GreenSKU-CXL",
            "GreenSKU-Full",
        ]

    def test_baseline_row_has_no_savings(self, rows):
        baseline = rows[0]
        assert baseline.operational_savings is None
        assert baseline.embodied_savings is None
        assert baseline.total_savings is None

    @pytest.mark.parametrize("sku_name", sorted(TABLE8))
    def test_each_cell_matches_paper(self, rows, sku_name):
        row = next(r for r in rows if r.sku_name == sku_name)
        op, emb, total = TABLE8[sku_name]
        assert 100 * row.operational_savings == pytest.approx(
            op, abs=TOLERANCE_POINTS
        )
        assert 100 * row.embodied_savings == pytest.approx(
            emb, abs=TOLERANCE_POINTS
        )
        assert 100 * row.total_savings == pytest.approx(
            total, abs=TOLERANCE_POINTS
        )

    def test_full_total_savings_is_best(self, rows):
        totals = {
            r.sku_name: r.total_savings for r in rows if r.total_savings
        }
        assert max(totals, key=totals.get) == "GreenSKU-Full"

    def test_operational_ordering(self, rows):
        # Table VIII: Efficient >= CXL >= Full on operational savings
        # (reused parts are less energy efficient).
        by_name = {r.sku_name: r for r in rows}
        assert (
            by_name["GreenSKU-Efficient"].operational_savings
            >= by_name["GreenSKU-CXL"].operational_savings
            >= by_name["GreenSKU-Full"].operational_savings
        )

    def test_embodied_ordering(self, rows):
        # Reuse stacks embodied savings: Full >= CXL >= Efficient.
        by_name = {r.sku_name: r for r in rows}
        assert (
            by_name["GreenSKU-Full"].embodied_savings
            >= by_name["GreenSKU-CXL"].embodied_savings
            >= by_name["GreenSKU-Efficient"].embodied_savings
        )


class TestDescriptions:
    def test_memory_descriptions(self, rows):
        by_name = {r.sku_name: r for r in rows}
        assert by_name["Baseline"].memory_desc == "12x64"
        assert by_name["GreenSKU-CXL"].memory_desc == "12x64 + 8x32 CXL"

    def test_storage_descriptions(self, rows):
        by_name = {r.sku_name: r for r in rows}
        assert by_name["Baseline"].storage_desc == "6x2"
        assert by_name["GreenSKU-Full"].storage_desc == "2x4 + 12x1 Reuse"

    def test_percent_cells(self, rows):
        cells = rows[-1].percent_row()
        assert cells[0] == "GreenSKU-Full"
        assert cells[-1].endswith("%")


class TestGenericSavingsTable:
    def test_self_comparison_zero_savings(self):
        model = CarbonModel()
        rows = savings_table(model, baseline_gen3(), [baseline_gen3()])
        assert rows[1].total_savings == pytest.approx(0.0)

    def test_render_contains_all_skus(self, rows):
        text = render_savings_table(rows, title="t")
        for name in TABLE8:
            assert name in text

    def test_savings_at_other_intensity(self):
        # At zero carbon intensity only embodied matters; Full's savings
        # should approach its embodied savings.
        model = CarbonModel().at_intensity(0.0)
        rows = savings_table(model, baseline_gen3(), [greensku_full()])
        assert rows[1].total_savings == pytest.approx(
            rows[1].embodied_savings
        )
