"""Property-based tests of carbon-model structure (additivity, scaling)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.model import CarbonModel
from repro.hardware import catalog
from repro.hardware.components import scaled_dram, scaled_ssd
from repro.hardware.sku import ServerSKU


def sku_with(dimms: int, ssds: int) -> ServerSKU:
    return ServerSKU.build(
        f"prop-{dimms}-{ssds}",
        [
            (catalog.BERGAMO, 1),
            (catalog.DDR5_64GB, dimms),
            (catalog.SSD_2TB_NEW, ssds),
        ],
    )


class TestAdditivity:
    @settings(deadline=None, max_examples=30)
    @given(dimms=st.integers(min_value=1, max_value=24))
    def test_power_additive_in_dimms(self, dimms):
        model = CarbonModel()
        base = model.server_power_watts(sku_with(dimms, 2))
        plus_one = model.server_power_watts(sku_with(dimms + 1, 2))
        expected_delta = catalog.DDR5_64GB.powered_watts(
            model.datacenter.derate_factor
        )
        assert plus_one - base == pytest.approx(expected_delta)

    @settings(deadline=None, max_examples=30)
    @given(ssds=st.integers(min_value=1, max_value=12))
    def test_embodied_additive_in_ssds(self, ssds):
        model = CarbonModel()
        base = model.server_embodied_kg(sku_with(4, ssds))
        plus_one = model.server_embodied_kg(sku_with(4, ssds + 1))
        assert plus_one - base == pytest.approx(
            catalog.SSD_2TB_NEW.embodied_kg
        )


class TestCapacityScaling:
    @settings(deadline=None, max_examples=20)
    @given(factor=st.integers(min_value=1, max_value=4))
    def test_scaled_parts_scale_linearly(self, factor):
        """A 2x-capacity DIMM carries exactly 2x the power and carbon."""
        big = scaled_dram(catalog.DDR5_64GB, 64 * factor)
        assert big.tdp_watts == pytest.approx(
            factor * catalog.DDR5_64GB.tdp_watts
        )
        assert big.embodied_kg == pytest.approx(
            factor * catalog.DDR5_64GB.embodied_kg
        )
        big_ssd = scaled_ssd(catalog.SSD_2TB_NEW, 2.0 * factor)
        assert big_ssd.embodied_kg == pytest.approx(
            factor * catalog.SSD_2TB_NEW.embodied_kg
        )

    @settings(deadline=None, max_examples=15)
    @given(
        dimms=st.integers(min_value=2, max_value=16),
        ci=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_total_per_core_decomposes(self, dimms, ci):
        model = CarbonModel().at_intensity(ci)
        a = model.assess(sku_with(dimms, 4))
        assert a.total_per_core == pytest.approx(
            a.operational_per_core + a.embodied_per_core
        )
        assert a.operational_per_core >= 0
        assert a.embodied_per_core > 0
