"""Energy mix / carbon intensity tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.carbon.intensity import (
    FOSSIL_GRID_CI,
    RENEWABLE_LIFECYCLE_CI,
    EnergyMix,
    azure_average_mix,
    intensity_sweep,
    mix_for_intensity,
)
from repro.core.errors import ConfigError


class TestEnergyMix:
    def test_all_fossil(self):
        assert EnergyMix(0.0).effective_ci == FOSSIL_GRID_CI

    def test_all_renewable_nonzero(self):
        # Section II: even 100% renewables leave residual operational
        # carbon (renewable lifecycle emissions).
        ci = EnergyMix(1.0).effective_ci
        assert 0 < ci == RENEWABLE_LIFECYCLE_CI

    def test_blend_monotone(self):
        cis = [EnergyMix(r).effective_ci for r in (0.0, 0.4, 0.8, 1.0)]
        assert cis == sorted(cis, reverse=True)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            EnergyMix(1.5)

    def test_with_additional_renewables(self):
        mix = EnergyMix(0.6).with_additional_renewables(0.026)
        assert mix.renewable_fraction == pytest.approx(0.626)

    def test_with_additional_renewables_caps_at_one(self):
        assert EnergyMix(0.99).with_additional_renewables(0.5).renewable_fraction == 1.0

    def test_azure_average_in_papers_band(self):
        # Section II: most data centers use 40-80% renewables.
        mix = azure_average_mix()
        assert 0.4 <= mix.renewable_fraction <= 0.8

    @given(st.floats(min_value=0, max_value=1))
    def test_effective_ci_bounded(self, r):
        ci = EnergyMix(r).effective_ci
        assert RENEWABLE_LIFECYCLE_CI <= ci <= FOSSIL_GRID_CI


class TestMixInversion:
    @given(st.floats(min_value=RENEWABLE_LIFECYCLE_CI, max_value=FOSSIL_GRID_CI))
    def test_roundtrip(self, target):
        mix = mix_for_intensity(target)
        assert mix.effective_ci == pytest.approx(target)

    def test_out_of_band_rejected(self):
        with pytest.raises(ConfigError):
            mix_for_intensity(0.001)
        with pytest.raises(ConfigError):
            mix_for_intensity(1.0)


class TestSweep:
    def test_default_covers_fig11_range(self):
        axis = intensity_sweep()
        assert axis[0] == 0.0
        assert axis[-1] == pytest.approx(0.4)

    def test_point_count(self):
        assert len(intensity_sweep(points=11)) == 11

    def test_monotone(self):
        axis = intensity_sweep(0.05, 0.3, 7)
        assert np.all(np.diff(axis) > 0)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigError):
            intensity_sweep(0.3, 0.1)
        with pytest.raises(ConfigError):
            intensity_sweep(points=1)


class TestEdgeHandling:
    """Regressions for the ConfigError (never clamp/ValueError) contract."""

    def test_nonpositive_targets_rejected(self):
        with pytest.raises(ConfigError, match="> 0"):
            mix_for_intensity(0.0)
        with pytest.raises(ConfigError, match="> 0"):
            mix_for_intensity(-0.1)

    def test_non_finite_targets_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigError, match="finite"):
                mix_for_intensity(bad)

    def test_errors_are_config_errors_not_value_errors(self):
        # The CLI maps ConfigError to a clean exit; a bare ValueError
        # would surface as a traceback.
        try:
            mix_for_intensity(-1.0)
        except ConfigError:
            pass
        else:  # pragma: no cover - regression guard
            pytest.fail("non-positive target did not raise ConfigError")

    def test_energy_mix_rejects_non_finite_fields(self):
        # nan < 0 is False, so the old range checks silently passed NaN.
        with pytest.raises(ConfigError, match="finite"):
            EnergyMix(float("nan"))
        with pytest.raises(ConfigError, match="finite"):
            EnergyMix(0.5, fossil_ci=float("nan"))
        with pytest.raises(ConfigError, match="finite"):
            EnergyMix(0.5, renewable_ci=float("inf"))
