"""Fig. 1 breakdown tests."""

import pytest

from repro.carbon.breakdown import (
    AuxServerProfile,
    FleetComposition,
    breakdown,
)
from repro.carbon.model import CarbonModel
from repro.core.errors import ConfigError
from repro.hardware.components import Category


@pytest.fixture(scope="module")
def result():
    return breakdown()


class TestShares:
    def test_shares_sum_to_one(self, result):
        total = result.total
        assert result.total_operational + result.total_embodied == pytest.approx(
            total
        )

    def test_compute_dominates(self, result):
        # Fig. 1: compute servers cause the majority of emissions (~57%).
        assert result.compute_share > 0.5

    def test_operational_share_near_paper(self, result):
        # Fig. 1 narrative: operational ~58% of total at Azure's mix.
        assert 0.45 < result.operational_share < 0.65

    def test_it_dominates_operational(self, result):
        it = (
            result.operational["compute"]
            + result.operational["storage"]
            + result.operational["network"]
        )
        assert it > result.operational["cooling+power"]

    def test_storage_heavier_embodied_than_power(self, result):
        # Storage servers: large embodied footprint, relatively low power.
        emb_share = result.embodied["storage"] / result.total_embodied
        op_share = result.operational["storage"] / result.total_operational
        assert emb_share > op_share


class TestComponentShares:
    def test_component_shares_sum_to_one(self, result):
        shares = result.compute_component_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_top_three_are_dram_ssd_cpu(self, result):
        # Fig. 1: DRAM ~35%, SSD ~28%, CPU ~24% of compute emissions.
        shares = result.compute_component_shares()
        top3 = sorted(shares, key=shares.get, reverse=True)[:3]
        assert set(top3) == {Category.DRAM, Category.SSD, Category.CPU}

    def test_dram_is_largest(self, result):
        shares = result.compute_component_shares()
        assert max(shares, key=shares.get) == Category.DRAM

    def test_dram_share_near_paper(self, result):
        shares = result.compute_component_shares()
        assert shares[Category.DRAM] == pytest.approx(0.35, abs=0.12)


class TestRenewablesEffect:
    def test_clean_grid_shrinks_operational_share(self):
        dirty = breakdown(model=CarbonModel().at_intensity(0.3))
        clean = breakdown(model=CarbonModel().at_intensity(0.025))
        assert clean.operational_share < dirty.operational_share

    def test_hundred_pct_renewables_leaves_small_operational(self):
        # Section II: with 100% renewables, operational ~9% of emissions.
        clean = breakdown(model=CarbonModel().at_intensity(0.025))
        assert 0.03 < clean.operational_share < 0.30


class TestValidation:
    def test_negative_profile_rejected(self):
        with pytest.raises(ConfigError):
            AuxServerProfile(
                power_watts=-1, embodied_kg=0, count_per_compute=0
            )

    def test_negative_building_rejected(self):
        with pytest.raises(ConfigError):
            FleetComposition(building_embodied_per_compute_kg=-5)
