"""Utilization-dependent power model tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.carbon.power import (
    PowerCurve,
    fleet_derate,
    synthesize_utilization_trace,
)
from repro.core.errors import ConfigError


class TestPowerCurve:
    def test_paper_anchor(self):
        # Table VI: derate 0.44 at 40% of max SPEC rate.
        assert PowerCurve().derate_at(0.40) == pytest.approx(0.44, abs=0.005)

    def test_idle_floor(self):
        curve = PowerCurve()
        assert curve.derate_at(0.0) == pytest.approx(curve.idle_fraction)

    def test_peak_cap(self):
        curve = PowerCurve()
        assert curve.derate_at(1.0) == pytest.approx(curve.peak_fraction)

    def test_monotone_in_load(self):
        curve = PowerCurve()
        values = [curve.derate_at(u) for u in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            PowerCurve().derate_at(1.5)

    def test_invalid_curve_rejected(self):
        with pytest.raises(ConfigError):
            PowerCurve(idle_fraction=0.8, peak_fraction=0.7)

    @given(st.floats(min_value=0, max_value=1))
    def test_power_fraction_bounded(self, u):
        curve = PowerCurve()
        p = curve.derate_at(u)
        assert curve.idle_fraction <= p <= curve.peak_fraction


class TestUtilizationTrace:
    def test_deterministic(self):
        a = synthesize_utilization_trace(seed=5)
        b = synthesize_utilization_trace(seed=5)
        np.testing.assert_array_equal(a, b)

    def test_bounded(self):
        trace = synthesize_utilization_trace(seed=5)
        assert trace.min() >= 0.0 and trace.max() <= 1.0

    def test_mean_near_target(self):
        trace = synthesize_utilization_trace(
            days=14, mean_utilization=0.4, seed=5
        )
        assert trace.mean() == pytest.approx(0.4, abs=0.03)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            synthesize_utilization_trace(days=0)


class TestFleetDerate:
    def test_default_reproduces_table_vi(self):
        # The fleet-averaged derate lands on the paper's 0.44.
        assert fleet_derate() == pytest.approx(0.44, abs=0.01)

    def test_hotter_fleet_higher_derate(self):
        hot = fleet_derate(
            utilization_trace=synthesize_utilization_trace(
                mean_utilization=0.7
            )
        )
        assert hot > fleet_derate()

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigError):
            PowerCurve().derate_for_profile([])
