"""Carbon model behaviour tests beyond the worked example."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.model import CarbonModel
from repro.hardware import catalog
from repro.hardware.components import Category
from repro.hardware.datacenter import DataCenterConfig
from repro.hardware.sku import (
    ServerSKU,
    baseline_gen3,
    greensku_cxl,
    greensku_efficient,
    greensku_full,
)


class TestServerEmissions:
    def test_power_sums_category_attribution(self, carbon_model, baseline_sku):
        emissions = carbon_model.server_emissions(baseline_sku)
        assert sum(emissions.power_by_category.values()) == pytest.approx(
            emissions.power_watts
        )

    def test_embodied_sums_category_attribution(
        self, carbon_model, baseline_sku
    ):
        emissions = carbon_model.server_emissions(baseline_sku)
        assert sum(emissions.embodied_by_category.values()) == pytest.approx(
            emissions.embodied_kg
        )

    def test_cpu_dominates_operational(self, carbon_model, baseline_sku):
        # Fig. 1: CPUs have the largest operational impact.
        emissions = carbon_model.server_emissions(baseline_sku)
        cpu = emissions.power_by_category[Category.CPU]
        assert cpu == max(emissions.power_by_category.values())

    def test_dram_dominates_embodied(self, carbon_model, baseline_sku):
        # Fig. 1: DRAM and SSDs dominate embodied emissions.
        emissions = carbon_model.server_emissions(baseline_sku)
        dram = emissions.embodied_by_category[Category.DRAM]
        assert dram == max(emissions.embodied_by_category.values())

    def test_reuse_lowers_embodied_not_power(self, carbon_model):
        cxl, full = greensku_cxl(), greensku_full()
        e_cxl = carbon_model.server_emissions(cxl)
        e_full = carbon_model.server_emissions(full)
        assert e_full.embodied_kg < e_cxl.embodied_kg
        assert e_full.power_watts > e_cxl.power_watts

    def test_shorthand_accessors(self, carbon_model, baseline_sku):
        assert carbon_model.server_power_watts(
            baseline_sku
        ) == carbon_model.server_emissions(baseline_sku).power_watts
        assert carbon_model.server_embodied_kg(
            baseline_sku
        ) == carbon_model.server_emissions(baseline_sku).embodied_kg


class TestOperationalScaling:
    def test_operational_linear_in_ci(self, baseline_sku):
        low = CarbonModel(
            DataCenterConfig().with_carbon_intensity(0.1)
        ).assess(baseline_sku)
        high = CarbonModel(
            DataCenterConfig().with_carbon_intensity(0.2)
        ).assess(baseline_sku)
        assert high.operational_per_core == pytest.approx(
            2 * low.operational_per_core
        )
        assert high.embodied_per_core == pytest.approx(low.embodied_per_core)

    def test_zero_ci_zero_operational(self, baseline_sku):
        model = CarbonModel(DataCenterConfig().with_carbon_intensity(0.0))
        assert model.assess(baseline_sku).operational_per_core == 0.0

    def test_operational_linear_in_lifetime(self, baseline_sku):
        short = CarbonModel(DataCenterConfig().with_lifetime(3)).assess(
            baseline_sku
        )
        long = CarbonModel(DataCenterConfig().with_lifetime(6)).assess(
            baseline_sku
        )
        assert long.operational_per_core == pytest.approx(
            2 * short.operational_per_core
        )

    def test_pue_scales_operational(self, baseline_sku):
        base = CarbonModel(DataCenterConfig(pue=1.0)).assess(baseline_sku)
        uplifted = CarbonModel(DataCenterConfig(pue=1.5)).assess(baseline_sku)
        assert uplifted.operational_per_core == pytest.approx(
            1.5 * base.operational_per_core
        )

    def test_server_operational_kg_includes_pue(self, baseline_sku):
        model = CarbonModel()
        expected = (
            model.server_power_watts(baseline_sku)
            * model.datacenter.pue
            / 1000.0
            * 52_560
            * 0.1
        )
        assert model.server_operational_kg(baseline_sku) == pytest.approx(
            expected
        )


class TestAssessmentInvariants:
    @pytest.mark.parametrize(
        "sku_fn",
        [baseline_gen3, greensku_efficient, greensku_cxl, greensku_full],
    )
    def test_totals_add_up(self, carbon_model, sku_fn):
        a = carbon_model.assess(sku_fn())
        assert a.total_per_core == pytest.approx(
            a.operational_per_core + a.embodied_per_core
        )
        assert a.per_server_total_kg == pytest.approx(
            a.total_per_core * a.cores_per_server
        )

    def test_operational_share_in_unit_interval(self, carbon_model):
        for sku_fn in (baseline_gen3, greensku_full):
            share = carbon_model.assess(sku_fn()).operational_share
            assert 0 <= share <= 1

    def test_default_intensity_roughly_balanced(self, carbon_model):
        # Section II: ~58% operational at Azure's renewable mix; the
        # open-data calibration lands within a looser band.
        share = carbon_model.assess(baseline_gen3()).operational_share
        assert 0.4 < share < 0.65

    def test_at_intensity_copies(self, carbon_model, baseline_sku):
        copy = carbon_model.at_intensity(0.25)
        assert copy.datacenter.carbon_intensity_kg_per_kwh == 0.25
        assert carbon_model.datacenter.carbon_intensity_kg_per_kwh == 0.1

    def test_co2e_per_core_shorthand(self, carbon_model, baseline_sku):
        assert carbon_model.co2e_per_core(baseline_sku) == pytest.approx(
            carbon_model.assess(baseline_sku).total_per_core
        )

    @settings(deadline=None, max_examples=25)
    @given(ci=st.floats(min_value=0.0, max_value=1.0))
    def test_total_monotone_in_ci(self, ci):
        sku = baseline_gen3()
        base = CarbonModel().at_intensity(ci).assess(sku).total_per_core
        higher = (
            CarbonModel().at_intensity(ci + 0.05).assess(sku).total_per_core
        )
        assert higher >= base


class TestMoreParts:
    def test_adding_parts_increases_both(self, carbon_model):
        lean = ServerSKU.build(
            "lean", [(catalog.BERGAMO, 1), (catalog.DDR5_64GB, 4)]
        )
        fat = ServerSKU.build(
            "fat", [(catalog.BERGAMO, 1), (catalog.DDR5_64GB, 12)]
        )
        lean_e = carbon_model.server_emissions(lean)
        fat_e = carbon_model.server_emissions(fat)
        assert fat_e.power_watts > lean_e.power_watts
        assert fat_e.embodied_kg > lean_e.embodied_kg
