"""Pins the Section V worked example exactly.

These are the strongest calibration anchors in the paper: the appendix
walks through the carbon model for GreenSKU-CXL with the open-source
Table V data, reporting every intermediate value.
"""

import pytest

from repro.hardware.sku import greensku_cxl


@pytest.fixture(scope="module")
def assessment(appendix_model):
    return appendix_model.assess(greensku_cxl(appendix_data=True))


class TestServerLevel:
    def test_server_power_403w(self, assessment):
        # "Eq. 1 results in P_s = 403 W."
        assert assessment.server.power_watts == pytest.approx(403, abs=1.0)

    def test_server_embodied_1644kg(self, assessment):
        # "a total E_emb,s of 1644 kgCO2e."
        assert assessment.server.embodied_kg == pytest.approx(1644, abs=1.0)

    def test_embodied_component_sum(self, appendix_model):
        # CPU 28.3 + DDR5 768*1.65 + DDR4 0 + SSD 20*17.3 + CXL 2.5.
        emissions = appendix_model.server_emissions(
            greensku_cxl(appendix_data=True)
        )
        expected = 28.3 + 768 * 1.65 + 0 + 20 * 17.3 + 2.5
        assert emissions.embodied_kg == pytest.approx(expected)


class TestRackLevel:
    def test_sixteen_servers_space_bound(self, assessment):
        # "the rack is space-constrained to N_s = 16 servers."
        assert assessment.servers_per_rack == 16
        assert assessment.space_bound

    def test_rack_power_6953w(self, assessment):
        # "P_r = 16 * 403 + 500 = 6953 W."
        assert assessment.rack_power_watts == pytest.approx(6953, abs=3)

    def test_rack_embodied_26804kg(self, assessment):
        # "E_emb,r = 16 * 1644 + 500 = 26,804 kgCO2e."
        assert assessment.rack_embodied_kg == pytest.approx(26_804, abs=10)

    def test_rack_operational_36547kg(self, assessment):
        # "E_op,r = L * CI * P_r = 36,547 kgCO2e."
        assert assessment.rack_operational_kg == pytest.approx(36_547, rel=0.002)

    def test_rack_total_63351kg(self, assessment):
        # "E_r = 26,804 + 36,547 = 63,351 kgCO2e."
        assert assessment.rack_total_kg == pytest.approx(63_351, rel=0.002)


class TestPerCore:
    def test_2048_cores_per_rack(self, assessment):
        # "N_c,r = 16 * 128 = 2048."
        assert assessment.cores_per_rack == 2048

    def test_31kg_per_core(self, assessment):
        # "GreenSKU-CXL's rack-level CO2e-per-core is 63,351/2,048 ~ 31."
        assert assessment.total_per_core == pytest.approx(31, abs=0.2)
