"""Per-VM carbon attribution tests."""

import math

import pytest

from repro.allocation.vm import VmRequest
from repro.carbon.attribution import (
    AttributionReport,
    attribute_vm,
    attribute_workload,
    per_core_hour_kg,
)
from repro.core.errors import ConfigError
from repro.hardware.sku import baseline_gen3, greensku_full


def make_vm(vm_id=1, cores=8, lifetime=100.0, arrival=0.0, app="Redis"):
    return VmRequest(
        vm_id=vm_id,
        arrival_hours=arrival,
        lifetime_hours=lifetime,
        cores=cores,
        memory_gb=cores * 4.0,
        generation=3,
        app_name=app,
    )


class TestRate:
    def test_rate_amortizes_lifetime(self, carbon_model):
        a = carbon_model.assess(baseline_gen3())
        rate = per_core_hour_kg(a)
        assert rate == pytest.approx(a.total_per_core / 52_560)

    def test_greensku_rate_lower(self, carbon_model):
        base = per_core_hour_kg(carbon_model.assess(baseline_gen3()))
        green = per_core_hour_kg(carbon_model.assess(greensku_full()))
        assert green < base

    def test_invalid_lifetime(self, carbon_model):
        with pytest.raises(ConfigError):
            per_core_hour_kg(carbon_model.assess(baseline_gen3()), 0)


class TestAttributeVm:
    def test_basic_attribution(self, carbon_model):
        a = carbon_model.assess(baseline_gen3())
        record = attribute_vm(make_vm(), a, horizon_hours=1000)
        assert record.core_hours == pytest.approx(800)
        assert record.carbon_kg == pytest.approx(
            800 * per_core_hour_kg(a)
        )

    def test_horizon_clips_open_ended_vms(self, carbon_model):
        a = carbon_model.assess(baseline_gen3())
        vm = make_vm(lifetime=math.inf, arrival=40.0)
        record = attribute_vm(vm, a, horizon_hours=100)
        assert record.hours == pytest.approx(60.0)

    def test_scaled_cores_charged(self, carbon_model):
        a = carbon_model.assess(greensku_full())
        record = attribute_vm(make_vm(cores=8), a, 1000, scaled_cores=10)
        assert record.cores == 10

    def test_vm_arriving_after_horizon(self, carbon_model):
        a = carbon_model.assess(baseline_gen3())
        record = attribute_vm(make_vm(arrival=200.0), a, horizon_hours=100)
        assert record.carbon_kg == 0.0

    def test_invalid_horizon(self, carbon_model):
        with pytest.raises(ConfigError):
            attribute_vm(make_vm(), carbon_model.assess(baseline_gen3()), 0)


class TestWorkloadAttribution:
    def test_totals(self, carbon_model):
        a = carbon_model.assess(baseline_gen3())
        vms = [make_vm(i, app="Redis") for i in range(3)]
        vms += [make_vm(9, app="Silo")]
        report = attribute_workload(vms, a, horizon_hours=1000)
        assert report.total_kg == pytest.approx(
            sum(r.carbon_kg for r in report.records)
        )
        assert report.total_core_hours == pytest.approx(4 * 800)

    def test_by_app_sorted_descending(self, carbon_model):
        a = carbon_model.assess(baseline_gen3())
        vms = [make_vm(i, app="Redis") for i in range(3)]
        vms += [make_vm(9, app="Silo")]
        by_app = attribute_workload(vms, a, 1000).by_app()
        values = list(by_app.values())
        assert values == sorted(values, reverse=True)
        assert list(by_app)[0] == "Redis"

    def test_scaling_map(self, carbon_model):
        a = carbon_model.assess(greensku_full())
        vms = [make_vm(1, cores=8)]
        report = attribute_workload(vms, a, 1000, scaling={1: 12})
        assert report.records[0].cores == 12

    def test_adopting_vm_saves_despite_scaling(self, carbon_model):
        """A factor-1.25 adopter is charged less on the GreenSKU than the
        same VM on the baseline — the adoption rule made it so."""
        base = carbon_model.assess(baseline_gen3())
        green = carbon_model.assess(greensku_full())
        vm = make_vm(1, cores=8)
        on_base = attribute_vm(vm, base, 1000)
        on_green = attribute_vm(vm, green, 1000, scaled_cores=10)
        assert on_green.carbon_kg < on_base.carbon_kg
