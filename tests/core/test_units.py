"""Unit-conversion tests, including the paper's own arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units
from repro.core.errors import UnitError


class TestDurations:
    def test_six_years_is_52560_hours(self):
        # The paper's lifetime: 6 years = 52,560 hours.
        assert units.years_to_hours(6) == 52560.0

    def test_roundtrip(self):
        assert units.hours_to_years(units.years_to_hours(3.5)) == pytest.approx(3.5)

    def test_negative_years_rejected(self):
        with pytest.raises(UnitError):
            units.years_to_hours(-1)

    def test_negative_hours_rejected(self):
        with pytest.raises(UnitError):
            units.hours_to_years(-0.1)

    @given(st.floats(min_value=0, max_value=1e6))
    def test_roundtrip_property(self, years):
        assert units.hours_to_years(
            units.years_to_hours(years)
        ) == pytest.approx(years, rel=1e-12)


class TestEnergy:
    def test_one_kw_for_ten_hours(self):
        assert units.energy_kwh(1000, 10) == 10.0

    def test_zero_power(self):
        assert units.energy_kwh(0, 100) == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(UnitError):
            units.energy_kwh(-1, 1)

    def test_negative_duration_rejected(self):
        with pytest.raises(UnitError):
            units.energy_kwh(1, -1)

    def test_watts_to_kw(self):
        assert units.watts_to_kw(403.3) == pytest.approx(0.4033)


class TestOperationalCarbon:
    def test_paper_rack_example(self):
        # Section V: E_op,r = 6953 W over 6 years at 0.1 kg/kWh ~ 36,547 kg.
        result = units.operational_carbon_kg(6953, 6, 0.1)
        assert result == pytest.approx(36_547, rel=0.001)

    def test_zero_intensity_means_zero_carbon(self):
        assert units.operational_carbon_kg(5000, 6, 0.0) == 0.0

    def test_negative_intensity_rejected(self):
        with pytest.raises(UnitError):
            units.operational_carbon_kg(1, 1, -0.1)

    @given(
        st.floats(min_value=0, max_value=1e5),
        st.floats(min_value=0, max_value=30),
        st.floats(min_value=0, max_value=2),
    )
    def test_linearity_in_all_factors(self, power, years, ci):
        base = units.operational_carbon_kg(power, years, ci)
        assert units.operational_carbon_kg(2 * power, years, ci) == pytest.approx(
            2 * base, abs=1e-9
        )
        assert units.operational_carbon_kg(power, 2 * years, ci) == pytest.approx(
            2 * base, abs=1e-9
        )


class TestRatios:
    def test_percent(self):
        assert units.percent(25, 100) == 25.0

    def test_percent_of_zero_total(self):
        assert units.percent(5, 0) == 0.0

    def test_savings_fraction(self):
        assert units.savings_fraction(100.0, 72.0) == pytest.approx(0.28)

    def test_savings_fraction_negative_when_worse(self):
        assert units.savings_fraction(100.0, 110.0) == pytest.approx(-0.10)

    def test_savings_fraction_zero_baseline_rejected(self):
        with pytest.raises(UnitError):
            units.savings_fraction(0.0, 1.0)

    def test_mass_conversions(self):
        assert units.grams_to_kg(1500) == 1.5
        assert units.tonnes_to_kg(2.5) == 2500.0
