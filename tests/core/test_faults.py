"""Deterministic fault injection: plans, draws, corruption, spec parsing."""

import pytest

from repro.core.errors import ConfigError
from repro.core.faults import (
    FaultPlan,
    InjectedFault,
    corrupt_file,
    parse_fault_spec,
)


class TestFaultPlan:
    def test_kill_by_index_is_bounded_by_attempts(self):
        plan = FaultPlan(kill_indices=(2,), kill_attempts=2)
        assert plan.should_kill(2, 0)
        assert plan.should_kill(2, 1)
        assert not plan.should_kill(2, 2)
        assert not plan.should_kill(1, 0)

    def test_probabilistic_kills_are_deterministic(self):
        plan = FaultPlan(kill_probability=0.5, seed=7)
        decisions = [plan.should_kill(i, 0) for i in range(64)]
        again = [plan.should_kill(i, 0) for i in range(64)]
        assert decisions == again
        assert any(decisions) and not all(decisions)

    def test_probabilistic_kills_depend_on_seed(self):
        a = [FaultPlan(kill_probability=0.5, seed=1).should_kill(i, 0)
             for i in range(64)]
        b = [FaultPlan(kill_probability=0.5, seed=2).should_kill(i, 0)
             for i in range(64)]
        assert a != b

    def test_apply_raises_injected_fault_in_parent(self):
        # Hard mode must degrade to an exception in the parent process:
        # a serial run may never kill the interpreter driving it.
        plan = FaultPlan(kill_indices=(0,), kill_mode="hard")
        with pytest.raises(InjectedFault):
            plan.apply(0, 0)
        plan.apply(1, 0)  # unselected index: no-op

    def test_latency_selection(self):
        plan = FaultPlan(latency_s=0.001, latency_indices=(1,))
        assert plan.should_delay(1)
        assert not plan.should_delay(0)
        everyone = FaultPlan(latency_s=0.001)
        assert everyone.should_delay(0) and everyone.should_delay(99)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(kill_mode="meteor")
        with pytest.raises(ConfigError):
            FaultPlan(kill_probability=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(latency_s=-1.0)


class TestCorruptFile:
    def test_truncate_halves_the_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(range(100)))
        corrupt_file(path, mode="truncate")
        assert path.read_bytes() == bytes(range(50))

    def test_garble_changes_bytes_but_keeps_length(self, tmp_path):
        path = tmp_path / "f.bin"
        original = bytes(range(256))
        path.write_bytes(original)
        corrupt_file(path, mode="garble", seed=3)
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        assert damaged != original

    def test_garble_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        for path in (a, b):
            path.write_bytes(bytes(range(256)))
            corrupt_file(path, mode="garble", seed=3)
        assert a.read_bytes() == b.read_bytes()

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"data")
        with pytest.raises(ConfigError):
            corrupt_file(path, mode="vaporize")


class TestParseFaultSpec:
    def test_full_spec(self):
        plan = parse_fault_spec(
            "kill=0;3;7 p=0.1 attempts=2 mode=hard latency=0.01 seed=7"
        )
        assert plan == FaultPlan(
            kill_indices=(0, 3, 7),
            kill_probability=0.1,
            kill_attempts=2,
            kill_mode="hard",
            latency_s=0.01,
            seed=7,
        )

    def test_comma_separators_and_defaults(self):
        plan = parse_fault_spec("kill=1,seed=3")
        assert plan.kill_indices == (1,)
        assert plan.seed == 3
        assert plan.kill_mode == "exception"

    def test_bad_specs_rejected(self):
        for spec in ("kill", "banana=1", "p=lots", "mode=meteor"):
            with pytest.raises(ConfigError):
                parse_fault_spec(spec)
