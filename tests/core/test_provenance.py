"""Unit tests for the provenance graph (records, log, invalidation)."""

import json

import pytest

from repro.core import provenance
from repro.core.provenance import (
    CODE_SALT_ENV,
    ProvenanceLog,
    ProvenanceRecord,
    code_salt,
    invalidated,
    record_task,
    recording,
    result_digest,
)


def rec(artifact_id, inputs, output="out", kind="task"):
    return ProvenanceRecord.make(artifact_id, kind, inputs, output)


class TestRecord:
    def test_inputs_sorted_and_frozen(self):
        record = rec("a", {"z": "1", "b": "2"})
        assert record.inputs == (("b", "2"), ("z", "1"))
        assert record.inputs_map == {"b": "2", "z": "1"}

    def test_roundtrip(self):
        record = rec("a", {"x": "1"})
        assert ProvenanceRecord.from_dict(record.to_dict()) == record

    def test_result_digest_stable(self):
        assert result_digest({"a": 1}) == result_digest({"a": 1})
        assert result_digest({"a": 1}) != result_digest({"a": 2})

    def test_code_salt_env_override(self, monkeypatch):
        default = code_salt()
        monkeypatch.setenv(CODE_SALT_ENV, "other-code")
        assert code_salt() == "other-code"
        monkeypatch.delenv(CODE_SALT_ENV)
        assert code_salt() == default


class TestLog:
    def test_record_and_latest(self, tmp_path):
        log = ProvenanceLog(tmp_path / "p.jsonl")
        assert log.record("a", "task", {"x": "1"}, "d1")
        assert log.record("a", "task", {"x": "1"}, "d2")
        latest = log.latest()
        assert latest["a"].output_digest == "d2"
        assert len(log.records()) == 2

    def test_identical_record_is_idempotent(self, tmp_path):
        log = ProvenanceLog(tmp_path / "p.jsonl")
        assert log.record("a", "task", {"x": "1"}, "d1")
        assert not log.record("a", "task", {"x": "1"}, "d1")
        assert log.appended == 1
        assert log.unchanged == 1
        assert len(log.records()) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        log = ProvenanceLog(tmp_path / "absent.jsonl")
        assert log.records() == []
        assert log.latest() == {}

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "p.jsonl"
        log = ProvenanceLog(path)
        log.record("a", "task", {"x": "1"}, "d1")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"schema": "bogus"}) + "\n")
        log.record("b", "task", {"x": "1"}, "d2")
        fresh = ProvenanceLog(path)
        assert sorted(fresh.latest()) == ["a", "b"]
        assert fresh.skipped_corrupt == 2

    def test_reload_survives_process_boundary(self, tmp_path):
        path = tmp_path / "p.jsonl"
        ProvenanceLog(path).record("a", "task", {"x": "1"}, "d1")
        assert ProvenanceLog(path).latest()["a"].output_digest == "d1"


class TestInvalidation:
    def test_unchanged_inputs_mean_no_cone(self):
        latest = {"a": rec("a", {"leaf": "1"})}
        report = invalidated(latest, {"leaf": "1"})
        assert report.invalid == ()
        assert report.changed_inputs == ()

    def test_changed_leaf_invalidates_consumer(self):
        latest = {"a": rec("a", {"leaf": "1"}), "b": rec("b", {"leaf2": "9"})}
        report = invalidated(latest, {"leaf": "2", "leaf2": "9"})
        assert report.invalid == ("a",)
        assert report.changed_inputs == ("leaf",)
        assert report.is_invalid("a") and not report.is_invalid("b")

    def test_absent_leaves_presumed_unchanged(self):
        latest = {"a": rec("a", {"leaf": "1"})}
        assert invalidated(latest, {}).invalid == ()

    def test_cone_propagates_downstream(self):
        latest = {
            "a": rec("a", {"leaf": "1"}, output="da"),
            "b": rec("b", {"a": "da"}, output="db"),
            "c": rec("c", {"b": "db"}, output="dc"),
            "d": rec("d", {"other": "5"}, output="dd"),
        }
        report = invalidated(latest, {"leaf": "2"})
        assert report.invalid == ("a", "b", "c")

    def test_stale_edge_invalidates_dependent(self):
        # b recorded a's output as "old", but a has since recomputed.
        latest = {
            "a": rec("a", {"leaf": "1"}, output="new"),
            "b": rec("b", {"a": "old"}, output="db"),
        }
        report = invalidated(latest, {"leaf": "1"})
        assert report.invalid == ("b",)

    def test_cone_digest_deterministic_and_sensitive(self):
        latest = {"a": rec("a", {"leaf": "1"})}
        one = invalidated(latest, {"leaf": "2"})
        two = invalidated(latest, {"leaf": "2"})
        assert one.cone_digest() == two.cone_digest()
        assert one.cone_digest() != invalidated(latest, {"leaf": "1"}).cone_digest()


class TestActiveLog:
    def test_record_task_without_log_is_noop(self):
        assert provenance.active_log() is None
        record_task("key", {"v": 1})  # must not raise

    def test_recording_scopes_the_log(self, tmp_path):
        log = ProvenanceLog(tmp_path / "p.jsonl")
        with recording(log):
            assert provenance.active_log() is log
            record_task("some-key", {"v": 1})
        assert provenance.active_log() is None
        latest = log.latest()
        assert "task/some-key" in latest
        record = latest["task/some-key"]
        assert record.inputs_map["item"] == "some-key"
        assert record.inputs_map["code"] == code_salt()
        assert record.output_digest == result_digest({"v": 1})

    def test_cached_map_records_tasks(self, tmp_path):
        from repro.core.runner import cached_map

        log = ProvenanceLog(tmp_path / "p.jsonl")
        with recording(log):
            out = cached_map(str.upper, ["a", "b"], key_fn=str, jobs=1)
        assert out == ["A", "B"]
        latest = log.latest()
        assert "task/a" in latest and "task/b" in latest
        assert latest["task/a"].output_digest == result_digest("A")

    def test_experiment_run_records_artifact(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        log = ProvenanceLog(tmp_path / "p.jsonl")

        class FakeModule:
            @staticmethod
            def main():
                return {"rows": [1, 2]}

        exp = registry.Experiment("fake", "fake experiment", FakeModule)
        with recording(log):
            registry._record_provenance(exp, FakeModule.main())
        record = log.latest()["experiment/fake"]
        assert record.kind == "experiment"
        assert record.output_digest == result_digest({"rows": [1, 2]})
