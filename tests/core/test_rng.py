"""Deterministic RNG stream tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rng import DEFAULT_SEED, RngFactory, derive_seed, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_32_bits(self):
        assert 0 <= derive_seed(12345, "anything") < 2**32

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=30))
    def test_always_32_bits(self, seed, name):
        assert 0 <= derive_seed(seed, name) < 2**32


class TestStreams:
    def test_same_stream_same_sequence(self):
        a = stream(5, "x").random(10)
        b = stream(5, "x").random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_differ(self):
        a = stream(5, "x").random(10)
        b = stream(5, "y").random(10)
        assert not np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        # Drawing from a new named stream must not change another stream.
        before = stream(9, "arrivals").random(5)
        _ = stream(9, "new-consumer").random(100)
        after = stream(9, "arrivals").random(5)
        np.testing.assert_array_equal(before, after)


class TestRngFactory:
    def test_default_seed(self):
        assert RngFactory().seed == DEFAULT_SEED

    def test_factory_streams_reproducible(self):
        f = RngFactory(3)
        np.testing.assert_array_equal(
            f.stream("a").random(4), RngFactory(3).stream("a").random(4)
        )

    def test_child_factories_independent(self):
        f = RngFactory(3)
        a = f.child("one").stream("s").random(4)
        b = f.child("two").stream("s").random(4)
        assert not np.array_equal(a, b)

    def test_repr_mentions_seed(self):
        assert "123" in repr(RngFactory(123))
