"""Tests for the shared experiment runner (parallel map + disk cache)."""

from __future__ import annotations

import os

import pytest

from repro.core.errors import ConfigError
from repro.core.runner import (
    MISSING,
    DiskCache,
    cache_enabled,
    cached_map,
    content_key,
    parallel_map,
    reset_runner_stats,
    resolve_jobs,
    runner_stats,
    set_cache_enabled,
    set_default_jobs,
)


def _square(x):
    return x * x


def _pid_tag(x):
    return (x, os.getpid())


def _size_trace(seed):
    """A picklable sizing task: probes run inside the worker process."""
    from repro.allocation.traces import TraceParams, generate_trace
    from repro.gsf.sizing import right_size
    from repro.hardware.sku import baseline_gen3

    trace = generate_trace(
        seed=seed,
        params=TraceParams(duration_days=2, mean_concurrent_vms=40),
    )
    return right_size(trace, baseline_gen3())


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_cli_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        set_default_jobs(2)
        try:
            assert resolve_jobs(None) == 2
        finally:
            set_default_jobs(None)

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            resolve_jobs(0)
        with pytest.raises(ConfigError):
            set_default_jobs(-1)


class TestParallelMap:
    def test_serial_matches_builtin_map(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]

    def test_parallel_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_parallel_identical_to_serial(self):
        items = list(range(13))
        assert parallel_map(_square, items, jobs=3) == parallel_map(
            _square, items, jobs=1
        )

    def test_runs_in_worker_processes(self):
        # Two workers over four items: at least one item must land in a
        # different process than the parent.
        tagged = parallel_map(_pid_tag, [1, 2, 3, 4], jobs=2)
        assert [x for x, _pid in tagged] == [1, 2, 3, 4]
        assert any(pid != os.getpid() for _x, pid in tagged)

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_stats_accumulate(self):
        reset_runner_stats()
        parallel_map(_square, [1, 2, 3], jobs=1)
        assert runner_stats().tasks == 3
        assert runner_stats().parallel_tasks == 0


class TestSizingStatsAggregation:
    """Worker-process probe counters fold back into the parent's stats."""

    def _run(self, jobs):
        from repro.gsf.sizing import reset_sizing_stats, sizing_stats

        reset_sizing_stats()
        results = parallel_map(_size_trace, [21, 22, 23], jobs=jobs)
        stats = sizing_stats()
        return results, (stats.simulate_calls, stats.memo_hits)

    def test_parallel_counters_match_serial(self):
        serial_results, serial_counts = self._run(jobs=1)
        parallel_results, parallel_counts = self._run(jobs=2)
        assert parallel_results == serial_results
        assert serial_counts[0] > 0  # the searches actually simulated
        assert parallel_counts == serial_counts


class TestTelemetryFoldIn:
    """Worker-process telemetry folds back into the parent's capture.

    The pinned invariant: every counter and timer *count* is identical
    between ``jobs=1`` and ``jobs=N`` — parallelism changes where work
    runs, never how much of it is accounted.  The only exception is
    ``runner.parallel_tasks``, which by definition counts tasks shipped
    to worker processes.
    """

    def _run(self, jobs):
        from repro.core import telemetry

        with telemetry.capture() as tel:
            results = parallel_map(_size_trace, [21, 22, 23], jobs=jobs)
        return results, tel

    def test_counters_identical_across_worker_counts(self):
        serial_results, serial_tel = self._run(jobs=1)
        parallel_results, parallel_tel = self._run(jobs=2)
        assert parallel_results == serial_results

        def comparable(tel):
            counters = dict(tel.counters)
            counters.pop("runner.parallel_tasks", None)
            return counters

        serial = comparable(serial_tel)
        parallel = comparable(parallel_tel)
        # The searches really ran and were really counted on both paths.
        assert serial["runner.tasks"] == 3
        assert serial["sizing.searches"] == 3
        assert serial["sizing.simulate_calls"] > 0
        assert serial["alloc.replays"] > 0
        assert parallel == serial
        assert parallel_tel.counters["runner.parallel_tasks"] == 3

    def test_timer_counts_identical_across_worker_counts(self):
        _, serial_tel = self._run(jobs=1)
        _, parallel_tel = self._run(jobs=2)
        assert set(serial_tel.timers) == set(parallel_tel.timers)
        assert serial_tel.timers["runner.task"].count == 3
        for name, stat in serial_tel.timers.items():
            assert parallel_tel.timers[name].count == stat.count

    def test_disabled_parent_means_no_worker_capture(self):
        from repro.core import telemetry

        # With telemetry off, workers must not capture (drained is None)
        # and the map behaves exactly as before the instrumentation.
        assert telemetry.active() is None
        results = parallel_map(_size_trace, [21], jobs=2)
        assert results == parallel_map(_size_trace, [21], jobs=1)
        assert telemetry.active() is None


class TestDiskCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = content_key("a", 1)
        assert cache.get(key) is MISSING
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_none_is_a_valid_cached_value(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", None)
        assert cache.get("k") is None

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", [1, 2])
        (tmp_path / "k.pkl").write_bytes(b"not a pickle")
        assert cache.get("k") is MISSING
        assert cache.misses == 1

    def test_content_key_sensitivity(self):
        assert content_key("a", 1) == content_key("a", 1)
        assert content_key("a", 1) != content_key("a", 2)
        # Concatenation must not collide across part boundaries.
        assert content_key("ab", "c") != content_key("a", "bc")


class TestCachedMap:
    def test_cached_identical_to_uncached(self, tmp_path):
        items = list(range(8))
        cache = DiskCache(tmp_path)
        first = cached_map(_square, items, key_fn=str, jobs=1, cache=cache)
        again = cached_map(_square, items, key_fn=str, jobs=1, cache=cache)
        assert first == again == [x * x for x in items]
        assert cache.misses == 8 and cache.hits == 8

    def test_partial_hit_fills_only_misses(self, tmp_path):
        cache = DiskCache(tmp_path)
        cached_map(_square, [1, 2], key_fn=str, jobs=1, cache=cache)
        result = cached_map(_square, [1, 2, 3], key_fn=str, jobs=1,
                            cache=cache)
        assert result == [1, 4, 9]
        assert cache.hits == 2 and cache.misses == 3  # 2 initial + 1 new

    def test_disabled_by_default(self):
        set_cache_enabled(None)
        assert not cache_enabled()

    def test_opt_in_via_override(self):
        set_cache_enabled(True)
        try:
            assert cache_enabled()
        finally:
            set_cache_enabled(None)
