"""Table rendering tests."""

import pytest

from repro.core.tables import format_cell, render_csv, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_formatting(self):
        assert format_cell(2.5) == "2.50"

    def test_custom_float_format(self):
        assert format_cell(2.5, "{:.0f}") == "2"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderCsv:
    def test_basic(self):
        out = render_csv(["a", "b"], [[1, 2.5]])
        assert out.splitlines() == ["a,b", "1,2.5"]

    def test_none_cell(self):
        assert render_csv(["a"], [[None]]).splitlines()[1] == "-"
