"""Property tests for the telemetry layer.

Hypothesis drives arbitrary interleavings of counter, timer, and span
operations against a reference model and asserts the invariants the rest
of the stack relies on: operations never raise, spans nest and unwind
correctly, drained state folds losslessly, and every manifest validates
and survives a JSON round-trip.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.telemetry import Telemetry, validate_manifest

NAMES = st.sampled_from(
    ["alloc.placements", "engine.queries", "sizing.memo_hits", "t", "x.y"]
)
COUNTS = st.integers(min_value=0, max_value=10**9)
ELAPSED = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

# One telemetry operation: counters, timers, and span pushes/pops in any
# order (pops may outnumber pushes — the layer must tolerate that).
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("count"), NAMES, COUNTS),
        st.tuples(st.just("timer"), NAMES, ELAPSED),
        st.tuples(st.just("push"), NAMES, st.just(0)),
        st.tuples(st.just("pop"), st.just(""), st.just(0)),
    ),
    max_size=60,
)


def run_program(ops):
    """Interpret an op list against a Telemetry and a reference model."""
    clock = iter(range(10**9)).__next__
    tel = Telemetry(clock=lambda: float(clock()))
    ref_counters = {}
    ref_timers = {}
    open_spans = []
    for op, name, value in ops:
        if op == "count":
            tel.count(name, value)
            ref_counters[name] = ref_counters.get(name, 0) + value
        elif op == "timer":
            tel.record_timer(name, value)
            ref_timers.setdefault(name, []).append(value)
        elif op == "push":
            cm = tel.span(name)
            cm.__enter__()
            open_spans.append(cm)
        elif op == "pop" and open_spans:
            open_spans.pop().__exit__(None, None, None)
    while open_spans:
        open_spans.pop().__exit__(None, None, None)
    return tel, ref_counters, ref_timers


@given(OPS)
@settings(max_examples=200, deadline=None)
def test_interleavings_never_raise_and_match_reference(ops):
    tel, ref_counters, ref_timers = run_program(ops)
    assert tel.span_depth == 0
    assert tel.counters == ref_counters
    assert set(tel.timers) == set(ref_timers)
    for name, samples in ref_timers.items():
        stat = tel.timers[name]
        assert stat.count == len(samples)
        assert stat.total_s == sum(samples)
        assert stat.min_s == min(samples)
        assert stat.max_s == max(samples)


@given(OPS)
@settings(max_examples=200, deadline=None)
def test_manifest_always_validates_and_round_trips(ops):
    tel, _, _ = run_program(ops)
    manifest = tel.manifest(command="prop", argv=["prop"])
    assert validate_manifest(manifest) == []
    assert json.loads(json.dumps(manifest)) == manifest


@given(OPS)
@settings(max_examples=100, deadline=None)
def test_span_tree_consumes_all_pushes(ops):
    tel, _, _ = run_program(ops)

    def count_nodes(nodes):
        return sum(1 + count_nodes(n["children"]) for n in nodes)

    pushes = sum(1 for op, _, _ in ops if op == "push")
    assert count_nodes(tel.manifest()["spans"]) == pushes


@given(st.lists(OPS, min_size=2, max_size=4))
@settings(max_examples=100, deadline=None)
def test_absorb_is_order_insensitive(programs):
    """Folding worker drains in any order yields the same counters and
    timer count/min/max (total_s may differ in float rounding only)."""
    drains = [run_program(ops)[0].drain() for ops in programs]

    def fold(order):
        parent = Telemetry(clock=lambda: 0.0)
        for i in order:
            parent.absorb(*drains[i])
        return parent

    forward = fold(range(len(drains)))
    backward = fold(reversed(range(len(drains))))
    assert forward.counters == backward.counters
    assert set(forward.timers) == set(backward.timers)
    for name in forward.timers:
        f, b = forward.timers[name], backward.timers[name]
        assert (f.count, f.min_s, f.max_s) == (b.count, b.min_s, b.max_s)
        assert abs(f.total_s - b.total_s) <= 1e-6 * max(1.0, f.total_s)


@given(OPS)
@settings(max_examples=100, deadline=None)
def test_drain_absorb_into_empty_is_identity(ops):
    worker, _, _ = run_program(ops)
    parent = Telemetry(clock=lambda: 0.0)
    parent.absorb(*worker.drain())
    assert parent.counters == worker.counters
    assert {n: s.as_tuple() for n, s in parent.timers.items()} == {
        n: s.as_tuple() for n, s in worker.timers.items()
    }
