"""The resilience layer: journal, retry, degradation, runner routing."""

import os
import pickle
import time

import pytest

from repro.core import resilience, runner, telemetry
from repro.core.errors import ConfigError, SimulationError
from repro.core.faults import FaultPlan
from repro.core.resilience import (
    CheckpointJournal,
    ResiliencePolicy,
    RetryPolicy,
    TaskFailure,
    activated,
    active_policy,
    resilient_map,
)

NO_SLEEP = lambda _s: None  # noqa: E731 — backoff stub for fast tests


def fast_retry(**kwargs):
    kwargs.setdefault("backoff_base_s", 0.0)
    kwargs.setdefault("sleep", NO_SLEEP)
    return RetryPolicy(**kwargs)


def square(x):
    return x * x


def slow_square(x):
    time.sleep(0.5)
    return x * x


def key_of(x):
    return f"key-{x}"


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, max_backoff_s=0.3
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.3)

    def test_attempts(self):
        assert RetryPolicy(max_retries=0).attempts == 1
        assert RetryPolicy(max_retries=3).attempts == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(timeout_s=0)


class TestCheckpointJournal:
    def test_miss_then_hit_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        assert journal.get("k") is runner.MISSING
        journal.put("k", {"answer": 42})
        assert journal.get("k") == {"answer": 42}
        assert (journal.hits, journal.misses, journal.writes) == (1, 1, 1)

    def test_corrupt_entry_quarantined_not_rewritten_in_place(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.put("k", [1, 2, 3])
        journal.entry_path("k").write_bytes(b"\x80\x05 not a pickle")
        with telemetry.capture() as tel:
            assert journal.get("k") is runner.MISSING
        assert tel.counters["resilience.journal_quarantined"] == 1
        assert not journal.entry_path("k").exists()
        quarantined = list(journal.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.endswith(".quarantined")

    def test_failure_records_merge_and_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        first = TaskFailure(0, "a", 3, "ValueError", "boom")
        journal.record_failures([first])
        second = TaskFailure(1, "b", 2, "TimeoutError", "slow")
        journal.record_failures([second])
        assert journal.failures() == [first, second]
        # Re-recording the same (key, index) replaces, not duplicates.
        journal.record_failures([TaskFailure(0, "a", 4, "ValueError", "x")])
        assert len(journal.failures()) == 2

    def test_resolved_keys_clear_recorded_failures(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record_failures([
            TaskFailure(0, "a", 2, "ValueError", "boom"),
            TaskFailure(1, "b", 2, "ValueError", "boom"),
        ])
        journal.record_failures([], resolved=["a", None])
        assert [f.key for f in journal.failures()] == ["b"]
        journal.record_failures([], resolved=["b"])
        assert journal.failures() == []

    def test_record_failures_skips_rewrite_when_unchanged(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record_failures([], resolved=["never-failed"])
        assert not journal.meta_path.exists()
        failure = TaskFailure(0, "a", 2, "ValueError", "boom")
        journal.record_failures([failure])
        stamp = journal.meta_path.stat().st_mtime_ns
        journal.record_failures([failure], resolved=["unrelated"])
        assert journal.meta_path.stat().st_mtime_ns == stamp

    def test_put_is_atomic(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.put("k", "value")
        leftovers = [
            p for p in journal.directory.iterdir() if ".tmp-" in p.name
        ]
        assert leftovers == []


class TestResilientMapSerial:
    def test_plain_map_matches_inputs(self):
        assert resilient_map(square, [1, 2, 3], key_fn=key_of, jobs=1) == [
            1, 4, 9,
        ]

    def test_retries_recover_from_injected_kills(self, tmp_path):
        policy = ResiliencePolicy(
            retry=fast_retry(max_retries=2),
            faults=FaultPlan(kill_indices=(0, 2), kill_attempts=1),
        )
        with telemetry.capture() as tel:
            out = resilient_map(
                square, [1, 2, 3], key_fn=key_of, jobs=1, policy=policy
            )
        assert out == [1, 4, 9]
        assert tel.counters["resilience.retries"] == 2

    def test_exhausted_retries_degrade_and_record(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        policy = ResiliencePolicy(
            journal=journal,
            retry=fast_retry(max_retries=1),
            faults=FaultPlan(kill_indices=(1,), kill_attempts=99),
            on_failure="record",
        )
        with telemetry.capture() as tel:
            out = resilient_map(
                square, [1, 2, 3], key_fn=key_of, jobs=1, policy=policy
            )
        # The degraded seed stays in its slot as a structured record, so
        # results can never silently misalign with inputs.
        assert len(out) == 3
        assert (out[0], out[2]) == (1, 9)
        assert isinstance(out[1], TaskFailure)
        assert tel.counters["resilience.failures"] == 1
        [failure] = journal.failures()
        assert failure.key == key_of(2)
        assert failure.attempts == 2
        assert failure.error_type == "InjectedFault"
        [recorded] = tel.manifest()["failures"]
        assert recorded["error_type"] == "InjectedFault"

    def test_drop_failures_makes_degradation_explicit(self):
        policy = ResiliencePolicy(
            retry=fast_retry(max_retries=0),
            faults=FaultPlan(kill_indices=(1,), kill_attempts=99),
            on_failure="record",
        )
        with telemetry.capture() as tel:
            out = resilient_map(
                square, [1, 2, 3], key_fn=key_of, jobs=1, policy=policy
            )
            survivors = resilience.drop_failures(out)
        assert survivors == [1, 9]
        assert tel.counters["resilience.degraded_dropped"] == 1

    def test_on_failure_raise_is_the_default(self):
        assert ResiliencePolicy().on_failure == "raise"
        policy = ResiliencePolicy(
            retry=fast_retry(max_retries=0),
            faults=FaultPlan(kill_indices=(0,), kill_attempts=99),
        )
        with pytest.raises(SimulationError, match="1/2 tasks failed"):
            resilient_map(
                square, [1, 2], key_fn=key_of, jobs=1, policy=policy
            )

    def test_raise_still_checkpoints_survivors(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        policy = ResiliencePolicy(
            journal=journal,
            retry=fast_retry(max_retries=0),
            faults=FaultPlan(kill_indices=(1,), kill_attempts=99),
        )
        with pytest.raises(SimulationError):
            resilient_map(
                square, [1, 2, 3], key_fn=key_of, jobs=1, policy=policy
            )
        # The survivors are journaled before the raise, so a fixed
        # rerun resumes instead of recomputing.
        assert journal.get(key_of(1)) == 1
        assert journal.get(key_of(3)) == 9
        [failure] = journal.failures()
        assert failure.key == key_of(2)

    def test_resume_skips_completed_work(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        policy = ResiliencePolicy(journal=journal, retry=fast_retry())
        calls = []

        def tracked(x):
            calls.append(x)
            return x * x

        first = resilient_map(
            tracked, [1, 2, 3], key_fn=key_of, jobs=1, policy=policy
        )
        assert calls == [1, 2, 3]
        with telemetry.capture() as tel:
            second = resilient_map(
                tracked, [1, 2, 3], key_fn=key_of, jobs=1, policy=policy
            )
        assert second == first
        assert calls == [1, 2, 3]  # nothing recomputed
        assert tel.counters["resilience.resumed"] == 3

    def test_partial_journal_resumes_bit_identically(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        policy = ResiliencePolicy(journal=journal, retry=fast_retry())
        clean = resilient_map(square, [1, 2, 3, 4], key_fn=key_of, jobs=1)
        # Pretend the run died after two tasks: journal only 1 and 3.
        journal.put(key_of(1), 1)
        journal.put(key_of(3), 9)
        with telemetry.capture() as tel:
            resumed = resilient_map(
                square, [1, 2, 3, 4], key_fn=key_of, jobs=1, policy=policy
            )
        assert resumed == clean
        assert tel.counters["resilience.resumed"] == 2

    def test_successful_resume_clears_recorded_failures(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        doomed = ResiliencePolicy(
            journal=journal,
            retry=fast_retry(max_retries=0),
            faults=FaultPlan(kill_indices=(1,), kill_attempts=99),
            on_failure="record",
        )
        resilient_map(square, [1, 2, 3], key_fn=key_of, jobs=1, policy=doomed)
        assert [f.key for f in journal.failures()] == [key_of(2)]
        # Faults cleared: the resumed run recomputes only the casualty
        # and the journal stops reporting it as failed.
        healed = ResiliencePolicy(journal=journal, retry=fast_retry())
        out = resilient_map(
            square, [1, 2, 3], key_fn=key_of, jobs=1, policy=healed
        )
        assert out == [1, 4, 9]
        assert journal.failures() == []

    def test_backoff_sleeps_follow_the_schedule(self):
        sleeps = []
        policy = ResiliencePolicy(
            retry=RetryPolicy(
                max_retries=3,
                backoff_base_s=0.1,
                backoff_factor=2.0,
                max_backoff_s=10.0,
                sleep=sleeps.append,
            ),
            faults=FaultPlan(kill_indices=(0,), kill_attempts=3),
        )
        out = resilient_map(square, [5], key_fn=key_of, jobs=1, policy=policy)
        assert out == [25]
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])


class TestResilientMapParallel:
    def test_matches_serial(self, tmp_path):
        serial = resilient_map(square, list(range(6)), key_fn=key_of, jobs=1)
        parallel = resilient_map(
            square, list(range(6)), key_fn=key_of, jobs=2
        )
        assert parallel == serial

    def test_exception_kills_retried_in_workers(self):
        policy = ResiliencePolicy(
            retry=fast_retry(max_retries=2),
            faults=FaultPlan(kill_indices=(1, 3), kill_attempts=1),
        )
        with telemetry.capture() as tel:
            out = resilient_map(
                square, [1, 2, 3, 4], key_fn=key_of, jobs=2, policy=policy
            )
        assert out == [1, 4, 9, 16]
        assert tel.counters["resilience.retries"] == 2

    def test_hard_worker_kill_recovers_via_pool_restart(self):
        policy = ResiliencePolicy(
            retry=fast_retry(max_retries=3),
            faults=FaultPlan(
                kill_indices=(0,), kill_attempts=1, kill_mode="hard"
            ),
        )
        with telemetry.capture() as tel:
            out = resilient_map(
                square, [1, 2, 3, 4], key_fn=key_of, jobs=2, policy=policy
            )
        assert out == [1, 4, 9, 16]
        assert tel.counters["resilience.pool_restarts"] >= 1

    def test_task_timeout_reclaims_stuck_worker(self):
        policy = ResiliencePolicy(
            retry=fast_retry(max_retries=2, timeout_s=0.5),
            faults=FaultPlan(
                latency_s=5.0, latency_indices=(2,), kill_attempts=0
            ),
            on_failure="record",
        )
        # The fault plan delays index 2 on every attempt, so it times
        # out repeatedly and degrades to a TaskFailure in its slot.
        with telemetry.capture() as tel:
            out = resilient_map(
                square, [1, 2, 3, 4], key_fn=key_of, jobs=2, policy=policy
            )
        assert (out[0], out[1], out[3]) == (1, 4, 16)
        assert isinstance(out[2], TaskFailure)
        assert out[2].error_type == "TimeoutError"
        assert tel.counters["resilience.timeouts"] >= 1
        assert tel.counters["resilience.failures"] == 1

    def test_timeout_measures_execution_not_queueing(self):
        # 8 tasks x ~0.5 s over 2 workers is ~2 s of wall clock; a task
        # that only starts in the fourth wave spends ~1.5 s queued.  The
        # 1.2 s timeout must bound each task's *execution*, so a healthy
        # backlog finishes with zero timeouts — deadlines that started
        # at submission would spuriously expire the later waves.
        policy = ResiliencePolicy(
            retry=fast_retry(max_retries=1, timeout_s=1.2),
        )
        with telemetry.capture() as tel:
            out = resilient_map(
                slow_square, list(range(8)), key_fn=key_of, jobs=2,
                policy=policy,
            )
        assert out == [x * x for x in range(8)]
        assert "resilience.timeouts" not in tel.counters
        assert "resilience.failures" not in tel.counters

    def test_persistent_worker_killer_degrades_without_charging_others(
        self,
    ):
        # Task 0 hard-kills its worker on every attempt.  The culprit of
        # a broken pool cannot be attributed, so nobody's retry budget
        # is charged — but the killer is bounded by its breakage count
        # and degrades, while every innocent bystander completes.
        policy = ResiliencePolicy(
            retry=fast_retry(max_retries=1),
            faults=FaultPlan(
                kill_indices=(0,), kill_attempts=99, kill_mode="hard"
            ),
            on_failure="record",
        )
        with telemetry.capture() as tel:
            out = resilient_map(
                square, [1, 2, 3, 4], key_fn=key_of, jobs=2, policy=policy
            )
        assert isinstance(out[0], TaskFailure)
        assert (out[1], out[2], out[3]) == (4, 9, 16)
        assert tel.counters["resilience.pool_restarts"] >= 2
        assert tel.counters["resilience.failures"] == 1

    def test_parallel_backoff_defers_instead_of_blocking(self):
        sleeps = []
        policy = ResiliencePolicy(
            retry=RetryPolicy(
                max_retries=2,
                backoff_base_s=0.05,
                max_backoff_s=0.05,
                sleep=sleeps.append,
            ),
            faults=FaultPlan(kill_indices=(0, 1), kill_attempts=1),
        )
        out = resilient_map(
            square, [1, 2], key_fn=key_of, jobs=2, policy=policy
        )
        assert out == [1, 4]
        # The injected sleep is only consulted when the scheduler is
        # otherwise idle; backoff never blocks result collection.
        assert sleeps
        assert all(0.0 <= s <= 0.05 for s in sleeps)

    def test_checkpoints_survive_for_resume_across_modes(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        policy = ResiliencePolicy(journal=journal, retry=fast_retry())
        parallel = resilient_map(
            square, list(range(5)), key_fn=key_of, jobs=2, policy=policy
        )
        with telemetry.capture() as tel:
            serial = resilient_map(
                square, list(range(5)), key_fn=key_of, jobs=1, policy=policy
            )
        assert serial == parallel
        assert tel.counters["resilience.resumed"] == 5


class TestRunnerRouting:
    def test_cached_map_routes_through_active_policy(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        policy = ResiliencePolicy(journal=journal, retry=fast_retry())
        with activated(policy):
            assert active_policy() is policy
            out = runner.cached_map(
                square, [1, 2, 3], key_fn=key_of, jobs=1, cache=None
            )
        assert out == [1, 4, 9]
        assert journal.writes == 3
        assert active_policy() is None

    def test_cache_hits_are_rejournaled_for_future_resumes(self, tmp_path):
        cache = runner.DiskCache(tmp_path / "cache")
        cache.put(key_of(2), 4)
        journal = CheckpointJournal(tmp_path / "j")
        policy = ResiliencePolicy(journal=journal, retry=fast_retry())
        out = resilient_map(
            square, [1, 2, 3], key_fn=key_of, jobs=1, cache=cache,
            policy=policy,
        )
        assert out == [1, 4, 9]
        assert journal.get(key_of(2)) == 4

    def test_no_policy_means_no_routing(self, tmp_path):
        # Without an active policy cached_map keeps its PR 1 behavior.
        cache = runner.DiskCache(tmp_path / "cache")
        out = runner.cached_map(square, [1, 2], key_fn=key_of, cache=cache)
        assert out == [1, 4]
        assert cache.misses == 2


class TestDiskCacheQuarantine:
    def test_corrupt_entry_quarantined(self, tmp_path):
        cache = runner.DiskCache(tmp_path / "cache")
        cache.put("k", [1, 2])
        path = tmp_path / "cache" / "k.pkl"
        path.write_bytes(b"definitely not a pickle")
        with telemetry.capture() as tel:
            assert cache.get("k") is runner.MISSING
        assert cache.quarantined == 1
        assert tel.counters["runner.cache_quarantined"] == 1
        assert not path.exists()
        assert list((tmp_path / "cache" / "quarantine").iterdir())

    def test_absent_entry_is_a_plain_miss(self, tmp_path):
        cache = runner.DiskCache(tmp_path / "cache")
        assert cache.get("nope") is runner.MISSING
        assert cache.quarantined == 0

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = runner.DiskCache(tmp_path / "cache")
        cache.put("k", "value")
        names = [p.name for p in (tmp_path / "cache").iterdir()]
        assert names == ["k.pkl"]


class TestTaskFailure:
    def test_dict_round_trip(self):
        failure = TaskFailure(3, "k3", 2, "ValueError", "boom")
        assert TaskFailure.from_dict(failure.to_dict()) == failure

    def test_pickles(self):
        failure = TaskFailure(3, "k3", 2, "ValueError", "boom")
        assert pickle.loads(pickle.dumps(failure)) == failure
